//! RL-driven multiplier optimization: trains both RL-MUL (DQN) and
//! RL-MUL-E (parallel A2C) on an 8-bit AND-based multiplier and
//! compares the outcome with the Wallace, GOMIL and SA baselines.
//!
//! ```sh
//! cargo run --release --example optimize_multiplier
//! ```
//!
//! Training budgets are scaled down from the paper's 10 000 s; raise
//! `STEPS` for tighter results.

use rlmul::baselines::{gomil, SaConfig};
use rlmul::core::{run_sa, train_a2c, train_dqn, A2cConfig, DqnConfig, EnvConfig, MulEnv};
use rlmul::ct::{CompressorTree, PpgKind};
use rlmul::rtl::MultiplierNetlist;
use rlmul::synth::{SynthesisOptions, Synthesizer};

const BITS: usize = 8;
const STEPS: usize = 60;

fn ppa(tree: &CompressorTree) -> Result<(f64, f64), Box<dyn std::error::Error>> {
    let netlist = MultiplierNetlist::elaborate(tree)?.into_netlist();
    let r = Synthesizer::nangate45().run(&netlist, &SynthesisOptions::default())?;
    Ok((r.area_um2, r.delay_ns))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let env_cfg = EnvConfig::new(BITS, PpgKind::And);
    println!("optimizing an {BITS}-bit AND-based multiplier ({STEPS} env steps)\n");

    // Baselines.
    let wallace = CompressorTree::wallace(BITS, PpgKind::And)?;
    let gomil_tree = gomil(BITS, PpgKind::And)?;
    let sa = run_sa(&env_cfg, &SaConfig { steps: STEPS, ..Default::default() }, 7)?;

    // Native RL-MUL: deep Q-learning (paper Algorithm 3).
    let mut env = MulEnv::new(env_cfg.clone())?;
    let dqn_cfg = DqnConfig { steps: STEPS, warmup: STEPS / 5, seed: 7, ..Default::default() };
    let rl = train_dqn(&mut env, &dqn_cfg)?;
    println!(
        "RL-MUL   : cost {:.3} → {:.3} over {} synthesis runs",
        rl.trajectory.first().copied().unwrap_or(f64::NAN),
        rl.best_cost,
        rl.synth_runs
    );

    // RL-MUL-E: synchronous parallel A2C (paper Algorithm 4).
    let a2c_cfg = A2cConfig { steps: STEPS / 4, n_envs: 4, seed: 7, ..Default::default() };
    let rle = train_a2c(&env_cfg, &a2c_cfg)?;
    println!(
        "RL-MUL-E : cost {:.3} → {:.3} ({} parallel workers)\n",
        rle.trajectory.first().copied().unwrap_or(f64::NAN),
        rle.best_cost,
        a2c_cfg.n_envs
    );

    println!("{:<10} {:>12} {:>11}", "method", "area (um^2)", "delay (ns)");
    for (name, tree) in [
        ("Wallace", &wallace),
        ("GOMIL", &gomil_tree),
        ("SA", &sa.best),
        ("RL-MUL", &rl.best),
        ("RL-MUL-E", &rle.best),
    ] {
        let (area, delay) = ppa(tree)?;
        println!("{name:<10} {area:>12.0} {delay:>11.4}");
    }
    Ok(())
}
