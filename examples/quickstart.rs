//! Quickstart: build a multiplier, check it, synthesize it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use rlmul::ct::{CompressorTree, PpgKind};
use rlmul::lec::check_datapath;
use rlmul::rtl::{to_verilog, MultiplierNetlist};
use rlmul::synth::{SynthesisOptions, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A legal compressor-tree structure: the classic Wallace tree
    //    for an 8×8 unsigned multiplier with an AND-array PPG.
    let tree = CompressorTree::wallace(8, PpgKind::And)?;
    println!(
        "wallace 8x8: {} full adders, {} half adders, {} stages",
        tree.matrix().total32(),
        tree.matrix().total22(),
        tree.stage_count()?
    );

    // 2. Elaborate to a gate-level netlist (PPG → CT → prefix CPA).
    let netlist = MultiplierNetlist::elaborate(&tree)?.into_netlist();
    println!("netlist: {} gates, {} nets", netlist.gates().len(), netlist.num_nets());

    // 3. Prove it multiplies: exhaustive equivalence check against
    //    the golden model (all 65 536 input pairs at 8 bits).
    let report = check_datapath(&netlist, 8, PpgKind::And)?;
    println!(
        "equivalence: {} ({} vectors, exhaustive = {})",
        if report.equivalent { "PASS" } else { "FAIL" },
        report.vectors,
        report.exhaustive
    );
    assert!(report.equivalent);

    // 4. Synthesize: minimum area, then under a tight delay target.
    let synth = Synthesizer::nangate45();
    let small = synth.run(&netlist, &SynthesisOptions::default())?;
    println!(
        "min-area  : {:.0} um^2 @ {:.3} ns, {:.3} mW",
        small.area_um2, small.delay_ns, small.power_mw
    );
    let fast = synth.run(&netlist, &SynthesisOptions::with_target(0.85 * small.delay_ns))?;
    println!(
        "tightened : {:.0} um^2 @ {:.3} ns ({} upsizing moves)",
        fast.area_um2, fast.delay_ns, fast.sizing_moves
    );

    // 5. Export structural Verilog for an external flow.
    let verilog = to_verilog(&netlist);
    println!("verilog: {} lines (module {})", verilog.lines().count(), netlist.name());
    Ok(())
}
