//! Merged-MAC and PE-array study: fuses the accumulator into the
//! compressor tree (paper Section III-C) and instantiates the result
//! in a weight-stationary systolic array — the DNN-accelerator
//! scenario from the paper's introduction and Tables II/III.
//!
//! ```sh
//! cargo run --release --example mac_accelerator
//! ```

use rlmul::ct::{CompressorTree, PpgKind};
use rlmul::lec::check_datapath;
use rlmul::rtl::{pe_array, MultiplierNetlist, PeArrayConfig, PeStyle};
use rlmul::synth::{SynthesisOptions, Synthesizer};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let synth = Synthesizer::nangate45();

    // A merged MAC computes (a·b + c) mod 2^{2N} inside the
    // compressor tree — no separate accumulate adder.
    let mac = CompressorTree::dadda(8, PpgKind::MacAnd)?;
    let mac_netlist = MultiplierNetlist::elaborate(&mac)?.into_netlist();
    let report = check_datapath(&mac_netlist, 8, PpgKind::MacAnd)?;
    assert!(report.equivalent, "merged MAC must implement a*b + c");
    let mac_ppa = synth.run(&mac_netlist, &SynthesisOptions::default())?;
    println!(
        "merged 8-bit MAC: {:.0} um^2 @ {:.3} ns (exhaustively verified on {} vectors)",
        mac_ppa.area_um2, mac_ppa.delay_ns, report.vectors
    );

    // Compare against the unfused alternative: multiplier + adder in
    // a PE (the MultiplierAdder style below).
    let mul = CompressorTree::dadda(8, PpgKind::And)?;
    for (label, tree, style) in [
        ("mul+add PE array", &mul, PeStyle::MultiplierAdder),
        ("merged-MAC PE array", &mac, PeStyle::MergedMac),
    ] {
        let array = pe_array(tree, PeArrayConfig { rows: 4, cols: 4, style })?;
        let r = synth.run(&array, &SynthesisOptions::default())?;
        println!(
            "{label:<20} 4x4: {:>7.0} um^2, min clock period {:.3} ns, {} cells",
            r.area_um2, r.delay_ns, r.num_cells
        );
    }

    println!("\nThe merged MAC folds the accumulate into the tree, which is why");
    println!("the paper extends RL-MUL to MACs with no change to the agent.");
    Ok(())
}
