//! Design-space exploration without RL: enumerates the neighbourhood
//! of classic structures, sweeps each across delay targets and prints
//! the Pareto front with its hypervolume — the machinery behind the
//! paper's Figs. 9 and 13/14, usable as a library by itself.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul::baselines::gomil;
use rlmul::ct::{CompressorTree, PpgKind};
use rlmul::pareto::{hypervolume_2d, pareto_front, Point2};
use rlmul::rtl::MultiplierNetlist;
use rlmul::synth::Synthesizer;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bits = 8;
    let synth = Synthesizer::nangate45();
    let mut rng = StdRng::seed_from_u64(2024);

    // Seed structures plus random legal perturbations of each.
    let mut designs = vec![
        ("wallace".to_owned(), CompressorTree::wallace(bits, PpgKind::And)?),
        ("dadda".to_owned(), CompressorTree::dadda(bits, PpgKind::And)?),
        ("gomil".to_owned(), gomil(bits, PpgKind::And)?),
    ];
    for i in 0..12 {
        let mut t = designs[i % 3].1.clone();
        for _ in 0..rng.gen_range(2..10) {
            let actions = t.valid_actions();
            let a = actions[rng.gen_range(0..actions.len())];
            t = t.apply_action(a)?;
        }
        designs.push((format!("walk{i}"), t));
    }

    // Sweep every design over synthesis delay targets.
    let mut cloud: Vec<(String, Point2)> = Vec::new();
    for (name, tree) in &designs {
        let netlist = MultiplierNetlist::elaborate(tree)?.into_netlist();
        let anchor = synth.run(&netlist, &Default::default())?;
        cloud.push((name.clone(), Point2::new(anchor.area_um2, anchor.delay_ns)));
        for r in synth.sweep(&netlist, 0.6 * anchor.delay_ns, 1.1 * anchor.delay_ns, 5)? {
            cloud.push((name.clone(), Point2::new(r.area_um2, r.delay_ns)));
        }
    }

    let points: Vec<Point2> = cloud.iter().map(|(_, p)| *p).collect();
    let front = pareto_front(&points);
    println!("{} synthesized points, {} on the Pareto front:\n", points.len(), front.len());
    println!("{:<10} {:>12} {:>11}", "design", "area (um^2)", "delay (ns)");
    for p in &front {
        let name = cloud
            .iter()
            .find(|(_, q)| (q.x - p.x).abs() < 1e-9 && (q.y - p.y).abs() < 1e-9)
            .map(|(n, _)| n.as_str())
            .unwrap_or("?");
        println!("{name:<10} {:>12.0} {:>11.4}", p.x, p.y);
    }
    let mx = points.iter().map(|p| p.x).fold(0.0f64, f64::max);
    let my = points.iter().map(|p| p.y).fold(0.0f64, f64::max);
    let reference = Point2::new(1.05 * mx, 1.05 * my);
    println!(
        "\nhypervolume vs reference ({:.0}, {:.2}): {:.1}",
        reference.x,
        reference.y,
        hypervolume_2d(&front, reference)
    );
    Ok(())
}
