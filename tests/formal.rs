//! Formal-verification acceptance tests: SAT-based CEC against the
//! golden Dadda reference, seeded refutations confirmed by the
//! 64-lane simulator, and the structural lint gate.
//!
//! The 16×16 proofs are release-only (`cargo test --release --test
//! formal -- --include-ignored`, which is what the CI
//! formal-verification job runs); everything else also runs in the
//! tier-1 debug suite.

use rlmul::ct::{CompressorTree, PpgKind};
use rlmul::lec::{check_formal, FormalReport, LecError};
use rlmul::rtl::{lint, mutate, GateKind, MultiplierNetlist, Netlist};

fn elaborate(tree: &CompressorTree) -> Netlist {
    MultiplierNetlist::elaborate(tree).unwrap().into_netlist()
}

fn assert_proved(r: &FormalReport, what: &str) {
    assert!(r.equivalent, "{what} must prove equivalent: {:?}", r.counterexample);
    assert!(r.counterexample.is_none());
}

/// Applies `n` legal actions to a tree, returning the legalized
/// post-action structure the RL environment would synthesize.
fn post_action(tree: &CompressorTree, n: usize) -> CompressorTree {
    let mut t = tree.clone();
    for i in 0..n {
        let actions = t.valid_actions();
        let Some(&a) = actions.get(i % actions.len().max(1)) else { break };
        t = t.apply_action(a).unwrap();
    }
    assert!(t.is_legal());
    t
}

#[test]
fn formal_8x8_and_ppg_proves_dadda_wallace_and_post_action() {
    let kind = PpgKind::And;
    let dadda = CompressorTree::dadda(8, kind).unwrap();
    assert_proved(&check_formal(&elaborate(&dadda), 8, kind).unwrap(), "8x8 AND dadda");
    let wallace = CompressorTree::wallace(8, kind).unwrap();
    assert_proved(&check_formal(&elaborate(&wallace), 8, kind).unwrap(), "8x8 AND wallace");
    let acted = post_action(&dadda, 3);
    assert_proved(&check_formal(&elaborate(&acted), 8, kind).unwrap(), "8x8 AND post-action");
}

#[test]
fn formal_8x8_booth_ppg_proves_dadda_wallace_and_post_action() {
    let kind = PpgKind::Mbe;
    let dadda = CompressorTree::dadda(8, kind).unwrap();
    assert_proved(&check_formal(&elaborate(&dadda), 8, kind).unwrap(), "8x8 MBE dadda");
    let wallace = CompressorTree::wallace(8, kind).unwrap();
    assert_proved(&check_formal(&elaborate(&wallace), 8, kind).unwrap(), "8x8 MBE wallace");
    let acted = post_action(&wallace, 3);
    assert_proved(&check_formal(&elaborate(&acted), 8, kind).unwrap(), "8x8 MBE post-action");
}

#[test]
fn formal_mac_designs_prove() {
    for kind in [PpgKind::MacAnd, PpgKind::MacMbe] {
        let wallace = CompressorTree::wallace(8, kind).unwrap();
        let r = check_formal(&elaborate(&wallace), 8, kind).unwrap();
        assert_proved(&r, "8x8 MAC wallace");
    }
}

/// 16×16, AND PPG: Dadda init plus a legalized post-action tree —
/// release-only (CDCL on the 16-bit miter is too slow unoptimized).
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: 16x16 CDCL proof")]
fn formal_16x16_and_ppg_proves() {
    let kind = PpgKind::And;
    let dadda = CompressorTree::dadda(16, kind).unwrap();
    assert_proved(&check_formal(&elaborate(&dadda), 16, kind).unwrap(), "16x16 AND dadda");
    let acted = post_action(&dadda, 4);
    assert_proved(&check_formal(&elaborate(&acted), 16, kind).unwrap(), "16x16 AND post-action");
    let wallace = CompressorTree::wallace(16, kind).unwrap();
    assert_proved(&check_formal(&elaborate(&wallace), 16, kind).unwrap(), "16x16 AND wallace");
}

/// 16×16, Booth PPG: Dadda init plus a legalized post-action tree.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: 16x16 CDCL proof")]
fn formal_16x16_booth_ppg_proves() {
    let kind = PpgKind::Mbe;
    let dadda = CompressorTree::dadda(16, kind).unwrap();
    assert_proved(&check_formal(&elaborate(&dadda), 16, kind).unwrap(), "16x16 MBE dadda");
    let acted = post_action(&dadda, 4);
    assert_proved(&check_formal(&elaborate(&acted), 16, kind).unwrap(), "16x16 MBE post-action");
    let wallace = CompressorTree::wallace(16, kind).unwrap();
    assert_proved(&check_formal(&elaborate(&wallace), 16, kind).unwrap(), "16x16 MBE wallace");
}

/// Every seeded functional mutation must be refuted with a
/// counterexample the 64-lane simulator confirms.
#[test]
fn seeded_mutations_are_refuted_with_confirmed_counterexamples() {
    let kind = PpgKind::And;
    let good = elaborate(&CompressorTree::dadda(8, kind).unwrap());

    let xor = mutate::find_gate(&good, GateKind::Xor2)
        .or_else(|| mutate::find_gate(&good, GateKind::FullAdder))
        .expect("multiplier has xor/fa gates");
    let flipped = mutate::flip_gate_kind(&good, xor)
        .unwrap_or_else(|| mutate::swap_gate_inputs(&good, xor, 0, 1));

    // Cross a compressor input with a primary-input net: a PI has no
    // driving gate, so the mutation can never form a loop — it always
    // reaches the SAT checker rather than the lint gate.
    let crossed = {
        let target = mutate::find_gate(&good, GateKind::FullAdder).expect("fa present");
        let pi = good.inputs()[0].bits[0];
        assert_ne!(good.gates()[target].inputs()[0], pi);
        mutate::replace_gate_input(&good, target, 0, pi)
    };

    let dropped = mutate::drop_carry_wire(&good).expect("multiplier has carries");

    for (label, bad) in [
        ("flipped gate", &flipped),
        ("crossed compressor input", &crossed),
        ("dropped carry", &dropped),
    ] {
        let r = check_formal(bad, 8, kind).unwrap();
        if r.equivalent {
            // A mutation can coincidentally preserve the function
            // (e.g. crossing a wire with an equal net); that is a
            // test-harness artifact, not a checker failure — but the
            // canonical three mutations below must never hit it.
            panic!("{label}: mutation unexpectedly preserved function");
        }
        let cex = r.counterexample.expect("refutation carries a counterexample");
        assert!(cex.confirmed, "{label}: simulator must confirm the SAT model: {cex:?}");
        assert!(!cex.outputs.is_empty(), "{label}: {cex:?}");
    }
}

/// Booth-encoded refutation: mutate the Booth selector logic.
#[test]
fn booth_mutation_is_refuted() {
    let kind = PpgKind::Mbe;
    let good = elaborate(&CompressorTree::dadda(8, kind).unwrap());
    // The MBE selector logic is And/Xor gates; XOR → XNOR inverts a
    // partial-product bit, which must surface at the outputs.
    let xor = mutate::find_gate(&good, GateKind::Xor2).expect("booth ppg has xor selector logic");
    let bad = mutate::flip_gate_kind(&good, xor).unwrap();
    let r = check_formal(&bad, 8, kind).unwrap();
    assert!(!r.equivalent, "selector swap must change the function");
    assert!(r.counterexample.unwrap().confirmed);
}

/// The lint gate inside the CEC rejects structurally broken inputs
/// instead of encoding garbage.
#[test]
fn structurally_broken_netlists_are_rejected_before_encoding() {
    let good = elaborate(&CompressorTree::dadda(8, PpgKind::And).unwrap());
    let bad = mutate::introduce_loop(&good, 5);
    match check_formal(&bad, 8, PpgKind::And) {
        Err(LecError::LintFailed { side: "left", summary }) => {
            assert!(summary.contains("combinational-loop"), "{summary}");
        }
        other => panic!("expected LintFailed, got {other:?}"),
    }
}

/// The lint catalogue flags each of the five seeded structural
/// defects (multi-driver, floating net, dangling output,
/// combinational loop, width mismatch) under the expected rule, each
/// with strictly more findings than the clean baseline.
#[test]
fn lint_flags_all_five_seeded_structural_defects() {
    use rlmul::rtl::LintRule;
    let good = elaborate(&CompressorTree::dadda(8, PpgKind::And).unwrap());
    let fa = mutate::find_gate(&good, GateKind::FullAdder).expect("fa present");
    let cases: [(LintRule, Netlist); 5] = [
        (LintRule::MultiDriven, mutate::duplicate_gate(&good, fa)),
        (LintRule::UndrivenNet, mutate::float_gate_input(&good, fa, 1)),
        // Grounding a consumer pin leaves the carry net driving
        // nothing: one more dangling output than the baseline's
        // discarded top-column carries.
        (LintRule::DanglingOutput, mutate::drop_carry_wire(&good).expect("has carries")),
        (LintRule::CombinationalLoop, mutate::introduce_loop(&good, fa)),
        (LintRule::PortWidth, mutate::corrupt_port_net(&good, 0, 0)),
    ];
    let baseline = lint(&good);
    for (rule, bad) in &cases {
        let report = lint(bad);
        assert!(
            report.count(*rule) > baseline.count(*rule),
            "seeded {rule} defect not flagged:\n{}",
            report.render()
        );
    }
}

/// Every netlist the RL environment can elaborate lints clean (the
/// debug-build gate in `MulEnv` asserts this on every synthesis).
#[test]
fn all_elaborated_structures_lint_clean() {
    for bits in [4usize, 8] {
        for kind in [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd, PpgKind::MacMbe] {
            for dadda in [false, true] {
                let tree = if dadda {
                    CompressorTree::dadda(bits, kind).unwrap()
                } else {
                    CompressorTree::wallace(bits, kind).unwrap()
                };
                let report = lint(&elaborate(&tree));
                assert_eq!(report.errors(), 0, "{bits}b {kind} dadda={dadda}: {}", report.render());
            }
        }
    }
}

/// Release-only spot-check of the incremental pipeline's arena state:
/// walk a few random actions through `IncrementalMultiplier` (the
/// spliced arena is never compacted) and SAT-prove the live arena
/// equivalent to a from-scratch golden Dadda elaboration, straight
/// from the slot representation.
#[test]
#[cfg_attr(debug_assertions, ignore = "release-only: CDCL proof over arena walks")]
fn incremental_arena_walks_prove_equivalent() {
    use rlmul::lec::prove_arena_equiv;
    use rlmul::rtl::IncrementalMultiplier;

    let mut seed = 0x9e3779b97f4a7c15u64;
    for kind in [PpgKind::And, PpgKind::Mbe] {
        let golden = elaborate(&CompressorTree::dadda(8, kind).unwrap());
        let mut cur = CompressorTree::wallace(8, kind).unwrap();
        let mut inc = IncrementalMultiplier::new(&cur).unwrap();
        for step in 0..3 {
            let actions = cur.valid_actions();
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            cur = cur.apply_action(actions[(seed >> 33) as usize % actions.len()]).unwrap();
            inc.retarget(&cur).unwrap();
            assert!(
                prove_arena_equiv(inc.arena(), &golden).unwrap(),
                "{kind} walk step {step}: spliced arena must stay equivalent to golden Dadda"
            );
        }
    }
}
