//! Property-based tests (proptest) over the core invariants:
//! legality closure of the action/legalization system, matrix↔tensor
//! consistency, functional correctness under random action chains,
//! adder correctness, and Pareto/hypervolume laws.

use proptest::prelude::*;
use rlmul::ct::{Action, CompressorMatrix, CompressorTree, PpProfile, PpgKind, StageTensor};
use rlmul::lec::{check_datapath, check_equiv, golden, CecOptions, PortValues, Simulator};
use rlmul::pareto::{dominates, hypervolume_2d, pareto_front, Point2};
use rlmul::rtl::{
    add, from_verilog, lint, to_verilog, AdderKind, MultiplierNetlist, NetlistBuilder,
};
use rlmul::synth::{analyze, Drive, IncrementalSta, Library, MappedNetlist};

fn kind_strategy() -> impl Strategy<Value = PpgKind> {
    prop_oneof![
        Just(PpgKind::And),
        Just(PpgKind::Mbe),
        Just(PpgKind::MacAnd),
        Just(PpgKind::MacMbe),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any chain of masked actions keeps the tree legal, assignable,
    /// and consistent between matrix and tensor totals.
    #[test]
    fn action_chains_preserve_legality(
        kind in kind_strategy(),
        picks in prop::collection::vec(0usize..1000, 1..25),
    ) {
        let mut tree = CompressorTree::wallace(6, kind).expect("legal width");
        for pick in picks {
            let actions = tree.valid_actions();
            prop_assert!(!actions.is_empty());
            tree = tree.apply_action(actions[pick % actions.len()]).expect("valid");
            prop_assert!(tree.is_legal());
            let tensor = tree.assign_stages().expect("assignable");
            prop_assert_eq!(&tensor.to_matrix(), tree.matrix());
        }
    }

    /// Random masked walks never break the arithmetic: the elaborated
    /// netlist stays exhaustively equivalent to a*b (+c).
    #[test]
    fn random_walks_keep_multiplying(
        seedless_picks in prop::collection::vec(0usize..1000, 0..12),
        kind in prop_oneof![Just(PpgKind::And), Just(PpgKind::MacAnd)],
    ) {
        let mut tree = CompressorTree::dadda(4, kind).expect("legal width");
        for pick in seedless_picks {
            let actions = tree.valid_actions();
            tree = tree.apply_action(actions[pick % actions.len()]).expect("valid");
        }
        let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
        let lec = check_datapath(&netlist, 4, kind).expect("simulates");
        prop_assert!(lec.equivalent, "{:?}", lec.counterexample);
    }

    /// Legality of a matrix is exactly assignability (on matrices
    /// reachable by perturbing per-column counts).
    #[test]
    fn legality_implies_assignability(
        deltas in prop::collection::vec((-2i64..=2, -2i64..=2), 16),
    ) {
        let profile = PpProfile::new(8, PpgKind::And).expect("legal width");
        let base = CompressorTree::wallace(8, PpgKind::And).expect("legal width");
        let counts: Vec<(u32, u32)> = base
            .matrix()
            .counts()
            .iter()
            .zip(&deltas)
            .map(|(&(a, b), &(da, db))| {
                ((a as i64 + da).max(0) as u32, (b as i64 + db).max(0) as u32)
            })
            .collect();
        let matrix = CompressorMatrix::from_counts(counts);
        if matrix.is_legal(&profile) {
            prop_assert!(StageTensor::assign(&profile, &matrix).is_ok());
        }
    }

    /// The flat action index round-trips for any column count.
    #[test]
    fn action_index_round_trip(ncols in 1usize..64, idx_seed in 0usize..10_000) {
        let space = ncols * 4;
        let idx = idx_seed % space;
        let a = Action::from_flat_index(idx, ncols).expect("in range");
        prop_assert_eq!(a.flat_index(), idx);
        prop_assert!(Action::from_flat_index(space, ncols).is_err());
    }

    /// All three adder architectures agree with `u64` addition on
    /// random vectors at random widths.
    #[test]
    fn adders_agree_with_u64(
        width in 1usize..24,
        xs in prop::collection::vec(any::<u64>(), 4),
        ys in prop::collection::vec(any::<u64>(), 4),
    ) {
        let mask = if width >= 64 { u64::MAX } else { (1u64 << width) - 1 };
        for kind in [AdderKind::BrentKung, AdderKind::KoggeStone, AdderKind::RippleCarry] {
            let mut b = NetlistBuilder::new("add");
            let x = b.input("x", width);
            let y = b.input("y", width);
            let s = add(&mut b, &x, &y, kind);
            b.output("s", &s);
            let n = b.finish();
            let sim = Simulator::new(&n).expect("combinational");
            let xv: Vec<u64> = xs.iter().map(|v| v & mask).collect();
            let yv: Vec<u64> = ys.iter().map(|v| v & mask).collect();
            let out = sim
                .run(&[PortValues::pack(&xv, width), PortValues::pack(&yv, width)])
                .expect("shapes match");
            for (l, (xq, yq)) in xv.iter().zip(&yv).enumerate() {
                prop_assert_eq!(out[0].lane(l), xq.wrapping_add(*yq) & mask);
            }
        }
    }

    /// The golden model is linear in the addend and masks correctly.
    #[test]
    fn golden_model_laws(a in any::<u16>(), b in any::<u16>(), c in any::<u32>()) {
        let bits = 16;
        let m = (1u128 << 32) - 1;
        prop_assert_eq!(golden(a as u64, b as u64, 0, bits), (a as u128 * b as u128) & m);
        prop_assert_eq!(
            golden(a as u64, b as u64, c as u128, bits),
            (golden(a as u64, b as u64, 0, bits) + c as u128) & m
        );
    }

    /// Pareto front laws: members are mutually non-dominated, every
    /// input point is dominated-or-equal by some member, and the
    /// hypervolume never decreases when points are added.
    #[test]
    fn pareto_front_laws(
        pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..40),
        extra in (0.0f64..100.0, 0.0f64..100.0),
    ) {
        let points: Vec<Point2> = pts.iter().map(|&(x, y)| Point2::new(x, y)).collect();
        let front = pareto_front(&points);
        for (i, p) in front.iter().enumerate() {
            for (j, q) in front.iter().enumerate() {
                if i != j {
                    prop_assert!(!dominates(*p, *q), "{p:?} dominates {q:?}");
                }
            }
        }
        for p in &points {
            prop_assert!(
                front.iter().any(|f| !dominates(*p, *f) && (dominates(*f, *p) || (f.x == p.x && f.y == p.y))),
                "{p:?} neither on front nor dominated"
            );
        }
        let reference = Point2::new(101.0, 101.0);
        let hv = hypervolume_2d(&points, reference);
        let mut bigger = points.clone();
        bigger.push(Point2::new(extra.0, extra.1));
        prop_assert!(hypervolume_2d(&bigger, reference) >= hv - 1e-9);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// MBE multipliers stay exhaustively correct under random action
    /// chains (heavier: fewer cases).
    #[test]
    fn mbe_walks_keep_multiplying(picks in prop::collection::vec(0usize..1000, 0..8)) {
        let mut tree = CompressorTree::wallace(6, PpgKind::Mbe).expect("legal width");
        for pick in picks {
            let actions = tree.valid_actions();
            tree = tree.apply_action(actions[pick % actions.len()]).expect("valid");
        }
        let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
        let lec = check_datapath(&netlist, 6, PpgKind::Mbe).expect("simulates");
        prop_assert!(lec.equivalent, "{:?}", lec.counterexample);
    }

    /// Verilog round-trip is formally lossless: emitting any reachable
    /// multiplier netlist and re-parsing the text yields a netlist the
    /// SAT-based CEC proves equivalent to the original, and both sides
    /// lint clean (errors; discarded top-column carries may warn).
    #[test]
    fn verilog_round_trip_is_formally_equivalent(
        kind in prop_oneof![Just(PpgKind::And), Just(PpgKind::Mbe)],
        picks in prop::collection::vec(0usize..1000, 0..6),
    ) {
        let mut tree = CompressorTree::dadda(4, kind).expect("legal width");
        for pick in picks {
            let actions = tree.valid_actions();
            tree = tree.apply_action(actions[pick % actions.len()]).expect("valid");
        }
        let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
        let text = to_verilog(&netlist);
        let reparsed = from_verilog(&text).expect("emitted verilog parses");
        prop_assert_eq!(lint(&netlist).errors(), 0);
        prop_assert_eq!(lint(&reparsed).errors(), 0, "{}", lint(&reparsed).render());
        let report = check_equiv(&netlist, &reparsed, &CecOptions::default())
            .expect("ports line up after round-trip");
        prop_assert!(report.equivalent, "{:?}", report.counterexample);
    }

    /// Incremental STA after random sizing batches stays bit-identical
    /// to a full timing pass: same arrivals, worst delay, and critical
    /// path, no matter which gates were resized in which order.
    #[test]
    fn incremental_sta_matches_full_analyze(
        batches in prop::collection::vec(
            prop::collection::vec((0usize..10_000, 0usize..3), 1..6),
            1..8,
        ),
    ) {
        let tree = CompressorTree::wallace(6, PpgKind::And).expect("legal width");
        let netlist = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
        let library = Library::nangate45();
        let mut m = MappedNetlist::map(&netlist, &library);
        let num_gates = netlist.gates().len();
        let mut engine = IncrementalSta::new();
        engine.analyze_full(&m);
        for batch in batches {
            let mut resized = Vec::new();
            for (pick, drive) in batch {
                let gi = pick % num_gates;
                m.set_drive(gi, [Drive::X1, Drive::X2, Drive::X4][drive]);
                resized.push(gi);
            }
            let inc = engine.update(&m, &resized);
            let full = analyze(&m);
            prop_assert_eq!(inc.worst_delay_ns.to_bits(), full.worst_delay_ns.to_bits());
            prop_assert_eq!(inc.arrivals.len(), full.arrivals.len());
            for (a, b) in inc.arrivals.iter().zip(&full.arrivals) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
            prop_assert_eq!(&inc.critical_path, &full.critical_path);
        }
    }
}
