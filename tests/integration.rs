//! Cross-crate integration tests: the full pipeline from compressor
//! tree through RTL, equivalence checking, synthesis and the RL
//! optimization loop.

use rlmul::baselines::{dadda, gomil, wallace};
use rlmul::core::{train_dqn, CostWeights, DqnConfig, EnvConfig, MulEnv};
use rlmul::ct::PpgKind;
use rlmul::lec::check_datapath;
use rlmul::pareto::{hypervolume_2d, pareto_front, Point2};
use rlmul::rtl::{pe_array, to_verilog, MultiplierNetlist, PeArrayConfig, PeStyle};
use rlmul::synth::{SynthesisOptions, Synthesizer};

/// Elaborate → verify → synthesize, for every PPG kind and several
/// structural generators.
#[test]
fn full_pipeline_is_correct_for_every_kind() {
    let synth = Synthesizer::nangate45();
    for kind in [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd, PpgKind::MacMbe] {
        for (label, tree) in [
            ("wallace", wallace(6, kind).expect("constructs")),
            ("dadda", dadda(6, kind).expect("constructs")),
            ("gomil", gomil(6, kind).expect("constructs")),
        ] {
            let netlist = MultiplierNetlist::elaborate(&tree)
                .unwrap_or_else(|e| panic!("{label} {kind}: {e}"))
                .into_netlist();
            netlist.validate().unwrap_or_else(|e| panic!("{label} {kind}: {e}"));
            let lec = check_datapath(&netlist, 6, kind).expect("simulates");
            assert!(lec.equivalent && lec.exhaustive, "{label} {kind}: {:?}", lec.counterexample);
            let report = synth.run(&netlist, &SynthesisOptions::default()).expect("synthesizes");
            assert!(report.area_um2 > 0.0 && report.delay_ns > 0.0, "{label} {kind}");
        }
    }
}

/// Applying any chain of masked actions never breaks functional
/// correctness — the central safety property of the RL search space.
#[test]
fn optimized_structures_still_multiply() {
    let mut env = MulEnv::new(EnvConfig::new(4, PpgKind::And)).expect("env builds");
    for step in 0..15 {
        let mask = env.action_mask();
        let action = mask
            .iter()
            .enumerate()
            .filter(|(_, &ok)| ok)
            .map(|(i, _)| i)
            .nth(step % 3)
            .or_else(|| mask.iter().position(|&ok| ok))
            .expect("legal action exists");
        env.step(action).expect("steps");
        let netlist =
            MultiplierNetlist::elaborate(env.current()).expect("elaborates").into_netlist();
        let lec = check_datapath(&netlist, 4, PpgKind::And).expect("simulates");
        assert!(lec.equivalent, "step {step}: {:?}", lec.counterexample);
    }
}

/// A short DQN run must complete, improve on or match its starting
/// cost, and end in a functionally correct design.
#[test]
fn dqn_end_to_end_produces_a_verified_design() {
    let mut cfg = EnvConfig::new(4, PpgKind::And);
    cfg.weights = CostWeights::TRADE_OFF;
    let mut env = MulEnv::new(cfg).expect("env builds");
    let start = env.current_cost();
    let out = train_dqn(
        &mut env,
        &DqnConfig { steps: 10, warmup: 4, batch_size: 4, ..Default::default() },
    )
    .expect("training runs");
    assert!(out.best_cost <= start + 1e-9);
    let netlist = MultiplierNetlist::elaborate(&out.best).expect("elaborates").into_netlist();
    assert!(check_datapath(&netlist, 4, PpgKind::And).expect("simulates").equivalent);
}

/// PE arrays built from different methods' trees synthesize, and the
/// per-PE critical path tracks the embedded multiplier's depth.
#[test]
fn pe_array_reflects_inner_multiplier_quality() {
    let synth = Synthesizer::nangate45();
    let shallow = dadda(8, PpgKind::And).expect("constructs");
    let mut deep = wallace(8, PpgKind::And).expect("constructs");
    // Deepen the tree with legal actions until its stage count grows.
    let base_stages = deep.stage_count().expect("assignable");
    'outer: for _ in 0..50 {
        for a in deep.valid_actions() {
            let next = deep.apply_action(a).expect("applies");
            if next.stage_count().expect("assignable") > base_stages + 2 {
                deep = next;
                break 'outer;
            }
        }
        let actions = deep.valid_actions();
        deep = deep.apply_action(actions[0]).expect("applies");
    }
    let cfg = PeArrayConfig { rows: 2, cols: 2, style: PeStyle::MultiplierAdder };
    let nl_shallow = pe_array(&shallow, cfg).expect("builds");
    let nl_deep = pe_array(&deep, cfg).expect("builds");
    let d_shallow =
        synth.run(&nl_shallow, &SynthesisOptions::default()).expect("synthesizes").delay_ns;
    let d_deep = synth.run(&nl_deep, &SynthesisOptions::default()).expect("synthesizes").delay_ns;
    assert!(d_deep > d_shallow, "deeper tree must slow the array: {d_deep} vs {d_shallow}");
}

/// The Verilog emitter produces one assign per combinational output
/// and mentions every port.
#[test]
fn verilog_export_is_complete() {
    let tree = dadda(8, PpgKind::MacAnd).expect("constructs");
    let m = MultiplierNetlist::elaborate(&tree).expect("elaborates");
    let v = to_verilog(m.netlist());
    assert!(v.contains("module mac8x8"));
    for port in ["input [7:0] a;", "input [7:0] b;", "input [15:0] c;", "output [15:0] p;"] {
        assert!(v.contains(port), "missing: {port}");
    }
    assert_eq!(v.matches("endmodule").count(), 1);
}

/// Synthesis sweeps of two different structures produce fronts whose
/// union hypervolume is at least each individual front's.
#[test]
fn pareto_tools_compose_with_synthesis() {
    let synth = Synthesizer::nangate45();
    let mut union = Vec::new();
    let mut individual = Vec::new();
    for tree in [wallace(8, PpgKind::And).unwrap(), gomil(8, PpgKind::And).unwrap()] {
        let nl = MultiplierNetlist::elaborate(&tree).expect("elaborates").into_netlist();
        let anchor = synth.run(&nl, &SynthesisOptions::default()).expect("synthesizes");
        let pts: Vec<Point2> = synth
            .sweep(&nl, 0.7 * anchor.delay_ns, 1.1 * anchor.delay_ns, 4)
            .expect("sweeps")
            .into_iter()
            .map(|r| Point2::new(r.area_um2, r.delay_ns))
            .collect();
        union.extend_from_slice(&pts);
        individual.push(pts);
    }
    let reference = Point2::new(
        1.1 * union.iter().map(|p| p.x).fold(0.0, f64::max),
        1.1 * union.iter().map(|p| p.y).fold(0.0, f64::max),
    );
    let hv_union = hypervolume_2d(&pareto_front(&union), reference);
    for pts in individual {
        let hv = hypervolume_2d(&pareto_front(&pts), reference);
        assert!(hv_union >= hv - 1e-9);
    }
}

/// Environment delay targets scale with operand width.
#[test]
fn wider_designs_get_looser_delay_targets() {
    let env8 = MulEnv::new(EnvConfig::new(8, PpgKind::And)).expect("builds");
    let env16 = MulEnv::new(EnvConfig::new(16, PpgKind::And)).expect("builds");
    assert!(env16.delay_targets()[0] > env8.delay_targets()[0]);
}
