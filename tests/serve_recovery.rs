//! Crash-recovery integration test of the real `rlmul serve` binary:
//! a daemon is killed with SIGKILL (no drain, no handler) mid-job and
//! a fresh daemon on the same state directory must
//!
//! * keep every completed job's record byte-identical — terminal work
//!   is never re-run, so finished synthesis is never repeated;
//! * re-adopt the in-flight job (`resumes` = 1) and finish it from
//!   its last driver snapshot, spending strictly fewer synthesis
//!   calls than an uninterrupted run of the same spec — the replayed
//!   prefix comes from the snapshot's cache, not from the tools;
//! * converge to the same `best_cost` as the uninterrupted run, the
//!   repo's bit-for-bit resume guarantee, now across a process death.

use rlmul::baselines::SaConfig;
use rlmul::core::{run_sa_with, CostWeights, EnvConfig, EvalCache, TrainHooks};
use rlmul::ct::PpgKind;
use rlmul::serve::loadtest::http_call;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// The in-flight job: long enough (in wall time) that SIGKILL lands
/// mid-run, checkpointed often enough that the resume skips most of
/// the replayed prefix.
const BITS: usize = 4;
const STEPS: usize = 4000;
const SEED: u64 = 99;
const CKPT_EVERY: usize = 10;

/// Kill-on-drop guard around the daemon process, so a failing
/// assertion anywhere in the test still reaps the child.
struct Daemon(Option<Child>);

impl Daemon {
    fn kill(&mut self) {
        if let Some(mut child) = self.0.take() {
            child.kill().expect("SIGKILL the daemon");
            child.wait().expect("reap the daemon");
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if let Some(mut child) = self.0.take() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

// The child is always reaped — `Daemon` kills and waits in `Drop` —
// but the lint cannot see through the guard's ownership transfer.
#[allow(clippy::zombie_processes)]
fn spawn_server(dir: &Path) -> (Daemon, String) {
    // A stale address file from a killed predecessor must not be
    // mistaken for the new daemon's address.
    let addr_file = dir.join("serve.addr");
    let _ = std::fs::remove_file(&addr_file);
    let mut child = Command::new(env!("CARGO_BIN_EXE_rlmul"))
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "1", "--dir"])
        .arg(dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rlmul serve");
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(addr) = std::fs::read_to_string(&addr_file) {
            let addr = addr.trim().to_owned();
            if !addr.is_empty() {
                // The file is written before the listener threads
                // start; one accepted request proves readiness.
                if let Ok((200, _)) = http_call(&addr, "GET", "/healthz", "") {
                    return (Daemon(Some(child)), addr);
                }
            }
        }
        if Instant::now() >= deadline {
            let _ = child.kill();
            let _ = child.wait();
            panic!("daemon never published its address");
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn field_u64(body: &str, key: &str) -> Option<u64> {
    let tagged = format!("\"{key}\":");
    let rest = &body[body.find(&tagged)? + tagged.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn field_f64(body: &str, key: &str) -> Option<f64> {
    let tagged = format!("\"{key}\":");
    let rest = &body[body.find(&tagged)? + tagged.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn field_str<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let tagged = format!("\"{key}\":\"");
    let rest = &body[body.find(&tagged)? + tagged.len()..];
    Some(&rest[..rest.find('"')?])
}

fn status(addr: &str, id: u64) -> String {
    let (code, payload) = http_call(addr, "GET", &format!("/jobs/{id}"), "").expect("status");
    assert_eq!(code, 200, "{payload}");
    payload
}

fn wait_done(addr: &str, id: u64, secs: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let payload = status(addr, id);
        match field_str(&payload, "state") {
            Some("done") => return payload,
            Some("failed" | "cancelled") => panic!("job {id} ended badly: {payload}"),
            _ => {}
        }
        assert!(Instant::now() < deadline, "job {id} never finished: {payload}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlmul-serve-kill9-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_minus_nine_resumes_without_repeating_finished_work() {
    let dir = tmpdir();
    let (mut first, addr) = spawn_server(&dir);

    // Job A runs to completion before the crash.
    let (code, done_payload) = http_call(
        &addr,
        "POST",
        "/jobs",
        r#"{"bits":4,"method":"sa","steps":5,"seed":11,"tenant":"acme"}"#,
    )
    .expect("submit A");
    assert_eq!(code, 201, "{done_payload}");
    let id_a = field_u64(&done_payload, "id").expect("id A");
    let record_a_before = wait_done(&addr, id_a, 60);
    let (code, trace_a_before) =
        http_call(&addr, "GET", &format!("/jobs/{id_a}/trace"), "").expect("trace A");
    assert_eq!(code, 200, "{trace_a_before}");

    // Job B is big enough that SIGKILL reliably lands mid-run.
    let body = format!(
        r#"{{"bits":{BITS},"method":"sa","steps":{STEPS},"seed":{SEED},"ckpt_every":{CKPT_EVERY},"tenant":"acme"}}"#
    );
    let (code, payload) = http_call(&addr, "POST", "/jobs", &body).expect("submit B");
    assert_eq!(code, 201, "{payload}");
    let id_b = field_u64(&payload, "id").expect("id B");

    // Wait until B is demonstrably mid-run with checkpointed progress
    // (well short of finishing), then kill without ceremony.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let payload = status(&addr, id_b);
        let progress = field_u64(&payload, "progress").unwrap_or(0);
        if field_str(&payload, "state") == Some("running")
            && (2 * CKPT_EVERY as u64..STEPS as u64 / 2).contains(&progress)
        {
            break;
        }
        assert!(
            field_str(&payload, "state") != Some("done"),
            "job B finished before the kill; raise STEPS: {payload}"
        );
        assert!(Instant::now() < deadline, "job B never got going: {payload}");
        std::thread::sleep(Duration::from_millis(5));
    }
    first.kill();

    // A fresh daemon on the same directory re-adopts the state.
    let (mut second, addr) = spawn_server(&dir);

    // Completed work is never repeated: A's record (state, result,
    // every counter) is byte-identical and its resume count stays 0.
    let record_a_after = status(&addr, id_a);
    assert_eq!(record_a_after, record_a_before, "terminal job must be untouched by recovery");
    assert_eq!(field_u64(&record_a_after, "resumes"), Some(0));

    // A's durable trace survives the kill byte-identically: the new
    // daemon serves the exposition from the persisted trace snapshot,
    // not from any in-memory buffer that died with the first process.
    let (code, trace_a_after) =
        http_call(&addr, "GET", &format!("/jobs/{id_a}/trace"), "").expect("trace A after");
    assert_eq!(code, 200, "{trace_a_after}");
    assert_eq!(
        trace_a_after, trace_a_before,
        "completed-job trace must survive kill -9 byte-identically"
    );

    // B was re-adopted exactly once and runs to the full step count.
    let record_b = wait_done(&addr, id_b, 300);
    assert_eq!(field_u64(&record_b, "resumes"), Some(1), "{record_b}");
    assert_eq!(field_u64(&record_b, "steps_done"), Some(STEPS as u64), "{record_b}");

    // B's post-crash trace opens a new epoch (`tr-<id>.1`) and begins
    // with the recovery event — the interruption is first-class in
    // the timeline, not silently elided.
    let (code, trace_b) =
        http_call(&addr, "GET", &format!("/jobs/{id_b}/trace"), "").expect("trace B");
    assert_eq!(code, 200, "{trace_b}");
    assert_eq!(field_str(&trace_b, "trace_id"), Some(format!("tr-{id_b:08}.1").as_str()));
    assert!(trace_b.contains(r#""kind":"recovered""#), "{trace_b}");
    assert!(trace_b.contains(r#""kind":"done""#), "{trace_b}");

    // The uninterrupted baseline: the same spec, fresh cache, no
    // server. The resumed run must (a) agree on the result bit for
    // bit and (b) have spent strictly fewer synthesis calls after the
    // crash — the replayed prefix is served from the snapshot cache.
    let mut env_cfg = EnvConfig::new(BITS, PpgKind::And);
    env_cfg.weights = CostWeights::TRADE_OFF;
    let sa_cfg = SaConfig { steps: STEPS, ..Default::default() };
    let baseline =
        run_sa_with(&env_cfg, &sa_cfg, SEED, EvalCache::new(), &TrainHooks::default(), None)
            .expect("baseline run");
    let resumed_cost = field_f64(&record_b, "best_cost").expect("best_cost");
    assert_eq!(
        resumed_cost, baseline.best_cost,
        "resume across kill -9 must replay to the uninterrupted result"
    );
    let resumed_synth = field_u64(&record_b, "synthesis_calls").expect("synthesis_calls");
    assert!(
        resumed_synth < baseline.pipeline.synthesis_calls as u64,
        "post-crash run must not repeat the replayed prefix's synthesis \
         ({resumed_synth} vs uninterrupted {})",
        baseline.pipeline.synthesis_calls
    );

    second.kill();
    let _ = std::fs::remove_dir_all(&dir);
}
