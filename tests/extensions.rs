//! Integration tests for the beyond-the-paper extensions exposed
//! through the `rlmul` façade: 4:2 trees, pipelining, sequential
//! simulation, Verilog import, 3-D Pareto math, checkpointing, and
//! the structure renderer.

use rlmul::ct::{render_structure, CompressorTree, PpProfile, PpgKind, QuadSchedule};
use rlmul::lec::{check_datapath, PortValues, SeqSimulator};
use rlmul::nn::{build_trunk, load_params, save_params, Layer, Tensor, TrunkConfig};
use rlmul::pareto::{hypervolume_3d, pareto_front_3d, Point3};
use rlmul::rtl::{
    elaborate_pipelined, from_verilog, quad_multiplier, to_verilog, AdderKind, PipelineCuts,
};
use rlmul::synth::{SynthesisOptions, Synthesizer};

#[test]
fn quad_tree_full_pipeline() {
    // Schedule → netlist → exhaustive LEC → synthesis.
    let profile = PpProfile::new(8, PpgKind::And).expect("legal width");
    let schedule = QuadSchedule::build(&profile).expect("converges");
    assert!(schedule.stage_count() <= 4, "8-bit 4:2 tree should be shallow");
    let n = quad_multiplier(8, PpgKind::And, AdderKind::default()).expect("builds");
    let lec = check_datapath(&n, 8, PpgKind::And).expect("simulates");
    assert!(lec.equivalent && lec.exhaustive);
    let r = Synthesizer::nangate45().run(&n, &SynthesisOptions::default()).expect("synthesizes");
    assert!(r.area_um2 > 0.0);
}

#[test]
fn pipelined_design_synthesizes_with_shorter_clock() {
    let tree = CompressorTree::dadda(8, PpgKind::And).expect("legal");
    let comb = rlmul::rtl::MultiplierNetlist::elaborate(&tree).expect("builds").into_netlist();
    let piped = elaborate_pipelined(
        &tree,
        AdderKind::default(),
        PipelineCuts { after_ppg: false, before_cpa: true },
    )
    .expect("builds");
    let synth = Synthesizer::nangate45();
    let d_comb = synth.run(&comb, &SynthesisOptions::default()).expect("synthesizes").delay_ns;
    let d_piped = synth.run(&piped, &SynthesisOptions::default()).expect("synthesizes").delay_ns;
    // Cutting before the CPA removes the adder from the longest stage.
    assert!(d_piped < d_comb, "pipelined {d_piped} vs comb {d_comb}");
}

#[test]
fn sequential_verilog_round_trip_is_cycle_accurate() {
    // Pipelined multiplier → Verilog → reader → cycle-by-cycle
    // comparison of the two sequential netlists.
    let bits = 4;
    let tree = CompressorTree::dadda(bits, PpgKind::And).expect("legal");
    let cuts = PipelineCuts { after_ppg: true, before_cpa: true };
    let original = elaborate_pipelined(&tree, AdderKind::default(), cuts).expect("builds");
    let reimported = from_verilog(&to_verilog(&original)).expect("parses");
    let mut sim_a = SeqSimulator::new(&original);
    let mut sim_b = SeqSimulator::new(&reimported);
    for t in 0..20u64 {
        let a = PortValues::pack(&[(t * 7 + 1) % 16], bits);
        let b = PortValues::pack(&[(t * 11 + 2) % 16], bits);
        let oa = sim_a.step(&[a.clone(), b.clone()]).expect("steps");
        let ob = sim_b.step(&[a, b]).expect("steps");
        assert_eq!(oa[0].lane(0), ob[0].lane(0), "cycle {t}");
    }
}

#[test]
fn three_objective_sweep_analysis() {
    // Sweep one design, lift (area, delay, power) into 3-D objective
    // space; the 3-D front must be at least as large as the 2-D one
    // and the hypervolume positive.
    let tree = CompressorTree::dadda(8, PpgKind::And).expect("legal");
    let nl = rlmul::rtl::MultiplierNetlist::elaborate(&tree).expect("builds").into_netlist();
    let synth = Synthesizer::nangate45();
    let anchor = synth.run(&nl, &SynthesisOptions::default()).expect("synthesizes");
    let pts: Vec<Point3> = synth
        .sweep(&nl, 0.6 * anchor.delay_ns, 1.1 * anchor.delay_ns, 6)
        .expect("sweeps")
        .into_iter()
        .map(|r| Point3::new(r.area_um2, r.delay_ns, r.power_mw))
        .collect();
    let front = pareto_front_3d(&pts);
    assert!(!front.is_empty());
    let reference = Point3::new(
        1.1 * pts.iter().map(|p| p.x).fold(0.0, f64::max),
        1.1 * pts.iter().map(|p| p.y).fold(0.0, f64::max),
        1.1 * pts.iter().map(|p| p.z).fold(0.0, f64::max),
    );
    assert!(hypervolume_3d(&front, reference) > 0.0);
}

#[test]
fn agent_checkpoint_round_trip_via_facade() {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(5);
    let cfg = TrunkConfig { in_channels: 2, channels: vec![4, 8], blocks_per_stage: 1 };
    let mut trained = build_trunk(&cfg, &mut rng);
    let mut fresh = build_trunk(&cfg, &mut rng);
    let x = Tensor::zeros(&[1, 2, 16, 16]);
    let mut buf = Vec::new();
    save_params(&mut trained, &mut buf).expect("saves");
    load_params(&mut fresh, buf.as_slice()).expect("loads");
    assert_eq!(trained.forward(&x, false).data(), fresh.forward(&x, false).data());
}

#[test]
fn renderer_shows_paper_fig4_sections() {
    let tree = CompressorTree::wallace(4, PpgKind::And).expect("legal");
    let art = render_structure(&tree).expect("renders");
    for needle in ["matrix M", "tensor T", "pp", "3:2", "2:2", "res"] {
        assert!(art.contains(needle), "missing `{needle}` in:\n{art}");
    }
}
