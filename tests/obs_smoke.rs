//! End-to-end observability smoke test: run a small instrumented
//! workload covering every subsystem, serve the global registry over a
//! real TCP socket, and check the Prometheus exposition with a raw
//! `GET /metrics` — no HTTP client library involved, so the wire
//! format itself is under test.

use rlmul::baselines::SaConfig;
use rlmul::core::{
    run_sa_with, train_dqn_with, DqnConfig, EnvConfig, EvalCache, MulEnv, TrainHooks,
};
use rlmul::ct::{CompressorTree, PpgKind};
use rlmul::lec::check_formal;
use rlmul::rtl::MultiplierNetlist;
use std::io::{Read, Write};
use std::net::TcpStream;

#[test]
fn metrics_endpoint_serves_every_subsystem() {
    let registry = rlmul::obs::global();
    registry.enable();
    let env_cfg = EnvConfig::new(8, PpgKind::And);
    let hooks = TrainHooks::default();

    // SA touches env, cache, synth/STA, lint and agent counters; DQN
    // additionally drives the nn kernels; formal CEC drives the SAT
    // solver.
    let sa_cfg = SaConfig { steps: 4, ..Default::default() };
    run_sa_with(&env_cfg, &sa_cfg, 1, EvalCache::new(), &hooks, None).unwrap();
    let dqn_cfg = DqnConfig { steps: 6, warmup: 4, seed: 1, ..Default::default() };
    let mut env = MulEnv::new(env_cfg).unwrap();
    train_dqn_with(&mut env, &dqn_cfg, &hooks, None).unwrap();
    let dadda = CompressorTree::dadda(8, PpgKind::And).unwrap();
    let netlist = MultiplierNetlist::elaborate(&dadda).unwrap().into_netlist();
    let report = check_formal(&netlist, 8, PpgKind::And).unwrap();
    assert!(report.equivalent, "golden dadda must prove against itself");

    let server = rlmul::obs::serve_metrics(registry, "127.0.0.1:0").unwrap();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    server.shutdown();

    assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "bad status line:\n{response}");
    assert!(
        response.contains("Content-Type: text/plain; version=0.0.4"),
        "missing exposition content type:\n{response}"
    );
    let body = response.split("\r\n\r\n").nth(1).expect("response has a body");

    let families: Vec<&str> = body
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    for expected in [
        // environment
        "rlmul_env_steps_total",
        "rlmul_env_step_reward_magnitude",
        "rlmul_env_phase_seconds",
        // eval cache
        "rlmul_cache_lookups_total",
        "rlmul_cache_entries",
        // synthesis + STA
        "rlmul_synth_runs_total",
        "rlmul_synth_run_seconds",
        "rlmul_sta_gate_visits_total",
        "rlmul_sta_passes_total",
        // SAT solver
        "rlmul_sat_solves_total",
        "rlmul_sat_work_total",
        "rlmul_sat_learnt_clause_size",
        "rlmul_sat_learnt_clauses",
        // nn kernels
        "rlmul_nn_layer_calls_total",
        "rlmul_nn_flops_total",
        "rlmul_nn_layer_seconds",
        // agents + lint
        "rlmul_agent_steps_total",
        "rlmul_lint_runs_total",
    ] {
        assert!(families.contains(&expected), "family {expected} missing; got {families:#?}");
    }
    assert!(families.len() >= 10, "expected >= 10 families, got {}", families.len());

    // The same run must also yield a non-trivial self-profile.
    let collapsed = rlmul::obs::collapsed_stacks(registry);
    assert!(collapsed.lines().any(|l| l.starts_with("train.sa;sa.step")), "spans:\n{collapsed}");
    assert!(collapsed.lines().any(|l| l.starts_with("train.dqn;dqn.step")), "spans:\n{collapsed}");
    for line in collapsed.lines() {
        let (path, value) = line.rsplit_once(' ').expect("`path value` shape");
        assert!(!path.is_empty() && value.parse::<u64>().is_ok(), "bad line {line:?}");
    }
}
