//! `rlmul` — command-line front end for the RL-MUL workspace.
//!
//! ```sh
//! rlmul info     --bits 8  --kind and
//! rlmul train    --bits 8  --kind and --method a2c --steps 80 --pref area \
//!                --ckpt-dir runs/a2c8 --ckpt-every 10 --telemetry runs/a2c8.jsonl
//! rlmul train    --method a2c --ckpt-dir runs/a2c8 --resume      # continue
//! rlmul report   runs/a2c8.jsonl
//! rlmul export   --bits 16 --kind mbe --structure dadda --out mul.v
//! rlmul verify   --bits 8  --kind mac-and --structure gomil
//! rlmul synth    --bits 8  --kind and --structure wallace --target 1.0
//! ```

use rlmul::baselines::{gomil, SaConfig};
use rlmul::ckpt::{read_snapshot, SnapshotStore};
use rlmul::core::{
    resume_a2c, resume_dqn, resume_sa, run_sa_with, train_a2c_with, train_dqn_with, A2cConfig,
    CostWeights, DqnConfig, EnvConfig, EvalCache, MulEnv, OptimizationOutcome, TrainHooks,
};
use rlmul::ct::{CompressorTree, PpgKind};
use rlmul::lec::{check_datapath, check_formal};
use rlmul::rtl::{
    from_verilog, quad_multiplier, to_verilog, AdderKind, MultiplierNetlist, Netlist,
};
use rlmul::synth::{SynthesisOptions, Synthesizer};
use rlmul::telemetry::{Event, Summary, TelemetryWriter};
use std::collections::HashMap;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let tokens: Vec<String> = argv.collect();
    let opts = parse_opts(tokens.clone());
    let lockdep = matches!(opts.get("lockdep").map(String::as_str), Some("on" | "true" | "1"));
    if lockdep {
        rlmul::check::lockdep::enable();
    }
    let result = match command.as_str() {
        "info" => cmd_info(&opts),
        // `optimize` predates checkpointing and remains an alias.
        "train" | "optimize" => cmd_train(&opts),
        "report" => cmd_report(&tokens, &opts),
        "export" => cmd_export(&opts),
        "verify" => cmd_verify(&opts),
        "lint" => cmd_lint(&opts),
        "check-src" => cmd_check_src(&opts),
        "synth" => cmd_synth(&opts),
        "serve" => cmd_serve(&opts),
        "loadtest" => cmd_loadtest(&opts),
        "trace" => cmd_trace(&tokens, &opts),
        "serve-metrics" => cmd_serve_metrics(&tokens, &opts),
        "profile" => cmd_profile(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    };
    let mut cycles = 0;
    if lockdep {
        rlmul::check::lockdep::disable();
        let reports = rlmul::check::lockdep::take_reports();
        cycles = reports.len();
        for r in &reports {
            eprintln!("lockdep: {}", r.message);
        }
    }
    match result {
        Ok(()) if cycles > 0 => {
            eprintln!("error: {cycles} lock-order cycle(s) detected");
            ExitCode::FAILURE
        }
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rlmul — multiplier design optimization with deep reinforcement learning

USAGE: rlmul <command> [--key value ...]

COMMANDS
  info      show structure statistics (wallace/dadda/gomil/quad)
  train     search for a better compressor tree (RL or SA), with
            optional checkpoint/resume and JSONL telemetry
            (`optimize` is an alias)
  report    summarize a JSONL telemetry file
  export    emit structural Verilog for a named structure
  verify    equivalence-check a structure against the golden model
  lint      run the structural netlist linter
  check-src run the repo's concurrency/determinism source lint
            (wall-clock, hash-iter, panic-path, crate-attrs)
  synth     synthesize a structure and report PPA
  serve     run the multi-tenant optimization job server (HTTP API;
            see DESIGN.md §16); Ctrl-C drains and persists all jobs
  loadtest  hammer a running job server with synthetic clients and
            report throughput plus p50/p95/p99 latency
  trace     fetch one job's event timeline from a running job server
            and render it as a table plus flamegraph-ready stacks
  serve-metrics  replay a JSONL log onto a Prometheus /metrics endpoint
  profile   run a short instrumented search and print its span tree
            plus flamegraph-ready collapsed stacks

COMMON OPTIONS
  --bits N          operand width (default 8)
  --kind K          and | mbe | mac-and | mac-mbe (default and)
  --structure S     wallace | dadda | gomil | quad (default wallace)

VERIFY OPTIONS
  --formal-cec      prove equivalence with the SAT-based formal engine
                    (vs the golden Dadda reference) instead of
                    simulation sweeps

LINT OPTIONS
  --in PATH         lint a structural Verilog file instead of a
                    generated structure

CHECK-SRC OPTIONS
  --root PATH       workspace root to scan (default: nearest ancestor
                    of the current directory with a [workspace] manifest)

TRAIN/PROFILE DEBUG OPTIONS
  --lockdep on      enable the runtime lock-order detector for this
                    invocation; detected cycles are printed on exit

TRAIN OPTIONS
  --method M        dqn | a2c | sa (default a2c)
  --steps N         environment steps (default 80)
  --pref P          area | timing | tradeoff (default tradeoff)
  --seed N          RNG seed (default 1)
  --verilog PATH    write the best design as Verilog
  --ckpt-dir DIR    write rolling latest/best snapshots into DIR;
                    Ctrl-C stops cleanly after the current step and
                    rolls a final snapshot
  --ckpt-every N    also roll `latest.ckpt` every N completed steps
                    (default 25; 0 = only on shutdown/interrupt)
  --keep-history    pin each periodic snapshot as `step-<n>.ckpt`
  --resume [PATH]   continue from PATH, or from `latest.ckpt` in
                    --ckpt-dir when no PATH is given; the resumed run
                    replays the uninterrupted trajectory bit-for-bit
  --telemetry PATH  stream per-episode/per-phase JSONL events to PATH
                    (summarize later with `rlmul report PATH`)
  --metrics-addr A  serve live Prometheus metrics on A while training
                    (e.g. 127.0.0.1:9090; scrape GET /metrics)
  --surrogate on|off
                    pre-screen candidate actions with the online
                    learned evaluator so only predicted-promising
                    states reach real synthesis (default off; off is
                    bit-identical to a build without the surrogate)
  --surrogate-topk N
                    with the surrogate on, synthesize the chosen
                    action only when it ranks in the predicted best N
                    successors (default 3)
  --surrogate-refresh N
                    force a real synthesis after N consecutive
                    surrogate-served evaluations (default 8)

REPORT USAGE
  rlmul report RUN.jsonl [--phase]
  --phase           print the per-span time-breakdown table instead of
                    the event summary

SERVE OPTIONS
  --addr A          listen address (default 127.0.0.1:7171; port 0
                    picks a free port, printed on startup)
  --dir DIR         durable state directory: job records and per-job
                    driver snapshots (default serve-state); restart
                    with the same DIR to re-adopt in-flight jobs
  --workers N       optimization worker threads (default 2)
  --http-workers N  HTTP serving threads (default 2)

LOADTEST OPTIONS
  --addr A          server to target (default 127.0.0.1:7171)
  --clients N       concurrent synthetic clients (default 4)
  --jobs N          jobs submitted per client (default 4)
  --bits N          operand width per job (default 4)
  --steps N         SA steps per job (default 4)
  --cancel-every N  cancel every Nth job per client (default 3;
                    0 = never cancel)
  --out PATH        also write the JSON report to PATH

TRACE USAGE
  rlmul trace JOB_ID [--addr 127.0.0.1:7171] [--out PATH]
                    fetch GET /jobs/JOB_ID/trace and print the event
                    timeline (seq, relative time, duration, kind,
                    detail) plus a per-kind span summary; --out writes
                    the collapsed stacks (`trace;kind <µs>` lines,
                    ready for inferno-flamegraph) to PATH

SERVE-METRICS USAGE
  rlmul serve-metrics RUN.jsonl [--metrics-addr 127.0.0.1:9090]
                    replay a finished run's JSONL log as a static
                    /metrics endpoint; Ctrl-C stops the server

PROFILE OPTIONS
  accepts the train shape options (--bits/--kind/--method/--steps/
  --pref/--seed; default 12 steps) plus:
  --out PATH        write collapsed stacks (`a;b;c <µs>` lines, ready
                    for inferno-flamegraph) to PATH instead of stdout

SYNTH OPTIONS
  --target NS       target delay in ns (default: minimum area)

EXPORT OPTIONS
  --out PATH        output file (default: stdout)";

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn parse_opts(tokens: Vec<String>) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(key) = tokens[i].strip_prefix("--") {
            // A following token that is itself a `--key` leaves this
            // one as a boolean flag (e.g. `--formal-cec`).
            if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                map.insert(key.to_owned(), tokens[i + 1].clone());
                i += 2;
                continue;
            }
            map.insert(key.to_owned(), String::new());
        }
        i += 1;
    }
    map
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn parse_kind(opts: &HashMap<String, String>) -> Result<PpgKind, String> {
    match opts.get("kind").map(String::as_str).unwrap_or("and") {
        "and" => Ok(PpgKind::And),
        "mbe" => Ok(PpgKind::Mbe),
        "mac-and" => Ok(PpgKind::MacAnd),
        "mac-mbe" => Ok(PpgKind::MacMbe),
        other => Err(format!("unknown kind `{other}` (and|mbe|mac-and|mac-mbe)")),
    }
}

fn build_structure(
    opts: &HashMap<String, String>,
    bits: usize,
    kind: PpgKind,
) -> Result<Netlist, Box<dyn std::error::Error>> {
    let which = opts.get("structure").map(String::as_str).unwrap_or("wallace");
    let tree = match which {
        "wallace" => CompressorTree::wallace(bits, kind)?,
        "dadda" => CompressorTree::dadda(bits, kind)?,
        "gomil" => gomil(bits, kind)?,
        "quad" => return Ok(quad_multiplier(bits, kind, AdderKind::default())?),
        other => return Err(format!("unknown structure `{other}`").into()),
    };
    Ok(MultiplierNetlist::elaborate(&tree)?.into_netlist())
}

fn cmd_info(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    println!("{bits}-bit {kind} designs:");
    for (name, tree) in [
        ("wallace", CompressorTree::wallace(bits, kind)?),
        ("dadda", CompressorTree::dadda(bits, kind)?),
        ("gomil", gomil(bits, kind)?),
    ] {
        let nl = MultiplierNetlist::elaborate(&tree)?.into_netlist();
        println!(
            "  {name:<8} {:>3} FA  {:>3} HA  {:>2} stages  {:>5} gates",
            tree.matrix().total32(),
            tree.matrix().total22(),
            tree.stage_count()?,
            nl.gates().len()
        );
    }
    Ok(())
}

/// Installs a SIGINT handler (once) that raises a shared stop flag,
/// so `rlmul train` finishes its current step, rolls a final snapshot
/// and exits cleanly instead of dying mid-write. The handler only
/// performs an atomic store — async-signal-safe by construction. A
/// second Ctrl-C falls back to the default disposition and kills the
/// process immediately.
fn install_sigint() -> Arc<AtomicBool> {
    static FLAG: OnceLock<Arc<AtomicBool>> = OnceLock::new();
    let flag = FLAG.get_or_init(|| Arc::new(AtomicBool::new(false))).clone();
    #[cfg(unix)]
    {
        extern "C" fn on_sigint(_sig: i32) {
            if let Some(flag) = FLAG.get() {
                // First Ctrl-C: request a cooperative stop.
                if !flag.swap(true, Ordering::Relaxed) {
                    return;
                }
            }
            // Second Ctrl-C (or a miswired handler): die immediately.
            std::process::exit(130);
        }
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        const SIGINT: i32 = 2;
        unsafe {
            signal(SIGINT, on_sigint);
        }
    }
    flag
}

fn cmd_train(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let steps: usize = get(opts, "steps", 80);
    let seed: u64 = get(opts, "seed", 1);
    let mut env_cfg = EnvConfig::new(bits, kind);
    env_cfg.weights = match opts.get("pref").map(String::as_str).unwrap_or("tradeoff") {
        "area" => CostWeights::AREA,
        "timing" => CostWeights::TIMING,
        "tradeoff" => CostWeights::TRADE_OFF,
        other => return Err(format!("unknown pref `{other}`").into()),
    };
    match opts.get("surrogate").map(String::as_str) {
        None | Some("off") => {}
        Some("on") => env_cfg.surrogate.enabled = true,
        Some(other) => return Err(format!("unknown --surrogate `{other}` (on|off)").into()),
    }
    env_cfg.surrogate.topk = get(opts, "surrogate-topk", env_cfg.surrogate.topk);
    env_cfg.surrogate.refresh_every =
        get(opts, "surrogate-refresh", env_cfg.surrogate.refresh_every);
    let method = opts.get("method").map(String::as_str).unwrap_or("a2c");
    if !matches!(method, "dqn" | "a2c" | "sa") {
        return Err(format!("unknown method `{method}` (dqn|a2c|sa)").into());
    }

    let mut hooks = TrainHooks::default();
    let writer = match opts.get("telemetry") {
        Some(path) if !path.is_empty() => {
            let (writer, sink) = TelemetryWriter::create(path)?;
            hooks.telemetry = sink;
            Some((writer, path.clone()))
        }
        _ => None,
    };
    let store =
        opts.get("ckpt-dir").filter(|p| !p.is_empty()).map(|dir| SnapshotStore::new(dir, method));
    hooks.store = store.clone();
    hooks.checkpoint_every = get(opts, "ckpt-every", 25);
    hooks.keep_history = opts.contains_key("keep-history");
    let stop = install_sigint();
    hooks.stop = Some(stop.clone());

    // Held for the whole run; dropping the handle at the end of this
    // function stops the accept loop.
    let _metrics = match opts.get("metrics-addr") {
        Some(addr) if !addr.is_empty() => {
            let registry = rlmul::obs::global();
            registry.enable();
            let server = rlmul::obs::serve_metrics(registry, addr)?;
            eprintln!("serving metrics at http://{}/metrics", server.local_addr());
            Some(server)
        }
        _ => None,
    };

    // `--resume` with a value reads that snapshot file; without one it
    // falls back to `latest.ckpt` in the checkpoint directory.
    let resume_from = match opts.get("resume") {
        Some(path) if !path.is_empty() => Some(path.clone()),
        Some(_) => Some(
            store
                .as_ref()
                .ok_or("`--resume` without a path needs `--ckpt-dir`")?
                .latest_path()
                .display()
                .to_string(),
        ),
        None => None,
    };
    match &resume_from {
        Some(path) => eprintln!("resuming {bits}-bit {kind} {method} from {path}…"),
        None => eprintln!("training {bits}-bit {kind} with {method} ({steps} env steps)…"),
    }

    let outcome: OptimizationOutcome = match method {
        "sa" => {
            let sa_cfg = SaConfig { steps, ..Default::default() };
            match &resume_from {
                Some(path) => resume_sa(&env_cfg, &sa_cfg, read_snapshot(path, "sa")?, &hooks)?,
                None => run_sa_with(&env_cfg, &sa_cfg, seed, EvalCache::new(), &hooks, None)?,
            }
        }
        "dqn" => {
            let cfg = DqnConfig { steps, warmup: (steps / 5).max(4), seed, ..Default::default() };
            match &resume_from {
                Some(path) => {
                    let snap = read_snapshot(path, "dqn")?;
                    resume_dqn(&env_cfg, &cfg, snap, &hooks)?
                }
                None => {
                    let mut env = MulEnv::new(env_cfg.clone())?;
                    train_dqn_with(&mut env, &cfg, &hooks, None)?
                }
            }
        }
        "a2c" => {
            let cfg =
                A2cConfig { steps: (steps / 4).max(2), n_envs: 4, seed, ..Default::default() };
            match &resume_from {
                Some(path) => {
                    let snap = read_snapshot(path, "a2c")?;
                    resume_a2c(&env_cfg, &cfg, snap, &hooks)?
                }
                None => train_a2c_with(&env_cfg, &cfg, EvalCache::new(), &hooks, None)?,
            }
        }
        _ => unreachable!("method validated above"),
    };

    if stop.load(Ordering::Relaxed) {
        match &store {
            Some(s) => eprintln!(
                "interrupted — final snapshot rolled to {}; continue with `--resume`",
                s.latest_path().display()
            ),
            None => eprintln!("interrupted (no --ckpt-dir, nothing saved)"),
        }
    }
    if let Some((writer, path)) = writer {
        hooks.telemetry.emit(Event::new("run_end").with("dropped", hooks.telemetry.dropped()));
        drop(hooks);
        writer.close()?;
        eprintln!("telemetry written to {path}");
    }

    let start = outcome.trajectory.first().copied().unwrap_or(f64::NAN);
    println!(
        "cost {start:.3} → {:.3} over {} distinct states ({} synthesis runs)",
        outcome.best_cost, outcome.states_visited, outcome.synth_runs
    );
    println!("pipeline: {}", outcome.pipeline.render());
    let netlist = MultiplierNetlist::elaborate(&outcome.best)?.into_netlist();
    let report = Synthesizer::nangate45().run(&netlist, &SynthesisOptions::default())?;
    println!(
        "best design: {:.0} um^2 @ {:.4} ns, {:.3} mW ({} FA, {} HA, {} stages)",
        report.area_um2,
        report.delay_ns,
        report.power_mw,
        outcome.best.matrix().total32(),
        outcome.best.matrix().total22(),
        outcome.best.stage_count()?
    );
    if let Some(path) = opts.get("verilog") {
        std::fs::write(path, to_verilog(&netlist))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_report(tokens: &[String], opts: &HashMap<String, String>) -> CliResult {
    let path = tokens
        .iter()
        .find(|t| !t.starts_with("--"))
        .ok_or("usage: rlmul report RUN.jsonl [--phase]")?;
    let text = std::fs::read_to_string(path)?;
    let summary = Summary::from_jsonl(&text);
    if opts.contains_key("phase") {
        print!("{}", summary.render_phase_breakdown());
    } else {
        print!("{}", summary.render());
    }
    Ok(())
}

/// Runs the multi-tenant optimization job server until Ctrl-C, then
/// drains: the queue closes, running jobs stop at their next step and
/// stay `running` on disk, and a restart with the same `--dir`
/// re-adopts them (DESIGN.md §16 documents the protocol).
fn cmd_serve(opts: &HashMap<String, String>) -> CliResult {
    let cfg = rlmul::serve::ServeConfig {
        addr: opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7171".into()),
        dir: opts.get("dir").cloned().unwrap_or_else(|| "serve-state".into()).into(),
        workers: get(opts, "workers", 2),
        http_workers: get(opts, "http-workers", 2),
    };
    let dir = cfg.dir.clone();
    let server = rlmul::serve::Server::start(cfg)?;
    println!(
        "rlmul serve: listening on http://{}/ (state in {})",
        server.local_addr(),
        dir.display()
    );
    println!("rlmul serve: Ctrl-C drains; restart with the same --dir to resume");
    let stop = install_sigint();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("rlmul serve: draining ...");
    server.shutdown();
    eprintln!("rlmul serve: drained; job state persisted in {}", dir.display());
    Ok(())
}

/// Hammers a running job server with synthetic clients and prints the
/// throughput / latency report (the same JSON document `bench_serve`
/// writes to results/BENCH_serve.json).
fn cmd_loadtest(opts: &HashMap<String, String>) -> CliResult {
    let cfg = rlmul::serve::LoadtestConfig {
        addr: opts.get("addr").cloned().unwrap_or_else(|| "127.0.0.1:7171".into()),
        clients: get(opts, "clients", 4),
        jobs_per_client: get(opts, "jobs", 4),
        bits: get(opts, "bits", 4),
        steps: get(opts, "steps", 4),
        cancel_every: get(opts, "cancel-every", 3),
        ..Default::default()
    };
    let report = rlmul::serve::run_loadtest(&cfg)?;
    let rendered = report.render_json(&cfg);
    if let Some(out) = opts.get("out").filter(|o| !o.is_empty()) {
        if let Some(parent) = std::path::Path::new(out).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(out, &rendered)?;
        eprintln!("loadtest report written to {out}");
    }
    println!("{rendered}");
    if report.errors > 0 {
        return Err(format!("loadtest finished with {} client error(s)", report.errors).into());
    }
    Ok(())
}

/// Fetches one job's trace from a running job server and reconstructs
/// where its time went: first the raw event timeline (seq, time since
/// the first event, time until the next one, kind, detail), then the
/// per-kind span summary and flamegraph-ready collapsed stacks
/// rendered through the same `obs::flame` machinery `rlmul profile`
/// uses. Each event's duration is the gap to the next event — the
/// phase the event opened.
fn cmd_trace(tokens: &[String], opts: &HashMap<String, String>) -> CliResult {
    use rlmul::obs::SpanStat;
    use rlmul::serve::json::{parse_object, parse_object_array, JsonValue};

    let id: u64 = tokens
        .iter()
        .find(|t| !t.starts_with("--"))
        .and_then(|t| t.parse().ok())
        .ok_or("usage: rlmul trace JOB_ID [--addr ADDR] [--out PATH]")?;
    let default_addr = "127.0.0.1:7171".to_owned();
    let addr = opts.get("addr").filter(|a| !a.is_empty()).unwrap_or(&default_addr);
    let (code, body) =
        rlmul::serve::loadtest::http_call(addr, "GET", &format!("/jobs/{id}/trace"), "")?;
    if code != 200 {
        return Err(format!("GET /jobs/{id}/trace answered {code}: {}", body.trim()).into());
    }
    let record = parse_object(body.as_bytes()).map_err(|e| format!("bad trace body: {e}"))?;
    let trace_id = record.get_str("trace_id").unwrap_or("?").to_owned();
    let dropped = record.get_u64("dropped").unwrap_or(0);
    let events = match record.get("events") {
        Some(JsonValue::Raw(raw)) => {
            parse_object_array(raw).map_err(|e| format!("bad events array: {e}"))?
        }
        _ => Vec::new(),
    };

    println!("trace {trace_id} — job {id}, {} event(s), {dropped} dropped", events.len());
    if events.is_empty() {
        return Ok(());
    }
    let micros_of = |o: &rlmul::serve::json::JsonObject| o.get_u64("micros").unwrap_or(0);
    let t0 = micros_of(&events[0]);
    println!("{:>5} {:>10} {:>10}  {:<20} detail", "seq", "t+ms", "dur_ms", "kind");
    for (i, e) in events.iter().enumerate() {
        let micros = micros_of(e);
        let dur = events.get(i + 1).map_or(0, |n| micros_of(n).saturating_sub(micros));
        println!(
            "{:>5} {:>10.3} {:>10.3}  {:<20} {}",
            e.get_u64("seq").unwrap_or(i as u64),
            micros.saturating_sub(t0) as f64 / 1e3,
            dur as f64 / 1e3,
            e.get_str("kind").unwrap_or("?"),
            e.get_str("detail").unwrap_or(""),
        );
    }

    // Aggregate per kind under a root span named after the trace, so
    // the collapsed lines stack into one flame per job.
    let total = micros_of(&events[events.len() - 1]).saturating_sub(t0);
    let mut by_kind: Vec<SpanStat> = Vec::new();
    for (i, e) in events.iter().enumerate() {
        let kind = e.get_str("kind").unwrap_or("?");
        let dur_ns =
            events.get(i + 1).map_or(0, |n| micros_of(n).saturating_sub(micros_of(e))) * 1_000;
        let path = format!("{trace_id};{kind}");
        match by_kind.iter_mut().find(|s| s.path == path) {
            Some(s) => {
                s.calls += 1;
                s.incl_ns += dur_ns;
                s.excl_ns += dur_ns;
            }
            None => by_kind.push(SpanStat { path, calls: 1, incl_ns: dur_ns, excl_ns: dur_ns }),
        }
    }
    let mut stats =
        vec![SpanStat { path: trace_id.clone(), calls: 1, incl_ns: total * 1_000, excl_ns: 0 }];
    stats.extend(by_kind);
    println!();
    print!("{}", rlmul::obs::render_span_tree(&stats));
    let collapsed = rlmul::obs::collapsed_from(&stats);
    match opts.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &collapsed)?;
            println!("wrote {} collapsed-stack lines to {path}", collapsed.lines().count());
        }
        _ => {
            println!();
            print!("{collapsed}");
        }
    }
    Ok(())
}

/// Replays a finished run's JSONL log into a fresh registry and serves
/// it as a static Prometheus endpoint, so past runs can be inspected
/// with the same dashboards that watch live training.
fn cmd_serve_metrics(tokens: &[String], opts: &HashMap<String, String>) -> CliResult {
    let path = tokens
        .iter()
        .find(|t| !t.starts_with("--"))
        .ok_or("usage: rlmul serve-metrics RUN.jsonl [--metrics-addr ADDR]")?;
    let text = std::fs::read_to_string(path)?;
    let registry = rlmul::obs::Registry::new();
    let (mut replayed, mut malformed) = (0u64, 0u64);
    for line in text.lines().filter(|l| !l.trim().is_empty()) {
        match Event::parse_json(line) {
            Ok(e) => {
                replay_event(&registry, &e);
                replayed += 1;
            }
            Err(_) => malformed += 1,
        }
    }
    let default_addr = "127.0.0.1:9090".to_owned();
    let addr = opts.get("metrics-addr").filter(|a| !a.is_empty()).unwrap_or(&default_addr);
    let server = rlmul::obs::serve_metrics(&registry, addr)?;
    eprintln!("replayed {replayed} events from {path} ({malformed} malformed)");
    eprintln!("serving at http://{}/metrics — Ctrl-C to stop", server.local_addr());
    let stop = install_sigint();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    server.shutdown();
    Ok(())
}

/// Maps one telemetry event onto replay metric families. Per-event
/// quantities become counters/histograms; cumulative snapshots (cache
/// hits/misses, writer stats) become gauges where the last record
/// wins — matching what a live scraper would have seen at shutdown.
fn replay_event(reg: &rlmul::obs::Registry, e: &Event) {
    reg.labeled_counter(
        "rlmul_replay_events_total",
        "Telemetry events replayed from the JSONL log, by kind.",
        &[("kind", e.kind())],
    )
    .inc();
    match e.kind() {
        "episode" => {
            if let Some(r) = e.get_f64("reward") {
                reg.histogram("rlmul_replay_episode_reward", "Episode rewards from the log.")
                    .observe(r);
            }
            if let Some(a) = e.get_f64("area_um2") {
                reg.gauge("rlmul_replay_area_um2", "Latest episode area from the log.").set(a);
            }
            if let Some(d) = e.get_f64("delay_ns") {
                reg.gauge("rlmul_replay_delay_ns", "Latest episode delay from the log.").set(d);
            }
        }
        "phase" => {
            if let (Some(name), Some(secs)) = (e.get_str("name"), e.get_f64("secs")) {
                reg.labeled_histogram(
                    "rlmul_replay_phase_seconds",
                    "Per-phase wall time from the log.",
                    &[("phase", name)],
                )
                .observe(secs);
            }
        }
        "cache" => {
            if let Some(h) = e.get_u64("hits") {
                reg.gauge("rlmul_replay_cache_hits", "Latest cumulative cache hits from the log.")
                    .set(h as f64);
            }
            if let Some(m) = e.get_u64("misses") {
                reg.gauge(
                    "rlmul_replay_cache_misses",
                    "Latest cumulative cache misses from the log.",
                )
                .set(m as f64);
            }
        }
        "nn" => {
            if let Some(f) = e.get_f64("flops") {
                reg.counter("rlmul_replay_nn_flops_total", "NN flops recorded in the log.")
                    .add(f.max(0.0) as u64);
            }
        }
        "span" => {
            if let Some(path) = e.get_str("path") {
                let labels: &[(&str, &str)] = &[("path", path)];
                reg.labeled_counter(
                    "rlmul_replay_span_calls_total",
                    "Span call counts from the log.",
                    labels,
                )
                .add(e.get_u64("calls").unwrap_or(0));
                reg.labeled_gauge(
                    "rlmul_replay_span_incl_seconds",
                    "Inclusive span seconds from the log.",
                    labels,
                )
                .add(e.get_f64("incl_secs").unwrap_or(0.0).max(0.0));
                reg.labeled_gauge(
                    "rlmul_replay_span_excl_seconds",
                    "Exclusive span seconds from the log.",
                    labels,
                )
                .add(e.get_f64("excl_secs").unwrap_or(0.0).max(0.0));
            }
        }
        "writer_stats" => {
            for (key, name, help) in [
                ("written", "rlmul_replay_writer_written", "Telemetry records written."),
                ("dropped", "rlmul_replay_writer_dropped", "Telemetry records dropped."),
                ("buffer_hwm", "rlmul_replay_writer_buffer_hwm", "Telemetry buffer high-water."),
            ] {
                if let Some(v) = e.get_u64(key) {
                    reg.gauge(name, help).set(v as f64);
                }
            }
        }
        _ => {}
    }
}

/// Runs a short, fully instrumented search and prints where the time
/// went: the nested span tree first (stderr), then collapsed stacks
/// ready for a flamegraph renderer (stdout or `--out`).
fn cmd_profile(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let steps: usize = get(opts, "steps", 12);
    let seed: u64 = get(opts, "seed", 1);
    let mut env_cfg = EnvConfig::new(bits, kind);
    env_cfg.weights = match opts.get("pref").map(String::as_str).unwrap_or("tradeoff") {
        "area" => CostWeights::AREA,
        "timing" => CostWeights::TIMING,
        "tradeoff" => CostWeights::TRADE_OFF,
        other => return Err(format!("unknown pref `{other}`").into()),
    };
    let method = opts.get("method").map(String::as_str).unwrap_or("sa");
    let registry = rlmul::obs::global();
    registry.enable();
    let before = registry.span_stats();
    let hooks = TrainHooks::default();
    eprintln!("profiling {bits}-bit {kind} {method} ({steps} env steps)…");
    match method {
        "sa" => {
            let sa_cfg = SaConfig { steps, ..Default::default() };
            run_sa_with(&env_cfg, &sa_cfg, seed, EvalCache::new(), &hooks, None)?;
        }
        "dqn" => {
            let cfg = DqnConfig { steps, warmup: (steps / 5).max(4), seed, ..Default::default() };
            let mut env = MulEnv::new(env_cfg.clone())?;
            train_dqn_with(&mut env, &cfg, &hooks, None)?;
        }
        "a2c" => {
            let cfg =
                A2cConfig { steps: (steps / 4).max(2), n_envs: 4, seed, ..Default::default() };
            train_a2c_with(&env_cfg, &cfg, EvalCache::new(), &hooks, None)?;
        }
        other => return Err(format!("unknown method `{other}` (dqn|a2c|sa)").into()),
    }
    let stats = registry.span_stats_since(&before);
    eprint!("{}", rlmul::obs::render_span_tree(&stats));
    let collapsed = rlmul::obs::collapsed_from(&stats);
    match opts.get("out") {
        Some(path) if !path.is_empty() => {
            std::fs::write(path, &collapsed)?;
            println!("wrote {} collapsed-stack lines to {path}", collapsed.lines().count());
        }
        _ => print!("{collapsed}"),
    }
    Ok(())
}

fn cmd_export(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let netlist = build_structure(opts, bits, kind)?;
    let verilog = to_verilog(&netlist);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, verilog)?;
            println!("wrote {path} ({} gates)", netlist.gates().len());
        }
        None => print!("{verilog}"),
    }
    Ok(())
}

fn cmd_verify(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let netlist = build_structure(opts, bits, kind)?;
    if opts.contains_key("formal-cec") {
        return cmd_verify_formal(&netlist, bits, kind);
    }
    let report = check_datapath(&netlist, bits, kind)?;
    println!(
        "{} — {} vectors ({})",
        if report.equivalent { "EQUIVALENT" } else { "MISMATCH" },
        report.vectors,
        if report.exhaustive { "exhaustive" } else { "randomized + corners" }
    );
    if let Some(cex) = report.counterexample {
        println!(
            "counterexample: a={} b={} c={} expected={} got={}",
            cex.a, cex.b, cex.c, cex.expected, cex.got
        );
        return Err("equivalence check failed".into());
    }
    Ok(())
}

fn cmd_verify_formal(netlist: &Netlist, bits: usize, kind: PpgKind) -> CliResult {
    let r = check_formal(netlist, bits, kind)?;
    println!(
        "{} — SAT CEC vs golden {bits}-bit {kind} Dadda reference",
        if r.equivalent { "PROVED" } else { "REFUTED" }
    );
    println!(
        "sweep: {} rounds, {} candidates, {} merged, {} refuted, {} unknown",
        r.sweep.rounds, r.sweep.candidates, r.sweep.proved, r.sweep.refuted, r.sweep.unknown
    );
    println!(
        "cnf: {} vars, {} clauses; {} conflicts, {} decisions, {} propagations",
        r.vars, r.clauses, r.conflicts, r.decisions, r.propagations
    );
    if let Some(cex) = r.counterexample {
        for (name, v) in &cex.inputs {
            println!("counterexample input  {name} = {v}");
        }
        for d in &cex.outputs {
            println!("counterexample output {} = {} (reference {})", d.name, d.left, d.right);
        }
        println!("simulator confirmed: {}", cex.confirmed);
        return Err("formal equivalence check failed".into());
    }
    Ok(())
}

fn cmd_check_src(opts: &HashMap<String, String>) -> CliResult {
    let root = match opts.get("root") {
        Some(path) if !path.is_empty() => std::path::PathBuf::from(path),
        _ => {
            let cwd = std::env::current_dir()?;
            rlmul::check::lint::find_workspace_root(&cwd)
                .ok_or("no workspace root found above the current directory (try --root)")?
        }
    };
    let report = rlmul::check::lint::run_workspace(&root)?;
    print!("{}", report.render());
    if !report.is_clean() {
        return Err(format!("{} source finding(s)", report.findings.len()).into());
    }
    Ok(())
}

fn cmd_lint(opts: &HashMap<String, String>) -> CliResult {
    let netlist = match opts.get("in") {
        Some(path) if !path.is_empty() => from_verilog(&std::fs::read_to_string(path)?)?,
        _ => {
            let bits: usize = get(opts, "bits", 8);
            let kind = parse_kind(opts)?;
            build_structure(opts, bits, kind)?
        }
    };
    let report = rlmul::rtl::lint(&netlist);
    println!("{}", report.render());
    if report.errors() > 0 {
        return Err(format!("{} lint error(s)", report.errors()).into());
    }
    Ok(())
}

fn cmd_synth(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let netlist = build_structure(opts, bits, kind)?;
    let synth = Synthesizer::nangate45();
    let options = match opts.get("target") {
        Some(t) => SynthesisOptions::with_target(t.parse()?),
        None => SynthesisOptions::default(),
    };
    let r = synth.run(&netlist, &options)?;
    println!("area   {:>9.1} um^2", r.area_um2);
    println!(
        "delay  {:>9.4} ns{}",
        r.delay_ns,
        if r.met_target { "" } else { "  (target missed)" }
    );
    println!("power  {:>9.4} mW", r.power_mw);
    println!(
        "cells  {:>9}   (X1/X2/X4: {}/{}/{})",
        r.num_cells, r.drive_histogram[0], r.drive_histogram[1], r.drive_histogram[2]
    );
    Ok(())
}
