//! `rlmul` — command-line front end for the RL-MUL workspace.
//!
//! ```sh
//! rlmul info     --bits 8  --kind and
//! rlmul optimize --bits 8  --kind and --method a2c --steps 80 --pref area \
//!                --verilog best.v
//! rlmul export   --bits 16 --kind mbe --structure dadda --out mul.v
//! rlmul verify   --bits 8  --kind mac-and --structure gomil
//! rlmul synth    --bits 8  --kind and --structure wallace --target 1.0
//! ```

use rlmul::baselines::{gomil, SaConfig};
use rlmul::core::{
    run_sa, train_a2c, train_dqn, A2cConfig, CostWeights, DqnConfig, EnvConfig, MulEnv,
    OptimizationOutcome,
};
use rlmul::ct::{CompressorTree, PpgKind};
use rlmul::lec::{check_datapath, check_formal};
use rlmul::rtl::{
    from_verilog, quad_multiplier, to_verilog, AdderKind, MultiplierNetlist, Netlist,
};
use rlmul::synth::{SynthesisOptions, Synthesizer};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut argv = std::env::args().skip(1);
    let Some(command) = argv.next() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = parse_opts(argv.collect());
    let result = match command.as_str() {
        "info" => cmd_info(&opts),
        "optimize" => cmd_optimize(&opts),
        "export" => cmd_export(&opts),
        "verify" => cmd_verify(&opts),
        "lint" => cmd_lint(&opts),
        "synth" => cmd_synth(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}").into()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
rlmul — multiplier design optimization with deep reinforcement learning

USAGE: rlmul <command> [--key value ...]

COMMANDS
  info      show structure statistics (wallace/dadda/gomil/quad)
  optimize  search for a better compressor tree (RL or SA)
  export    emit structural Verilog for a named structure
  verify    equivalence-check a structure against the golden model
  lint      run the structural netlist linter
  synth     synthesize a structure and report PPA

COMMON OPTIONS
  --bits N          operand width (default 8)
  --kind K          and | mbe | mac-and | mac-mbe (default and)
  --structure S     wallace | dadda | gomil | quad (default wallace)

VERIFY OPTIONS
  --formal-cec      prove equivalence with the SAT-based formal engine
                    (vs the golden Dadda reference) instead of
                    simulation sweeps

LINT OPTIONS
  --in PATH         lint a structural Verilog file instead of a
                    generated structure

OPTIMIZE OPTIONS
  --method M        dqn | a2c | sa (default a2c)
  --steps N         environment steps (default 80)
  --pref P          area | timing | tradeoff (default tradeoff)
  --seed N          RNG seed (default 1)
  --verilog PATH    write the best design as Verilog

SYNTH OPTIONS
  --target NS       target delay in ns (default: minimum area)

EXPORT OPTIONS
  --out PATH        output file (default: stdout)";

type CliResult = Result<(), Box<dyn std::error::Error>>;

fn parse_opts(tokens: Vec<String>) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < tokens.len() {
        if let Some(key) = tokens[i].strip_prefix("--") {
            // A following token that is itself a `--key` leaves this
            // one as a boolean flag (e.g. `--formal-cec`).
            if i + 1 < tokens.len() && !tokens[i + 1].starts_with("--") {
                map.insert(key.to_owned(), tokens[i + 1].clone());
                i += 2;
                continue;
            }
            map.insert(key.to_owned(), String::new());
        }
        i += 1;
    }
    map
}

fn get<T: std::str::FromStr>(opts: &HashMap<String, String>, key: &str, default: T) -> T {
    opts.get(key).and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn parse_kind(opts: &HashMap<String, String>) -> Result<PpgKind, String> {
    match opts.get("kind").map(String::as_str).unwrap_or("and") {
        "and" => Ok(PpgKind::And),
        "mbe" => Ok(PpgKind::Mbe),
        "mac-and" => Ok(PpgKind::MacAnd),
        "mac-mbe" => Ok(PpgKind::MacMbe),
        other => Err(format!("unknown kind `{other}` (and|mbe|mac-and|mac-mbe)")),
    }
}

fn build_structure(
    opts: &HashMap<String, String>,
    bits: usize,
    kind: PpgKind,
) -> Result<Netlist, Box<dyn std::error::Error>> {
    let which = opts.get("structure").map(String::as_str).unwrap_or("wallace");
    let tree = match which {
        "wallace" => CompressorTree::wallace(bits, kind)?,
        "dadda" => CompressorTree::dadda(bits, kind)?,
        "gomil" => gomil(bits, kind)?,
        "quad" => return Ok(quad_multiplier(bits, kind, AdderKind::default())?),
        other => return Err(format!("unknown structure `{other}`").into()),
    };
    Ok(MultiplierNetlist::elaborate(&tree)?.into_netlist())
}

fn cmd_info(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    println!("{bits}-bit {kind} designs:");
    for (name, tree) in [
        ("wallace", CompressorTree::wallace(bits, kind)?),
        ("dadda", CompressorTree::dadda(bits, kind)?),
        ("gomil", gomil(bits, kind)?),
    ] {
        let nl = MultiplierNetlist::elaborate(&tree)?.into_netlist();
        println!(
            "  {name:<8} {:>3} FA  {:>3} HA  {:>2} stages  {:>5} gates",
            tree.matrix().total32(),
            tree.matrix().total22(),
            tree.stage_count()?,
            nl.gates().len()
        );
    }
    Ok(())
}

fn cmd_optimize(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let steps: usize = get(opts, "steps", 80);
    let seed: u64 = get(opts, "seed", 1);
    let mut env_cfg = EnvConfig::new(bits, kind);
    env_cfg.weights = match opts.get("pref").map(String::as_str).unwrap_or("tradeoff") {
        "area" => CostWeights::AREA,
        "timing" => CostWeights::TIMING,
        "tradeoff" => CostWeights::TRADE_OFF,
        other => return Err(format!("unknown pref `{other}`").into()),
    };
    let method = opts.get("method").map(String::as_str).unwrap_or("a2c");
    eprintln!("optimizing {bits}-bit {kind} with {method} ({steps} env steps)…");
    let outcome: OptimizationOutcome = match method {
        "sa" => run_sa(&env_cfg, &SaConfig { steps, ..Default::default() }, seed)?,
        "dqn" => {
            let mut env = MulEnv::new(env_cfg)?;
            train_dqn(
                &mut env,
                &DqnConfig { steps, warmup: (steps / 5).max(4), seed, ..Default::default() },
            )?
        }
        "a2c" => {
            let cfg =
                A2cConfig { steps: (steps / 4).max(2), n_envs: 4, seed, ..Default::default() };
            train_a2c(&env_cfg, &cfg)?
        }
        other => return Err(format!("unknown method `{other}` (dqn|a2c|sa)").into()),
    };
    let start = outcome.trajectory.first().copied().unwrap_or(f64::NAN);
    println!(
        "cost {start:.3} → {:.3} over {} distinct states ({} synthesis runs)",
        outcome.best_cost, outcome.states_visited, outcome.synth_runs
    );
    println!("pipeline: {}", outcome.pipeline.render());
    let netlist = MultiplierNetlist::elaborate(&outcome.best)?.into_netlist();
    let report = Synthesizer::nangate45().run(&netlist, &SynthesisOptions::default())?;
    println!(
        "best design: {:.0} um^2 @ {:.4} ns, {:.3} mW ({} FA, {} HA, {} stages)",
        report.area_um2,
        report.delay_ns,
        report.power_mw,
        outcome.best.matrix().total32(),
        outcome.best.matrix().total22(),
        outcome.best.stage_count()?
    );
    if let Some(path) = opts.get("verilog") {
        std::fs::write(path, to_verilog(&netlist))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn cmd_export(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let netlist = build_structure(opts, bits, kind)?;
    let verilog = to_verilog(&netlist);
    match opts.get("out") {
        Some(path) => {
            std::fs::write(path, verilog)?;
            println!("wrote {path} ({} gates)", netlist.gates().len());
        }
        None => print!("{verilog}"),
    }
    Ok(())
}

fn cmd_verify(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let netlist = build_structure(opts, bits, kind)?;
    if opts.contains_key("formal-cec") {
        return cmd_verify_formal(&netlist, bits, kind);
    }
    let report = check_datapath(&netlist, bits, kind)?;
    println!(
        "{} — {} vectors ({})",
        if report.equivalent { "EQUIVALENT" } else { "MISMATCH" },
        report.vectors,
        if report.exhaustive { "exhaustive" } else { "randomized + corners" }
    );
    if let Some(cex) = report.counterexample {
        println!(
            "counterexample: a={} b={} c={} expected={} got={}",
            cex.a, cex.b, cex.c, cex.expected, cex.got
        );
        return Err("equivalence check failed".into());
    }
    Ok(())
}

fn cmd_verify_formal(netlist: &Netlist, bits: usize, kind: PpgKind) -> CliResult {
    let r = check_formal(netlist, bits, kind)?;
    println!(
        "{} — SAT CEC vs golden {bits}-bit {kind} Dadda reference",
        if r.equivalent { "PROVED" } else { "REFUTED" }
    );
    println!(
        "sweep: {} rounds, {} candidates, {} merged, {} refuted, {} unknown",
        r.sweep.rounds, r.sweep.candidates, r.sweep.proved, r.sweep.refuted, r.sweep.unknown
    );
    println!(
        "cnf: {} vars, {} clauses; {} conflicts, {} decisions, {} propagations",
        r.vars, r.clauses, r.conflicts, r.decisions, r.propagations
    );
    if let Some(cex) = r.counterexample {
        for (name, v) in &cex.inputs {
            println!("counterexample input  {name} = {v}");
        }
        for d in &cex.outputs {
            println!("counterexample output {} = {} (reference {})", d.name, d.left, d.right);
        }
        println!("simulator confirmed: {}", cex.confirmed);
        return Err("formal equivalence check failed".into());
    }
    Ok(())
}

fn cmd_lint(opts: &HashMap<String, String>) -> CliResult {
    let netlist = match opts.get("in") {
        Some(path) if !path.is_empty() => from_verilog(&std::fs::read_to_string(path)?)?,
        _ => {
            let bits: usize = get(opts, "bits", 8);
            let kind = parse_kind(opts)?;
            build_structure(opts, bits, kind)?
        }
    };
    let report = rlmul::rtl::lint(&netlist);
    println!("{}", report.render());
    if report.errors() > 0 {
        return Err(format!("{} lint error(s)", report.errors()).into());
    }
    Ok(())
}

fn cmd_synth(opts: &HashMap<String, String>) -> CliResult {
    let bits: usize = get(opts, "bits", 8);
    let kind = parse_kind(opts)?;
    let netlist = build_structure(opts, bits, kind)?;
    let synth = Synthesizer::nangate45();
    let options = match opts.get("target") {
        Some(t) => SynthesisOptions::with_target(t.parse()?),
        None => SynthesisOptions::default(),
    };
    let r = synth.run(&netlist, &options)?;
    println!("area   {:>9.1} um^2", r.area_um2);
    println!(
        "delay  {:>9.4} ns{}",
        r.delay_ns,
        if r.met_target { "" } else { "  (target missed)" }
    );
    println!("power  {:>9.4} mW", r.power_mw);
    println!(
        "cells  {:>9}   (X1/X2/X4: {}/{}/{})",
        r.num_cells, r.drive_histogram[0], r.drive_histogram[1], r.drive_histogram[2]
    );
    Ok(())
}
