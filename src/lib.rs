//! RL-MUL — multiplier design optimization with deep reinforcement
//! learning (reproduction of Zuo, Zhu, Ouyang, Ma; DAC 2023).
//!
//! This façade crate re-exports every subsystem of the workspace so
//! that examples and integration tests can drive the full stack
//! through one dependency:
//!
//! * [`ct`] — compressor-tree state (matrix/tensor representations,
//!   actions, legalization, Wallace/Dadda constructors);
//! * [`rtl`] — gate-level netlist IR and RTL generators (AND / MBE
//!   partial products, compressor-tree elaboration, carry-propagate
//!   adders, merged MACs, systolic PE arrays, Verilog emission);
//! * [`synth`] — standard-cell library, technology mapping, static
//!   timing analysis, gate sizing and power estimation;
//! * [`sat`] — a from-scratch CDCL SAT solver (two-watched literals,
//!   first-UIP learning, VSIDS, Luby restarts) with incremental
//!   assumption solving;
//! * [`lec`] — bit-parallel simulation, logic equivalence checking
//!   against golden models, and formal SAT-based CEC with
//!   fraig-style equivalence sweeping;
//! * [`nn`] — the from-scratch CPU neural-network substrate behind the
//!   agent networks;
//! * [`pareto`] — Pareto fronts, hypervolume, trajectory statistics;
//! * [`baselines`] — Wallace, Dadda, GOMIL (exact DP over the ILP) and
//!   simulated annealing;
//! * [`ckpt`] — versioned binary snapshot codec with CRC-checked
//!   atomic writes and rolling latest/best checkpoint stores;
//! * [`telemetry`] — non-blocking JSONL event stream (per-episode
//!   rewards, phase timings, cache hit rates) plus run summaries;
//! * [`obs`] — live observability: sharded metrics registry, span
//!   tracing, Prometheus `/metrics` endpoint and flamegraph export;
//! * [`core`] — the RL-MUL framework itself: environment,
//!   Pareto-driven reward, DQN (native RL-MUL) and parallel A2C
//!   (RL-MUL-E) agents, with crash-safe checkpoint/resume
//!   (`core::TrainHooks`, `core::resume_dqn`, `core::resume_a2c`).
//!
//! Beyond the paper's evaluation, the workspace implements its named
//! extensions: 4:2 compressor trees (`ct::QuadSchedule`,
//! `rtl::quad_multiplier`, per-arc STA for ripple-free cout chains),
//! pipelined multipliers (`rtl::elaborate_pipelined`), cycle-accurate
//! sequential verification (`lec::SeqSimulator`), the unreduced
//! three-term reward (`core::CostWeights::power`), and agent
//! checkpointing (`nn::{save_params, load_params}`).
//!
//! # Quickstart
//!
//! ```
//! use rlmul::ct::{CompressorTree, PpgKind};
//! use rlmul::rtl::MultiplierNetlist;
//! use rlmul::synth::{SynthesisOptions, Synthesizer};
//!
//! let tree = CompressorTree::wallace(8, PpgKind::And)?;
//! let netlist = MultiplierNetlist::elaborate(&tree)?;
//! let synth = Synthesizer::nangate45();
//! let report = synth.run(netlist.netlist(), &SynthesisOptions::default())?;
//! assert!(report.area_um2 > 0.0 && report.delay_ns > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub use rlmul_baselines as baselines;
pub use rlmul_check as check;
pub use rlmul_ckpt as ckpt;
pub use rlmul_core as core;
pub use rlmul_ct as ct;
pub use rlmul_lec as lec;
pub use rlmul_nn as nn;
pub use rlmul_obs as obs;
pub use rlmul_pareto as pareto;
pub use rlmul_rtl as rtl;
pub use rlmul_sat as sat;
pub use rlmul_serve as serve;
pub use rlmul_synth as synth;
pub use rlmul_telemetry as telemetry;
