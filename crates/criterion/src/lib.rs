//! Offline drop-in for the subset of `criterion` this workspace uses.
//!
//! The build environment has no network access, so the real
//! `criterion` crate cannot be fetched. This shim keeps the bench
//! source syntax — [`Criterion`], benchmark groups,
//! [`BenchmarkId`], `bench_function` / `bench_with_input`,
//! [`Bencher::iter`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros — over a straightforward
//! calibrate-then-measure timing loop that prints mean, minimum and
//! maximum time per iteration for every benchmark.
//!
//! There is no statistical analysis, HTML report, or baseline
//! comparison; output is one line per benchmark on stdout, which is
//! what this repository's BENCH logs capture.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver and its measurement settings.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Measures one standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, &name.into(), f);
        self
    }
}

/// A named parameterized benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { function: function.into(), parameter: parameter.to_string() }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Measures one benchmark of the group against `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.render());
        run_benchmark(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Measures one unparameterized benchmark of the group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        run_benchmark(self.criterion, &full, f);
        self
    }

    /// Ends the group (kept for API compatibility; printing happens
    /// per benchmark).
    pub fn finish(self) {}
}

/// Hands the measured routine to the timing loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` back-to-back calls of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_batch<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher { iters, elapsed: Duration::ZERO };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F: FnMut(&mut Bencher)>(c: &Criterion, name: &str, mut f: F) {
    // Warm-up while estimating the per-iteration cost.
    let warm_start = Instant::now();
    let mut iters_done = 0u64;
    let mut batch = 1u64;
    while warm_start.elapsed() < c.warm_up_time {
        time_batch(&mut f, batch);
        iters_done += batch;
        batch = batch.saturating_mul(2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;

    // Size samples so all of them together fit the measurement budget.
    let budget = c.measurement_time.as_secs_f64() / c.sample_size as f64;
    let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

    let mut total = Duration::ZERO;
    let mut min = f64::INFINITY;
    let mut max: f64 = 0.0;
    let mut measured = 0u64;
    for _ in 0..c.sample_size {
        let d = time_batch(&mut f, iters_per_sample);
        let per = d.as_secs_f64() / iters_per_sample as f64;
        min = min.min(per);
        max = max.max(per);
        total += d;
        measured += iters_per_sample;
    }
    let mean = total.as_secs_f64() / measured as f64;
    println!(
        "bench: {name:<50} mean {:>12} (min {}, max {}, {} samples x {} iters)",
        fmt_time(mean),
        fmt_time(min),
        fmt_time(max),
        c.sample_size,
        iters_per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a benchmark group function that runs `targets` under
/// `config`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench-harness `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut calls = 0u64;
        c.bench_function("smoke/add", |b| {
            b.iter(|| {
                calls += 1;
                black_box(1u64 + 1)
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_compose_ids() {
        let id = BenchmarkId::new("f", 16);
        assert_eq!(id.render(), "f/16");
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(10))
            .warm_up_time(Duration::from_millis(2));
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &n| b.iter(|| n * n));
        g.finish();
    }

    #[test]
    fn fmt_time_picks_sane_units() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
