//! Per-job trace context: a job-scoped trace ID, a monotonic event
//! sequence, and a bounded in-memory event timeline that doubles as a
//! live subscription source.
//!
//! A [`TraceCtx`] is minted by whoever owns a unit of work (the job
//! server mints one per `POST /jobs`) and cloned into every component
//! that touches that work — queue admission, worker claim, the
//! training drivers (via `TrainHooks`), the evaluation cache and the
//! surrogate gate. Each component appends [`TraceEvent`]s; the buffer
//! assigns the sequence number under its lock, so the stored order
//! *is* the causal order within the job.
//!
//! Design rules, matching the metrics [`crate::Registry`]:
//!
//! * **One-branch disabled path.** A default/disabled context holds
//!   `None`; every emit is a single `Option` branch. Instrumentation
//!   stays in hot paths unconditionally (the overhead bench guards
//!   <2x against an uninstrumented baseline).
//! * **Bounded memory.** The buffer stops *recording* once it reaches
//!   capacity and counts what it suppressed ([`TraceCtx::dropped`]).
//!   Dropping the newest — not the oldest — keeps an already-running
//!   live stream exactly equal to the stored trace: subscribers never
//!   see an event the store later forgets. Lifecycle events are
//!   emitted with [`TraceCtx::emit_forced`] and may exceed the cap by
//!   O(lifecycle), so a truncated trace still shows how the job ended.
//! * **Monotonic seq == buffer index.** Sequence numbers are assigned
//!   only to recorded events, densely from 0, so `events[seq]` always
//!   holds the event with that seq and range subscriptions are O(1)
//!   to locate.
//!
//! Timing uses a monotonic [`Instant`] owned by the buffer (micros
//! since mint), so instrumented crates that are wall-clock-linted
//! never read a clock themselves — they hand the event over and the
//! buffer stamps it.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Default bounded capacity of one job's event timeline.
pub const TRACE_DEFAULT_CAPACITY: usize = 4096;

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Dense per-trace sequence number (0, 1, 2, …); the causal order
    /// within the job.
    pub seq: u64,
    /// Microseconds since the trace was minted (monotonic).
    pub micros: u64,
    /// Event kind, e.g. `submitted`, `claimed`, `step`, `cache_hit`,
    /// `surrogate_screened`, `synth`, `done`.
    pub kind: String,
    /// Free-form `key=value` detail (may be empty).
    pub detail: String,
}

#[derive(Debug)]
struct TraceState {
    events: Vec<TraceEvent>,
    closed: bool,
}

#[derive(Debug)]
struct TraceBuf {
    id: String,
    capacity: usize,
    start: Instant,
    state: Mutex<TraceState>,
    cv: Condvar,
    dropped: AtomicU64,
}

impl TraceBuf {
    /// Locks the state, recovering from a poisoned lock (a panicking
    /// emitter must not take tracing down with it).
    fn lock(&self) -> MutexGuard<'_, TraceState> {
        self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn record(&self, kind: &str, detail: &str, force: bool) {
        let mut st = self.lock();
        if st.closed {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        if !force && st.events.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let seq = st.events.len() as u64;
        let micros = self.start.elapsed().as_micros() as u64;
        st.events.push(TraceEvent {
            seq,
            micros,
            kind: kind.to_owned(),
            detail: detail.to_owned(),
        });
        drop(st);
        self.cv.notify_all();
    }
}

/// A cloneable handle to one job's trace timeline (or to nothing, for
/// the disabled default). See the module docs for the contract.
#[derive(Debug, Clone, Default)]
pub struct TraceCtx {
    buf: Option<Arc<TraceBuf>>,
}

impl TraceCtx {
    /// The disabled context: every operation is one branch and a
    /// return. Identical to [`TraceCtx::default`].
    pub fn disabled() -> Self {
        TraceCtx { buf: None }
    }

    /// Mints an enabled context with the default capacity.
    pub fn new(trace_id: &str) -> Self {
        Self::with_capacity(trace_id, TRACE_DEFAULT_CAPACITY)
    }

    /// Mints an enabled context recording at most `capacity`
    /// non-forced events (capacity 0 is clamped to 1).
    pub fn with_capacity(trace_id: &str, capacity: usize) -> Self {
        TraceCtx {
            buf: Some(Arc::new(TraceBuf {
                id: trace_id.to_owned(),
                capacity: capacity.max(1),
                start: Instant::now(),
                state: Mutex::new(TraceState { events: Vec::new(), closed: false }),
                cv: Condvar::new(),
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether events are being recorded. Hot emit sites that would
    /// allocate to format a detail string should branch on this first.
    pub fn is_enabled(&self) -> bool {
        self.buf.is_some()
    }

    /// The job-scoped trace ID (`None` when disabled).
    pub fn trace_id(&self) -> Option<&str> {
        self.buf.as_deref().map(|b| b.id.as_str())
    }

    /// Appends one event, unless the buffer is at capacity or closed
    /// (then the drop counter ticks instead). One branch when
    /// disabled.
    pub fn emit(&self, kind: &str, detail: &str) {
        let Some(buf) = &self.buf else { return };
        buf.record(kind, detail, false);
    }

    /// Appends one lifecycle event even past capacity (never past
    /// close), so truncated traces still record how the job ended.
    pub fn emit_forced(&self, kind: &str, detail: &str) {
        let Some(buf) = &self.buf else { return };
        buf.record(kind, detail, true);
    }

    /// Closes the trace: no further events are recorded and every
    /// blocked subscriber wakes to observe the end of the stream.
    pub fn close(&self) {
        let Some(buf) = &self.buf else { return };
        let mut st = buf.lock();
        st.closed = true;
        drop(st);
        buf.cv.notify_all();
    }

    /// Whether [`TraceCtx::close`] has been called (`false` when
    /// disabled).
    pub fn is_closed(&self) -> bool {
        self.buf.as_deref().is_some_and(|b| b.lock().closed)
    }

    /// Recorded events so far (empty when disabled).
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.buf.as_deref().map(|b| b.lock().events.clone()).unwrap_or_default()
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.buf.as_deref().map(|b| b.lock().events.len()).unwrap_or(0)
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events suppressed by the capacity bound (or emitted after
    /// close).
    pub fn dropped(&self) -> u64 {
        self.buf.as_deref().map(|b| b.dropped.load(Ordering::Relaxed)).unwrap_or(0)
    }

    /// Live subscription primitive: returns every event with
    /// `seq >= from_seq` plus the closed flag. When nothing new is
    /// buffered and the trace is open, blocks up to `timeout` for the
    /// next emit or close. Returns `None` when disabled.
    ///
    /// A streaming loop is `from_seq = 0` then, after each call,
    /// `from_seq = last.seq + 1` until `closed` comes back true with
    /// no new events.
    pub fn events_since(
        &self,
        from_seq: u64,
        timeout: Duration,
    ) -> Option<(Vec<TraceEvent>, bool)> {
        let buf = self.buf.as_deref()?;
        let mut st = buf.lock();
        if (st.events.len() as u64) <= from_seq && !st.closed {
            let (guard, _) =
                buf.cv.wait_timeout(st, timeout).unwrap_or_else(std::sync::PoisonError::into_inner);
            st = guard;
        }
        let from = (from_seq as usize).min(st.events.len());
        Some((st.events[from..].to_vec(), st.closed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_context_is_inert() {
        let t = TraceCtx::default();
        assert!(!t.is_enabled());
        assert_eq!(t.trace_id(), None);
        t.emit("step", "n=1");
        t.emit_forced("done", "");
        t.close();
        assert!(t.snapshot().is_empty());
        assert_eq!(t.dropped(), 0);
        assert!(t.events_since(0, Duration::from_millis(1)).is_none());
    }

    #[test]
    fn seq_is_dense_and_matches_index() {
        let t = TraceCtx::new("tr-test");
        assert_eq!(t.trace_id(), Some("tr-test"));
        for i in 0..10 {
            t.emit("step", &format!("n={i}"));
        }
        let events = t.snapshot();
        assert_eq!(events.len(), 10);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
        // micros never go backwards.
        assert!(events.windows(2).all(|w| w[0].micros <= w[1].micros));
    }

    #[test]
    fn capacity_drops_newest_but_forced_lifecycle_lands() {
        let t = TraceCtx::with_capacity("tr-cap", 3);
        for _ in 0..5 {
            t.emit("step", "");
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        t.emit_forced("done", "");
        let events = t.snapshot();
        assert_eq!(events.len(), 4);
        assert_eq!(events[3].kind, "done");
        assert_eq!(events[3].seq, 3);
        // Nothing lands after close, forced or not.
        t.close();
        t.emit_forced("late", "");
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = TraceCtx::new("tr-shared");
        let u = t.clone();
        t.emit("a", "");
        u.emit("b", "");
        let events = t.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!((events[0].kind.as_str(), events[1].kind.as_str()), ("a", "b"));
        assert_eq!(events[1].seq, 1);
    }

    #[test]
    fn events_since_streams_in_seq_order_until_close() {
        let t = TraceCtx::new("tr-stream");
        t.emit("a", "");
        t.emit("b", "");
        let (batch, closed) = t.events_since(0, Duration::from_millis(1)).unwrap();
        assert_eq!(batch.len(), 2);
        assert!(!closed);
        // Nothing new: times out empty while open.
        let (empty, closed) = t.events_since(2, Duration::from_millis(1)).unwrap();
        assert!(empty.is_empty() && !closed);
        // A blocked subscriber wakes on emit.
        let u = t.clone();
        let waiter = std::thread::spawn(move || u.events_since(2, Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        t.emit("c", "");
        let (batch, _) = waiter.join().unwrap();
        assert_eq!(batch.len(), 1);
        assert_eq!(batch[0].seq, 2);
        // And on close.
        let u = t.clone();
        let waiter = std::thread::spawn(move || u.events_since(3, Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(20));
        t.close();
        let (batch, closed) = waiter.join().unwrap();
        assert!(batch.is_empty());
        assert!(closed);
    }

    #[test]
    fn stream_prefix_equals_stored_trace() {
        // The acceptance contract: a live subscriber that follows the
        // trace to close sees exactly the stored event list.
        let t = TraceCtx::with_capacity("tr-eq", 8);
        let producer = {
            let t = t.clone();
            std::thread::spawn(move || {
                for i in 0..20 {
                    t.emit("step", &format!("n={i}"));
                }
                t.emit_forced("done", "");
                t.close();
            })
        };
        let mut streamed = Vec::new();
        let mut from = 0u64;
        loop {
            let (batch, closed) = t.events_since(from, Duration::from_secs(5)).unwrap();
            if let Some(last) = batch.last() {
                from = last.seq + 1;
            }
            streamed.extend(batch);
            if closed && t.len() as u64 <= from {
                break;
            }
        }
        producer.join().unwrap();
        assert_eq!(streamed, t.snapshot());
    }
}
