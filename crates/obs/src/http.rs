//! A tiny from-scratch HTTP/1.1 layer: request parsing, response
//! writing, and two servers built on them.
//!
//! The module grew out of the Prometheus `/metrics` endpoint and now
//! exposes its pieces for reuse:
//!
//! * [`HttpRequest`] / [`HttpResponse`] — one parsed request head
//!   (with an optional `Content-Length` body) and one answer;
//! * [`read_request`] / [`write_response`] — the wire functions, used
//!   directly by servers that manage their own connection pool (the
//!   `rlmul-serve` job daemon dispatches accepted sockets to a worker
//!   pool built on the `rlmul-check` sync facade);
//! * [`serve_http`] — a serial-accept background server driving an
//!   arbitrary [`Handler`]; each connection is answered and closed
//!   (`Connection: close`), so no keep-alive state machine is needed;
//! * [`serve_metrics`] — the original Prometheus endpoint, now a thin
//!   [`serve_http`] wrapper.
//!
//! Robustness contract (locked in by the repo's `panic-path` source
//! lint): a malformed request head is answered with a logged `400`, a
//! panicking handler with a logged `500`; neither kills the serving
//! thread.
//!
//! # Connection handling
//!
//! The default protocol is one request per connection with
//! `Connection: close` — every pre-existing client reads to EOF and
//! relies on that. A client that *explicitly* sends
//! `Connection: keep-alive` opts into bounded reuse: the worker
//! answers with `Connection: keep-alive` and loops (up to
//! [`MAX_KEEPALIVE_REQUESTS`] requests), framing every response with
//! `Content-Length`. The HTTP/1.1 implicit-keep-alive default is
//! deliberately *not* honored, so EOF-reading clients never stall on
//! an open socket.
//!
//! # Streaming responses
//!
//! A response may carry a [`StreamBody`] closure instead of a fixed
//! body; it is written with `Transfer-Encoding: chunked` (one chunk
//! per `write` call) and the connection closes when the closure
//! returns. The job server's `GET /jobs/<id>/events` live event
//! stream rides on this.

use crate::prom::render_prometheus;
use crate::registry::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Maximum accepted request head size.
const MAX_HEAD: usize = 16 * 1024;
/// Maximum accepted request body size (submission payloads are small
/// JSON objects; anything larger is hostile or confused).
const MAX_BODY: usize = 1024 * 1024;
/// Upper bound on requests served over one explicitly keep-alive
/// connection, so a single client cannot pin a worker forever.
pub const MAX_KEEPALIVE_REQUESTS: usize = 64;

/// One parsed HTTP request: the request line plus the body announced
/// by `Content-Length` (empty when the header is absent).
#[derive(Debug, Clone)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, …), verbatim.
    pub method: String,
    /// Request path including any query string, verbatim.
    pub path: String,
    /// Request body (empty unless `Content-Length` was present).
    pub body: Vec<u8>,
    /// Whether the client *explicitly* sent `Connection: keep-alive`
    /// (the HTTP/1.1 implicit default is not honored — see the module
    /// docs).
    pub keep_alive: bool,
}

/// A streaming response body: called once with a chunk-framing writer
/// (each `write` becomes one HTTP chunk); the response ends when the
/// closure returns. `Err` aborts the stream (client gone).
pub type StreamBody = Arc<dyn Fn(&mut dyn Write) -> io::Result<()> + Send + Sync>;

/// One HTTP response: a status line tail (e.g. `"200 OK"`), a content
/// type and a body — either fixed (`body`, the default) or streamed
/// chunk-by-chunk (`stream`).
#[derive(Clone)]
pub struct HttpResponse {
    /// Status code and reason phrase, e.g. `"404 Not Found"`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body (ignored when `stream` is set).
    pub body: String,
    /// Optional chunked streaming body; `None` for ordinary
    /// fixed-length responses.
    pub stream: Option<StreamBody>,
}

impl std::fmt::Debug for HttpResponse {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpResponse")
            .field("status", &self.status)
            .field("content_type", &self.content_type)
            .field("body", &self.body)
            .field("stream", &self.stream.as_ref().map(|_| "<chunked>"))
            .finish()
    }
}

impl HttpResponse {
    /// A `text/plain` response.
    pub fn text(status: &'static str, body: impl Into<String>) -> Self {
        HttpResponse {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into(),
            stream: None,
        }
    }

    /// An `application/json` response.
    pub fn json(status: &'static str, body: impl Into<String>) -> Self {
        HttpResponse { status, content_type: "application/json", body: body.into(), stream: None }
    }

    /// A chunked streaming response; `stream` runs on the serving
    /// thread and each of its `write` calls becomes one HTTP chunk.
    pub fn streaming(status: &'static str, content_type: &'static str, stream: StreamBody) -> Self {
        HttpResponse { status, content_type, body: String::new(), stream: Some(stream) }
    }

    /// The numeric status code (first token of the status line tail;
    /// `0` if the status string is malformed).
    pub fn code(&self) -> u16 {
        self.status.split(' ').next().and_then(|c| c.parse().ok()).unwrap_or(0)
    }
}

/// A request handler: pure function from request to response. Panics
/// inside the handler are caught by the dispatch layer and answered
/// with a logged `500`.
pub type Handler = Arc<dyn Fn(&HttpRequest) -> HttpResponse + Send + Sync>;

/// Handle to a running HTTP server; dropping it (or calling
/// [`HttpServer::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct HttpServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

/// The historical name of [`HttpServer`], kept for the metrics call
/// sites.
pub type MetricsServer = HttpServer;

impl HttpServer {
    /// The bound address (useful with port 0 requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        self.stop.store(true, Ordering::Relaxed);
        // Wake the (blocking) accept call with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        let _ = handle.join();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port) and
/// serves `registry` from a background thread as a Prometheus
/// text-0.0.4 endpoint (`GET /metrics`, with `GET /` as an index).
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_metrics(registry: &Registry, addr: &str) -> io::Result<HttpServer> {
    let routed = registry.clone();
    serve_http(addr, registry, Arc::new(move |req| route_metrics(req, &routed)), "rlmul-metrics")
}

/// Binds `addr` and answers every connection with `handler` from a
/// single background accept thread. `registry` receives the
/// `rlmul_http_bad_requests_total` / `rlmul_http_internal_errors_total`
/// counters; `thread_name` names the accept thread.
///
/// The accept loop is intentionally serial — right for scrape-rate
/// traffic. Servers expecting many concurrent clients should accept
/// themselves and dispatch [`read_request`]/[`write_response`] onto
/// their own pool (see `rlmul-serve`).
///
/// # Errors
///
/// Propagates bind and thread-spawn failures.
pub fn serve_http(
    addr: &str,
    registry: &Registry,
    handler: Handler,
    thread_name: &str,
) -> io::Result<HttpServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let thread_registry = registry.clone();
    let handle = std::thread::Builder::new()
        .name(thread_name.to_owned())
        .spawn(move || accept_loop(&listener, &thread_registry, &handler, &thread_stop))?;
    Ok(HttpServer { local, stop, handle: Some(handle) })
}

fn accept_loop(listener: &TcpListener, registry: &Registry, handler: &Handler, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // Answer errors are the client's problem; keep serving.
        let _ = handle_connection(stream, registry, handler);
    }
}

/// Serves one connection with `handler`: one request by default, a
/// bounded sequence when the client explicitly asked for keep-alive.
/// Malformed heads degrade to a logged 400 and handler panics to a
/// logged 500. The building block both servers share.
///
/// # Errors
///
/// Propagates socket I/O failures (the response may be lost; the
/// caller keeps serving).
pub fn handle_connection(
    mut stream: TcpStream,
    registry: &Registry,
    handler: &Handler,
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    for served in 0..MAX_KEEPALIVE_REQUESTS {
        let req = match read_request_inner(&mut stream)? {
            // A clean close between requests (or a probe connection
            // that never sent anything) is not a client error.
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Malformed => {
                registry
                    .counter(
                        "rlmul_http_bad_requests_total",
                        "malformed request heads answered 400",
                    )
                    .inc();
                eprintln!("rlmul-obs http: 400 bad request");
                let bad = HttpResponse::text("400 Bad Request", "malformed request\n");
                return write_response(&mut stream, &bad);
            }
            ReadOutcome::Request(req) => req,
        };
        let response = dispatch(&req, registry, handler);
        // The last allowed round announces close; streams always
        // close (chunked framing ends the response, the closure owns
        // the socket until then).
        let keep =
            req.keep_alive && response.stream.is_none() && served + 1 < MAX_KEEPALIVE_REQUESTS;
        write_response_conn(&mut stream, &response, keep)?;
        if !keep {
            return Ok(());
        }
    }
    Ok(())
}

/// Runs `handler` on `req` behind a panic firewall: a panic while
/// routing or rendering must not unwind through the accept loop
/// (killing the endpoint for the rest of the run), so it degrades to
/// a logged 500 instead.
pub fn dispatch(req: &HttpRequest, registry: &Registry, handler: &Handler) -> HttpResponse {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| handler(req))) {
        Ok(response) => response,
        Err(_) => {
            registry
                .counter("rlmul_http_internal_errors_total", "handler panics answered 500")
                .inc();
            eprintln!("rlmul-obs http: 500 handler panicked on {} {}", req.method, req.path);
            HttpResponse::text("500 Internal Server Error", "internal error\n")
        }
    }
}

/// What one read attempt on a connection produced.
enum ReadOutcome {
    /// A complete, well-formed request.
    Request(HttpRequest),
    /// Bytes arrived but never formed a valid request — answer 400.
    Malformed,
    /// The peer closed cleanly before sending anything.
    Closed,
}

/// Reads one request (head + `Content-Length` body) from `stream`.
/// Returns `None` for a malformed or oversized request — the caller
/// answers 400 — and `Err` only for socket failures. A clean
/// pre-request close also maps to `None` here; callers that need to
/// tell the two apart (the keep-alive loop) use the inner tri-state.
///
/// # Errors
///
/// Propagates socket read failures (including timeouts).
pub fn read_request(stream: &mut TcpStream) -> io::Result<Option<HttpRequest>> {
    Ok(match read_request_inner(stream)? {
        ReadOutcome::Request(req) => Some(req),
        ReadOutcome::Malformed | ReadOutcome::Closed => None,
    })
}

fn read_request_inner(stream: &mut TcpStream) -> io::Result<ReadOutcome> {
    let mut buf = [0u8; 4096];
    let mut data = Vec::new();
    let head_end = loop {
        if let Some(pos) = find_head_end(&data) {
            break pos;
        }
        if data.len() >= MAX_HEAD {
            return Ok(ReadOutcome::Malformed);
        }
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(if data.is_empty() { ReadOutcome::Closed } else { ReadOutcome::Malformed });
        }
        data.extend_from_slice(&buf[..n]);
    };
    let head = &data[..head_end];
    let Some((method, path)) = parse_request_line(head) else {
        return Ok(ReadOutcome::Malformed);
    };
    let content_length = match parse_content_length(head) {
        Ok(len) => len,
        Err(()) => return Ok(ReadOutcome::Malformed),
    };
    if content_length > MAX_BODY {
        return Ok(ReadOutcome::Malformed);
    }
    let keep_alive = parse_keep_alive(head);
    let mut body = data[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            return Ok(ReadOutcome::Malformed); // peer closed mid-body
        }
        body.extend_from_slice(&buf[..n]);
    }
    body.truncate(content_length);
    Ok(ReadOutcome::Request(HttpRequest { method, path, body, keep_alive }))
}

/// Writes `response` (with `Connection: close`) to `stream`. Streaming
/// responses are written with `Transfer-Encoding: chunked`.
///
/// # Errors
///
/// Propagates socket write failures.
pub fn write_response(stream: &mut TcpStream, response: &HttpResponse) -> io::Result<()> {
    write_response_conn(stream, response, false)
}

/// [`write_response`] with an explicit connection disposition:
/// `keep_alive` answers `Connection: keep-alive` (fixed-length bodies
/// only — a streaming response always closes).
fn write_response_conn(
    stream: &mut TcpStream,
    response: &HttpResponse,
    keep_alive: bool,
) -> io::Result<()> {
    match &response.stream {
        None => {
            let connection = if keep_alive { "keep-alive" } else { "close" };
            let text = format!(
                "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n\
                 Connection: {connection}\r\n\r\n{}",
                response.status,
                response.content_type,
                response.body.len(),
                response.body
            );
            stream.write_all(text.as_bytes())?;
            stream.flush()
        }
        Some(body) => {
            let head = format!(
                "HTTP/1.1 {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\n\
                 Connection: close\r\n\r\n",
                response.status, response.content_type,
            );
            stream.write_all(head.as_bytes())?;
            stream.flush()?;
            let mut chunker = ChunkWriter { inner: stream };
            body(&mut chunker)?;
            stream.write_all(b"0\r\n\r\n")?;
            stream.flush()
        }
    }
}

/// Adapts a socket into HTTP chunked framing: every `write` becomes
/// one `<hex-len>\r\n<data>\r\n` chunk, flushed immediately so live
/// streams are actually live.
struct ChunkWriter<'a> {
    inner: &'a mut TcpStream,
}

impl Write for ChunkWriter<'_> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0); // an empty chunk would terminate the stream
        }
        write!(self.inner, "{:x}\r\n", buf.len())?;
        self.inner.write_all(buf)?;
        self.inner.write_all(b"\r\n")?;
        self.inner.flush()?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn find_head_end(data: &[u8]) -> Option<usize> {
    data.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Extracts `(method, path)` from the request head, or `None` when
/// the first line is not a `METHOD SP PATH SP HTTP/x` request line.
fn parse_request_line(head: &[u8]) -> Option<(String, String)> {
    let line_end = head.windows(2).position(|w| w == b"\r\n").unwrap_or(head.len());
    let line = String::from_utf8_lossy(&head[..line_end]);
    let mut parts = line.split_whitespace();
    let (method, path, version) = (parts.next()?, parts.next()?, parts.next()?);
    if !version.starts_with("HTTP/") || parts.next().is_some() {
        return None;
    }
    Some((method.to_owned(), path.to_owned()))
}

/// Parses the `Content-Length` header out of a request head. Missing
/// header means an empty body; an unparsable value is a client error.
fn parse_content_length(head: &[u8]) -> Result<usize, ()> {
    let text = String::from_utf8_lossy(head);
    for line in text.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.trim().eq_ignore_ascii_case("content-length") {
            return value.trim().parse().map_err(|_| ());
        }
    }
    Ok(0)
}

/// Whether the request head explicitly asks for `Connection:
/// keep-alive`. The HTTP/1.1 implicit default is intentionally not
/// honored (see the module docs).
fn parse_keep_alive(head: &[u8]) -> bool {
    let text = String::from_utf8_lossy(head);
    for line in text.lines().skip(1) {
        let Some((name, value)) = line.split_once(':') else { continue };
        if name.trim().eq_ignore_ascii_case("connection") {
            return value.trim().eq_ignore_ascii_case("keep-alive");
        }
    }
    false
}

/// The Prometheus endpoint's routing table.
fn route_metrics(req: &HttpRequest, registry: &Registry) -> HttpResponse {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/metrics") => HttpResponse {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: render_prometheus(registry),
            stream: None,
        },
        ("GET", "/") => HttpResponse::text("200 OK", "rlmul metrics endpoint: GET /metrics\n"),
        ("GET", _) => HttpResponse::text("404 Not Found", "not found\n"),
        _ => HttpResponse::text("405 Method Not Allowed", "GET only\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_and_404s() {
        let r = Registry::new();
        r.counter("smoke_total", "smoke test counter").add(3);
        let server = serve_metrics(&r, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Type: text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("smoke_total 3"), "{ok}");
        // Content-Length matches the body (split at the blank line).
        let (head, body) = ok.split_once("\r\n\r\n").unwrap();
        let len: usize =
            head.lines().find_map(|l| l.strip_prefix("Content-Length: ")).unwrap().parse().unwrap();
        assert_eq!(len, body.len());

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let index = get(addr, "/");
        assert!(index.contains("/metrics"));
        server.shutdown();
    }

    #[test]
    fn malformed_request_head_gets_a_logged_400() {
        let r = Registry::new();
        let server = serve_metrics(&r, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "complete garbage\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{response}");

        // The failure is observable on the endpoint itself.
        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("rlmul_http_bad_requests_total 1"), "{metrics}");
        server.shutdown();
    }

    #[test]
    fn live_updates_are_visible_across_scrapes() {
        let r = Registry::new();
        let c = r.counter("live_total", "h");
        let server = serve_metrics(&r, "127.0.0.1:0").unwrap();
        c.inc();
        assert!(get(server.local_addr(), "/metrics").contains("live_total 1"));
        c.add(9);
        assert!(get(server.local_addr(), "/metrics").contains("live_total 10"));
    }

    #[test]
    fn generic_handler_sees_method_path_and_body() {
        let r = Registry::new();
        let server = serve_http(
            "127.0.0.1:0",
            &r,
            Arc::new(|req: &HttpRequest| {
                HttpResponse::json(
                    "200 OK",
                    format!(
                        "{{\"method\":\"{}\",\"path\":\"{}\",\"len\":{}}}",
                        req.method,
                        req.path,
                        req.body.len()
                    ),
                )
            }),
            "test-http",
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST /echo HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("\"method\":\"POST\""), "{response}");
        assert!(response.contains("\"path\":\"/echo\""), "{response}");
        assert!(response.contains("\"len\":5"), "{response}");
        server.shutdown();
    }

    #[test]
    fn handler_panics_degrade_to_logged_500() {
        let r = Registry::new();
        let server = serve_http(
            "127.0.0.1:0",
            &r,
            Arc::new(|req: &HttpRequest| {
                if req.path == "/boom" {
                    panic!("handler exploded");
                }
                HttpResponse::text("200 OK", "fine\n")
            }),
            "test-http",
        )
        .unwrap();
        let addr = server.local_addr();
        let boom = get(addr, "/boom");
        assert!(boom.starts_with("HTTP/1.1 500"), "{boom}");
        // The endpoint survives and keeps answering.
        let fine = get(addr, "/fine");
        assert!(fine.starts_with("HTTP/1.1 200"), "{fine}");
        assert_eq!(r.counter("rlmul_http_internal_errors_total", "").get(), 1);
        server.shutdown();
    }

    #[test]
    fn explicit_keep_alive_reuses_the_connection() {
        let r = Registry::new();
        let server = serve_http(
            "127.0.0.1:0",
            &r,
            Arc::new(|req: &HttpRequest| HttpResponse::text("200 OK", format!("p={}", req.path))),
            "test-http",
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        for i in 0..3 {
            write!(stream, "GET /r{i} HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").unwrap();
            // Frame by Content-Length: the connection stays open, so
            // read-to-EOF would hang until the server's idle timeout.
            let mut head = Vec::new();
            let mut byte = [0u8; 1];
            while !head.ends_with(b"\r\n\r\n") {
                stream.read_exact(&mut byte).unwrap();
                head.push(byte[0]);
            }
            let head = String::from_utf8(head).unwrap();
            assert!(head.contains("Connection: keep-alive"), "{head}");
            let len: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .unwrap()
                .trim()
                .parse()
                .unwrap();
            let mut body = vec![0u8; len];
            stream.read_exact(&mut body).unwrap();
            assert_eq!(String::from_utf8(body).unwrap(), format!("p=/r{i}"));
        }
        server.shutdown();
    }

    #[test]
    fn without_keep_alive_the_connection_closes() {
        let r = Registry::new();
        let server = serve_http(
            "127.0.0.1:0",
            &r,
            Arc::new(|_: &HttpRequest| HttpResponse::text("200 OK", "once")),
            "test-http",
        )
        .unwrap();
        // The plain client protocol (no Connection header) still gets
        // Connection: close and EOF — the compatibility contract.
        let response = get(server.local_addr(), "/");
        assert!(response.contains("Connection: close"), "{response}");
        server.shutdown();
    }

    #[test]
    fn streaming_response_arrives_in_chunks() {
        let r = Registry::new();
        let server = serve_http(
            "127.0.0.1:0",
            &r,
            Arc::new(|_: &HttpRequest| {
                HttpResponse::streaming(
                    "200 OK",
                    "application/jsonl",
                    Arc::new(|w: &mut dyn Write| {
                        w.write_all(b"first\n")?;
                        w.write_all(b"second\n")?;
                        Ok(())
                    }),
                )
            }),
            "test-http",
        )
        .unwrap();
        let response = get(server.local_addr(), "/stream");
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"), "{response}");
        assert!(response.contains("Transfer-Encoding: chunked"), "{response}");
        let (_, body) = response.split_once("\r\n\r\n").unwrap();
        // Two chunks (hex length framing) plus the terminator.
        assert_eq!(body, "6\r\nfirst\n\r\n7\r\nsecond\n\r\n0\r\n\r\n");
        server.shutdown();
    }

    #[test]
    fn oversized_content_length_is_rejected() {
        let r = Registry::new();
        let server = serve_http(
            "127.0.0.1:0",
            &r,
            Arc::new(|_: &HttpRequest| HttpResponse::text("200 OK", "ok")),
            "test-http",
        )
        .unwrap();
        let mut stream = TcpStream::connect(server.local_addr()).unwrap();
        write!(stream, "POST / HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400"), "{response}");
        server.shutdown();
    }
}
