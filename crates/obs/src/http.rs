//! A tiny from-scratch HTTP/1.1 server exposing one registry to
//! Prometheus scrapers.
//!
//! Endpoints:
//!
//! * `GET /metrics` — the registry in text exposition format;
//! * `GET /` — a one-line index pointing at `/metrics`;
//! * anything else — 404.
//!
//! The accept loop is intentionally serial: the only expected client
//! is a scraper polling every few seconds, and rendering takes
//! microseconds. Each connection is answered and closed
//! (`Connection: close`), so no keep-alive state machine is needed.

use crate::prom::render_prometheus;
use crate::registry::Registry;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Handle to a running metrics endpoint; dropping it (or calling
/// [`MetricsServer::shutdown`]) stops the accept loop.
#[derive(Debug)]
pub struct MetricsServer {
    local: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// The bound address (useful with port 0 requests).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// Stops the accept loop and joins the server thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else { return };
        self.stop.store(true, Ordering::Relaxed);
        // Wake the (blocking) accept call with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        let _ = handle.join();
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9090`; port 0 picks a free port) and
/// serves `registry` from a background thread.
///
/// # Errors
///
/// Propagates bind failures.
pub fn serve_metrics(registry: &Registry, addr: &str) -> io::Result<MetricsServer> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = stop.clone();
    let thread_registry = registry.clone();
    let handle = std::thread::Builder::new()
        .name("rlmul-metrics".into())
        .spawn(move || accept_loop(&listener, &thread_registry, &thread_stop))?;
    Ok(MetricsServer { local, stop, handle: Some(handle) })
}

fn accept_loop(listener: &TcpListener, registry: &Registry, stop: &AtomicBool) {
    for conn in listener.incoming() {
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // Answer errors are the client's problem; keep serving.
        let _ = handle_connection(stream, registry);
    }
}

/// Reads the request head (bounded) and writes one response.
fn handle_connection(mut stream: TcpStream, registry: &Registry) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    let mut buf = [0u8; 4096];
    let mut head = Vec::new();
    loop {
        let n = stream.read(&mut buf)?;
        if n == 0 {
            break;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() >= 16 * 1024 {
            break;
        }
    }
    let (status, content_type, body) = match parse_request_line(&head) {
        None => {
            registry
                .counter("rlmul_http_bad_requests_total", "malformed request heads answered 400")
                .inc();
            eprintln!("rlmul-obs http: 400 bad request ({} head bytes)", head.len());
            ("400 Bad Request", "text/plain; charset=utf-8", "malformed request head\n".into())
        }
        Some((method, path)) => {
            // A panic while routing or rendering must not unwind
            // through the accept loop (killing the endpoint for the
            // rest of the run): degrade to a logged 500 instead.
            match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                route(&method, &path, registry)
            })) {
                Ok(response) => response,
                Err(_) => {
                    registry
                        .counter("rlmul_http_internal_errors_total", "handler panics answered 500")
                        .inc();
                    eprintln!("rlmul-obs http: 500 handler panicked on {method} {path}");
                    (
                        "500 Internal Server Error",
                        "text/plain; charset=utf-8",
                        "internal error\n".into(),
                    )
                }
            }
        }
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Extracts `(method, path)` from the request head, or `None` when
/// the first line is not a `METHOD SP PATH SP HTTP/x` request line.
fn parse_request_line(head: &[u8]) -> Option<(String, String)> {
    let line_end = head.windows(2).position(|w| w == b"\r\n").unwrap_or(head.len());
    let line = String::from_utf8_lossy(&head[..line_end]);
    let mut parts = line.split_whitespace();
    let (method, path, version) = (parts.next()?, parts.next()?, parts.next()?);
    if !version.starts_with("HTTP/") || parts.next().is_some() {
        return None;
    }
    Some((method.to_owned(), path.to_owned()))
}

/// Routes one parsed request to its status/content-type/body triple.
fn route(method: &str, path: &str, registry: &Registry) -> (&'static str, &'static str, String) {
    match (method, path) {
        ("GET", "/metrics") => {
            ("200 OK", "text/plain; version=0.0.4; charset=utf-8", render_prometheus(registry))
        }
        ("GET", "/") => {
            ("200 OK", "text/plain; charset=utf-8", "rlmul metrics endpoint: GET /metrics\n".into())
        }
        ("GET", _) => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".into()),
        _ => ("405 Method Not Allowed", "text/plain; charset=utf-8", "GET only\n".into()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn get(addr: SocketAddr, path: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        response
    }

    #[test]
    fn serves_metrics_and_404s() {
        let r = Registry::new();
        r.counter("smoke_total", "smoke test counter").add(3);
        let server = serve_metrics(&r, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let ok = get(addr, "/metrics");
        assert!(ok.starts_with("HTTP/1.1 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Type: text/plain; version=0.0.4"), "{ok}");
        assert!(ok.contains("smoke_total 3"), "{ok}");
        // Content-Length matches the body (split at the blank line).
        let (head, body) = ok.split_once("\r\n\r\n").unwrap();
        let len: usize =
            head.lines().find_map(|l| l.strip_prefix("Content-Length: ")).unwrap().parse().unwrap();
        assert_eq!(len, body.len());

        let missing = get(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

        let index = get(addr, "/");
        assert!(index.contains("/metrics"));
        server.shutdown();
    }

    #[test]
    fn malformed_request_head_gets_a_logged_400() {
        let r = Registry::new();
        let server = serve_metrics(&r, "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "complete garbage\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 400 Bad Request\r\n"), "{response}");

        // The failure is observable on the endpoint itself.
        let metrics = get(addr, "/metrics");
        assert!(metrics.contains("rlmul_http_bad_requests_total 1"), "{metrics}");
        server.shutdown();
    }

    #[test]
    fn live_updates_are_visible_across_scrapes() {
        let r = Registry::new();
        let c = r.counter("live_total", "h");
        let server = serve_metrics(&r, "127.0.0.1:0").unwrap();
        c.inc();
        assert!(get(server.local_addr(), "/metrics").contains("live_total 1"));
        c.add(9);
        assert!(get(server.local_addr(), "/metrics").contains("live_total 10"));
    }
}
