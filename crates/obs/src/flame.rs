//! Self-profiler export: span trees as collapsed-stack lines and as
//! a human-readable tree.
//!
//! The collapsed format is one line per span path —
//! `root;child;leaf <value>` — which is exactly what
//! `inferno-flamegraph` / `flamegraph.pl` consume. The value is the
//! span's **exclusive** time in microseconds, so stacking the lines
//! reconstructs inclusive times without double counting.

use crate::registry::{Registry, SpanStat};
use std::fmt::Write as _;

/// Renders every span path as a collapsed-stack line (exclusive
/// microseconds). Lines sort by path; zero-valued paths are kept so
/// the tree structure survives even for fast spans.
pub fn collapsed_stacks(registry: &Registry) -> String {
    collapsed_from(&registry.span_stats())
}

/// [`collapsed_stacks`] over an explicit stat slice (e.g. a
/// [`Registry::span_stats_since`] delta).
pub fn collapsed_from(stats: &[SpanStat]) -> String {
    let mut out = String::new();
    for s in stats {
        let _ = writeln!(out, "{} {}", s.path, s.excl_ns / 1_000);
    }
    out
}

/// Renders the span tree with per-path call counts and
/// inclusive/exclusive times, indented by depth — the stdout summary
/// of `rlmul profile`.
pub fn render_span_tree(stats: &[SpanStat]) -> String {
    if stats.is_empty() {
        return "no spans recorded\n".to_owned();
    }
    let mut stats: Vec<&SpanStat> = stats.iter().collect();
    stats.sort_by(|a, b| a.path.cmp(&b.path));
    let mut out = String::new();
    let _ = writeln!(out, "{:<44} {:>8} {:>12} {:>12}", "span", "calls", "incl ms", "excl ms");
    for s in &stats {
        let depth = s.path.matches(';').count();
        let name = s.path.rsplit(';').next().unwrap_or(&s.path);
        let label = format!("{}{}", "  ".repeat(depth), name);
        let _ = writeln!(
            out,
            "{label:<44} {:>8} {:>12.3} {:>12.3}",
            s.calls,
            s.incl_ns as f64 / 1e6,
            s.excl_ns as f64 / 1e6
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> Vec<SpanStat> {
        vec![
            SpanStat { path: "train".into(), calls: 1, incl_ns: 10_000_000, excl_ns: 2_000_000 },
            SpanStat {
                path: "train;step".into(),
                calls: 4,
                incl_ns: 8_000_000,
                excl_ns: 8_000_000,
            },
        ]
    }

    #[test]
    fn collapsed_lines_reconstruct_the_tree() {
        let text = collapsed_from(&stats());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines, ["train 2000", "train;step 8000"]);
        // A collapsed consumer recovers inclusive(train) by summing
        // every line whose stack starts with "train".
        let incl: u64 = lines
            .iter()
            .filter(|l| l.starts_with("train"))
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(incl, 10_000);
    }

    #[test]
    fn tree_rendering_indents_children() {
        let text = render_span_tree(&stats());
        assert!(text.contains("\ntrain "));
        assert!(text.contains("\n  step"));
    }

    #[test]
    fn empty_stats_render_placeholder() {
        assert_eq!(render_span_tree(&[]), "no spans recorded\n");
    }
}
