//! The sharded metrics registry: counters, gauges and log-linear
//! histograms behind cheap cloneable handles.
//!
//! Design goals, in order:
//!
//! 1. **Near-zero disabled cost.** Every handle operation starts with
//!    one branch (`Option` on a fully disabled registry, one relaxed
//!    `AtomicBool` load on a gated one). Instrumentation left in hot
//!    paths costs nothing measurable while nobody is scraping.
//! 2. **Lock-free hot path.** Registration (cold) takes a mutex;
//!    recording touches only relaxed atomics. Counters and histogram
//!    count/sum cells are *striped* over cache-line-padded slots so
//!    concurrent writers on different threads do not bounce one cache
//!    line between cores.
//! 3. **Deterministic exposition.** Families render sorted by name
//!    and children sorted by their label set, so the Prometheus text
//!    output of a given registry state is byte-stable.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Stripes per striped cell. A small power of two: enough that a
/// handful of worker threads rarely collide, small enough that
/// reading a counter (sum of stripes) stays trivial.
const STRIPES: usize = 8;

/// One cache-line-padded atomic slot of a striped cell.
#[derive(Debug, Default)]
#[repr(align(64))]
struct Stripe(AtomicU64);

/// Returns this thread's stripe index, assigned round-robin on first
/// use so threads spread over stripes regardless of their IDs.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    INDEX.with(|i| *i)
}

/// What a metric family measures; drives the Prometheus `# TYPE`
/// line and which sample series the family renders.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Arbitrary instantaneous value.
    Gauge,
    /// Log-linear distribution of observed values.
    Histogram,
}

impl MetricKind {
    pub(crate) fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Default)]
pub(crate) struct CounterCell {
    stripes: [Stripe; STRIPES],
}

impl CounterCell {
    fn add(&self, n: u64) {
        self.stripes[stripe_index()].0.fetch_add(n, Ordering::Relaxed);
    }

    pub(crate) fn get(&self) -> u64 {
        self.stripes.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

#[derive(Debug, Default)]
pub(crate) struct GaugeCell {
    /// `f64` bit pattern; 0 encodes 0.0.
    bits: AtomicU64,
}

impl GaugeCell {
    fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self.bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Log-linear bucket layout shared by every histogram: values from
/// 2⁻³⁰ (≈ 1 ns expressed in seconds) to 2³⁴ (≈ 1.7 × 10¹⁰ — covers
/// FLOP counts and clause sizes too), with [`SUB_BUCKETS`] linear
/// sub-buckets per octave. Bucket 0 is the underflow bucket
/// (`v ≤ 2⁻³⁰`, including non-positive and NaN values); the last
/// bucket is the overflow bucket.
const MIN_LOG2: i32 = -30;
const MAX_LOG2: i32 = 34;
/// Linear sub-buckets per power of two — a ≤ 9% relative quantile
/// error, plenty for latency percentiles.
const SUB_BUCKETS: usize = 4;
/// Total bucket count: underflow + sub-bucketed octaves + overflow.
pub(crate) const NUM_BUCKETS: usize = (MAX_LOG2 - MIN_LOG2) as usize * SUB_BUCKETS + 2;

/// Index of the bucket recording `v`.
fn bucket_index(v: f64) -> usize {
    // NaN and non-positive values land in the underflow bucket.
    if v.is_nan() || v <= 0.0 || v.log2() <= MIN_LOG2 as f64 {
        return 0;
    }
    let pos = (v.log2() - MIN_LOG2 as f64) * SUB_BUCKETS as f64;
    // `pos` is positive here; ceil so the bucket's upper bound is
    // ≥ v (cumulative `le` semantics).
    (pos.ceil() as usize).min(NUM_BUCKETS - 1)
}

/// Upper bound (`le` label) of bucket `i`; `f64::INFINITY` for the
/// overflow bucket.
fn bucket_upper(i: usize) -> f64 {
    if i >= NUM_BUCKETS - 1 {
        return f64::INFINITY;
    }
    2f64.powf(MIN_LOG2 as f64 + i as f64 / SUB_BUCKETS as f64)
}

#[derive(Debug)]
pub(crate) struct HistoCell {
    buckets: Vec<AtomicU64>,
    counts: [Stripe; STRIPES],
    /// Striped sums of observed values, `f64` bit patterns updated by
    /// CAS within one stripe (contention is per-stripe, not global).
    sums: [Stripe; STRIPES],
}

impl Default for HistoCell {
    fn default() -> Self {
        HistoCell {
            buckets: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            counts: Default::default(),
            sums: Default::default(),
        }
    }
}

impl HistoCell {
    fn observe(&self, v: f64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        let s = stripe_index();
        self.counts[s].0.fetch_add(1, Ordering::Relaxed);
        let sum = &self.sums[s].0;
        let mut cur = sum.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + if v.is_finite() { v } else { 0.0 }).to_bits();
            match sum.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.counts.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }

    pub(crate) fn sum(&self) -> f64 {
        self.sums.iter().map(|s| f64::from_bits(s.0.load(Ordering::Relaxed))).sum()
    }

    /// `(upper_bound, cumulative_count)` for every non-empty bucket,
    /// in increasing `le` order (the Prometheus bucket series).
    pub(crate) fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                cum += n;
                out.push((bucket_upper(i), cum));
            }
        }
        out
    }

    /// Estimated quantile `p ∈ [0, 1]`: the upper bound of the bucket
    /// containing the `⌈p·count⌉`-th observation. Monotone in `p` by
    /// construction. Returns 0.0 for an empty histogram.
    pub(crate) fn quantile(&self, p: f64) -> f64 {
        let total: u64 = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b.load(Ordering::Relaxed);
            if cum >= rank {
                let hi = bucket_upper(i);
                return if hi.is_finite() { hi } else { bucket_upper(NUM_BUCKETS - 2) };
            }
        }
        bucket_upper(NUM_BUCKETS - 2)
    }
}

#[derive(Debug)]
pub(crate) enum Cell {
    Counter(Arc<CounterCell>),
    Gauge(Arc<GaugeCell>),
    Histo(Arc<HistoCell>),
}

/// One registered metric family: help text, kind, and children keyed
/// by their rendered (sorted) label pairs.
#[derive(Debug)]
pub(crate) struct Family {
    pub(crate) help: String,
    pub(crate) kind: MetricKind,
    pub(crate) children: BTreeMap<Vec<(String, String)>, Cell>,
}

/// Accumulated timing of one span path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// `;`-joined span names from the root to this span.
    pub path: String,
    /// Completed invocations.
    pub calls: u64,
    /// Total wall time between enter and exit, nanoseconds.
    pub incl_ns: u64,
    /// Inclusive time minus time attributed to child spans,
    /// nanoseconds.
    pub excl_ns: u64,
}

#[derive(Debug, Default)]
pub(crate) struct RegistryInner {
    pub(crate) enabled: AtomicBool,
    pub(crate) families: Mutex<BTreeMap<String, Family>>,
    pub(crate) spans: Mutex<BTreeMap<String, (u64, u64, u64)>>,
}

/// Cheaply cloneable handle to a metrics registry (all clones share
/// one store, like [`crate::Registry`]-typed handles elsewhere in the
/// workspace share their sinks).
///
/// Three states:
///
/// * [`Registry::new`] — enabled: handles record immediately;
/// * [`Registry::gated`] — present but recording is off until
///   [`Registry::enable`]; every handle operation is one relaxed
///   atomic load and a branch while off (the process-wide
///   [`crate::global`] registry starts this way);
/// * [`Registry::disabled`] — no store at all; handles are inert and
///   every operation is a single `Option` branch.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    inner: Option<Arc<RegistryInner>>,
}

impl Registry {
    /// An enabled registry.
    pub fn new() -> Self {
        let r = Registry::gated();
        r.enable();
        r
    }

    /// A registry whose recording is off until [`Registry::enable`].
    pub fn gated() -> Self {
        Registry { inner: Some(Arc::new(RegistryInner::default())) }
    }

    /// A registry that never records; all handles it returns are
    /// inert.
    pub fn disabled() -> Self {
        Registry { inner: None }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(true, Ordering::Relaxed);
        }
    }

    /// Turns recording off (existing values are kept and still
    /// rendered).
    pub fn disable(&self) {
        if let Some(inner) = &self.inner {
            inner.enabled.store(false, Ordering::Relaxed);
        }
    }

    /// Whether handles currently record.
    pub fn is_enabled(&self) -> bool {
        self.inner.as_ref().is_some_and(|i| i.enabled.load(Ordering::Relaxed))
    }

    pub(crate) fn inner(&self) -> Option<&Arc<RegistryInner>> {
        self.inner.as_ref()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        kind: MetricKind,
    ) -> Option<Cell> {
        let inner = self.inner.as_ref()?;
        let name = sanitize_name(name);
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (sanitize_name(k), (*v).to_owned())).collect();
        labels.sort();
        let mut families = inner.families.lock().expect("metric registry poisoned");
        let family = families.entry(name).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            children: BTreeMap::new(),
        });
        if family.kind != kind {
            // A name registered under two kinds is a programming
            // error; the second caller gets an inert handle rather
            // than corrupting the family (and exposition stays
            // parseable).
            debug_assert!(false, "metric registered with two kinds");
            return None;
        }
        let cell = family.children.entry(labels).or_insert_with(|| match kind {
            MetricKind::Counter => Cell::Counter(Arc::new(CounterCell::default())),
            MetricKind::Gauge => Cell::Gauge(Arc::new(GaugeCell::default())),
            MetricKind::Histogram => Cell::Histo(Arc::new(HistoCell::default())),
        });
        Some(match cell {
            Cell::Counter(c) => Cell::Counter(c.clone()),
            Cell::Gauge(g) => Cell::Gauge(g.clone()),
            Cell::Histo(h) => Cell::Histo(h.clone()),
        })
    }

    /// Registers (or re-fetches) the label-free counter `name`.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.labeled_counter(name, help, &[])
    }

    /// Registers (or re-fetches) a counter child with the given label
    /// pairs. Re-registering the same name + labels returns a handle
    /// to the same underlying cell.
    pub fn labeled_counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, labels, MetricKind::Counter) {
            Some(Cell::Counter(cell)) => {
                Counter { inner: self.inner.as_ref().map(|i| (i.clone(), cell)) }
            }
            _ => Counter { inner: None },
        }
    }

    /// Registers (or re-fetches) the label-free gauge `name`.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.labeled_gauge(name, help, &[])
    }

    /// Registers (or re-fetches) a gauge child with the given label
    /// pairs.
    pub fn labeled_gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, MetricKind::Gauge) {
            Some(Cell::Gauge(cell)) => {
                Gauge { inner: self.inner.as_ref().map(|i| (i.clone(), cell)) }
            }
            _ => Gauge { inner: None },
        }
    }

    /// Registers (or re-fetches) the label-free histogram `name`.
    pub fn histogram(&self, name: &str, help: &str) -> Histo {
        self.labeled_histogram(name, help, &[])
    }

    /// Registers (or re-fetches) a histogram child with the given
    /// label pairs.
    pub fn labeled_histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histo {
        match self.register(name, help, labels, MetricKind::Histogram) {
            Some(Cell::Histo(cell)) => {
                Histo { inner: self.inner.as_ref().map(|i| (i.clone(), cell)) }
            }
            _ => Histo { inner: None },
        }
    }

    /// Accumulated per-path span timings, sorted by path.
    pub fn span_stats(&self) -> Vec<SpanStat> {
        let Some(inner) = &self.inner else { return Vec::new() };
        let spans = inner.spans.lock().expect("span table poisoned");
        spans
            .iter()
            .map(|(path, &(calls, incl, excl))| SpanStat {
                path: path.clone(),
                calls,
                incl_ns: incl,
                excl_ns: excl,
            })
            .collect()
    }

    /// Span timings accumulated since `earlier` (an earlier
    /// [`Registry::span_stats`] of the same registry): per-path
    /// deltas, paths with no new calls omitted.
    pub fn span_stats_since(&self, earlier: &[SpanStat]) -> Vec<SpanStat> {
        let base: BTreeMap<&str, &SpanStat> =
            earlier.iter().map(|s| (s.path.as_str(), s)).collect();
        self.span_stats()
            .into_iter()
            .filter_map(|s| {
                let (calls0, incl0, excl0) = base
                    .get(s.path.as_str())
                    .map_or((0, 0, 0), |b| (b.calls, b.incl_ns, b.excl_ns));
                let d = SpanStat {
                    path: s.path,
                    calls: s.calls.saturating_sub(calls0),
                    incl_ns: s.incl_ns.saturating_sub(incl0),
                    excl_ns: s.excl_ns.saturating_sub(excl0),
                };
                (d.calls > 0).then_some(d)
            })
            .collect()
    }
}

/// Monotone counter handle; see [`Registry::counter`].
#[derive(Debug, Clone, Default)]
pub struct Counter {
    inner: Option<(Arc<RegistryInner>, Arc<CounterCell>)>,
}

impl Counter {
    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        let Some((reg, cell)) = &self.inner else { return };
        if reg.enabled.load(Ordering::Relaxed) {
            cell.add(n);
        }
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (sum over stripes).
    pub fn get(&self) -> u64 {
        self.inner.as_ref().map_or(0, |(_, c)| c.get())
    }
}

/// Instantaneous-value gauge handle; see [`Registry::gauge`].
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    inner: Option<(Arc<RegistryInner>, Arc<GaugeCell>)>,
}

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: f64) {
        let Some((reg, cell)) = &self.inner else { return };
        if reg.enabled.load(Ordering::Relaxed) {
            cell.set(v);
        }
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: f64) {
        let Some((reg, cell)) = &self.inner else { return };
        if reg.enabled.load(Ordering::Relaxed) {
            cell.add(delta);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |(_, c)| c.get())
    }
}

/// Log-linear histogram handle; see [`Registry::histogram`].
#[derive(Debug, Clone, Default)]
pub struct Histo {
    inner: Option<(Arc<RegistryInner>, Arc<HistoCell>)>,
}

impl Histo {
    /// Records one observation.
    #[inline]
    pub fn observe(&self, v: f64) {
        let Some((reg, cell)) = &self.inner else { return };
        if reg.enabled.load(Ordering::Relaxed) {
            cell.observe(v);
        }
    }

    /// Records a duration in seconds.
    #[inline]
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Observations recorded.
    pub fn count(&self) -> u64 {
        self.inner.as_ref().map_or(0, |(_, c)| c.count())
    }

    /// Sum of recorded values.
    pub fn sum(&self) -> f64 {
        self.inner.as_ref().map_or(0.0, |(_, c)| c.sum())
    }

    /// Estimated quantile (upper bucket bound); monotone in `p`.
    pub fn quantile(&self, p: f64) -> f64 {
        self.inner.as_ref().map_or(0.0, |(_, c)| c.quantile(p))
    }
}

/// Process-wide default registry, created *gated*: instrumented
/// library code records into it for free (one load + branch per
/// operation) until an entry point — `rlmul train --metrics-addr`,
/// `rlmul profile`, a test — calls `global().enable()`.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::gated)
}

/// Replaces characters outside `[a-zA-Z0-9_:]` with `_` and prefixes
/// a digit-leading name with `_`, yielding a valid Prometheus metric
/// or label name.
fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if i == 0 && c.is_ascii_digit() {
            out.push('_');
        }
        out.push(if ok || c.is_ascii_digit() { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trips() {
        let r = Registry::new();
        let c = r.counter("x_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registration returns the same cell.
        assert_eq!(r.counter("x_total", "a counter").get(), 5);
    }

    #[test]
    fn disabled_and_gated_registries_do_not_record() {
        let d = Registry::disabled();
        let c = d.counter("x_total", "h");
        c.inc();
        assert_eq!(c.get(), 0);

        let g = Registry::gated();
        let c = g.counter("x_total", "h");
        c.inc();
        assert_eq!(c.get(), 0);
        g.enable();
        c.inc();
        assert_eq!(c.get(), 1);
        g.disable();
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    fn gauge_set_and_add() {
        let r = Registry::new();
        let g = r.gauge("g", "h");
        g.set(2.5);
        g.add(-1.0);
        assert!((g.get() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_quantiles_are_monotone_and_bracket_samples() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "h");
        for i in 1..=1000 {
            h.observe(i as f64 / 1000.0); // 1 ms .. 1 s
        }
        assert_eq!(h.count(), 1000);
        assert!((h.sum() - 500.5).abs() < 1e-9);
        let (p50, p95, p99) = (h.quantile(0.50), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        // Log-linear buckets with 4 sub-buckets/octave: ≤ ~19% high.
        assert!((0.5..0.65).contains(&p50), "{p50}");
        assert!((0.95..1.25).contains(&p99), "{p99}");
    }

    #[test]
    fn histogram_underflow_and_overflow_are_captured() {
        let r = Registry::new();
        let h = r.histogram("wide", "h");
        h.observe(0.0);
        h.observe(-3.0);
        h.observe(f64::NAN);
        h.observe(1e300);
        assert_eq!(h.count(), 4);
        let buckets = h.cumulative(); // helper below
        assert_eq!(buckets.last().unwrap().1, 4);
    }

    impl Histo {
        fn cumulative(&self) -> Vec<(f64, u64)> {
            self.inner.as_ref().map_or_else(Vec::new, |(_, c)| c.cumulative_buckets())
        }
    }

    #[test]
    fn kind_conflicts_yield_inert_handles_in_release() {
        // In debug builds this would debug_assert; here we only check
        // the contract shape by registering matching kinds twice.
        let r = Registry::new();
        let a = r.counter("same", "h");
        let b = r.counter("same", "h");
        a.inc();
        assert_eq!(b.get(), 1);
    }

    #[test]
    fn sanitize_names() {
        assert_eq!(sanitize_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_name("bad-name.x"), "bad_name_x");
        assert_eq!(sanitize_name("9lives"), "_9lives");
        assert_eq!(sanitize_name(""), "_");
    }

    #[test]
    fn labeled_children_are_distinct() {
        let r = Registry::new();
        let a = r.labeled_counter("m_total", "h", &[("kind", "and")]);
        let b = r.labeled_counter("m_total", "h", &[("kind", "mbe")]);
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 2);
        assert_eq!(b.get(), 3);
    }
}
