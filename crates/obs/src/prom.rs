//! Prometheus text exposition format (version 0.0.4) rendering.
//!
//! The output is deterministic for a given registry state: families
//! sort by metric name, children by their (already key-sorted) label
//! pairs, and histogram buckets by increasing `le`. Only non-empty
//! buckets are rendered (the bucket series stays cumulative and
//! parseable; empty log-linear buckets would otherwise dominate the
//! payload ~500:1).

use crate::registry::{Cell, Registry};
use std::fmt::Write as _;

/// Escapes a `# HELP` text: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double-quote and newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

/// Renders a float the way Prometheus expects (`+Inf` for the
/// unbounded bucket).
fn fmt_value(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_owned()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_owned()
    } else if v.is_nan() {
        "NaN".to_owned()
    } else {
        format!("{v}")
    }
}

/// Renders `{a="x",b="y"}` (empty string for no labels), with an
/// optional extra pair appended last (used for `le`).
fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label_value(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

/// Renders the whole registry in Prometheus text exposition format.
/// A disabled registry renders as the empty string.
pub fn render_prometheus(registry: &Registry) -> String {
    let Some(inner) = registry.inner() else { return String::new() };
    let families = inner.families.lock().expect("metric registry poisoned");
    let mut out = String::new();
    for (name, family) in families.iter() {
        let _ = writeln!(out, "# HELP {name} {}", escape_help(&family.help));
        let _ = writeln!(out, "# TYPE {name} {}", family.kind.as_str());
        for (labels, cell) in &family.children {
            match cell {
                Cell::Counter(c) => {
                    let _ = writeln!(out, "{name}{} {}", render_labels(labels, None), c.get());
                }
                Cell::Gauge(g) => {
                    let _ = writeln!(
                        out,
                        "{name}{} {}",
                        render_labels(labels, None),
                        fmt_value(g.get())
                    );
                }
                Cell::Histo(h) => {
                    let buckets = h.cumulative_buckets();
                    let count = h.count();
                    for (le, cum) in &buckets {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            render_labels(labels, Some(("le", &fmt_value(*le))))
                        );
                    }
                    // The +Inf bucket always exists and equals count.
                    if buckets.last().is_none_or(|(le, _)| le.is_finite()) {
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {count}",
                            render_labels(labels, Some(("le", "+Inf")))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_sum{} {}",
                        render_labels(labels, None),
                        fmt_value(h.sum())
                    );
                    let _ = writeln!(out, "{name}_count{} {count}", render_labels(labels, None));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn escaping_rules() {
        assert_eq!(escape_help("a\\b\nc"), "a\\\\b\\nc");
        assert_eq!(escape_label_value("q\"v\\w\nx"), "q\\\"v\\\\w\\nx");
    }

    #[test]
    fn counter_and_gauge_render_with_sorted_labels() {
        let r = Registry::new();
        r.labeled_counter("zzz_total", "last family", &[]).add(7);
        let c = r.labeled_counter("aaa_total", "first family", &[("z", "1"), ("a", "2")]);
        c.add(3);
        r.gauge("mid_gauge", "a gauge").set(1.5);
        let text = render_prometheus(&r);
        let lines: Vec<&str> = text.lines().collect();
        // Families in name order; label keys sorted within a child.
        assert_eq!(lines[0], "# HELP aaa_total first family");
        assert_eq!(lines[1], "# TYPE aaa_total counter");
        assert_eq!(lines[2], "aaa_total{a=\"2\",z=\"1\"} 3");
        assert!(text.contains("mid_gauge 1.5"));
        assert!(text.contains("zzz_total 7"));
        assert!(text.find("mid_gauge").unwrap() < text.find("zzz_total").unwrap());
    }

    #[test]
    fn histogram_renders_cumulative_buckets_sum_count() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "latency");
        h.observe(0.001);
        h.observe(0.001);
        h.observe(0.5);
        let text = render_prometheus(&r);
        assert!(text.contains("# TYPE lat_seconds histogram"));
        assert!(text.contains("lat_seconds_count 3"));
        assert!(text.contains("lat_seconds_bucket{le=\"+Inf\"} 3"));
        // Bucket lines are cumulative and in increasing le order.
        let bucket_counts: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("lat_seconds_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(bucket_counts.windows(2).all(|w| w[0] <= w[1]), "{bucket_counts:?}");
        assert_eq!(*bucket_counts.last().unwrap(), 3);
    }

    #[test]
    fn empty_histogram_still_renders_inf_bucket() {
        let r = Registry::new();
        let _ = r.histogram("empty_seconds", "h");
        let text = render_prometheus(&r);
        assert!(text.contains("empty_seconds_bucket{le=\"+Inf\"} 0"));
        assert!(text.contains("empty_seconds_count 0"));
    }

    #[test]
    fn disabled_registry_renders_empty() {
        assert_eq!(render_prometheus(&Registry::disabled()), "");
    }
}
