//! Live observability for RL-MUL: a metrics registry, hierarchical
//! span tracing, Prometheus text exposition over a from-scratch
//! HTTP/1.1 endpoint, and a flamegraph-compatible self-profiler —
//! with no dependencies and `forbid(unsafe_code)`.
//!
//! PR 4's JSONL telemetry answers "what happened" after a run; this
//! crate answers "what is happening" *during* one. The pieces:
//!
//! * [`Registry`] — sharded, lock-cheap [`Counter`]s, [`Gauge`]s and
//!   log-linear [`Histo`]grams (with p50/p95/p99 estimation). The
//!   disabled path is one branch, like `TelemetrySink`, so
//!   instrumentation stays in hot paths unconditionally.
//! * [`Registry::span`] — RAII span guards nesting per thread,
//!   accumulating inclusive/exclusive wall time per root-to-leaf
//!   span path.
//! * [`serve_metrics`] — `GET /metrics` in Prometheus text
//!   exposition format (`rlmul train --metrics-addr 127.0.0.1:9090`).
//! * [`collapsed_stacks`] — span paths as collapsed-stack lines
//!   (`a;b;c 1234`) that `inferno`/`flamegraph.pl` turn into SVG
//!   flamegraphs (`rlmul profile`).
//! * [`global`] — the process-wide gated registry the instrumented
//!   crates (env, cache, synthesis, SAT, NN, agents) record into;
//!   recording is off (one branch per operation) until an entry
//!   point calls `global().enable()`.
//! * [`TraceCtx`] — a per-job trace context (job-scoped trace ID +
//!   monotonic event seq) with a bounded, subscribable event
//!   timeline; disabled by default with the same one-branch
//!   discipline as the registry. The `rlmul serve` daemon mints one
//!   per job and streams it live over `GET /jobs/<id>/events`.
//!
//! # Example
//!
//! ```
//! use rlmul_obs::{serve_metrics, Registry};
//!
//! let registry = Registry::new();
//! let steps = registry.counter("demo_steps_total", "Steps taken.");
//! let latency = registry.histogram("demo_step_seconds", "Step latency.");
//! {
//!     let _span = registry.span("step");
//!     steps.inc();
//!     latency.observe(0.004);
//! }
//! let server = serve_metrics(&registry, "127.0.0.1:0")?;
//! println!("scrape http://{}/metrics", server.local_addr());
//! assert!(rlmul_obs::render_prometheus(&registry).contains("demo_steps_total 1"));
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod flame;
mod http;
mod prom;
mod registry;
mod span;
mod trace;

pub use flame::{collapsed_from, collapsed_stacks, render_span_tree};
pub use http::{
    dispatch, handle_connection, read_request, serve_http, serve_metrics, write_response, Handler,
    HttpRequest, HttpResponse, HttpServer, MetricsServer, StreamBody,
};
pub use prom::render_prometheus;
pub use registry::{global, Counter, Gauge, Histo, MetricKind, Registry, SpanStat};
pub use span::SpanGuard;
pub use trace::{TraceCtx, TraceEvent, TRACE_DEFAULT_CAPACITY};
