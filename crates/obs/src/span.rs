//! Hierarchical span tracing via RAII guards.
//!
//! A span measures one region of code. Guards nest per thread: while
//! a guard is alive, further spans opened **on the same thread**
//! become its children, and the parent's *exclusive* time excludes
//! everything attributed to children. Each thread has its own stack,
//! so spans opened on synthesis worker threads form their own roots —
//! cross-thread parenting is deliberately not inferred (a scoped
//! fan-out has no single meaningful parent timeline).
//!
//! Completed spans accumulate `(calls, inclusive ns, exclusive ns)`
//! under their `;`-joined root-to-leaf path in the owning registry;
//! [`crate::Registry::span_stats`] reads the table and
//! [`crate::collapsed_stacks`] renders it as flamegraph input.
//!
//! Cost model: opening a span on a disabled registry is one branch
//! (plus one relaxed load on a gated one) — no clock is read. An
//! enabled span reads the clock twice and takes one short mutex at
//! drop to fold into the path table; use spans at step/phase
//! granularity, counters and histograms inside tight loops.

use crate::registry::{Registry, RegistryInner};
use std::cell::RefCell;
use std::marker::PhantomData;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Instant;

struct Frame {
    name: &'static str,
    start: Instant,
    child_ns: u64,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for one active span; created by [`Registry::span`].
/// Closing (dropping) the guard records the span. Guards are not
/// `Send`: a span must end on the thread that opened it.
#[must_use = "a span measures the scope of its guard; bind it to a variable"]
pub struct SpanGuard {
    /// `Some` only when the span actually pushed a frame.
    registry: Option<Arc<RegistryInner>>,
    _not_send: PhantomData<*const ()>,
}

impl Registry {
    /// Opens a span named `name` on the current thread. While the
    /// returned guard lives, nested spans on this thread become
    /// children. A disabled or gated-off registry returns an inert
    /// guard without reading the clock.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let Some(inner) = self.inner() else {
            return SpanGuard { registry: None, _not_send: PhantomData };
        };
        if !inner.enabled.load(Ordering::Relaxed) {
            return SpanGuard { registry: None, _not_send: PhantomData };
        }
        STACK.with(|stack| {
            stack.borrow_mut().push(Frame { name, start: Instant::now(), child_ns: 0 });
        });
        SpanGuard { registry: Some(inner.clone()), _not_send: PhantomData }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(registry) = self.registry.take() else { return };
        let (path, incl_ns, excl_ns) = match STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let frame = stack.pop()?;
            let incl_ns = frame.start.elapsed().as_nanos() as u64;
            let excl_ns = incl_ns.saturating_sub(frame.child_ns);
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += incl_ns;
            }
            let mut path = String::new();
            for f in stack.iter() {
                path.push_str(f.name);
                path.push(';');
            }
            path.push_str(frame.name);
            Some((path, incl_ns, excl_ns))
        }) {
            Some(done) => done,
            None => return,
        };
        let mut spans = registry.spans.lock().expect("span table poisoned");
        let slot = spans.entry(path).or_insert((0, 0, 0));
        slot.0 += 1;
        slot.1 += incl_ns;
        slot.2 += excl_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn stat<'a>(stats: &'a [crate::SpanStat], path: &str) -> &'a crate::SpanStat {
        stats.iter().find(|s| s.path == path).unwrap_or_else(|| panic!("no span {path}"))
    }

    #[test]
    fn nested_spans_accumulate_paths_and_exclusive_time() {
        let r = Registry::new();
        {
            let _root = r.span("root");
            std::thread::sleep(Duration::from_millis(4));
            {
                let _child = r.span("child");
                std::thread::sleep(Duration::from_millis(6));
            }
        }
        let stats = r.span_stats();
        let root = stat(&stats, "root");
        let child = stat(&stats, "root;child");
        assert_eq!(root.calls, 1);
        assert_eq!(child.calls, 1);
        assert!(root.incl_ns >= child.incl_ns);
        assert!(child.incl_ns >= 5_000_000, "{}", child.incl_ns);
        // Root's exclusive time excludes the child's inclusive time.
        assert_eq!(root.excl_ns, root.incl_ns - child.incl_ns);
    }

    #[test]
    fn sibling_threads_form_independent_roots() {
        let r = Registry::new();
        std::thread::scope(|scope| {
            let _outer = r.span("outer");
            for _ in 0..2 {
                let r = r.clone();
                scope.spawn(move || {
                    let _w = r.span("worker");
                    std::thread::sleep(Duration::from_millis(1));
                });
            }
        });
        let stats = r.span_stats();
        let worker = stat(&stats, "worker");
        assert_eq!(worker.calls, 2, "worker spans are thread-local roots, not outer's children");
        assert!(stats.iter().all(|s| s.path != "outer;worker"));
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let r = Registry::gated();
        {
            let _g = r.span("never");
        }
        assert!(r.span_stats().is_empty());
        let d = Registry::disabled();
        {
            let _g = d.span("never");
        }
        assert!(d.span_stats().is_empty());
    }

    #[test]
    fn span_stats_since_diffs_by_path() {
        let r = Registry::new();
        {
            let _a = r.span("a");
        }
        let base = r.span_stats();
        {
            let _a = r.span("a");
        }
        {
            let _b = r.span("b");
        }
        let delta = r.span_stats_since(&base);
        assert_eq!(delta.len(), 2);
        assert_eq!(stat(&delta, "a").calls, 1);
        assert_eq!(stat(&delta, "b").calls, 1);
    }

    #[test]
    fn enable_mid_span_does_not_corrupt_the_stack() {
        let r = Registry::gated();
        let inert = r.span("off"); // gated off: no frame pushed
        r.enable();
        {
            let _on = r.span("on");
        }
        drop(inert); // must not pop "on"'s sibling frames
        let stats = r.span_stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].path, "on");
    }
}
