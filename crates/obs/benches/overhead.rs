//! Disabled-path overhead guard.
//!
//! Instrumentation stays in hot paths unconditionally, so the
//! disabled path must be effectively free. This bench both *reports*
//! (criterion timings for the disabled counter/histogram/span paths
//! against an uninstrumented baseline) and *guards*: a custom `main`
//! runs a median-of-rounds comparison and asserts the disabled hot
//! path stays within noise of no instrumentation, failing the bench
//! run (and the CI obs job) on a regression.

use criterion::{black_box, criterion_group, Criterion};
use rlmul_obs::{Registry, TraceCtx};
use std::time::{Duration, Instant};

/// A few-ns xorshift workload per iteration — realistic enough that a
/// one-branch disabled check should vanish next to it.
#[inline]
fn workload(mut x: u64) -> u64 {
    for _ in 0..8 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

fn bench_disabled_paths(c: &mut Criterion) {
    let gated = Registry::gated(); // present but off: one load + branch
    let disabled = Registry::disabled(); // never constructed: one Option branch
    let gated_counter = gated.counter("bench_total", "h");
    let gated_histo = gated.histogram("bench_seconds", "h");
    let disabled_counter = disabled.counter("bench_total", "h");

    let mut g = c.benchmark_group("obs_overhead");
    g.bench_function("baseline_no_instrumentation", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            x
        })
    });
    g.bench_function("disabled_counter_inc", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            disabled_counter.inc();
            x
        })
    });
    g.bench_function("gated_counter_inc", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            gated_counter.inc();
            x
        })
    });
    g.bench_function("gated_histogram_observe", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            gated_histo.observe(x as f64);
            x
        })
    });
    g.bench_function("gated_span_open_close", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            let _span = gated.span("bench");
            x
        })
    });
    let trace = TraceCtx::disabled();
    g.bench_function("disabled_trace_emit", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            trace.emit("bench", "detail");
            x
        })
    });
    g.finish();

    // Enabled reference points for the BENCH log: what live recording
    // costs the hot path when someone is actually watching.
    let enabled = Registry::new();
    let counter = enabled.counter("bench_total", "h");
    let histo = enabled.histogram("bench_seconds", "h");
    let mut g = c.benchmark_group("obs_enabled");
    g.bench_function("counter_inc", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = workload(black_box(x));
            counter.inc();
            x
        })
    });
    g.bench_function("histogram_observe", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = workload(black_box(x));
            histo.observe(x as f64);
            x
        })
    });
    g.bench_function("span_open_close", |b| {
        let mut x = 1u64;
        b.iter(|| {
            x = workload(black_box(x));
            let _span = enabled.span("bench");
            x
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));
    targets = bench_disabled_paths
);

/// Median nanoseconds per iteration of `f` over `rounds` timed
/// batches of `iters` calls each.
fn median_ns_per_iter<F: FnMut() -> u64>(mut f: F, rounds: usize, iters: u64) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            let mut acc = 0u64;
            for _ in 0..iters {
                acc = acc.wrapping_add(f());
            }
            black_box(acc);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The CI guard: gated-off instrumentation (counter + histogram +
/// span on every iteration) must stay within noise of none. The bound
/// is deliberately loose — a disabled op is one relaxed load and a
/// branch, so a real regression (taking a lock, reading the clock)
/// overshoots it by an order of magnitude, while scheduler noise on a
/// shared CI runner does not.
fn overhead_guard() {
    const ROUNDS: usize = 15;
    const ITERS: u64 = 400_000;
    let gated = Registry::gated();
    let counter = gated.counter("guard_total", "h");
    let histo = gated.histogram("guard_seconds", "h");

    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let baseline = median_ns_per_iter(
        || {
            x = workload(black_box(x));
            x
        },
        ROUNDS,
        ITERS,
    );
    let trace = TraceCtx::disabled();
    let mut y = 0x9e37_79b9_7f4a_7c15u64;
    let instrumented = median_ns_per_iter(
        || {
            y = workload(black_box(y));
            counter.inc();
            histo.observe(y as f64);
            trace.emit("guard", "step");
            let _span = gated.span("guard");
            y
        },
        ROUNDS,
        ITERS,
    );
    let ratio = instrumented / baseline.max(0.1);
    println!(
        "guard: baseline {baseline:.2} ns/iter, disabled-instrumented {instrumented:.2} ns/iter \
         (ratio {ratio:.3})"
    );
    assert!(
        ratio < 2.0,
        "disabled observability path regressed: {instrumented:.2} ns/iter vs baseline \
         {baseline:.2} ns/iter ({ratio:.2}x, bound 2.0x)"
    );
}

fn main() {
    benches();
    overhead_guard();
}
