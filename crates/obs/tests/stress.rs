//! Multi-thread stress tests for the registry: concurrent updates
//! must lose nothing (exact counter totals), and histogram quantiles
//! must stay monotone under concurrent observation.

use rlmul_obs::Registry;

#[test]
fn concurrent_counter_updates_sum_exactly() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 200_000;
    let registry = Registry::new();
    let counter = registry.counter("stress_total", "concurrently bumped");
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let counter = counter.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    let text = rlmul_obs::render_prometheus(&registry);
    assert!(text.contains(&format!("stress_total {}", THREADS as u64 * PER_THREAD)), "{text}");
}

#[test]
fn concurrent_mixed_updates_keep_every_family_consistent() {
    const THREADS: usize = 6;
    const PER_THREAD: u64 = 50_000;
    let registry = Registry::new();
    let counter = registry.counter("mixed_total", "counter under contention");
    let gauge = registry.gauge("mixed_gauge", "gauge under contention");
    let histo = registry.histogram("mixed_seconds", "histogram under contention");
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let (counter, gauge, histo) = (counter.clone(), gauge.clone(), histo.clone());
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    counter.add(2);
                    gauge.add(1.0);
                    // Spread observations over ~6 octaves, thread-dependent.
                    histo.observe(1e-3 * ((t as u64 * PER_THREAD + i) % 64 + 1) as f64);
                }
            });
        }
    });
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), 2 * n);
    assert!((gauge.get() - n as f64).abs() < 1e-6, "gauge CAS adds must not lose updates");
    assert_eq!(histo.count(), n);
    // Quantiles are monotone and bracket the observed range.
    let qs: Vec<f64> =
        [0.0, 0.25, 0.5, 0.75, 0.95, 0.99, 1.0].iter().map(|&p| histo.quantile(p)).collect();
    assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    assert!(qs[0] >= 0.5e-3 && qs[6] <= 0.1, "{qs:?}");
}

#[test]
fn concurrent_registration_of_one_name_shares_the_cell() {
    const THREADS: usize = 8;
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                // Every thread registers the same family and bumps it.
                registry.counter("race_total", "registered by racing threads").add(1);
            });
        }
    });
    assert_eq!(registry.counter("race_total", "registered by racing threads").get(), 8);
}

#[test]
fn concurrent_spans_on_many_threads_accumulate_all_calls() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 500;
    let registry = Registry::new();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let registry = registry.clone();
            scope.spawn(move || {
                for _ in 0..PER_THREAD {
                    let _outer = registry.span("outer");
                    let _inner = registry.span("inner");
                }
            });
        }
    });
    let stats = registry.span_stats();
    let outer = stats.iter().find(|s| s.path == "outer").unwrap();
    let inner = stats.iter().find(|s| s.path == "outer;inner").unwrap();
    assert_eq!(outer.calls, THREADS as u64 * PER_THREAD);
    assert_eq!(inner.calls, THREADS as u64 * PER_THREAD);
    assert!(outer.incl_ns >= inner.incl_ns);
}
