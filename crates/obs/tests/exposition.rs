//! Golden-file test for the Prometheus text exposition: family
//! ordering, label-key ordering, HELP/TYPE lines, escaping, and the
//! histogram bucket/sum/count series are all byte-pinned.

use rlmul_obs::{render_prometheus, Registry};

/// Builds a registry exercising every exposition feature:
/// multi-child families, unsorted label input, characters that need
/// escaping in help text and label values, and a histogram with a
/// known bucket layout.
fn golden_registry() -> Registry {
    let r = Registry::new();
    r.labeled_counter(
        "rlmul_cache_lookups_total",
        "Cache lookups by result.",
        &[("result", "hit")],
    )
    .add(30);
    r.labeled_counter(
        "rlmul_cache_lookups_total",
        "Cache lookups by result.",
        &[("result", "miss")],
    )
    .add(10);
    // Labels given out of key order; the renderer must sort them.
    r.labeled_gauge(
        "rlmul_build_info",
        "Build metadata with \"quotes\", back\\slashes\nand newlines.",
        &[("version", "0.1.0"), ("profile", "re\"lease\\x\ny")],
    )
    .set(1.0);
    let h = r.histogram("rlmul_synth_run_seconds", "Synthesis wall time.");
    // 0.5 and 2.0 are exact powers of two: each lands in the bucket
    // whose upper bound is itself, keeping the golden le values tidy.
    h.observe(0.5);
    h.observe(0.5);
    h.observe(2.0);
    r.counter("zz_last_total", "Sorts last.").add(1);
    r
}

const GOLDEN: &str = "\
# HELP rlmul_build_info Build metadata with \"quotes\", back\\\\slashes\\nand newlines.
# TYPE rlmul_build_info gauge
rlmul_build_info{profile=\"re\\\"lease\\\\x\\ny\",version=\"0.1.0\"} 1
# HELP rlmul_cache_lookups_total Cache lookups by result.
# TYPE rlmul_cache_lookups_total counter
rlmul_cache_lookups_total{result=\"hit\"} 30
rlmul_cache_lookups_total{result=\"miss\"} 10
# HELP rlmul_synth_run_seconds Synthesis wall time.
# TYPE rlmul_synth_run_seconds histogram
rlmul_synth_run_seconds_bucket{le=\"0.5\"} 2
rlmul_synth_run_seconds_bucket{le=\"2\"} 3
rlmul_synth_run_seconds_bucket{le=\"+Inf\"} 3
rlmul_synth_run_seconds_sum 3
rlmul_synth_run_seconds_count 3
# HELP zz_last_total Sorts last.
# TYPE zz_last_total counter
zz_last_total 1
";

#[test]
fn exposition_matches_golden() {
    let text = render_prometheus(&golden_registry());
    assert_eq!(text, GOLDEN, "---- got ----\n{text}\n---- want ----\n{GOLDEN}");
}

#[test]
fn exposition_is_stable_across_renders() {
    let r = golden_registry();
    assert_eq!(render_prometheus(&r), render_prometheus(&r));
}
