//! Versioned binary snapshot codec and crash-safe checkpoint store.
//!
//! Long RL-MUL runs spend hours of synthesis wall-clock per
//! configuration; a crash that loses a run is the dominant cost at
//! scale. This crate is the durable-state substrate the training
//! runtime builds on:
//!
//! * [`Encoder`]/[`Decoder`] — a hand-rolled little-endian byte codec
//!   (no serde, no external dependencies) with explicit length
//!   prefixes, so every snapshot is a pure function of the values
//!   written and decoding never reads past a corrupted length;
//! * [`Record`] — the encode/decode trait snapshot types implement,
//!   with blanket implementations for primitives, tuples, `Option`
//!   and `Vec`;
//! * [`write_snapshot`]/[`read_snapshot`] — a framed container
//!   (magic, format version, record tag, payload, CRC-32) written
//!   atomically: the bytes go to a temporary file which is fsynced
//!   and then renamed over the destination, so a crash mid-write
//!   never corrupts the previous snapshot;
//! * [`SnapshotStore`] — rolling `latest`/`best` snapshots plus
//!   optional step-tagged history inside one run directory.
//!
//! # Example
//!
//! ```
//! use rlmul_ckpt::{Decoder, Encoder, Record};
//!
//! // Any record round-trips through the byte codec.
//! let mut enc = Encoder::new();
//! (7u64, vec![1.5f64, -2.5]).encode(&mut enc);
//! let bytes = enc.into_bytes();
//! let mut dec = Decoder::new(&bytes);
//! let back = <(u64, Vec<f64>)>::decode(&mut dec)?;
//! dec.finish()?; // every byte consumed
//! assert_eq!(back, (7, vec![1.5, -2.5]));
//! # Ok::<(), rlmul_ckpt::CkptError>(())
//! ```
//!
//! File-level framing adds integrity on top:
//!
//! ```no_run
//! use rlmul_ckpt::{read_snapshot, write_snapshot};
//!
//! write_snapshot("run/latest.ckpt", "demo", &42u64)?;
//! let value: u64 = read_snapshot("run/latest.ckpt", "demo")?;
//! assert_eq!(value, 42);
//! # Ok::<(), rlmul_ckpt::CkptError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod codec;
mod crc;
mod error;
mod file;
mod store;

pub use codec::{Decoder, Encoder, Record};
pub use crc::crc32;
pub use error::CkptError;
pub use file::{read_snapshot, write_snapshot, FORMAT_VERSION, MAGIC};
pub use store::SnapshotStore;
