//! Checkpoint error type.

use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced while encoding, decoding or storing snapshots.
#[derive(Debug)]
#[non_exhaustive]
pub enum CkptError {
    /// The byte stream ended before the value was complete.
    Truncated {
        /// What was being decoded.
        what: &'static str,
        /// Bytes needed beyond the end of the stream.
        needed: usize,
    },
    /// A decoded value is outside its legal domain (bad enum tag,
    /// boolean byte, oversized length, …).
    Invalid {
        /// Human-readable description.
        what: String,
    },
    /// The payload checksum does not match the stored CRC-32.
    Corrupted {
        /// CRC recorded in the file.
        stored: u32,
        /// CRC computed over the payload read.
        computed: u32,
    },
    /// The file is not an RL-MUL snapshot (bad magic), has an
    /// unsupported format version, or holds a different record kind.
    WrongFormat {
        /// Human-readable description.
        what: String,
    },
    /// Decoding finished with unread bytes left in the stream.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
    /// An operating-system I/O failure.
    Io(io::Error),
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Truncated { what, needed } => {
                write!(f, "truncated snapshot: {needed} byte(s) missing while decoding {what}")
            }
            CkptError::Invalid { what } => write!(f, "invalid snapshot value: {what}"),
            CkptError::Corrupted { stored, computed } => write!(
                f,
                "snapshot corrupted: stored CRC {stored:#010x}, computed {computed:#010x}"
            ),
            CkptError::WrongFormat { what } => write!(f, "wrong snapshot format: {what}"),
            CkptError::TrailingBytes { remaining } => {
                write!(f, "snapshot has {remaining} trailing byte(s) after the last record")
            }
            CkptError::Io(e) => write!(f, "snapshot i/o: {e}"),
        }
    }
}

impl Error for CkptError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CkptError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CkptError {
    fn from(e: io::Error) -> Self {
        CkptError::Io(e)
    }
}
