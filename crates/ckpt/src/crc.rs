//! CRC-32 (IEEE 802.3 polynomial), the snapshot integrity check.

/// The reflected IEEE polynomial used by zlib, PNG and Ethernet.
const POLY: u32 = 0xedb8_8320;

/// Byte-at-a-time lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32/IEEE of `bytes` (init `0xffff_ffff`, final xor, reflected —
/// the same convention as zlib's `crc32`).
///
/// ```
/// // The classic check value.
/// assert_eq!(rlmul_ckpt::crc32(b"123456789"), 0xcbf4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414f_a339);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        data[40] ^= 0x10;
        assert_ne!(clean, crc32(&data));
    }
}
