//! Framed snapshot files with atomic replacement.
//!
//! On-disk layout, all little-endian:
//!
//! ```text
//! offset  size  field
//! 0       8     magic  "RLMULCK1"
//! 8       4     format version (FORMAT_VERSION)
//! 12      8+k   record kind, length-prefixed UTF-8 (k bytes)
//! …       8     payload length n
//! …       n     payload (the Record's encoding)
//! …       4     CRC-32 over every preceding byte
//! ```
//!
//! Writes are atomic with respect to crashes: bytes go to a `.tmp`
//! sibling which is fsynced, renamed over the destination, and the
//! parent directory is fsynced so the rename itself is durable. A
//! reader therefore sees either the old snapshot or the new one,
//! never a torn mixture; torn `.tmp` files from a crash are simply
//! ignored by the next run.

use crate::codec::{Decoder, Encoder, Record};
use crate::crc::crc32;
use crate::CkptError;
use std::fs::{self, File};
use std::io::Write;
use std::path::Path;

/// Magic bytes identifying an RL-MUL snapshot file.
pub const MAGIC: &[u8; 8] = b"RLMULCK1";

/// Current snapshot format version. Bump on any incompatible layout
/// change; readers reject other versions outright.
pub const FORMAT_VERSION: u32 = 1;

/// Encodes `record` and writes it atomically to `path`.
///
/// `kind` tags the record type (for example `"dqn"` or `"a2c"`) so a
/// resume of the wrong agent fails with a clear error instead of a
/// garbled decode. The parent directory is created if missing.
///
/// # Errors
///
/// Propagates filesystem errors as [`CkptError::Io`].
pub fn write_snapshot<R: Record, P: AsRef<Path>>(
    path: P,
    kind: &str,
    record: &R,
) -> Result<(), CkptError> {
    let path = path.as_ref();
    let mut enc = Encoder::new();
    record.encode(&mut enc);
    let payload = enc.into_bytes();

    let mut frame = Vec::with_capacity(payload.len() + 64);
    frame.extend_from_slice(MAGIC);
    frame.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    frame.extend_from_slice(&(kind.len() as u64).to_le_bytes());
    frame.extend_from_slice(kind.as_bytes());
    frame.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    frame.extend_from_slice(&payload);
    let crc = crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());

    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        fs::create_dir_all(dir)?;
    }
    let tmp = path.with_extension("ckpt.tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(&frame)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    // Make the rename itself durable. Directory fsync is a Unix
    // notion; elsewhere the rename alone is the best available.
    #[cfg(unix)]
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        File::open(dir)?.sync_all()?;
    }
    Ok(())
}

/// Reads, verifies and decodes the snapshot at `path`.
///
/// `expected_kind` must match the tag the snapshot was written with;
/// pass the same constant the writer used.
///
/// # Errors
///
/// * [`CkptError::Io`] for filesystem failures;
/// * [`CkptError::WrongFormat`] for bad magic, an unsupported
///   version, or a kind mismatch;
/// * [`CkptError::Corrupted`] when the CRC does not match;
/// * any decoding error from the payload.
pub fn read_snapshot<R: Record, P: AsRef<Path>>(
    path: P,
    expected_kind: &str,
) -> Result<R, CkptError> {
    let bytes = fs::read(path.as_ref())?;
    if bytes.len() < MAGIC.len() + 4 {
        return Err(CkptError::WrongFormat { what: "file shorter than the header".into() });
    }
    if &bytes[..MAGIC.len()] != MAGIC {
        return Err(CkptError::WrongFormat { what: "bad magic (not an RL-MUL snapshot)".into() });
    }
    if bytes.len() < 4 {
        return Err(CkptError::WrongFormat { what: "missing trailing CRC".into() });
    }
    // Verify integrity before trusting any length field.
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(CkptError::Corrupted { stored, computed });
    }

    let mut dec = Decoder::new(&body[MAGIC.len()..]);
    let version = dec.get_u32()?;
    if version != FORMAT_VERSION {
        return Err(CkptError::WrongFormat {
            what: format!("format version {version} (this build reads {FORMAT_VERSION})"),
        });
    }
    let kind = dec.get_str()?;
    if kind != expected_kind {
        return Err(CkptError::WrongFormat {
            what: format!("snapshot kind `{kind}` (expected `{expected_kind}`)"),
        });
    }
    let payload = dec.get_bytes()?;
    dec.finish()?;
    R::from_bytes(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rlmul-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn snapshot_round_trips_through_disk() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("latest.ckpt");
        let record: Vec<(u64, f64)> = vec![(3, 0.25), (4, -1.0)];
        write_snapshot(&path, "test", &record).unwrap();
        let back: Vec<(u64, f64)> = read_snapshot(&path, "test").unwrap();
        assert_eq!(back, record);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn overwrite_replaces_previous_snapshot() {
        let dir = tmpdir("overwrite");
        let path = dir.join("latest.ckpt");
        write_snapshot(&path, "test", &1u64).unwrap();
        write_snapshot(&path, "test", &2u64).unwrap();
        assert_eq!(read_snapshot::<u64, _>(&path, "test").unwrap(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flipped_bit_is_detected_by_crc() {
        let dir = tmpdir("crc");
        let path = dir.join("latest.ckpt");
        write_snapshot(&path, "test", &vec![7u64; 16]).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_snapshot::<Vec<u64>, _>(&path, "test"),
            Err(CkptError::Corrupted { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_and_version_mismatches_are_wrong_format() {
        let dir = tmpdir("kind");
        let path = dir.join("latest.ckpt");
        write_snapshot(&path, "dqn", &0u64).unwrap();
        assert!(matches!(
            read_snapshot::<u64, _>(&path, "a2c"),
            Err(CkptError::WrongFormat { .. })
        ));
        fs::write(&path, b"NOTMAGIC").unwrap();
        assert!(matches!(
            read_snapshot::<u64, _>(&path, "dqn"),
            Err(CkptError::WrongFormat { .. })
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_file_is_rejected() {
        let dir = tmpdir("trunc");
        let path = dir.join("latest.ckpt");
        write_snapshot(&path, "test", &vec![1u64, 2, 3]).unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 9]).unwrap();
        assert!(read_snapshot::<Vec<u64>, _>(&path, "test").is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
