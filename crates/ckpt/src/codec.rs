//! The little-endian byte codec every snapshot is built from.
//!
//! All multi-byte integers are little-endian; floats are encoded as
//! their IEEE-754 bit patterns (so `NaN` payloads and signed zeros
//! round-trip bit-exactly — checkpoint/resume must be bit-identical,
//! not merely approximately equal). Variable-length data carries a
//! `u64` length prefix, validated against the remaining stream before
//! any allocation so corrupted lengths fail cleanly instead of
//! exhausting memory.

use crate::CkptError;

/// Append-only byte sink for encoding snapshots.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f32` bit pattern.
    pub fn put_f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends an `f64` bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Appends a boolean as one byte (`0`/`1`).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends length-prefixed raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Cursor over an encoded byte stream.
#[derive(Debug)]
pub struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Decoder { bytes, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Fails unless every byte has been consumed — catches encoder /
    /// decoder drift and appended garbage.
    ///
    /// # Errors
    ///
    /// [`CkptError::TrailingBytes`] when bytes remain.
    pub fn finish(&self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::TrailingBytes { remaining: self.remaining() })
        }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated { what, needed: n - self.remaining() });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream.
    pub fn get_u8(&mut self) -> Result<u8, CkptError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream.
    pub fn get_u32(&mut self) -> Result<u32, CkptError> {
        Ok(u32::from_le_bytes(self.take(4, "u32")?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream.
    pub fn get_u64(&mut self) -> Result<u64, CkptError> {
        Ok(u64::from_le_bytes(self.take(8, "u64")?.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream.
    pub fn get_i64(&mut self) -> Result<i64, CkptError> {
        Ok(i64::from_le_bytes(self.take(8, "i64")?.try_into().expect("8 bytes")))
    }

    /// Reads a `u64` and converts it to `usize`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream, or
    /// [`CkptError::Invalid`] if the value overflows `usize`.
    pub fn get_usize(&mut self) -> Result<usize, CkptError> {
        let v = self.get_u64()?;
        usize::try_from(v)
            .map_err(|_| CkptError::Invalid { what: format!("usize value {v} overflows") })
    }

    /// Reads an `f32` bit pattern.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream.
    pub fn get_f32(&mut self) -> Result<f32, CkptError> {
        Ok(f32::from_bits(u32::from_le_bytes(self.take(4, "f32")?.try_into().expect("4 bytes"))))
    }

    /// Reads an `f64` bit pattern.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream.
    pub fn get_f64(&mut self) -> Result<f64, CkptError> {
        Ok(f64::from_bits(u64::from_le_bytes(self.take(8, "f64")?.try_into().expect("8 bytes"))))
    }

    /// Reads a boolean byte, rejecting anything but `0`/`1`.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream, or
    /// [`CkptError::Invalid`] for a non-boolean byte.
    pub fn get_bool(&mut self) -> Result<bool, CkptError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(CkptError::Invalid { what: format!("boolean byte {b:#04x}") }),
        }
    }

    /// Reads a length prefix that must fit in the remaining stream
    /// when each element occupies at least `min_element_size` bytes —
    /// the guard that keeps corrupted lengths from driving giant
    /// allocations.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] at end of stream, or
    /// [`CkptError::Invalid`] for an impossible length.
    pub fn get_len(&mut self, min_element_size: usize) -> Result<usize, CkptError> {
        let len = self.get_usize()?;
        let need = len.saturating_mul(min_element_size.max(1));
        if need > self.remaining() {
            return Err(CkptError::Invalid {
                what: format!(
                    "length {len} needs {need} byte(s) but only {} remain",
                    self.remaining()
                ),
            });
        }
        Ok(len)
    }

    /// Reads length-prefixed raw bytes.
    ///
    /// # Errors
    ///
    /// [`CkptError::Truncated`] or [`CkptError::Invalid`] on a bad
    /// length.
    pub fn get_bytes(&mut self) -> Result<&'a [u8], CkptError> {
        let len = self.get_len(1)?;
        self.take(len, "bytes")
    }

    /// Reads a length-prefixed UTF-8 string.
    ///
    /// # Errors
    ///
    /// As [`Decoder::get_bytes`], plus [`CkptError::Invalid`] for
    /// non-UTF-8 contents.
    pub fn get_str(&mut self) -> Result<String, CkptError> {
        let bytes = self.get_bytes()?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| CkptError::Invalid { what: "non-UTF-8 string".into() })
    }
}

/// A value that round-trips through the byte codec.
///
/// Implementations must be exact inverses: `decode(encode(x)) == x`
/// for every representable value, consuming exactly the bytes that
/// were written.
pub trait Record: Sized {
    /// Appends this value to `enc`.
    fn encode(&self, enc: &mut Encoder);

    /// Reads one value from `dec`.
    ///
    /// # Errors
    ///
    /// Any [`CkptError`] raised by the underlying reads.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError>;

    /// Convenience: encodes `self` into a fresh byte vector.
    fn to_bytes(&self) -> Vec<u8> {
        let mut enc = Encoder::new();
        self.encode(&mut enc);
        enc.into_bytes()
    }

    /// Convenience: decodes a value that must span all of `bytes`.
    ///
    /// # Errors
    ///
    /// Any decoding error, plus [`CkptError::TrailingBytes`] when
    /// `bytes` holds more than one value.
    fn from_bytes(bytes: &[u8]) -> Result<Self, CkptError> {
        let mut dec = Decoder::new(bytes);
        let v = Self::decode(&mut dec)?;
        dec.finish()?;
        Ok(v)
    }
}

macro_rules! record_via {
    ($($t:ty => $put:ident / $get:ident),* $(,)?) => {$(
        impl Record for $t {
            fn encode(&self, enc: &mut Encoder) {
                enc.$put(*self);
            }
            fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
                dec.$get()
            }
        }
    )*};
}

record_via! {
    u8 => put_u8 / get_u8,
    u32 => put_u32 / get_u32,
    u64 => put_u64 / get_u64,
    i64 => put_i64 / get_i64,
    usize => put_usize / get_usize,
    f32 => put_f32 / get_f32,
    f64 => put_f64 / get_f64,
    bool => put_bool / get_bool,
}

impl Record for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        dec.get_str()
    }
}

impl<T: Record> Record for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        match dec.get_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            b => Err(CkptError::Invalid { what: format!("Option tag {b:#04x}") }),
        }
    }
}

impl<T: Record> Record for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.len());
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        // Every Record consumes at least one byte, which bounds any
        // corrupted length by the remaining stream size.
        let len = dec.get_len(1)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl<A: Record, B: Record> Record for (A, B) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(dec)?, B::decode(dec)?))
    }
}

impl<A: Record, B: Record, C: Record> Record for (A, B, C) {
    fn encode(&self, enc: &mut Encoder) {
        self.0.encode(enc);
        self.1.encode(enc);
        self.2.encode(enc);
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok((A::decode(dec)?, B::decode(dec)?, C::decode(dec)?))
    }
}

impl<T: Record + Default + Copy, const N: usize> Record for [T; N] {
    fn encode(&self, enc: &mut Encoder) {
        for v in self {
            v.encode(enc);
        }
    }
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        let mut out = [T::default(); N];
        for slot in &mut out {
            *slot = T::decode(dec)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = Encoder::new();
        0xabu8.encode(&mut enc);
        0xdead_beefu32.encode(&mut enc);
        u64::MAX.encode(&mut enc);
        (-42i64).encode(&mut enc);
        7usize.encode(&mut enc);
        1.5f32.encode(&mut enc);
        f64::NEG_INFINITY.encode(&mut enc);
        true.encode(&mut enc);
        String::from("snapshot").encode(&mut enc);
        let bytes = enc.into_bytes();
        let mut dec = Decoder::new(&bytes);
        assert_eq!(u8::decode(&mut dec).unwrap(), 0xab);
        assert_eq!(u32::decode(&mut dec).unwrap(), 0xdead_beef);
        assert_eq!(u64::decode(&mut dec).unwrap(), u64::MAX);
        assert_eq!(i64::decode(&mut dec).unwrap(), -42);
        assert_eq!(usize::decode(&mut dec).unwrap(), 7);
        assert_eq!(f32::decode(&mut dec).unwrap(), 1.5);
        assert_eq!(f64::decode(&mut dec).unwrap(), f64::NEG_INFINITY);
        assert!(bool::decode(&mut dec).unwrap());
        assert_eq!(String::decode(&mut dec).unwrap(), "snapshot");
        dec.finish().unwrap();
    }

    #[test]
    fn nan_bit_patterns_round_trip_exactly() {
        let weird = f64::from_bits(0x7ff8_0000_0000_1234);
        let back = f64::from_bytes(&weird.to_bytes()).unwrap();
        assert_eq!(back.to_bits(), weird.to_bits());
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u32, f64)> = vec![(1, 0.5), (2, -0.25)];
        assert_eq!(Vec::<(u32, f64)>::from_bytes(&v.to_bytes()).unwrap(), v);
        let o: Option<Vec<u64>> = Some(vec![9, 10]);
        assert_eq!(Option::<Vec<u64>>::from_bytes(&o.to_bytes()).unwrap(), o);
        let n: Option<u8> = None;
        assert_eq!(Option::<u8>::from_bytes(&n.to_bytes()).unwrap(), n);
        let a: [u64; 4] = [1, 2, 3, 4];
        assert_eq!(<[u64; 4]>::from_bytes(&a.to_bytes()).unwrap(), a);
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let bytes = vec![(1u64, 2u64); 3].to_bytes();
        for cut in 0..bytes.len() {
            let r = Vec::<(u64, u64)>::from_bytes(&bytes[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes decoded successfully");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut enc = Encoder::new();
        enc.put_u64(u64::MAX); // a Vec length of 2^64-1
        let bytes = enc.into_bytes();
        assert!(Vec::<u8>::from_bytes(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 5u64.to_bytes();
        bytes.push(0);
        assert!(matches!(u64::from_bytes(&bytes), Err(CkptError::TrailingBytes { .. })));
    }

    #[test]
    fn bad_bool_and_option_tags_are_rejected() {
        assert!(bool::from_bytes(&[2]).is_err());
        assert!(Option::<u8>::from_bytes(&[9, 0]).is_err());
    }
}
