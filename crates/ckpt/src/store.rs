//! Rolling snapshot management for one run directory.

use crate::codec::Record;
use crate::file::{read_snapshot, write_snapshot};
use crate::CkptError;
use std::path::{Path, PathBuf};

/// Manages the snapshots of one training run inside a directory:
///
/// * `latest.ckpt` — rolled on every periodic checkpoint and on
///   shutdown; the file `resume` starts from;
/// * `best.ckpt` — rolled whenever the run improves its best cost, so
///   the strongest agent survives even a later divergence;
/// * `step-<n>.ckpt` — optional pinned history written by
///   [`SnapshotStore::save_step`].
///
/// Every write goes through the atomic tmp + fsync + rename path of
/// [`write_snapshot`], so a crash at any instant leaves the previous
/// snapshot intact.
#[derive(Debug, Clone)]
pub struct SnapshotStore {
    dir: PathBuf,
    kind: String,
}

impl SnapshotStore {
    /// A store rooted at `dir`, tagging every snapshot with `kind`.
    /// The directory is created lazily on the first write.
    pub fn new<P: AsRef<Path>>(dir: P, kind: &str) -> Self {
        SnapshotStore { dir: dir.as_ref().to_path_buf(), kind: kind.to_owned() }
    }

    /// The run directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The record kind this store reads and writes.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Path of the rolling latest snapshot.
    pub fn latest_path(&self) -> PathBuf {
        self.dir.join("latest.ckpt")
    }

    /// Path of the rolling best snapshot.
    pub fn best_path(&self) -> PathBuf {
        self.dir.join("best.ckpt")
    }

    /// Atomically rolls `latest.ckpt`.
    ///
    /// # Errors
    ///
    /// Propagates [`CkptError`] from the underlying write.
    pub fn save_latest<R: Record>(&self, record: &R) -> Result<(), CkptError> {
        write_snapshot(self.latest_path(), &self.kind, record)
    }

    /// Atomically rolls `best.ckpt`.
    ///
    /// # Errors
    ///
    /// Propagates [`CkptError`] from the underlying write.
    pub fn save_best<R: Record>(&self, record: &R) -> Result<(), CkptError> {
        write_snapshot(self.best_path(), &self.kind, record)
    }

    /// Path of the pinned snapshot for `step`.
    pub fn step_path(&self, step: usize) -> PathBuf {
        self.dir.join(format!("step-{step:08}.ckpt"))
    }

    /// Writes a pinned `step-<n>.ckpt` snapshot.
    ///
    /// # Errors
    ///
    /// Propagates [`CkptError`] from the underlying write.
    pub fn save_step<R: Record>(&self, step: usize, record: &R) -> Result<(), CkptError> {
        write_snapshot(self.step_path(step), &self.kind, record)
    }

    /// Reads the pinned `step-<n>.ckpt` snapshot.
    ///
    /// # Errors
    ///
    /// As [`SnapshotStore::load_latest`].
    pub fn load_step<R: Record>(&self, step: usize) -> Result<R, CkptError> {
        read_snapshot(self.step_path(step), &self.kind)
    }

    /// Reads `latest.ckpt`.
    ///
    /// # Errors
    ///
    /// Propagates [`CkptError`] from the underlying read, including
    /// [`CkptError::Io`] when no snapshot exists yet.
    pub fn load_latest<R: Record>(&self) -> Result<R, CkptError> {
        read_snapshot(self.latest_path(), &self.kind)
    }

    /// Reads `best.ckpt`.
    ///
    /// # Errors
    ///
    /// As [`SnapshotStore::load_latest`].
    pub fn load_best<R: Record>(&self) -> Result<R, CkptError> {
        read_snapshot(self.best_path(), &self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    #[test]
    fn store_rolls_latest_and_best_independently() {
        let dir = std::env::temp_dir().join(format!("rlmul-store-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = SnapshotStore::new(&dir, "test");
        store.save_latest(&10u64).unwrap();
        store.save_best(&10u64).unwrap();
        store.save_latest(&20u64).unwrap(); // later but worse
        assert_eq!(store.load_latest::<u64>().unwrap(), 20);
        assert_eq!(store.load_best::<u64>().unwrap(), 10);
        store.save_step(3, &30u64).unwrap();
        assert!(dir.join("step-00000003.ckpt").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_snapshot_is_io_error() {
        let store = SnapshotStore::new("/nonexistent/run", "test");
        assert!(matches!(store.load_latest::<u64>(), Err(CkptError::Io(_))));
    }
}
