//! Property tests for the snapshot codec and the file frame: random
//! records must round-trip bit-exactly, and every corruption of the
//! encoded form — truncation anywhere, any flipped byte in a written
//! snapshot file, a wrong record kind — must be rejected loudly
//! rather than decoded into a silently different training state.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_ckpt::{read_snapshot, write_snapshot, Decoder, Record};

/// A nested record exercising every codec primitive the real
/// snapshots use: integers, IEEE-754 bit patterns (including NaNs
/// drawn from random bit strings), options, strings, tuples and
/// variable-length vectors. The codec composes tuples up to arity 3,
/// so wider shapes nest — exactly like the real snapshot structs.
type Nested =
    ((u64, Vec<f64>, Option<(u32, String)>), (Vec<(u32, u32)>, [u64; 4], Vec<bool>), Vec<f32>);

fn random_nested(rng: &mut StdRng) -> Nested {
    let word = |rng: &mut StdRng| -> String {
        let len = rng.gen_range(0..12);
        (0..len).map(|_| char::from(rng.gen_range(b' '..=b'~'))).collect()
    };
    (
        (
            rng.gen(),
            (0..rng.gen_range(0..8)).map(|_| f64::from_bits(rng.gen())).collect(),
            if rng.gen() { Some((rng.gen(), word(rng))) } else { None },
        ),
        (
            (0..rng.gen_range(0..10)).map(|_| (rng.gen(), rng.gen())).collect(),
            [rng.gen(), rng.gen(), rng.gen(), rng.gen()],
            (0..rng.gen_range(0..16)).map(|_| rng.gen()).collect(),
        ),
        (0..rng.gen_range(0..8)).map(|_| f32::from_bits(rng.gen())).collect(),
    )
}

/// Bit-exact equality (plain `==` would equate distinct NaN payloads
/// and `0.0 == -0.0`).
fn assert_bits_eq(a: &Nested, b: &Nested) {
    assert_eq!(a.0 .0, b.0 .0);
    assert_eq!(a.0 .1.len(), b.0 .1.len());
    for (x, y) in a.0 .1.iter().zip(&b.0 .1) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
    assert_eq!(a.0 .2, b.0 .2);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2.len(), b.2.len());
    for (x, y) in a.2.iter().zip(&b.2) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

fn scratch(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("rlmul-ckpt-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_records_round_trip_bit_exactly(seed in 0u64..1 << 32) {
        let value = random_nested(&mut StdRng::seed_from_u64(seed));
        let bytes = value.to_bytes();
        let back = Nested::from_bytes(&bytes).unwrap();
        assert_bits_eq(&value, &back);
    }

    #[test]
    fn any_truncation_is_rejected(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = random_nested(&mut rng);
        let bytes = value.to_bytes();
        // The empty prefix, a random interior prefix, and the
        // one-byte-short prefix must all fail to decode — either with
        // a decode error or with leftover trailing bytes (when the
        // cut lands on a value boundary inside the stream).
        let cuts = [0, rng.gen_range(0..bytes.len()), bytes.len() - 1];
        for cut in cuts {
            let mut dec = Decoder::new(&bytes[..cut]);
            let failed = match Nested::decode(&mut dec) {
                Err(_) => true,
                Ok(_) => dec.finish().is_err(),
            };
            prop_assert!(failed, "prefix of {cut}/{} bytes decoded cleanly", bytes.len());
        }
        // Appended garbage is caught by the trailing-bytes check.
        let mut padded = bytes.clone();
        padded.push(rng.gen());
        prop_assert!(Nested::from_bytes(&padded).is_err());
    }

    #[test]
    fn any_corrupted_file_byte_is_rejected(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = random_nested(&mut rng);
        let path = scratch(&format!("flip-{seed}.ckpt"));
        write_snapshot(&path, "prop", &value).unwrap();

        // Sanity: the untouched file reads back bit-exactly.
        let back: Nested = read_snapshot(&path, "prop").unwrap();
        assert_bits_eq(&value, &back);

        // Flip one random byte anywhere in the frame — magic, version,
        // kind, payload or CRC — and the read must fail (CRC-32
        // detects every single-byte error).
        let mut bytes = std::fs::read(&path).unwrap();
        let at = rng.gen_range(0..bytes.len());
        // XOR with a non-zero mask always changes the byte.
        bytes[at] ^= rng.gen_range(1..=255u8);
        let corrupt = scratch(&format!("flip-{seed}-bad.ckpt"));
        std::fs::write(&corrupt, &bytes).unwrap();
        prop_assert!(
            read_snapshot::<Nested, _>(&corrupt, "prop").is_err(),
            "flipped byte {at} was not detected"
        );

        // A wrong record kind is rejected even with a valid CRC.
        prop_assert!(read_snapshot::<Nested, _>(&path, "other").is_err());
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&corrupt);
    }
}
