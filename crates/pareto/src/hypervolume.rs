use crate::front::{pareto_front, Point2};

/// 2-D hypervolume indicator: the area dominated by `points` and
/// bounded by `reference` (paper Fig. 13 — larger is better).
///
/// Points that do not dominate the reference contribute nothing.
/// Dominated and duplicate points are filtered internally, so any
/// point cloud can be passed directly.
pub fn hypervolume_2d(points: &[Point2], reference: Point2) -> f64 {
    let front: Vec<Point2> = pareto_front(points)
        .into_iter()
        .filter(|p| p.x < reference.x && p.y < reference.y)
        .collect();
    // Front is sorted by ascending x, hence descending y.
    let mut hv = 0.0;
    let mut prev_y = reference.y;
    for p in front {
        hv += (reference.x - p.x) * (prev_y - p.y);
        prev_y = p.y;
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_rectangle() {
        let hv = hypervolume_2d(&[Point2::new(1.0, 1.0)], Point2::new(3.0, 4.0));
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn staircase_sums_disjoint_rectangles() {
        let pts = vec![Point2::new(1.0, 3.0), Point2::new(2.0, 2.0), Point2::new(3.0, 1.0)];
        let hv = hypervolume_2d(&pts, Point2::new(4.0, 4.0));
        // (4−1)(4−3) + (4−2)(3−2) + (4−3)(2−1) = 3 + 2 + 1.
        assert!((hv - 6.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_points_do_not_change_hv() {
        let base = vec![Point2::new(1.0, 3.0), Point2::new(3.0, 1.0)];
        let with_dominated =
            vec![Point2::new(1.0, 3.0), Point2::new(3.0, 1.0), Point2::new(3.5, 3.5)];
        let r = Point2::new(4.0, 4.0);
        assert_eq!(hypervolume_2d(&base, r), hypervolume_2d(&with_dominated, r));
    }

    #[test]
    fn points_beyond_reference_contribute_nothing() {
        let hv = hypervolume_2d(&[Point2::new(5.0, 5.0)], Point2::new(4.0, 4.0));
        assert_eq!(hv, 0.0);
        assert_eq!(hypervolume_2d(&[], Point2::new(4.0, 4.0)), 0.0);
    }

    #[test]
    fn better_fronts_have_larger_hv() {
        let r = Point2::new(10.0, 10.0);
        let worse = vec![Point2::new(5.0, 5.0)];
        let better = vec![Point2::new(4.0, 4.0)];
        assert!(hypervolume_2d(&better, r) > hypervolume_2d(&worse, r));
    }
}
