//! Three-objective (area, delay, power) Pareto utilities for the
//! unreduced Eq. 9 cost — used by the objective-reduction ablation.

use crate::front::Point2;
use crate::hypervolume::hypervolume_2d;

/// A point in 3-D objective space; all coordinates are minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point3 {
    /// First objective (e.g. area).
    pub x: f64,
    /// Second objective (e.g. delay).
    pub y: f64,
    /// Third objective (e.g. power).
    pub z: f64,
}

impl Point3 {
    /// Creates a point.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3 { x, y, z }
    }
}

/// Whether `a` Pareto-dominates `b` in three objectives.
pub fn dominates_3d(a: Point3, b: Point3) -> bool {
    a.x <= b.x && a.y <= b.y && a.z <= b.z && (a.x < b.x || a.y < b.y || a.z < b.z)
}

/// The non-dominated subset (quadratic scan; fine for the point
/// counts a synthesis sweep produces).
pub fn pareto_front_3d(points: &[Point3]) -> Vec<Point3> {
    let mut front: Vec<Point3> = Vec::new();
    for &p in points {
        if points.iter().any(|&q| dominates_3d(q, p)) {
            continue;
        }
        if !front.contains(&p) {
            front.push(p);
        }
    }
    front
}

/// 3-D hypervolume by slicing along `z` (the HSO decomposition):
/// between consecutive z-levels, the dominated volume is the 2-D
/// hypervolume of every point at or below the slab, times the slab
/// thickness.
pub fn hypervolume_3d(points: &[Point3], reference: Point3) -> f64 {
    let mut inside: Vec<Point3> = points
        .iter()
        .copied()
        .filter(|p| p.x < reference.x && p.y < reference.y && p.z < reference.z)
        .collect();
    if inside.is_empty() {
        return 0.0;
    }
    inside.sort_by(|a, b| a.z.partial_cmp(&b.z).expect("finite objectives"));
    let mut zs: Vec<f64> = inside.iter().map(|p| p.z).collect();
    zs.dedup();
    zs.push(reference.z);
    let mut hv = 0.0;
    for w in zs.windows(2) {
        let (z_lo, z_hi) = (w[0], w[1]);
        let slab: Vec<Point2> =
            inside.iter().filter(|p| p.z <= z_lo).map(|p| Point2::new(p.x, p.y)).collect();
        hv += hypervolume_2d(&slab, Point2::new(reference.x, reference.y)) * (z_hi - z_lo);
    }
    hv
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_box() {
        let hv = hypervolume_3d(&[Point3::new(1.0, 1.0, 1.0)], Point3::new(3.0, 4.0, 2.0));
        assert!((hv - 2.0 * 3.0 * 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_disjoint_boxes_union() {
        // Points that only overlap partially.
        let pts = vec![Point3::new(0.0, 2.0, 0.0), Point3::new(2.0, 0.0, 2.0)];
        let r = Point3::new(4.0, 4.0, 4.0);
        // Box A: [0,4]x[2,4]x[0,4] = 4·2·4 = 32.
        // Box B: [2,4]x[0,4]x[2,4] = 2·4·2 = 16; overlap [2,4]x[2,4]x[2,4] = 8.
        let expected = 32.0 + 16.0 - 8.0;
        assert!((hypervolume_3d(&pts, r) - expected).abs() < 1e-9);
    }

    #[test]
    fn dominated_points_change_nothing() {
        let base = vec![Point3::new(1.0, 1.0, 1.0)];
        let extra = vec![Point3::new(1.0, 1.0, 1.0), Point3::new(2.0, 2.0, 2.0)];
        let r = Point3::new(3.0, 3.0, 3.0);
        assert!((hypervolume_3d(&base, r) - hypervolume_3d(&extra, r)).abs() < 1e-12);
    }

    #[test]
    fn front_3d_keeps_trade_offs() {
        let pts = vec![
            Point3::new(1.0, 3.0, 2.0),
            Point3::new(3.0, 1.0, 2.0),
            Point3::new(2.0, 2.0, 3.0), // dominated? no: z is worst but x,y middle — check
            Point3::new(4.0, 4.0, 4.0), // dominated by all others? by (1,3,2)? 1≤4,3≤4,2≤4 yes
        ];
        let front = pareto_front_3d(&pts);
        assert!(front.contains(&Point3::new(1.0, 3.0, 2.0)));
        assert!(front.contains(&Point3::new(3.0, 1.0, 2.0)));
        assert!(front.contains(&Point3::new(2.0, 2.0, 3.0)));
        assert!(!front.contains(&Point3::new(4.0, 4.0, 4.0)));
    }

    #[test]
    fn empty_and_outside_inputs() {
        let r = Point3::new(1.0, 1.0, 1.0);
        assert_eq!(hypervolume_3d(&[], r), 0.0);
        assert_eq!(hypervolume_3d(&[Point3::new(2.0, 0.0, 0.0)], r), 0.0);
    }

    /// 3-D hypervolume of points sharing one z equals the 2-D
    /// hypervolume times the z-extent.
    #[test]
    fn degenerate_z_matches_2d() {
        let pts2 = vec![Point2::new(1.0, 3.0), Point2::new(3.0, 1.0)];
        let pts3: Vec<Point3> = pts2.iter().map(|p| Point3::new(p.x, p.y, 0.0)).collect();
        let hv2 = hypervolume_2d(&pts2, Point2::new(4.0, 4.0));
        let hv3 = hypervolume_3d(&pts3, Point3::new(4.0, 4.0, 5.0));
        assert!((hv3 - hv2 * 5.0).abs() < 1e-9);
    }
}
