/// Mean ± standard-deviation aggregation of repeated optimization
/// trajectories (paper Fig. 12 plots mean PPA with a std-dev band).
#[derive(Debug, Clone, PartialEq)]
pub struct TrajectoryStats {
    /// Per-step mean of the tracked metric.
    pub mean: Vec<f64>,
    /// Per-step (population) standard deviation.
    pub std: Vec<f64>,
    /// Number of trajectories aggregated.
    pub runs: usize,
}

/// Aggregates equal-meaning trajectories step-by-step. Shorter runs
/// are extended by holding their last value (an optimizer that
/// stopped keeps its best), so the output has the length of the
/// longest run.
///
/// Returns an all-empty result for empty input.
pub fn aggregate_trajectories(runs: &[Vec<f64>]) -> TrajectoryStats {
    let len = runs.iter().map(Vec::len).max().unwrap_or(0);
    let mut mean = Vec::with_capacity(len);
    let mut std = Vec::with_capacity(len);
    let at = |run: &Vec<f64>, t: usize| -> Option<f64> {
        if run.is_empty() {
            None
        } else {
            Some(run.get(t).copied().unwrap_or(*run.last().expect("nonempty")))
        }
    };
    for t in 0..len {
        let vals: Vec<f64> = runs.iter().filter_map(|r| at(r, t)).collect();
        let n = vals.len() as f64;
        let m = vals.iter().sum::<f64>() / n;
        let v = vals.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n;
        mean.push(m);
        std.push(v.sqrt());
    }
    TrajectoryStats { mean, std, runs: runs.iter().filter(|r| !r.is_empty()).count() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_of_two_runs() {
        let s = aggregate_trajectories(&[vec![1.0, 3.0], vec![3.0, 5.0]]);
        assert_eq!(s.mean, vec![2.0, 4.0]);
        assert_eq!(s.std, vec![1.0, 1.0]);
        assert_eq!(s.runs, 2);
    }

    #[test]
    fn shorter_runs_hold_their_last_value() {
        let s = aggregate_trajectories(&[vec![2.0], vec![4.0, 6.0]]);
        assert_eq!(s.mean, vec![3.0, 4.0]);
    }

    #[test]
    fn empty_input_is_empty() {
        let s = aggregate_trajectories(&[]);
        assert!(s.mean.is_empty() && s.std.is_empty());
        assert_eq!(s.runs, 0);
    }

    #[test]
    fn single_run_has_zero_std() {
        let s = aggregate_trajectories(&[vec![1.0, 2.0, 3.0]]);
        assert_eq!(s.std, vec![0.0, 0.0, 0.0]);
    }
}
