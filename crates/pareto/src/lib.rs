//! Pareto-front utilities: dominance, front extraction, the
//! hypervolume indicator (paper Fig. 13/14) and optimization-
//! trajectory statistics (paper Fig. 12).
//!
//! All objectives are *minimized* (area, delay, power), matching the
//! paper's convention; hypervolume is measured against a reference
//! point that every front member must dominate.
//!
//! # Example
//!
//! ```
//! use rlmul_pareto::{pareto_front, hypervolume_2d, Point2};
//!
//! let pts = vec![
//!     Point2::new(4.0, 1.0),
//!     Point2::new(2.0, 2.0),
//!     Point2::new(3.0, 3.0), // dominated by (2, 2)
//!     Point2::new(1.0, 4.0),
//! ];
//! let front = pareto_front(&pts);
//! assert_eq!(front.len(), 3);
//! let hv = hypervolume_2d(&front, Point2::new(5.0, 5.0));
//! assert!(hv > 0.0);
//! ```

#![forbid(unsafe_code)]

mod front;
mod hypervolume;
mod three;
mod trajectory;

pub use front::{dominates, pareto_front, pareto_front_indices, Point2};
pub use hypervolume::hypervolume_2d;
pub use three::{dominates_3d, hypervolume_3d, pareto_front_3d, Point3};
pub use trajectory::{aggregate_trajectories, TrajectoryStats};
