/// A point in 2-D objective space; both coordinates are minimized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point2 {
    /// First objective (e.g. area in µm²).
    pub x: f64,
    /// Second objective (e.g. delay in ns).
    pub y: f64,
}

impl Point2 {
    /// Creates a point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2 { x, y }
    }
}

/// Whether `a` Pareto-dominates `b` (no worse in both objectives,
/// strictly better in at least one).
pub fn dominates(a: Point2, b: Point2) -> bool {
    a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y)
}

/// Indices of the non-dominated points in `points`, sorted by
/// ascending `x` (ties keep the first occurrence; exact duplicates
/// are de-duplicated).
pub fn pareto_front_indices(points: &[Point2]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..points.len()).collect();
    order.sort_by(|&i, &j| {
        points[i]
            .x
            .partial_cmp(&points[j].x)
            .expect("objectives must be finite")
            .then(points[i].y.partial_cmp(&points[j].y).expect("objectives must be finite"))
    });
    let mut front = Vec::new();
    let mut best_y = f64::INFINITY;
    let mut last: Option<Point2> = None;
    for idx in order {
        let p = points[idx];
        if let Some(prev) = last {
            if prev.x == p.x && prev.y == p.y {
                continue;
            }
        }
        if p.y < best_y {
            front.push(idx);
            best_y = p.y;
            last = Some(p);
        }
    }
    front
}

/// The non-dominated subset of `points`, sorted by ascending `x`.
pub fn pareto_front(points: &[Point2]) -> Vec<Point2> {
    pareto_front_indices(points).into_iter().map(|i| points[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        let a = Point2::new(1.0, 2.0);
        assert!(dominates(a, Point2::new(1.0, 3.0)));
        assert!(dominates(a, Point2::new(2.0, 2.0)));
        assert!(!dominates(a, a));
        assert!(!dominates(a, Point2::new(0.5, 3.0))); // trade-off
    }

    #[test]
    fn front_drops_dominated_and_duplicate_points() {
        let pts = vec![
            Point2::new(3.0, 1.0),
            Point2::new(1.0, 3.0),
            Point2::new(2.0, 2.0),
            Point2::new(2.0, 2.0),
            Point2::new(2.5, 2.5),
        ];
        let front = pareto_front(&pts);
        assert_eq!(
            front,
            vec![Point2::new(1.0, 3.0), Point2::new(2.0, 2.0), Point2::new(3.0, 1.0)]
        );
    }

    #[test]
    fn single_point_front() {
        let pts = vec![Point2::new(1.0, 1.0)];
        assert_eq!(pareto_front(&pts), pts);
        assert!(pareto_front(&[]).is_empty());
    }

    #[test]
    fn indices_refer_to_originals() {
        let pts = vec![Point2::new(2.0, 2.0), Point2::new(1.0, 1.0)];
        assert_eq!(pareto_front_indices(&pts), vec![1]);
    }

    #[test]
    fn vertical_ties_keep_lowest_y() {
        let pts = vec![Point2::new(1.0, 5.0), Point2::new(1.0, 2.0)];
        let front = pareto_front(&pts);
        assert_eq!(front, vec![Point2::new(1.0, 2.0)]);
    }
}
