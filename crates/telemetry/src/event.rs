//! The structured event model.

use std::error::Error;
use std::fmt;

/// A telemetry field value.
///
/// The set is deliberately flat (no nesting): every event is one JSON
/// object per line, which keeps the writer allocation-light and the
/// parser trivial.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, steps, sizes).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rewards, costs, seconds). Non-finite values
    /// serialize as JSON `null` and parse back as NaN.
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// String tag (method names, kinds, phases).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F64(v as f64)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured telemetry record: a kind tag plus ordered fields.
///
/// Field order is preserved through serialization, so seeded runs
/// produce byte-identical logs (timestamps and timings excepted).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    kind: String,
    fields: Vec<(String, Value)>,
}

impl Event {
    /// A new event of the given kind (serialized as the `"ev"` key).
    pub fn new(kind: &str) -> Self {
        Event { kind: kind.to_owned(), fields: Vec::new() }
    }

    /// The canonical JSONL mirror of one per-job trace event: a
    /// `trace` record carrying the job's trace ID, the event's dense
    /// sequence number, microseconds since the trace started, and the
    /// kind/detail pair. Field order is fixed so stored traces and
    /// their JSONL mirrors diff cleanly.
    pub fn trace(trace_id: &str, seq: u64, micros: u64, kind: &str, detail: &str) -> Self {
        Event::new("trace")
            .with("trace_id", trace_id)
            .with("seq", seq)
            .with("micros", micros)
            .with("kind", kind)
            .with("detail", detail)
    }

    /// Builder-style field append.
    #[must_use]
    pub fn with<V: Into<Value>>(mut self, key: &str, value: V) -> Self {
        self.fields.push((key.to_owned(), value.into()));
        self
    }

    /// Appends a field in place.
    pub fn push<V: Into<Value>>(&mut self, key: &str, value: V) {
        self.fields.push((key.to_owned(), value.into()));
    }

    /// The event kind.
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// The ordered fields.
    pub fn fields(&self) -> &[(String, Value)] {
        &self.fields
    }

    /// First value stored under `key`, if any.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Numeric coercion of the value under `key`: any integer or
    /// float field reads as `f64`.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.get(key)? {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// Unsigned coercion of the value under `key`.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.get(key)? {
            Value::U64(v) => Some(*v),
            Value::I64(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// String field under `key`.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key)? {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Telemetry decoding failures.
#[derive(Debug)]
#[non_exhaustive]
pub enum TelemetryError {
    /// A line is not a well-formed flat JSON event object.
    Parse {
        /// Human-readable description.
        what: String,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::Parse { what } => write!(f, "telemetry parse: {what}"),
        }
    }
}

impl Error for TelemetryError {}
