//! Structured JSONL telemetry for long-running RL-MUL experiments.
//!
//! Episodic synthesis runs take hours; per-episode telemetry is the
//! only way to diagnose a reward collapse or a cache regression after
//! the fact. This crate provides:
//!
//! * [`Event`] — a flat, ordered key → [`Value`] record with a kind
//!   tag and a monotonic sequence number;
//! * a hand-rolled JSON encoder/parser pair ([`Event::to_json`],
//!   [`Event::parse_json`]) — one JSON object per line, no external
//!   dependencies, lossless for the value types used;
//! * [`TelemetrySink`] — a cheaply cloneable handle the environment,
//!   agents and drivers emit into. The disabled sink
//!   ([`TelemetrySink::disabled`]) reduces every emit to a single
//!   branch, so instrumented hot paths cost nothing when telemetry is
//!   off;
//! * [`TelemetryWriter`] — the owning side of a file sink: a bounded
//!   ring buffer drained by a background thread. `emit` never blocks
//!   on I/O; when the buffer is full the oldest record is dropped and
//!   counted, trading completeness for zero back-pressure on the
//!   training loop;
//! * [`Summary`] — the aggregation behind `rlmul report`: reads a
//!   JSONL run log and renders per-kind tables (episode rewards,
//!   phase timings, cache hit rates, NN work).
//!
//! # Example
//!
//! ```
//! use rlmul_telemetry::{Event, Value};
//!
//! let e = Event::new("episode")
//!     .with("step", 3u64)
//!     .with("reward", 0.25f64)
//!     .with("kind", "and");
//! let line = e.to_json();
//! let back = Event::parse_json(&line)?;
//! assert_eq!(back.kind(), "episode");
//! assert_eq!(back.get_f64("reward"), Some(0.25));
//! assert_eq!(back.get("kind"), Some(&Value::Str("and".into())));
//! # Ok::<(), rlmul_telemetry::TelemetryError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod event;
mod json;
mod report;
mod sink;

pub use event::{Event, TelemetryError, Value};
pub use report::Summary;
pub use sink::{TelemetrySink, TelemetryWriter};
