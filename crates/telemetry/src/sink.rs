//! The non-blocking ring-buffered JSONL writer.

use crate::event::Event;
use crate::json::to_json;
use rlmul_check::sync::{spawn_named, Condvar, JoinHandle, Mutex};
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default ring capacity: enough for thousands of episode events
/// between drains while bounding worst-case memory to a few MiB.
const DEFAULT_CAPACITY: usize = 8192;

#[derive(Debug, Default)]
struct RingState {
    queue: VecDeque<String>,
    /// Writer shutdown requested.
    closing: bool,
    /// Flush barrier: generation counters so `flush` can wait for
    /// exactly the records enqueued before it was called. A record is
    /// *resolved* once handed to the writer or discarded by the
    /// overflow policy — both must count, or a flush racing an
    /// overflow would wait forever for a record that no longer
    /// exists.
    enqueued: u64,
    resolved: u64,
    /// Deepest the queue ever got — the buffer high-water mark
    /// reported by the final `writer_stats` record.
    hwm: u64,
}

#[derive(Debug)]
struct Ring {
    state: Mutex<RingState>,
    /// Signals the writer thread that records (or shutdown) arrived.
    work: Condvar,
    /// Signals flushers that the written generation advanced.
    drained: Condvar,
    capacity: usize,
    /// Records discarded because the ring was full.
    dropped: AtomicU64,
    /// Monotonic sequence number stamped into every record.
    seq: AtomicU64,
}

/// Cheaply cloneable emit handle.
///
/// The environment, the agents, the SA driver and the bench runner
/// all hold one of these. Emitting through a disabled sink is one
/// branch; emitting through an active sink serializes the event on
/// the caller's thread and pushes the line into the ring without ever
/// blocking on I/O — a full ring drops the oldest line and counts it
/// instead of stalling the training loop.
#[derive(Debug, Clone, Default)]
pub struct TelemetrySink {
    ring: Option<Arc<Ring>>,
}

impl TelemetrySink {
    /// A sink that discards everything (the default for library
    /// entry points not wired to a writer).
    pub fn disabled() -> Self {
        TelemetrySink { ring: None }
    }

    /// Whether events emitted here reach a writer.
    pub fn is_enabled(&self) -> bool {
        self.ring.is_some()
    }

    /// Emits one event. Never blocks on I/O; see the type docs for
    /// the overflow policy.
    pub fn emit(&self, event: Event) {
        let Some(ring) = &self.ring else { return };
        // Serialize on the caller's thread, but stamp the sequence
        // number under the ring lock: drawing it from the atomic
        // before acquiring the lock let two racing emitters enqueue
        // in the opposite order of their seq values, so the log was
        // not sorted by "seq". Splicing the field in keeps the
        // serialized bytes identical to building the event with it.
        let mut line = to_json(&event);
        let mut state = ring.state.lock();
        if state.closing {
            return;
        }
        let seq = ring.seq.fetch_add(1, Ordering::Relaxed);
        line.truncate(line.len() - 1);
        let _ = write!(line, ",\"seq\":{seq}}}");
        let mut overflowed = false;
        if state.queue.len() >= ring.capacity {
            // Ring overflow: drop the *oldest* record — the tail of a
            // run matters more than its middle when diagnosing.
            state.queue.pop_front();
            state.resolved += 1;
            ring.dropped.fetch_add(1, Ordering::Relaxed);
            overflowed = true;
        }
        state.queue.push_back(line);
        state.enqueued += 1;
        state.hwm = state.hwm.max(state.queue.len() as u64);
        drop(state);
        ring.work.notify_one();
        if overflowed {
            ring.drained.notify_all();
        }
    }

    /// Records dropped so far due to ring overflow (0 for a disabled
    /// sink).
    pub fn dropped(&self) -> u64 {
        self.ring.as_ref().map_or(0, |r| r.dropped.load(Ordering::Relaxed))
    }

    /// Blocks until every record emitted before this call has been
    /// handed to the underlying writer. A no-op on disabled sinks.
    pub fn flush(&self) {
        let Some(ring) = &self.ring else { return };
        let mut state = ring.state.lock();
        let target = state.enqueued;
        while state.resolved < target && !state.closing {
            state = ring.drained.wait(state);
        }
    }
}

/// Owning side of a telemetry stream: spawns the background writer
/// thread and joins it (draining every queued record) on [`close`] or
/// drop.
///
/// [`close`]: TelemetryWriter::close
#[derive(Debug)]
pub struct TelemetryWriter {
    ring: Arc<Ring>,
    handle: Option<JoinHandle<io::Result<()>>>,
}

impl TelemetryWriter {
    /// A writer appending JSONL to the file at `path` (created, along
    /// with missing parent directories, if necessary), plus the sink
    /// feeding it.
    ///
    /// # Errors
    ///
    /// Propagates file-creation errors.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<(Self, TelemetrySink)> {
        let path = path.as_ref();
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let file = File::options().create(true).append(true).open(path)?;
        Ok(Self::from_output(Box::new(BufWriter::new(file)), DEFAULT_CAPACITY))
    }

    /// A writer over any byte sink with an explicit ring capacity
    /// (test hook and building block for custom transports).
    pub fn from_output(output: Box<dyn Write + Send>, capacity: usize) -> (Self, TelemetrySink) {
        let ring = Arc::new(Ring {
            state: Mutex::new("telemetry.ring", RingState::default()),
            work: Condvar::new("telemetry.ring.work"),
            drained: Condvar::new("telemetry.ring.drained"),
            capacity: capacity.max(1),
            dropped: AtomicU64::new(0),
            seq: AtomicU64::new(0),
        });
        let thread_ring = ring.clone();
        let handle = spawn_named("rlmul-telemetry", move || writer_loop(&thread_ring, output));
        let sink = TelemetrySink { ring: Some(ring.clone()) };
        (TelemetryWriter { ring, handle: Some(handle) }, sink)
    }

    /// Number of records dropped to ring overflow.
    pub fn dropped(&self) -> u64 {
        self.ring.dropped.load(Ordering::Relaxed)
    }

    /// Drains the ring, stops the writer thread and returns its I/O
    /// result. Sinks left alive keep accepting `emit` calls but
    /// silently discard them afterwards.
    ///
    /// # Errors
    ///
    /// Returns the first write/flush error the background thread hit.
    pub fn close(mut self) -> io::Result<()> {
        self.shutdown()
    }

    fn shutdown(&mut self) -> io::Result<()> {
        let Some(handle) = self.handle.take() else { return Ok(()) };
        {
            let mut state = self.ring.state.lock();
            state.closing = true;
            drop(state);
        }
        self.ring.work.notify_all();
        self.ring.drained.notify_all();
        handle.join().expect("telemetry writer panicked")
    }
}

impl Drop for TelemetryWriter {
    fn drop(&mut self) {
        let _ = self.shutdown();
    }
}

fn writer_loop(ring: &Ring, mut output: Box<dyn Write + Send>) -> io::Result<()> {
    let mut result: io::Result<()> = Ok(());
    let mut written = 0u64;
    loop {
        let batch: Vec<String> = {
            let mut state = ring.state.lock();
            while state.queue.is_empty() && !state.closing {
                state = ring.work.wait(state);
            }
            if state.queue.is_empty() && state.closing {
                break;
            }
            state.queue.drain(..).collect()
        };
        let n = batch.len() as u64;
        if result.is_ok() {
            for line in &batch {
                if let Err(e) =
                    output.write_all(line.as_bytes()).and_then(|()| output.write_all(b"\n"))
                {
                    // Keep draining (so flush/close never wedge) but
                    // remember the first failure.
                    result = Err(e);
                    break;
                }
                written += 1;
            }
            if result.is_ok() {
                result = result.and(output.flush());
            }
        }
        let mut state = ring.state.lock();
        state.resolved += n;
        drop(state);
        ring.drained.notify_all();
    }
    // Final health record: without it, records silently discarded by
    // the overflow policy would leave no trace in the log itself.
    // Written after the drain so it is always the last line.
    if result.is_ok() {
        let hwm = ring.state.lock().hwm;
        let stats = Event::new("writer_stats")
            .with("written", written)
            .with("dropped", ring.dropped.load(Ordering::Relaxed))
            .with("buffer_hwm", hwm)
            .with("seq", ring.seq.fetch_add(1, Ordering::Relaxed));
        result =
            output.write_all(to_json(&stats).as_bytes()).and_then(|()| output.write_all(b"\n"));
    }
    result.and(output.flush())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_json;

    /// A Write sink shared with the test through an Arc<Mutex<_>>.
    #[derive(Clone, Default)]
    struct Shared(Arc<std::sync::Mutex<Vec<u8>>>);
    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn events_reach_the_output_in_order_with_sequence_numbers() {
        let out = Shared::default();
        let (writer, sink) = TelemetryWriter::from_output(Box::new(out.clone()), 64);
        for i in 0..10u64 {
            sink.emit(Event::new("tick").with("i", i));
        }
        sink.flush();
        writer.close().unwrap();
        let bytes = out.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 11, "10 events + the final writer_stats record");
        for (i, line) in lines.iter().take(10).enumerate() {
            let e = parse_json(line).unwrap();
            assert_eq!(e.get_u64("i"), Some(i as u64));
            assert_eq!(e.get_u64("seq"), Some(i as u64));
        }
        let stats = parse_json(lines[10]).unwrap();
        assert_eq!(stats.kind(), "writer_stats");
        assert_eq!(stats.get_u64("written"), Some(10));
        assert_eq!(stats.get_u64("dropped"), Some(0));
        assert!(stats.get_u64("buffer_hwm").unwrap() >= 1);
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let out = Shared::default();
        let (writer, sink) = TelemetryWriter::from_output(Box::new(out.clone()), 4);
        // Emit far more than capacity quickly; the writer drains some,
        // but with a burst this large against a 4-slot ring overflows
        // are certain. Nothing may block, and written + dropped must
        // account for every emit.
        for i in 0..10_000u64 {
            sink.emit(Event::new("burst").with("i", i));
        }
        sink.flush();
        let dropped = sink.dropped();
        writer.close().unwrap();
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<_> = text.lines().collect();
        let written = (lines.len() - 1) as u64; // minus the writer_stats record
        assert_eq!(written + dropped, 10_000);
        // The final data record always survives (drop-oldest policy).
        let last_data = parse_json(lines[lines.len() - 2]).unwrap();
        assert_eq!(last_data.get_u64("i"), Some(9_999));
        // The trailing writer_stats record accounts for the loss.
        let stats = parse_json(lines[lines.len() - 1]).unwrap();
        assert_eq!(stats.kind(), "writer_stats");
        assert_eq!(stats.get_u64("written"), Some(written));
        assert_eq!(stats.get_u64("dropped"), Some(dropped));
        assert_eq!(stats.get_u64("buffer_hwm"), Some(4), "4-slot ring must have filled");
    }

    #[test]
    fn disabled_sink_is_a_no_op() {
        let sink = TelemetrySink::disabled();
        sink.emit(Event::new("x"));
        sink.flush();
        assert_eq!(sink.dropped(), 0);
        assert!(!sink.is_enabled());
    }

    #[test]
    fn close_drains_pending_records() {
        let out = Shared::default();
        let (writer, sink) = TelemetryWriter::from_output(Box::new(out.clone()), 1024);
        for i in 0..100u64 {
            sink.emit(Event::new("tick").with("i", i));
        }
        // No flush: close alone must drain everything emitted so far.
        writer.close().unwrap();
        let text = String::from_utf8(out.0.lock().unwrap().clone()).unwrap();
        assert_eq!(text.lines().count(), 101, "100 events + writer_stats");
    }
}
