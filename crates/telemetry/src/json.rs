//! Hand-rolled JSON encoding and parsing for flat event objects.
//!
//! The encoder emits exactly one object per line: `"ev"` first, then
//! every field in insertion order. The parser accepts any flat JSON
//! object whose values are strings, numbers, booleans or `null` —
//! nested objects and arrays are rejected (events are flat by
//! construction) — and is insensitive to whitespace, so logs survive
//! hand edits and third-party pretty-printers.

use crate::event::{Event, TelemetryError, Value};
use std::fmt::Write as _;

/// Serializes one event as a single-line JSON object.
pub fn to_json(event: &Event) -> String {
    let mut out = String::with_capacity(64 + event.fields().len() * 24);
    out.push_str("{\"ev\":");
    write_str(&mut out, event.kind());
    for (k, v) in event.fields() {
        out.push(',');
        write_str(&mut out, k);
        out.push(':');
        write_value(&mut out, v);
    }
    out.push('}');
    out
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        // Rust's shortest-round-trip float formatting is valid JSON
        // for every finite value; JSON has no NaN/Inf, so those
        // degrade to null (telemetry is diagnostic, not archival).
        Value::F64(x) if x.is_finite() => {
            let start = out.len();
            let _ = write!(out, "{x}");
            // "1" would parse back as an integer; keep floatness.
            if !out[start..].contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        Value::F64(_) => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Str(s) => write_str(out, s),
    }
}

/// Parses one JSONL line into an [`Event`]. Inverse of [`to_json`]
/// for events produced by this crate; tolerant of whitespace and
/// field reordering otherwise.
pub fn parse_json(line: &str) -> Result<Event, TelemetryError> {
    let mut p = Parser { bytes: line.as_bytes(), pos: 0 };
    p.skip_ws();
    p.expect(b'{')?;
    let mut kind: Option<String> = None;
    let mut fields: Vec<(String, Value)> = Vec::new();
    p.skip_ws();
    if !p.peek_is(b'}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.expect(b':')?;
            p.skip_ws();
            let value = p.value()?;
            if key == "ev" {
                match value {
                    Value::Str(s) => kind = Some(s),
                    other => {
                        return Err(TelemetryError::Parse {
                            what: format!("\"ev\" must be a string, found {other:?}"),
                        })
                    }
                }
            } else {
                fields.push((key, value));
            }
            p.skip_ws();
            if p.peek_is(b',') {
                p.pos += 1;
                continue;
            }
            break;
        }
    }
    p.skip_ws();
    p.expect(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(TelemetryError::Parse { what: "trailing characters after object".into() });
    }
    let kind = kind.ok_or_else(|| TelemetryError::Parse { what: "missing \"ev\" key".into() })?;
    let mut event = Event::new(&kind);
    for (k, v) in fields {
        event.push(&k, v);
    }
    Ok(event)
}

impl Event {
    /// Serializes this event as a single JSONL line (no trailing
    /// newline). Convenience wrapper over the module-level encoder.
    pub fn to_json(&self) -> String {
        to_json(self)
    }

    /// Parses a JSONL line into an event.
    ///
    /// # Errors
    ///
    /// Returns [`TelemetryError::Parse`] for anything that is not a
    /// flat JSON object with a string `"ev"` key.
    pub fn parse_json(line: &str) -> Result<Event, TelemetryError> {
        parse_json(line)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek_is(&self, b: u8) -> bool {
        self.bytes.get(self.pos) == Some(&b)
    }

    fn expect(&mut self, b: u8) -> Result<(), TelemetryError> {
        if self.peek_is(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(TelemetryError::Parse {
                what: format!("expected `{}` at byte {}", b as char, self.pos),
            })
        }
    }

    fn string(&mut self) -> Result<String, TelemetryError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(TelemetryError::Parse { what: "unterminated string".into() });
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err(TelemetryError::Parse { what: "dangling escape".into() });
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| TelemetryError::Parse {
                                    what: "bad \\u escape".into(),
                                })?;
                            self.pos += 4;
                            // Surrogate pairs don't occur in logs this
                            // crate writes; map lone surrogates to the
                            // replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(TelemetryError::Parse {
                                what: format!("unknown escape \\{}", other as char),
                            })
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we just
                    // consumed.
                    let start = self.pos - 1;
                    let s = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| TelemetryError::Parse { what: "invalid UTF-8".into() })?;
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<Value, TelemetryError> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::F64(f64::NAN)),
            Some(b'{' | b'[') => {
                Err(TelemetryError::Parse { what: "nested containers are not events".into() })
            }
            Some(_) => self.number(),
            None => Err(TelemetryError::Parse { what: "unexpected end of line".into() }),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, TelemetryError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(TelemetryError::Parse { what: format!("expected literal `{lit}`") })
        }
    }

    fn number(&mut self) -> Result<Value, TelemetryError> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if text.is_empty() {
            return Err(TelemetryError::Parse { what: "empty number".into() });
        }
        let is_float = text.contains(['.', 'e', 'E']);
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| TelemetryError::Parse { what: format!("bad number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_round_trips() {
        let e = Event::new("episode")
            .with("step", 17u64)
            .with("reward", -0.125f64)
            .with("method", "dqn")
            .with("hit", true)
            .with("delta", -3i64);
        let line = to_json(&e);
        assert!(!line.contains('\n'));
        let back = parse_json(&line).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn trace_events_round_trip_with_fixed_field_order() {
        let e = Event::trace("tr-00000007.0", 3, 1250, "cache_hit", "context=00ff");
        let line = to_json(&e);
        assert_eq!(
            line,
            r#"{"ev":"trace","trace_id":"tr-00000007.0","seq":3,"micros":1250,"kind":"cache_hit","detail":"context=00ff"}"#
        );
        assert_eq!(parse_json(&line).unwrap(), e);
    }

    #[test]
    fn escapes_round_trip() {
        let e = Event::new("note").with("text", "a \"quoted\"\\path\nwith\tcontrol\u{1}");
        let back = parse_json(&to_json(&e)).unwrap();
        assert_eq!(back, e);
    }

    #[test]
    fn integers_and_floats_keep_their_type() {
        let line = r#"{"ev":"x","a":3,"b":3.5,"c":-2,"d":1e-3}"#;
        let e = parse_json(line).unwrap();
        assert_eq!(e.get("a"), Some(&Value::U64(3)));
        assert_eq!(e.get("b"), Some(&Value::F64(3.5)));
        assert_eq!(e.get("c"), Some(&Value::I64(-2)));
        assert_eq!(e.get("d"), Some(&Value::F64(1e-3)));
    }

    #[test]
    fn whole_valued_floats_stay_floats() {
        let e = Event::new("x").with("v", 1.0f64).with("w", -2.0f64);
        let line = to_json(&e);
        let back = parse_json(&line).unwrap();
        assert_eq!(back, e, "{line}");
    }

    #[test]
    fn non_finite_floats_degrade_to_null() {
        let e = Event::new("x").with("inf", f64::INFINITY);
        let line = to_json(&e);
        assert!(line.contains("null"), "{line}");
        let back = parse_json(&line).unwrap();
        assert!(back.get_f64("inf").unwrap().is_nan());
    }

    #[test]
    fn malformed_lines_are_errors() {
        for bad in [
            "",
            "{",
            "{}",                        // no "ev"
            r#"{"ev":1}"#,               // non-string kind
            r#"{"ev":"x","a":[1,2]}"#,   // nested
            r#"{"ev":"x","a":{"b":1}}"#, // nested
            r#"{"ev":"x"} trailing"#,
            r#"{"ev":"x","a":}"#,
        ] {
            assert!(parse_json(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let e = parse_json(" { \"ev\" : \"x\" , \"n\" : 4 } ").unwrap();
        assert_eq!(e.kind(), "x");
        assert_eq!(e.get_u64("n"), Some(4));
    }
}
