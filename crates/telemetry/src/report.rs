//! Aggregation of JSONL run logs into the summary `rlmul report`
//! prints.

use crate::event::Event;
use crate::json::parse_json;
use std::collections::BTreeMap;

/// Running min/mean/max/last over a stream of samples.
#[derive(Debug, Clone, Default)]
pub struct Stats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    last: f64,
}

impl Stats {
    fn push(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        self.sum += x;
        self.last = x;
    }

    /// Number of finite samples seen.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean of the samples (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest sample (0 if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (0 if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Most recent sample (0 if empty).
    pub fn last(&self) -> f64 {
        self.last
    }
}

/// Per-phase accumulated wall time.
#[derive(Debug, Clone, Default)]
struct PhaseStats {
    calls: u64,
    secs: f64,
}

/// Per-span-path accumulated timings from `span` events.
#[derive(Debug, Clone, Default)]
struct SpanAgg {
    calls: u64,
    incl_secs: f64,
    excl_secs: f64,
}

/// Final writer health snapshot from a `writer_stats` event.
#[derive(Debug, Clone, Copy, Default)]
struct WriterStats {
    written: u64,
    dropped: u64,
    buffer_hwm: u64,
}

/// Aggregated view of one run log.
///
/// Built by streaming [`Event`]s (or raw JSONL lines) through
/// [`Summary::observe`] / [`Summary::from_jsonl`]; rendered with
/// [`Summary::render`]. Malformed lines are counted, not fatal — a
/// run killed mid-write leaves a torn final line.
#[derive(Debug, Clone, Default)]
pub struct Summary {
    events: u64,
    malformed: u64,
    kinds: BTreeMap<String, u64>,
    methods: BTreeMap<String, u64>,
    reward: Stats,
    area: Stats,
    delay: Stats,
    best_area: Option<f64>,
    best_reward: Option<f64>,
    phases: BTreeMap<String, PhaseStats>,
    cache_hits: u64,
    cache_misses: u64,
    nn_flops: f64,
    checkpoints: u64,
    dropped_reported: u64,
    spans: BTreeMap<String, SpanAgg>,
    writer: Option<WriterStats>,
}

impl Summary {
    /// An empty summary.
    pub fn new() -> Self {
        Summary::default()
    }

    /// Parses every line of a JSONL log and aggregates it.
    pub fn from_jsonl(text: &str) -> Self {
        let mut s = Summary::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_json(line) {
                Ok(e) => s.observe(&e),
                Err(_) => s.malformed += 1,
            }
        }
        s
    }

    /// Folds one event into the aggregate.
    ///
    /// Conventions (matching what the instrumented training loops
    /// emit): `episode` events carry `reward`/`area_um2`/`delay_ns`
    /// and a `method` tag; `phase` events carry `name` and `secs`;
    /// `cache` events carry cumulative `hits`/`misses`; `nn` events
    /// carry `flops`; `checkpoint` and `run_end` events are counted.
    /// Unknown kinds only contribute to the per-kind tally.
    pub fn observe(&mut self, event: &Event) {
        self.events += 1;
        *self.kinds.entry(event.kind().to_owned()).or_insert(0) += 1;
        match event.kind() {
            "episode" => {
                if let Some(m) = event.get_str("method") {
                    *self.methods.entry(m.to_owned()).or_insert(0) += 1;
                }
                if let Some(r) = event.get_f64("reward") {
                    self.reward.push(r);
                    if r.is_finite() {
                        self.best_reward = Some(self.best_reward.map_or(r, |b: f64| b.max(r)));
                    }
                }
                if let Some(a) = event.get_f64("area_um2") {
                    self.area.push(a);
                    if a.is_finite() {
                        self.best_area = Some(self.best_area.map_or(a, |b: f64| b.min(a)));
                    }
                }
                if let Some(d) = event.get_f64("delay_ns") {
                    self.delay.push(d);
                }
            }
            "phase" => {
                let name = event.get_str("name").unwrap_or("?").to_owned();
                let p = self.phases.entry(name).or_default();
                p.calls += 1;
                p.secs += event.get_f64("secs").unwrap_or(0.0).max(0.0);
            }
            "cache" => {
                // Cumulative counters: keep the latest snapshot.
                if let Some(h) = event.get_u64("hits") {
                    self.cache_hits = h;
                }
                if let Some(m) = event.get_u64("misses") {
                    self.cache_misses = m;
                }
            }
            "nn" => {
                if let Some(f) = event.get_f64("flops") {
                    self.nn_flops += f.max(0.0);
                }
            }
            "checkpoint" => self.checkpoints += 1,
            "run_end" => {
                if let Some(d) = event.get_u64("dropped") {
                    self.dropped_reported = d;
                }
            }
            "span" => {
                // Each training run emits its span deltas once at
                // shutdown; summing merges multiple runs in one log.
                let path = event.get_str("path").unwrap_or("?").to_owned();
                let s = self.spans.entry(path).or_default();
                s.calls += event.get_u64("calls").unwrap_or(0);
                s.incl_secs += event.get_f64("incl_secs").unwrap_or(0.0).max(0.0);
                s.excl_secs += event.get_f64("excl_secs").unwrap_or(0.0).max(0.0);
            }
            "writer_stats" => {
                self.writer = Some(WriterStats {
                    written: event.get_u64("written").unwrap_or(0),
                    dropped: event.get_u64("dropped").unwrap_or(0),
                    buffer_hwm: event.get_u64("buffer_hwm").unwrap_or(0),
                });
            }
            _ => {}
        }
    }

    /// Total events observed (malformed lines excluded).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Lines that failed to parse.
    pub fn malformed(&self) -> u64 {
        self.malformed
    }

    /// Episode count.
    pub fn episodes(&self) -> u64 {
        self.reward.count()
    }

    /// Episode reward statistics.
    pub fn reward(&self) -> &Stats {
        &self.reward
    }

    /// Best (lowest) synthesized area seen, if any episode reported
    /// one.
    pub fn best_area(&self) -> Option<f64> {
        self.best_area
    }

    /// Cache hit rate in `[0, 1]`, if any cache event was seen.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }

    /// Renders the summary as fixed-width text tables.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "events: {}  (malformed lines: {}, writer drops: {})\n",
            self.events, self.malformed, self.dropped_reported
        ));
        if !self.kinds.is_empty() {
            out.push_str("\nevent kinds\n");
            for (kind, n) in &self.kinds {
                out.push_str(&format!("  {kind:<14} {n:>10}\n"));
            }
        }
        if self.reward.count() > 0 {
            out.push_str("\nepisodes");
            if !self.methods.is_empty() {
                let tags: Vec<String> =
                    self.methods.iter().map(|(m, n)| format!("{m}:{n}")).collect();
                out.push_str(&format!("  [{}]", tags.join(", ")));
            }
            out.push('\n');
            out.push_str(&format!(
                "  {:<10} {:>12} {:>12} {:>12} {:>12}\n",
                "metric", "min", "mean", "max", "last"
            ));
            for (name, s) in
                [("reward", &self.reward), ("area_um2", &self.area), ("delay_ns", &self.delay)]
            {
                if s.count() > 0 {
                    out.push_str(&format!(
                        "  {:<10} {:>12.4} {:>12.4} {:>12.4} {:>12.4}\n",
                        name,
                        s.min(),
                        s.mean(),
                        s.max(),
                        s.last()
                    ));
                }
            }
            if let Some(a) = self.best_area {
                out.push_str(&format!("  best area : {a:.4} um^2\n"));
            }
            if let Some(r) = self.best_reward {
                out.push_str(&format!("  best reward: {r:.4}\n"));
            }
        }
        if !self.phases.is_empty() {
            let total: f64 = self.phases.values().map(|p| p.secs).sum();
            out.push_str("\nphase timings\n");
            out.push_str(&format!(
                "  {:<12} {:>10} {:>12} {:>8}\n",
                "phase", "calls", "secs", "share"
            ));
            for (name, p) in &self.phases {
                let share = if total > 0.0 { 100.0 * p.secs / total } else { 0.0 };
                out.push_str(&format!(
                    "  {:<12} {:>10} {:>12.3} {:>7.1}%\n",
                    name, p.calls, p.secs, share
                ));
            }
        }
        if self.cache_hits + self.cache_misses > 0 {
            let rate = self.cache_hit_rate().unwrap_or(0.0);
            out.push_str(&format!(
                "\neval cache: {} hits / {} misses ({:.1}% hit rate)\n",
                self.cache_hits,
                self.cache_misses,
                100.0 * rate
            ));
        }
        if self.nn_flops > 0.0 {
            out.push_str(&format!("\nnn work: {:.3e} flops\n", self.nn_flops));
        }
        if self.checkpoints > 0 {
            out.push_str(&format!("\ncheckpoints written: {}\n", self.checkpoints));
        }
        if let Some(w) = self.writer {
            out.push_str(&format!(
                "\nwriter: {} records written, {} dropped, buffer high-water {}\n",
                w.written, w.dropped, w.buffer_hwm
            ));
        }
        out
    }

    /// Renders the per-span-path time breakdown (`rlmul report
    /// --phase`): one row per span path from the run's `span` events,
    /// sorted by exclusive time descending, with the share of total
    /// exclusive time. Falls back to an explanatory line when the log
    /// carries no span events (runs predating the observability
    /// layer).
    pub fn render_phase_breakdown(&self) -> String {
        if self.spans.is_empty() {
            return "no span events in this log (re-run with telemetry enabled on an \
                    instrumented build)\n"
                .to_owned();
        }
        let total_excl: f64 = self.spans.values().map(|s| s.excl_secs).sum();
        let mut rows: Vec<(&String, &SpanAgg)> = self.spans.iter().collect();
        rows.sort_by(|a, b| b.1.excl_secs.total_cmp(&a.1.excl_secs));
        let mut out = String::new();
        out.push_str(&format!(
            "{:<44} {:>8} {:>12} {:>12} {:>7}\n",
            "span path", "calls", "incl s", "excl s", "share"
        ));
        for (path, s) in rows {
            let share = if total_excl > 0.0 { 100.0 * s.excl_secs / total_excl } else { 0.0 };
            out.push_str(&format!(
                "{path:<44} {:>8} {:>12.4} {:>12.4} {share:>6.1}%\n",
                s.calls, s.incl_secs, s.excl_secs
            ));
        }
        out.push_str(&format!(
            "{:<44} {:>8} {:>12} {total_excl:>12.4} {:>6.1}%\n",
            "total", "", "", 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> String {
        let mut lines = Vec::new();
        for i in 0..4u64 {
            lines.push(
                Event::new("episode")
                    .with("method", "dqn")
                    .with("episode", i)
                    .with("reward", i as f64 * 0.5)
                    .with("area_um2", 100.0 - i as f64)
                    .with("delay_ns", 1.5)
                    .to_json(),
            );
        }
        lines.push(Event::new("phase").with("name", "synth").with("secs", 2.0).to_json());
        lines.push(Event::new("phase").with("name", "synth").with("secs", 1.0).to_json());
        lines.push(Event::new("phase").with("name", "sta").with("secs", 1.0).to_json());
        lines.push(Event::new("cache").with("hits", 30u64).with("misses", 10u64).to_json());
        lines.push(Event::new("nn").with("flops", 1.0e6).to_json());
        lines.push(Event::new("checkpoint").with("path", "latest.ckpt").to_json());
        lines.push("not json at all".to_owned());
        lines.join("\n")
    }

    #[test]
    fn aggregates_episodes_phases_and_cache() {
        let s = Summary::from_jsonl(&sample_log());
        assert_eq!(s.episodes(), 4);
        assert_eq!(s.malformed(), 1);
        assert_eq!(s.reward().min(), 0.0);
        assert_eq!(s.reward().max(), 1.5);
        assert_eq!(s.reward().last(), 1.5);
        assert_eq!(s.best_area(), Some(97.0));
        assert_eq!(s.cache_hit_rate(), Some(0.75));
        assert_eq!(s.checkpoints, 1);
        let p = &s.phases["synth"];
        assert_eq!(p.calls, 2);
        assert!((p.secs - 3.0).abs() < 1e-12);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = Summary::from_jsonl(&sample_log()).render();
        for needle in [
            "events: 10",
            "episodes",
            "reward",
            "phase timings",
            "synth",
            "eval cache",
            "75.0%",
            "nn work",
            "checkpoints written: 1",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_log_renders_without_panicking() {
        let s = Summary::from_jsonl("");
        assert_eq!(s.events(), 0);
        assert!(s.render().contains("events: 0"));
    }

    #[test]
    fn span_events_sum_across_runs_and_break_down_by_phase() {
        let log = [
            Event::new("span")
                .with("path", "train.sa;env.evaluate")
                .with("calls", 4u64)
                .with("incl_secs", 2.0)
                .with("excl_secs", 0.5)
                .to_json(),
            Event::new("span")
                .with("path", "train.sa;env.evaluate")
                .with("calls", 6u64)
                .with("incl_secs", 1.0)
                .with("excl_secs", 1.5)
                .to_json(),
            Event::new("span")
                .with("path", "train.sa")
                .with("calls", 1u64)
                .with("incl_secs", 3.5)
                .with("excl_secs", 6.0)
                .to_json(),
        ]
        .join("\n");
        let s = Summary::from_jsonl(&log);
        let agg = &s.spans["train.sa;env.evaluate"];
        assert_eq!(agg.calls, 10);
        assert!((agg.incl_secs - 3.0).abs() < 1e-12);
        assert!((agg.excl_secs - 2.0).abs() < 1e-12);

        let table = s.render_phase_breakdown();
        let lines: Vec<&str> = table.lines().collect();
        // Sorted by exclusive time descending: the root row first.
        assert!(lines[1].starts_with("train.sa "), "unexpected order:\n{table}");
        assert!(lines[1].contains("75.0%"), "root should own 6/8 of exclusive time:\n{table}");
        assert!(lines[2].starts_with("train.sa;env.evaluate"));
        assert!(lines[3].starts_with("total"));
        assert!(lines[3].contains("100.0%"));
    }

    #[test]
    fn phase_breakdown_explains_span_free_logs() {
        let s = Summary::from_jsonl(&sample_log());
        assert!(s.render_phase_breakdown().contains("no span events"));
    }

    #[test]
    fn writer_stats_surface_in_render() {
        let log = Event::new("writer_stats")
            .with("written", 42u64)
            .with("dropped", 3u64)
            .with("buffer_hwm", 7u64)
            .to_json();
        let s = Summary::from_jsonl(&log);
        let w = s.writer.expect("writer stats parsed");
        assert_eq!((w.written, w.dropped, w.buffer_hwm), (42, 3, 7));
        assert!(s.render().contains("writer: 42 records written, 3 dropped, buffer high-water 7"));
    }

    #[test]
    fn latest_cache_snapshot_wins() {
        let log = [
            Event::new("cache").with("hits", 1u64).with("misses", 1u64).to_json(),
            Event::new("cache").with("hits", 9u64).with("misses", 1u64).to_json(),
        ]
        .join("\n");
        let s = Summary::from_jsonl(&log);
        assert_eq!(s.cache_hit_rate(), Some(0.9));
    }
}
