//! Model-checked interleavings of the telemetry ring writer.
//!
//! The writer thread, the emitters and the close path all run under
//! the deterministic scheduler from `rlmul_check::sched`, so every
//! ordering of emit vs. drain vs. shutdown (up to the preemption
//! bound) is explored. Failures print a replayable schedule.
//!
//! Invariants checked exhaustively at small bounds:
//! - `close` never drops records that were emitted before it, and the
//!   trailing `writer_stats` record accounts for exactly the records
//!   written;
//! - concurrent emitters always land in the log in sequence-number
//!   order. This is the regression test for the seq-stamping race:
//!   drawing the sequence number from the atomic *before* taking the
//!   ring lock allowed two racing emitters to enqueue in the opposite
//!   order of their seq values, so logs were not sorted by `seq`.
//!   Stamping under the lock (the current code) passes exhaustively;
//!   the old code fails this test with a two-step preemption schedule.

use rlmul_check::sched::Model;
use rlmul_check::sync::spawn_named;
use rlmul_telemetry::{Event, TelemetryWriter};
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

/// A `Write` sink shared with the test through an `Arc<Mutex<_>>`.
#[derive(Clone, Default)]
struct Shared(Arc<Mutex<Vec<u8>>>);
impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

fn parsed_lines(out: &Shared) -> Vec<Event> {
    let bytes = out.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).expect("telemetry output is UTF-8");
    text.lines().map(|l| Event::parse_json(l).expect("every line parses")).collect()
}

#[test]
fn close_never_drops_records_emitted_before_it() {
    let model = Model::default();
    let outcome = model.explore(&|| {
        let out = Shared::default();
        let (writer, sink) = TelemetryWriter::from_output(Box::new(out.clone()), 64);
        let emitter = {
            let sink = sink.clone();
            spawn_named("emitter", move || sink.emit(Event::new("side").with("i", 1u64)))
        };
        sink.emit(Event::new("main").with("i", 0u64));
        emitter.join().expect("emitter panicked");
        writer.close().expect("writer I/O failed");
        let events = parsed_lines(&out);
        assert_eq!(events.len(), 3, "2 data records + writer_stats, none dropped");
        let stats = &events[2];
        assert_eq!(stats.kind(), "writer_stats");
        assert_eq!(stats.get_u64("written"), Some(2), "writer_stats must count every record");
        assert_eq!(stats.get_u64("dropped"), Some(0));
    });
    assert!(
        outcome.failure.is_none(),
        "{}",
        outcome.failure.map(|f| f.render()).unwrap_or_default()
    );
    assert!(outcome.complete, "state space must be exhausted at the default bound");
}

#[test]
fn concurrent_emitters_land_in_seq_order() {
    let model = Model::default();
    let outcome = model.explore(&|| {
        let out = Shared::default();
        let (writer, sink) = TelemetryWriter::from_output(Box::new(out.clone()), 64);
        let emitters: Vec<_> = (0..2)
            .map(|i| {
                let sink = sink.clone();
                spawn_named(&format!("emitter-{i}"), move || {
                    sink.emit(Event::new("race").with("src", i as u64));
                })
            })
            .collect();
        for e in emitters {
            e.join().expect("emitter panicked");
        }
        writer.close().expect("writer I/O failed");
        let events = parsed_lines(&out);
        assert_eq!(events.len(), 3, "2 data records + writer_stats");
        let seqs: Vec<u64> =
            events[..2].iter().map(|e| e.get_u64("seq").expect("data records carry seq")).collect();
        assert_eq!(seqs, vec![0, 1], "file order must equal sequence order");
    });
    assert!(
        outcome.failure.is_none(),
        "{}",
        outcome.failure.map(|f| f.render()).unwrap_or_default()
    );
    assert!(outcome.complete, "state space must be exhausted at the default bound");
}
