//! Baseline multiplier optimizers the paper compares against:
//!
//! * **Wallace** and **Dadda** legacy structures (constructors live in
//!   [`rlmul_ct`]; re-exported here for convenience);
//! * **GOMIL** — the ILP of Xiao et al. solved *exactly* by dynamic
//!   programming over the column carry chain ([`gomil`]), with an
//!   independent branch-and-bound solver ([`gomil_bnb`]) certifying
//!   optimality on small instances;
//! * **Simulated annealing** over the same action space as the RL
//!   agent ([`simulated_annealing`]).
//!
//! # Example
//!
//! ```
//! use rlmul_baselines::{gomil, wallace};
//! use rlmul_ct::PpgKind;
//!
//! let g = gomil(8, PpgKind::And)?;
//! let w = wallace(8, PpgKind::And)?;
//! assert!(g.total_compressors() <= w.total_compressors());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod bnb;
mod gomil;
mod sa;

pub use bnb::gomil_bnb;
pub use gomil::{gomil, gomil_weighted, GomilWeights};
pub use sa::{simulated_annealing, SaConfig, SaOutcome, SaParts, SaRun};

use rlmul_ct::{CompressorTree, CtError, PpgKind};

/// The classic Wallace-tree baseline [Wallace 1964].
///
/// # Errors
///
/// Propagates unsupported-width errors.
pub fn wallace(bits: usize, kind: PpgKind) -> Result<CompressorTree, CtError> {
    CompressorTree::wallace(bits, kind)
}

/// The Dadda-tree baseline [Dadda 1983].
///
/// # Errors
///
/// Propagates unsupported-width errors.
pub fn dadda(bits: usize, kind: PpgKind) -> Result<CompressorTree, CtError> {
    CompressorTree::dadda(bits, kind)
}
