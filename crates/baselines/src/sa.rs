//! Simulated annealing over the multiplier modification space — the
//! paper's SA baseline, sharing the RL agent's action space and
//! legalization so the comparison isolates the search strategy.

use rand::Rng;
use rlmul_ct::CompressorTree;

/// Simulated-annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature (in cost units).
    pub initial_temp: f64,
    /// Geometric cooling factor per step, in `(0, 1)`.
    pub cooling: f64,
    /// Floor temperature.
    pub min_temp: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig { steps: 300, initial_temp: 50.0, cooling: 0.985, min_temp: 1e-3 }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct SaOutcome {
    /// Best state found.
    pub best: CompressorTree,
    /// Cost of the best state.
    pub best_cost: f64,
    /// Cost of the *current* (not best) state after every step — the
    /// optimization trajectory the paper plots in Fig. 12.
    pub trajectory: Vec<f64>,
    /// Number of accepted moves.
    pub accepted: usize,
}

/// Runs simulated annealing from `initial`, scoring states with
/// `cost` (lower is better; typically the synthesis-backed weighted
/// area/delay cost of paper Eq. 20).
pub fn simulated_annealing<R, F>(
    initial: &CompressorTree,
    config: &SaConfig,
    rng: &mut R,
    mut cost: F,
) -> SaOutcome
where
    R: Rng + ?Sized,
    F: FnMut(&CompressorTree) -> f64,
{
    let mut current = initial.clone();
    let mut current_cost = cost(&current);
    let mut best = current.clone();
    let mut best_cost = current_cost;
    let mut temp = config.initial_temp;
    let mut trajectory = Vec::with_capacity(config.steps);
    let mut accepted = 0;

    for _ in 0..config.steps {
        let actions = current.valid_actions();
        if actions.is_empty() {
            trajectory.push(current_cost);
            continue;
        }
        let action = actions[rng.gen_range(0..actions.len())];
        let candidate =
            current.apply_action(action).expect("valid_actions only yields applicable actions");
        let cand_cost = cost(&candidate);
        let delta = cand_cost - current_cost;
        let accept = delta <= 0.0 || rng.gen::<f64>() < (-delta / temp.max(config.min_temp)).exp();
        if accept {
            current = candidate;
            current_cost = cand_cost;
            accepted += 1;
            if current_cost < best_cost {
                best = current.clone();
                best_cost = current_cost;
            }
        }
        trajectory.push(current_cost);
        temp = (temp * config.cooling).max(config.min_temp);
    }
    SaOutcome { best, best_cost, trajectory, accepted }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlmul_ct::PpgKind;

    /// A cheap structural cost: compressor area proxy plus a stage
    /// penalty, so tests don't need the synthesis stack.
    fn proxy_cost(t: &CompressorTree) -> f64 {
        let area = 4.256 * t.matrix().total32() as f64 + 2.394 * t.matrix().total22() as f64;
        let stages = t.stage_count().unwrap_or(99) as f64;
        area + 10.0 * stages
    }

    #[test]
    fn annealing_improves_on_wallace() {
        let initial = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let out = simulated_annealing(
            &initial,
            &SaConfig { steps: 400, ..Default::default() },
            &mut rng,
            proxy_cost,
        );
        assert!(out.best_cost <= proxy_cost(&initial));
        assert!(out.accepted > 0);
        assert_eq!(out.trajectory.len(), 400);
        out.best.check_legal().unwrap();
    }

    #[test]
    fn zero_steps_returns_initial() {
        let initial = CompressorTree::dadda(4, PpgKind::And).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulated_annealing(
            &initial,
            &SaConfig { steps: 0, ..Default::default() },
            &mut rng,
            proxy_cost,
        );
        assert_eq!(&out.best, &initial);
        assert!(out.trajectory.is_empty());
    }

    #[test]
    fn trajectory_is_monotone_at_zero_temperature() {
        let initial = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SaConfig { steps: 150, initial_temp: 1e-9, cooling: 0.5, min_temp: 1e-12 };
        let out = simulated_annealing(&initial, &cfg, &mut rng, proxy_cost);
        for w in out.trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "greedy descent must not accept uphill moves");
        }
    }
}
