//! Simulated annealing over the multiplier modification space — the
//! paper's SA baseline, sharing the RL agent's action space and
//! legalization so the comparison isolates the search strategy.

use rand::Rng;
use rlmul_ct::CompressorTree;

/// Simulated-annealing schedule parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaConfig {
    /// Number of proposal steps.
    pub steps: usize,
    /// Initial temperature (in cost units).
    pub initial_temp: f64,
    /// Geometric cooling factor per step, in `(0, 1)`.
    pub cooling: f64,
    /// Floor temperature.
    pub min_temp: f64,
}

impl Default for SaConfig {
    fn default() -> Self {
        SaConfig { steps: 300, initial_temp: 50.0, cooling: 0.985, min_temp: 1e-3 }
    }
}

/// Result of an annealing run.
#[derive(Debug, Clone)]
pub struct SaOutcome {
    /// Best state found.
    pub best: CompressorTree,
    /// Cost of the best state.
    pub best_cost: f64,
    /// Cost of the *current* (not best) state after every step — the
    /// optimization trajectory the paper plots in Fig. 12.
    pub trajectory: Vec<f64>,
    /// Number of accepted moves.
    pub accepted: usize,
}

/// Incremental simulated-annealing driver: the same algorithm as
/// [`simulated_annealing`], exposed one proposal at a time so callers
/// can interleave telemetry, checkpointing and cancellation between
/// steps. [`SaRun::to_parts`]/[`SaRun::from_parts`] decompose the
/// full annealing state for snapshots — a run rebuilt from its parts
/// (plus the caller's RNG state) continues bit-identically.
#[derive(Debug, Clone)]
pub struct SaRun {
    config: SaConfig,
    current: CompressorTree,
    current_cost: f64,
    best: CompressorTree,
    best_cost: f64,
    temp: f64,
    trajectory: Vec<f64>,
    accepted: usize,
}

/// The snapshot-friendly decomposition of a [`SaRun`]'s mutable
/// state (the schedule parameters travel separately as [`SaConfig`]).
#[derive(Debug, Clone)]
pub struct SaParts {
    /// Current state of the walk.
    pub current: CompressorTree,
    /// Cost of the current state.
    pub current_cost: f64,
    /// Best state seen so far.
    pub best: CompressorTree,
    /// Cost of the best state.
    pub best_cost: f64,
    /// Current temperature.
    pub temp: f64,
    /// Cost of the current state after every completed step.
    pub trajectory: Vec<f64>,
    /// Accepted moves so far.
    pub accepted: usize,
}

impl SaRun {
    /// Starts a run from `initial` with its (caller-evaluated) cost.
    pub fn new(initial: CompressorTree, initial_cost: f64, config: SaConfig) -> Self {
        SaRun {
            current: initial.clone(),
            current_cost: initial_cost,
            best: initial,
            best_cost: initial_cost,
            temp: config.initial_temp,
            trajectory: Vec::with_capacity(config.steps),
            accepted: 0,
            config,
        }
    }

    /// Proposal steps completed so far.
    pub fn steps_done(&self) -> usize {
        self.trajectory.len()
    }

    /// Whether the configured step budget is exhausted.
    pub fn is_done(&self) -> bool {
        self.steps_done() >= self.config.steps
    }

    /// Cost of the best state seen so far.
    pub fn best_cost(&self) -> f64 {
        self.best_cost
    }

    /// Cost of the current state.
    pub fn current_cost(&self) -> f64 {
        self.current_cost
    }

    /// Current annealing temperature (cooled after every step).
    pub fn temperature(&self) -> f64 {
        self.temp.max(self.config.min_temp)
    }

    /// One Metropolis proposal: draw a random legal action, score the
    /// candidate with `cost`, accept downhill always and uphill with
    /// the Boltzmann probability, then cool.
    pub fn step<R, F>(&mut self, rng: &mut R, mut cost: F)
    where
        R: Rng + ?Sized,
        F: FnMut(&CompressorTree) -> f64,
    {
        let actions = self.current.valid_actions();
        if actions.is_empty() {
            self.trajectory.push(self.current_cost);
            return;
        }
        let action = actions[rng.gen_range(0..actions.len())];
        let candidate = self
            .current
            .apply_action(action)
            .expect("valid_actions only yields applicable actions");
        let cand_cost = cost(&candidate);
        let delta = cand_cost - self.current_cost;
        let accept =
            delta <= 0.0 || rng.gen::<f64>() < (-delta / self.temp.max(self.config.min_temp)).exp();
        let obs = rlmul_obs::global();
        if obs.is_enabled() {
            let help = "Simulated-annealing Metropolis proposals by outcome.";
            let outcome = if accept { "accepted" } else { "rejected" };
            obs.labeled_counter("rlmul_sa_proposals_total", help, &[("outcome", outcome)]).inc();
            obs.gauge("rlmul_sa_temperature", "Current annealing temperature.").set(self.temp);
        }
        if accept {
            self.current = candidate;
            self.current_cost = cand_cost;
            self.accepted += 1;
            if self.current_cost < self.best_cost {
                self.best = self.current.clone();
                self.best_cost = self.current_cost;
            }
        }
        self.trajectory.push(self.current_cost);
        self.temp = (self.temp * self.config.cooling).max(self.config.min_temp);
    }

    /// Consumes the run into its final [`SaOutcome`].
    pub fn into_outcome(self) -> SaOutcome {
        SaOutcome {
            best: self.best,
            best_cost: self.best_cost,
            trajectory: self.trajectory,
            accepted: self.accepted,
        }
    }

    /// Clones the mutable state out for a snapshot.
    pub fn to_parts(&self) -> SaParts {
        SaParts {
            current: self.current.clone(),
            current_cost: self.current_cost,
            best: self.best.clone(),
            best_cost: self.best_cost,
            temp: self.temp,
            trajectory: self.trajectory.clone(),
            accepted: self.accepted,
        }
    }

    /// Rebuilds a run mid-flight from snapshot parts.
    pub fn from_parts(config: SaConfig, parts: SaParts) -> Self {
        SaRun {
            config,
            current: parts.current,
            current_cost: parts.current_cost,
            best: parts.best,
            best_cost: parts.best_cost,
            temp: parts.temp,
            trajectory: parts.trajectory,
            accepted: parts.accepted,
        }
    }
}

/// Runs simulated annealing from `initial`, scoring states with
/// `cost` (lower is better; typically the synthesis-backed weighted
/// area/delay cost of paper Eq. 20).
pub fn simulated_annealing<R, F>(
    initial: &CompressorTree,
    config: &SaConfig,
    rng: &mut R,
    mut cost: F,
) -> SaOutcome
where
    R: Rng + ?Sized,
    F: FnMut(&CompressorTree) -> f64,
{
    let mut run = SaRun::new(initial.clone(), cost(initial), *config);
    while !run.is_done() {
        run.step(rng, &mut cost);
    }
    run.into_outcome()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use rlmul_ct::PpgKind;

    /// A cheap structural cost: compressor area proxy plus a stage
    /// penalty, so tests don't need the synthesis stack.
    fn proxy_cost(t: &CompressorTree) -> f64 {
        let area = 4.256 * t.matrix().total32() as f64 + 2.394 * t.matrix().total22() as f64;
        let stages = t.stage_count().unwrap_or(99) as f64;
        area + 10.0 * stages
    }

    #[test]
    fn annealing_improves_on_wallace() {
        let initial = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let out = simulated_annealing(
            &initial,
            &SaConfig { steps: 400, ..Default::default() },
            &mut rng,
            proxy_cost,
        );
        assert!(out.best_cost <= proxy_cost(&initial));
        assert!(out.accepted > 0);
        assert_eq!(out.trajectory.len(), 400);
        out.best.check_legal().unwrap();
    }

    #[test]
    fn zero_steps_returns_initial() {
        let initial = CompressorTree::dadda(4, PpgKind::And).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let out = simulated_annealing(
            &initial,
            &SaConfig { steps: 0, ..Default::default() },
            &mut rng,
            proxy_cost,
        );
        assert_eq!(&out.best, &initial);
        assert!(out.trajectory.is_empty());
    }

    #[test]
    fn stepwise_run_matches_batch_and_resumes_from_parts() {
        let initial = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let cfg = SaConfig { steps: 100, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(5);
        let batch = simulated_annealing(&initial, &cfg, &mut rng, proxy_cost);

        // Stepwise, with a snapshot/rebuild (parts + RNG state) at
        // the midpoint — must replay the batch run bit-identically.
        let mut rng = StdRng::seed_from_u64(5);
        let mut run = SaRun::new(initial.clone(), proxy_cost(&initial), cfg);
        for _ in 0..50 {
            run.step(&mut rng, proxy_cost);
        }
        let mut rng2 = StdRng::from_state(rng.state());
        let mut resumed = SaRun::from_parts(cfg, run.to_parts());
        while !resumed.is_done() {
            resumed.step(&mut rng2, proxy_cost);
        }
        let resumed = resumed.into_outcome();
        assert_eq!(batch.trajectory, resumed.trajectory);
        assert_eq!(batch.best_cost, resumed.best_cost);
        assert_eq!(batch.accepted, resumed.accepted);
        assert_eq!(batch.best, resumed.best);
    }

    #[test]
    fn trajectory_is_monotone_at_zero_temperature() {
        let initial = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = SaConfig { steps: 150, initial_temp: 1e-9, cooling: 0.5, min_temp: 1e-12 };
        let out = simulated_annealing(&initial, &cfg, &mut rng, proxy_cost);
        for w in out.trajectory.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "greedy descent must not accept uphill moves");
        }
    }
}
