//! GOMIL baseline: global optimization of the compressor tree by
//! integer linear programming [Xiao et al., DATE 2021].
//!
//! GOMIL's core ILP chooses per-column 3:2 / 2:2 compressor counts
//! minimizing total compressor area subject to the column balance
//! constraint `res_j ∈ {1, 2}`. Because the constraint couples
//! adjacent columns only through the carry count `a_j + b_j`, the ILP
//! decomposes exactly into a shortest-path problem over
//! `(column, carry-in)` states — solved here by dynamic programming,
//! which provably returns the ILP optimum (no solver gap, no
//! timeout). A generic branch-and-bound solver in [`crate::bnb`]
//! cross-checks optimality on small instances.

use rlmul_ct::{CompressorMatrix, CompressorTree, CtError, PpProfile, PpgKind};
use std::collections::HashMap;

/// Objective weights for the GOMIL area model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GomilWeights {
    /// Cost of one 3:2 compressor (full-adder area, µm²).
    pub full_adder: f64,
    /// Cost of one 2:2 compressor (half-adder area, µm²).
    pub half_adder: f64,
    /// Extra carry-propagate-adder cost of a column that keeps two
    /// residual rows instead of one (a single-row column folds most
    /// of its prefix-adder logic away). The default is 0 — the
    /// published GOMIL objective counts compressors only, and a
    /// positive value trades reduction depth for CPA area, which the
    /// depth-blind ILP cannot bound. Exposed for ablation studies.
    pub cpa_res2_extra: f64,
}

impl Default for GomilWeights {
    /// NanGate45-flavoured FA/HA areas plus the per-bit prefix-adder
    /// increment.
    fn default() -> Self {
        GomilWeights { full_adder: 4.256, half_adder: 2.394, cpa_res2_extra: 0.0 }
    }
}

/// Solves the GOMIL ILP exactly for `bits`-bit designs of `kind`.
///
/// # Errors
///
/// Propagates profile construction errors.
pub fn gomil(bits: usize, kind: PpgKind) -> Result<CompressorTree, CtError> {
    gomil_weighted(bits, kind, GomilWeights::default())
}

/// [`gomil`] with explicit area weights.
///
/// # Errors
///
/// Propagates profile construction errors.
pub fn gomil_weighted(
    bits: usize,
    kind: PpgKind,
    weights: GomilWeights,
) -> Result<CompressorTree, CtError> {
    let profile = PpProfile::new(bits, kind)?;
    let matrix = solve(&profile, weights);
    CompressorTree::from_matrix(profile, matrix)
}

/// DP over `(column, carry-in)` states. For each column the feasible
/// `(a, b)` pairs are exactly `b = inputs − 2a − res` for
/// `res ∈ {1, 2}` and `0 ≤ a ≤ inputs/2` — two candidates per `a`.
fn solve(profile: &PpProfile, weights: GomilWeights) -> CompressorMatrix {
    let ncols = profile.num_columns();
    // dp: carry-in → (cost, choice chain index)
    let mut dp: HashMap<u32, (f64, usize)> = HashMap::new();
    dp.insert(0, (0.0, usize::MAX));
    // Back-pointers: (prev chain index, a, b) per decision.
    let mut chain: Vec<(usize, u32, u32)> = Vec::new();

    for j in 0..ncols {
        let p = profile.columns()[j];
        let mut next: HashMap<u32, (f64, usize)> = HashMap::new();
        for (&cin, &(cost, back)) in &dp {
            let inputs = p + cin;
            if inputs == 0 {
                relax(&mut next, &mut chain, 0, cost, back, 0, 0);
                continue;
            }
            for a in 0..=inputs / 2 {
                for res in 1..=2u32 {
                    let used = 2 * a + res;
                    if used > inputs {
                        continue;
                    }
                    let b = inputs - used;
                    let c = cost
                        + weights.full_adder * a as f64
                        + weights.half_adder * b as f64
                        + if res == 2 { weights.cpa_res2_extra } else { 0.0 };
                    relax(&mut next, &mut chain, a + b, c, back, a, b);
                }
            }
        }
        dp = next;
    }
    // Best final state (any residual carry out of the MSB is allowed
    // but costs area, so the optimizer avoids it naturally).
    let (_, &(_, mut back)) = dp
        .iter()
        .min_by(|x, y| x.1 .0.partial_cmp(&y.1 .0).expect("finite costs"))
        .expect("dp never empties: res=1/2 is always feasible");
    let mut counts = vec![(0u32, 0u32); ncols];
    for j in (0..ncols).rev() {
        let (prev, a, b) = chain[back];
        counts[j] = (a, b);
        back = prev;
    }
    CompressorMatrix::from_counts(counts)
}

#[allow(clippy::too_many_arguments)]
fn relax(
    next: &mut HashMap<u32, (f64, usize)>,
    chain: &mut Vec<(usize, u32, u32)>,
    carry_out: u32,
    cost: f64,
    back: usize,
    a: u32,
    b: u32,
) {
    let entry = next.entry(carry_out);
    match entry {
        std::collections::hash_map::Entry::Occupied(mut e) => {
            if cost < e.get().0 {
                chain.push((back, a, b));
                e.insert((cost, chain.len() - 1));
            }
        }
        std::collections::hash_map::Entry::Vacant(e) => {
            chain.push((back, a, b));
            e.insert((cost, chain.len() - 1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gomil_solutions_are_legal() {
        for bits in [2, 4, 8, 16] {
            let t = gomil(bits, PpgKind::And).unwrap();
            t.check_legal().unwrap_or_else(|e| panic!("{bits}: {e}"));
            t.assign_stages().unwrap();
        }
        for kind in [PpgKind::Mbe, PpgKind::MacAnd, PpgKind::MacMbe] {
            gomil(8, kind).unwrap().check_legal().unwrap();
        }
    }

    #[test]
    fn gomil_objective_is_at_most_wallace_and_dadda() {
        let w = GomilWeights::default();
        let cost = |t: &CompressorTree| {
            let res2 = t.matrix().residuals(t.profile()).iter().filter(|&&r| r == 2).count() as f64;
            w.full_adder * t.matrix().total32() as f64
                + w.half_adder * t.matrix().total22() as f64
                + w.cpa_res2_extra * res2
        };
        for bits in [8, 16] {
            for kind in [PpgKind::And, PpgKind::Mbe] {
                let g = gomil(bits, kind).unwrap();
                let wal = CompressorTree::wallace(bits, kind).unwrap();
                let dad = CompressorTree::dadda(bits, kind).unwrap();
                assert!(cost(&g) <= cost(&wal) + 1e-9, "{bits} {kind} vs wallace");
                assert!(cost(&g) <= cost(&dad) + 1e-9, "{bits} {kind} vs dadda");
            }
        }
    }

    #[test]
    fn gomil_avoids_wasted_msb_carries() {
        let g = gomil(8, PpgKind::And).unwrap();
        let (a, b) = *g.matrix().counts().last().expect("columns");
        assert_eq!(a + b, 0, "no compressor output should fall past the MSB");
    }

    #[test]
    fn custom_weights_shift_the_mix() {
        // With free half adders the optimum uses at least as many of
        // them as the default weighting.
        let free_ha = gomil_weighted(
            8,
            PpgKind::And,
            GomilWeights { full_adder: 10.0, half_adder: 0.001, cpa_res2_extra: 0.0 },
        )
        .unwrap();
        let default = gomil(8, PpgKind::And).unwrap();
        assert!(free_ha.matrix().total22() >= default.matrix().total22());
    }
}
