//! A branch-and-bound solver for the GOMIL column ILP.
//!
//! Independent of the DP in [`crate::gomil`], this solver enumerates
//! per-column `(a_j, b_j)` decisions depth-first with an admissible
//! lower bound, and is used in tests to certify that the DP returns
//! the true ILP optimum on small instances.

use crate::gomil::GomilWeights;
use rlmul_ct::{CompressorMatrix, CompressorTree, CtError, PpProfile, PpgKind};

/// Exact branch-and-bound solve of the GOMIL ILP.
///
/// Exponential in the worst case; intended for cross-checking widths
/// up to ~8 bits.
///
/// # Errors
///
/// Propagates profile construction errors.
pub fn gomil_bnb(
    bits: usize,
    kind: PpgKind,
    weights: GomilWeights,
) -> Result<CompressorTree, CtError> {
    let profile = PpProfile::new(bits, kind)?;
    let ncols = profile.num_columns();
    // Admissible bound: cheapest possible reduction cost of each
    // column counting only its own initial products (carry-in only
    // raises the column's input count, and the bound is monotone).
    let min_cost = |inputs: u32| -> f64 {
        if inputs == 0 {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for res in 1..=2u32.min(inputs) {
            let reduce = inputs - res;
            let a = reduce / 2;
            let b = reduce % 2;
            // The CPA term of a column is ≥ 0, so omitting it keeps
            // the bound admissible.
            best = best.min(weights.full_adder * a as f64 + weights.half_adder * b as f64);
            // Alternative: trade one FA for two HAs when cheaper.
            if a >= 1 {
                best = best
                    .min(weights.full_adder * (a - 1) as f64 + weights.half_adder * (b + 2) as f64);
            }
        }
        best
    };
    let suffix_bound: Vec<f64> = {
        let mut s = vec![0.0; ncols + 1];
        for j in (0..ncols).rev() {
            s[j] = s[j + 1] + min_cost(profile.columns()[j]);
        }
        s
    };

    struct Search<'a> {
        profile: &'a PpProfile,
        weights: GomilWeights,
        suffix_bound: &'a [f64],
        best_cost: f64,
        best: Vec<(u32, u32)>,
        current: Vec<(u32, u32)>,
    }
    impl Search<'_> {
        fn dfs(&mut self, j: usize, cin: u32, cost: f64) {
            let ncols = self.profile.num_columns();
            if cost + self.suffix_bound[j] >= self.best_cost {
                return;
            }
            if j == ncols {
                self.best_cost = cost;
                self.best = self.current.clone();
                return;
            }
            let inputs = self.profile.columns()[j] + cin;
            if inputs == 0 {
                self.current[j] = (0, 0);
                self.dfs(j + 1, 0, cost);
                return;
            }
            for a in 0..=inputs / 2 {
                for res in 1..=2u32 {
                    let used = 2 * a + res;
                    if used > inputs {
                        continue;
                    }
                    let b = inputs - used;
                    let c = cost
                        + self.weights.full_adder * a as f64
                        + self.weights.half_adder * b as f64
                        + if res == 2 { self.weights.cpa_res2_extra } else { 0.0 };
                    self.current[j] = (a, b);
                    self.dfs(j + 1, a + b, c);
                }
            }
        }
    }

    let mut search = Search {
        profile: &profile,
        weights,
        suffix_bound: &suffix_bound,
        best_cost: f64::INFINITY,
        best: vec![(0, 0); ncols],
        current: vec![(0, 0); ncols],
    };
    search.dfs(0, 0, 0.0);
    let matrix = CompressorMatrix::from_counts(search.best);
    CompressorTree::from_matrix(profile, matrix)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gomil::gomil_weighted;

    fn cost(t: &CompressorTree, w: GomilWeights) -> f64 {
        let res2 = t.matrix().residuals(t.profile()).iter().filter(|&&r| r == 2).count() as f64;
        w.full_adder * t.matrix().total32() as f64
            + w.half_adder * t.matrix().total22() as f64
            + w.cpa_res2_extra * res2
    }

    #[test]
    fn bnb_and_dp_agree_on_small_instances() {
        let w = GomilWeights::default();
        for bits in [2, 3, 4, 5, 6] {
            let dp = gomil_weighted(bits, PpgKind::And, w).unwrap();
            let bb = gomil_bnb(bits, PpgKind::And, w).unwrap();
            assert!(
                (cost(&dp, w) - cost(&bb, w)).abs() < 1e-9,
                "bits {bits}: dp {} vs bnb {}",
                cost(&dp, w),
                cost(&bb, w)
            );
        }
    }

    #[test]
    fn bnb_agrees_under_skewed_weights() {
        let w = GomilWeights { full_adder: 3.0, half_adder: 2.9, cpa_res2_extra: 1.5 };
        for bits in [3, 4, 5] {
            let dp = gomil_weighted(bits, PpgKind::And, w).unwrap();
            let bb = gomil_bnb(bits, PpgKind::And, w).unwrap();
            assert!((cost(&dp, w) - cost(&bb, w)).abs() < 1e-9, "bits {bits}");
        }
    }

    #[test]
    fn bnb_result_is_legal() {
        let t = gomil_bnb(4, PpgKind::Mbe, GomilWeights::default()).unwrap();
        t.check_legal().unwrap();
    }
}
