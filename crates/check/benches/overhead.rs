//! Disabled-path overhead guard for the sync facade.
//!
//! The facade stays in the hot paths of the eval cache and telemetry
//! ring unconditionally, so with lockdep off and no model execution
//! active it must cost no more than `std::sync` plus one relaxed
//! load. Mirrors the `rlmul-obs` overhead bench: criterion timings
//! for the record, then a median-of-rounds guard that fails the bench
//! run on a regression past 2x.

use criterion::{black_box, criterion_group, Criterion};
use rlmul_check::sync;
use std::sync::Mutex as StdMutex;
use std::time::{Duration, Instant};

/// A few-ns xorshift workload per iteration, so the lock cost is
/// measured against realistic surrounding work.
#[inline]
fn workload(mut x: u64) -> u64 {
    for _ in 0..8 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
    }
    x
}

fn bench_disabled_paths(c: &mut Criterion) {
    let std_mutex = StdMutex::new(0u64);
    let facade_mutex = sync::Mutex::new("bench.mutex", 0u64);
    let std_rw = std::sync::RwLock::new(0u64);
    let facade_rw = sync::RwLock::new("bench.rw", 0u64);

    let mut g = c.benchmark_group("check_overhead");
    g.bench_function("std_mutex_lock", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            *std_mutex.lock().expect("bench mutex") += 1;
            x
        })
    });
    g.bench_function("facade_mutex_lock_disabled", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            *facade_mutex.lock() += 1;
            x
        })
    });
    g.bench_function("std_rwlock_read", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            black_box(*std_rw.read().expect("bench rwlock"));
            x
        })
    });
    g.bench_function("facade_rwlock_read_disabled", |b| {
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        b.iter(|| {
            x = workload(black_box(x));
            black_box(*facade_rw.read());
            x
        })
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(400))
        .warm_up_time(Duration::from_millis(100));
    targets = bench_disabled_paths
);

/// Median nanoseconds per iteration of `f` over `rounds` timed
/// batches of `iters` calls each.
fn median_ns_per_iter<F: FnMut() -> u64>(mut f: F, rounds: usize, iters: u64) -> f64 {
    let mut samples: Vec<f64> = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            let mut acc = 0u64;
            for _ in 0..iters {
                acc = acc.wrapping_add(f());
            }
            black_box(acc);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The CI guard: a facade lock/unlock with everything disabled must
/// stay within 2x of a bare `std::sync::Mutex` lock/unlock. A real
/// regression (recording acquisitions unconditionally, consulting the
/// scheduler TLS on the fast path) costs far more than 2x; scheduler
/// noise on a shared runner does not.
fn overhead_guard() {
    const ROUNDS: usize = 15;
    const ITERS: u64 = 400_000;
    let std_mutex = StdMutex::new(0u64);
    let facade_mutex = sync::Mutex::new("guard.mutex", 0u64);

    let mut x = 0x9e37_79b9_7f4a_7c15u64;
    let baseline = median_ns_per_iter(
        || {
            x = workload(black_box(x));
            *std_mutex.lock().expect("guard mutex") += 1;
            x
        },
        ROUNDS,
        ITERS,
    );
    let mut y = 0x9e37_79b9_7f4a_7c15u64;
    let facade = median_ns_per_iter(
        || {
            y = workload(black_box(y));
            *facade_mutex.lock() += 1;
            y
        },
        ROUNDS,
        ITERS,
    );
    let ratio = facade / baseline.max(0.1);
    println!(
        "guard: std {baseline:.2} ns/iter, facade-disabled {facade:.2} ns/iter (ratio {ratio:.3})"
    );
    assert!(
        ratio < 2.0,
        "disabled sync facade regressed: {facade:.2} ns/iter vs std {baseline:.2} ns/iter \
         ({ratio:.2}x, bound 2.0x)"
    );
}

fn main() {
    benches();
    overhead_guard();
}
