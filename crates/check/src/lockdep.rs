//! Lockdep-style acquisition-order tracking with cycle detection.
//!
//! Every [`crate::sync`] lock carries a `&'static str` *class* name
//! (all 16 cache shards are one class, the telemetry ring another…).
//! While lockdep is [`enable`]d, each acquisition records a directed
//! edge from every lock class currently held by the thread to the
//! class being acquired. A cycle in that graph means two threads can
//! acquire the same classes in opposite orders — a potential deadlock
//! — and is reported *the first time the ordering is observed*, long
//! before the unlucky interleaving that would actually wedge the
//! process.
//!
//! Reports surface two ways: the `rlmul_lockdep_cycles_total` counter
//! in the global [`rlmul_obs`] registry (scraped by the Prometheus
//! endpoint), and [`take_reports`] for pushing into the telemetry
//! JSONL stream. Self-edges (same class acquired while held) are
//! reported too: without explicit nesting annotations, same-class
//! nesting across threads is exactly the shard-A/shard-B inversion
//! hazard.
//!
//! Cost: disabled, the facade pays one relaxed atomic load per
//! operation (guarded by the same bench pattern as the obs registry);
//! enabled, each acquisition takes a short global mutex over the
//! class graph — a debugging facility, not a production default.

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use crate::gate;

/// One potential-deadlock cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CycleReport {
    /// Lock-class names along the cycle, starting and ending with the
    /// class whose acquisition closed it.
    pub cycle: Vec<String>,
    /// Human-readable description.
    pub message: String,
}

#[derive(Default)]
struct Graph {
    ids: HashMap<&'static str, u32>,
    names: Vec<&'static str>,
    /// `adj[a]` holds every class observed acquired while `a` was
    /// held.
    adj: Vec<BTreeSet<u32>>,
    /// Edges already reported (dedup: one report per ordering pair).
    reported: BTreeSet<(u32, u32)>,
    reports: Vec<CycleReport>,
    cycles: u64,
}

fn graph() -> &'static Mutex<Graph> {
    static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
    GRAPH.get_or_init(|| Mutex::new(Graph::default()))
}

thread_local! {
    /// Lock classes currently held by this thread, in acquisition
    /// order (innermost last).
    static HELD: RefCell<Vec<u32>> = const { RefCell::new(Vec::new()) };
}

/// Turns the detector on process-wide.
pub fn enable() {
    gate::set_lockdep(true);
}

/// Turns the detector off. Held-lock bookkeeping from enabled-time
/// acquisitions still unwinds correctly (release is keyed by class).
pub fn disable() {
    gate::set_lockdep(false);
}

/// Whether the detector is on.
pub fn is_enabled() -> bool {
    gate::flags() & gate::LOCKDEP != 0
}

/// Total potential-deadlock cycles observed since process start.
pub fn cycle_count() -> u64 {
    graph().lock().map(|g| g.cycles).unwrap_or(0)
}

/// Drains accumulated cycle reports (each cycle is reported once).
pub fn take_reports() -> Vec<CycleReport> {
    graph().lock().map(|mut g| std::mem::take(&mut g.reports)).unwrap_or_default()
}

impl Graph {
    fn intern(&mut self, name: &'static str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        self.ids.insert(name, id);
        self.names.push(name);
        self.adj.push(BTreeSet::new());
        id
    }

    /// Depth-first search: can `from` reach `to` along recorded
    /// edges?
    fn reaches(&self, from: u32, to: u32) -> Option<Vec<u32>> {
        let mut stack = vec![(from, vec![from])];
        let mut seen = BTreeSet::new();
        while let Some((node, path)) = stack.pop() {
            if node == to {
                return Some(path);
            }
            if !seen.insert(node) {
                continue;
            }
            for &next in &self.adj[node as usize] {
                let mut p = path.clone();
                p.push(next);
                stack.push((next, p));
            }
        }
        None
    }
}

/// Records an acquisition of `name` by this thread: adds held→name
/// edges, checks for cycles, then pushes `name` onto the held stack.
/// Called by the facade before blocking on the underlying lock, so a
/// cycle is reported even if the acquisition is about to deadlock.
pub(crate) fn on_acquire(name: &'static str) {
    let held: Vec<u32> = HELD.with(|h| h.borrow().clone());
    let mut g = match graph().lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    let class = g.intern(name);
    for &h in &held {
        if g.adj[h as usize].contains(&class) {
            continue; // known-good (or already-reported) ordering
        }
        // Adding h → class closes a cycle iff class already reaches h.
        let cycle_path = if h == class { Some(vec![class]) } else { g.reaches(class, h) };
        g.adj[h as usize].insert(class);
        if let Some(path) = cycle_path {
            if g.reported.insert((h, class)) {
                g.cycles += 1;
                let mut cycle: Vec<String> =
                    path.iter().map(|&id| g.names[id as usize].to_string()).collect();
                cycle.push(g.names[class as usize].to_string());
                let message = format!(
                    "potential deadlock: lock ordering cycle {} (edge `{}` → `{}` closes it)",
                    cycle.join(" → "),
                    g.names[h as usize],
                    g.names[class as usize],
                );
                g.reports.push(CycleReport { cycle, message });
                rlmul_obs::global()
                    .counter(
                        "rlmul_lockdep_cycles_total",
                        "Potential-deadlock lock-ordering cycles detected by rlmul-check.",
                    )
                    .inc();
            }
        }
    }
    drop(g);
    HELD.with(|h| h.borrow_mut().push(class));
}

/// Records the release of `name`: pops its innermost occurrence from
/// the held stack (locks may be released out of order).
pub(crate) fn on_release(name: &'static str) {
    let class = {
        let mut g = match graph().lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        g.intern(name)
    };
    HELD.with(|h| {
        let mut held = h.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&c| c == class) {
            held.remove(pos);
        }
    });
}

/// Serializes tests that touch the process-global graph/flag (the
/// parallel test runner would otherwise let them steal each other's
/// [`take_reports`] drains).
#[cfg(test)]
pub(crate) fn test_serial() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    match LOCK.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exercises the graph directly (not through the facade) so the
    /// test is independent of the global enable flag shared with
    /// other tests in the process.
    #[test]
    fn inverted_order_is_reported_once() {
        let _serial = test_serial();
        // Thread-local held stacks: simulate two threads by clearing
        // between sequences.
        let drain = take_reports(); // isolate from earlier tests
        drop(drain);
        on_acquire("t.lock-a");
        on_acquire("t.lock-b"); // a → b
        on_release("t.lock-b");
        on_release("t.lock-a");
        assert!(take_reports().is_empty(), "consistent order must not report");
        on_acquire("t.lock-b");
        on_acquire("t.lock-a"); // b → a: closes the cycle
        on_release("t.lock-a");
        on_release("t.lock-b");
        let reports = take_reports();
        assert_eq!(reports.len(), 1, "{reports:?}");
        assert!(reports[0].message.contains("t.lock-a"), "{}", reports[0].message);
        assert!(reports[0].message.contains("t.lock-b"), "{}", reports[0].message);
        // Same inversion again: deduplicated.
        on_acquire("t.lock-b");
        on_acquire("t.lock-a");
        on_release("t.lock-a");
        on_release("t.lock-b");
        assert!(take_reports().is_empty(), "duplicate cycle must not re-report");
    }

    #[test]
    fn self_nesting_is_reported() {
        let _serial = test_serial();
        on_acquire("t.self");
        on_acquire("t.self");
        on_release("t.self");
        on_release("t.self");
        let reports = take_reports();
        assert!(
            reports.iter().any(|r| r.message.contains("t.self")),
            "same-class nesting must report: {reports:?}"
        );
    }
}
