//! Instrumented sync primitives: `std::sync` semantics, plus lockdep
//! and model-checking hooks.
//!
//! Drop-in-shaped wrappers around [`std::sync`] locks with three
//! operating modes, selected per-process by one relaxed atomic load
//! (the `crate::gate` fast path, same discipline as the `rlmul-obs`
//! registry):
//!
//! - **Plain** (default): delegate straight to `std::sync`. The only
//!   added cost is the single flag load.
//! - **Lockdep** ([`crate::lockdep::enable`]): every acquisition
//!   feeds the acquisition-order graph; inversions are reported as
//!   potential deadlocks the first time the *ordering* occurs.
//! - **Model** (inside [`crate::sched::Model`] executions): the
//!   operation becomes a scheduling decision of the deterministic
//!   scheduler, letting the model checker enumerate interleavings.
//!
//! Two deliberate deviations from `std::sync`:
//!
//! - No poison propagation: `lock()`/`read()`/`write()` return guards
//!   directly, recovering the inner value if a previous holder
//!   panicked (like `parking_lot`). Poisoning added no safety here —
//!   every call site simply `.expect()`ed it into an abort — and the
//!   recovery keeps teardown paths deadlock-free.
//! - Every lock carries a `&'static str` *class name* (e.g. all 16
//!   cache shards share one class) used by lockdep reports, so
//!   diagnostics name the design-level lock, not an address.

use std::collections::VecDeque;
use std::fmt;
use std::ops::{Deref, DerefMut};
pub use std::sync::mpsc::{RecvError, SendError};
use std::sync::{Arc, Mutex as StdMutex};

use crate::gate;
use crate::lockdep;
use crate::sched;

fn plain_lock<T>(m: &StdMutex<T>) -> std::sync::MutexGuard<'_, T> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Resolves the instrumentation for one acquisition: the model ctx
/// (if this OS thread is a model vthread) and whether lockdep should
/// record it. During a panic unwind everything is bypassed — guards
/// dropping mid-unwind must never re-enter the scheduler.
fn instrumentation() -> (Option<sched::Ctx>, bool) {
    let flags = gate::flags();
    if flags == 0 || std::thread::panicking() {
        return (None, false);
    }
    let ctx = sched::current();
    // Under the model the scheduler itself finds deadlocks; lockdep
    // would only double-report, so it covers non-model threads.
    let ld = ctx.is_none() && flags & gate::LOCKDEP != 0;
    (ctx, ld)
}

/// A mutex with a lock-class name. See the module docs for modes.
pub struct Mutex<T> {
    name: &'static str,
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex whose acquisitions are attributed to the lock
    /// class `name`.
    pub const fn new(name: &'static str, value: T) -> Self {
        Mutex { name, inner: StdMutex::new(value) }
    }

    /// Acquires the mutex. Recovers (never propagates) poison.
    #[inline]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if gate::flags() == 0 {
            return MutexGuard {
                lock: self,
                inner: Some(plain_lock(&self.inner)),
                model: None,
                ld: false,
            };
        }
        self.lock_slow()
    }

    #[cold]
    fn lock_slow(&self) -> MutexGuard<'_, T> {
        let (ctx, ld) = instrumentation();
        if ld {
            // Record before blocking, so an about-to-deadlock
            // acquisition still reports its cycle.
            lockdep::on_acquire(self.name);
        }
        if let Some(ctx) = ctx {
            let obj = ctx.lock_object(self as *const Self as usize);
            ctx.lock(obj);
            let inner = self.inner.try_lock().unwrap_or_else(|e| match e {
                std::sync::TryLockError::Poisoned(p) => p.into_inner(),
                std::sync::TryLockError::WouldBlock => {
                    unreachable!("model lock granted but OS mutex held")
                }
            });
            return MutexGuard { lock: self, inner: Some(inner), model: Some((ctx, obj)), ld };
        }
        MutexGuard { lock: self, inner: Some(plain_lock(&self.inner)), model: None, ld }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").field("name", &self.name).field("inner", &self.inner).finish()
    }
}

/// RAII guard for [`Mutex`]; releases (and reports) on drop.
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<std::sync::MutexGuard<'a, T>>,
    model: Option<(sched::Ctx, usize)>,
    ld: bool,
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after dissolve")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard accessed after dissolve")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the OS lock before telling the scheduler: once the
        // model marks the lock free, another vthread may try_lock it.
        self.inner.take();
        if let Some((ctx, obj)) = self.model.take() {
            ctx.unlock(obj);
        }
        if self.ld {
            lockdep::on_release(self.lock.name);
        }
    }
}

/// A reader-writer lock with a lock-class name.
///
/// Under the model checker both `read` and `write` are conservatively
/// exclusive: the checker serializes everything anyway, and modelling
/// shared readers would only prune interleavings, never add them.
pub struct RwLock<T> {
    name: &'static str,
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an rwlock attributed to the lock class `name`.
    pub const fn new(name: &'static str, value: T) -> Self {
        RwLock { name, inner: std::sync::RwLock::new(value) }
    }

    /// Acquires shared read access. Recovers poison.
    #[inline]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        if gate::flags() == 0 {
            let inner = match self.inner.read() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            return RwLockReadGuard { lock: self, inner: Some(inner), model: None, ld: false };
        }
        self.read_slow()
    }

    #[cold]
    fn read_slow(&self) -> RwLockReadGuard<'_, T> {
        let (ctx, ld) = instrumentation();
        if ld {
            lockdep::on_acquire(self.name);
        }
        if let Some(ctx) = ctx {
            let obj = ctx.lock_object(self as *const Self as usize);
            ctx.lock(obj);
            let inner = self.inner.try_read().unwrap_or_else(|e| match e {
                std::sync::TryLockError::Poisoned(p) => p.into_inner(),
                std::sync::TryLockError::WouldBlock => {
                    unreachable!("model lock granted but OS rwlock held")
                }
            });
            return RwLockReadGuard { lock: self, inner: Some(inner), model: Some((ctx, obj)), ld };
        }
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockReadGuard { lock: self, inner: Some(inner), model: None, ld }
    }

    /// Acquires exclusive write access. Recovers poison.
    #[inline]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        if gate::flags() == 0 {
            let inner = match self.inner.write() {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
            return RwLockWriteGuard { lock: self, inner: Some(inner), model: None, ld: false };
        }
        self.write_slow()
    }

    #[cold]
    fn write_slow(&self) -> RwLockWriteGuard<'_, T> {
        let (ctx, ld) = instrumentation();
        if ld {
            lockdep::on_acquire(self.name);
        }
        if let Some(ctx) = ctx {
            let obj = ctx.lock_object(self as *const Self as usize);
            ctx.lock(obj);
            let inner = self.inner.try_write().unwrap_or_else(|e| match e {
                std::sync::TryLockError::Poisoned(p) => p.into_inner(),
                std::sync::TryLockError::WouldBlock => {
                    unreachable!("model lock granted but OS rwlock held")
                }
            });
            return RwLockWriteGuard {
                lock: self,
                inner: Some(inner),
                model: Some((ctx, obj)),
                ld,
            };
        }
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        RwLockWriteGuard { lock: self, inner: Some(inner), model: None, ld }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").field("name", &self.name).field("inner", &self.inner).finish()
    }
}

/// Shared-access RAII guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockReadGuard<'a, T>>,
    model: Option<(sched::Ctx, usize)>,
    ld: bool,
}

impl<T> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after dissolve")
    }
}

impl<T> Drop for RwLockReadGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((ctx, obj)) = self.model.take() {
            ctx.unlock(obj);
        }
        if self.ld {
            lockdep::on_release(self.lock.name);
        }
    }
}

/// Exclusive-access RAII guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T> {
    lock: &'a RwLock<T>,
    inner: Option<std::sync::RwLockWriteGuard<'a, T>>,
    model: Option<(sched::Ctx, usize)>,
    ld: bool,
}

impl<T> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("guard accessed after dissolve")
    }
}

impl<T> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("guard accessed after dissolve")
    }
}

impl<T> Drop for RwLockWriteGuard<'_, T> {
    fn drop(&mut self) {
        self.inner.take();
        if let Some((ctx, obj)) = self.model.take() {
            ctx.unlock(obj);
        }
        if self.ld {
            lockdep::on_release(self.lock.name);
        }
    }
}

/// A condition variable paired with [`Mutex`].
///
/// Model semantics: no spurious wakeups, `notify_one` wakes the
/// longest waiter. Callers must still loop on their predicate — the
/// state can change between wakeup and reacquisition.
pub struct Condvar {
    name: &'static str,
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condvar named for diagnostics.
    pub const fn new(name: &'static str) -> Self {
        Condvar { name, inner: std::sync::Condvar::new() }
    }

    /// Releases `guard`'s mutex, waits for a notification, and
    /// reacquires it.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
        let lock = guard.lock;
        let ld = guard.ld;
        guard.ld = false; // this wait owns the release/reacquire pair
        if let Some((ctx, mobj)) = guard.model.take() {
            guard.inner.take();
            drop(guard);
            if ld {
                lockdep::on_release(lock.name);
            }
            let cvobj = ctx.cv_object(self as *const Self as usize);
            ctx.cv_wait(cvobj, mobj);
            let inner = lock.inner.try_lock().unwrap_or_else(|e| match e {
                std::sync::TryLockError::Poisoned(p) => p.into_inner(),
                std::sync::TryLockError::WouldBlock => {
                    unreachable!("model lock granted but OS mutex held")
                }
            });
            if ld {
                lockdep::on_acquire(lock.name);
            }
            return MutexGuard { lock, inner: Some(inner), model: Some((ctx, mobj)), ld };
        }
        let inner = guard.inner.take().expect("guard accessed after dissolve");
        drop(guard);
        if ld {
            lockdep::on_release(lock.name);
        }
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        if ld {
            lockdep::on_acquire(lock.name);
        }
        MutexGuard { lock, inner: Some(inner), model: None, ld }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        if let (Some(ctx), _) = instrumentation() {
            let cvobj = ctx.cv_object(self as *const Self as usize);
            ctx.notify_one(cvobj);
            return;
        }
        self.inner.notify_one();
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if let (Some(ctx), _) = instrumentation() {
            let cvobj = ctx.cv_object(self as *const Self as usize);
            ctx.notify_all(cvobj);
            return;
        }
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Condvar").field("name", &self.name).finish()
    }
}

/// Handle to a spawned thread (OS thread, or a model vthread inside
/// model executions).
pub struct JoinHandle<T>(JoinInner<T>);

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self.0 {
            JoinInner::Os(_) => "JoinHandle(os)",
            JoinInner::Model { .. } => "JoinHandle(model)",
        })
    }
}

enum JoinInner<T> {
    Os(std::thread::JoinHandle<T>),
    Model { ctx: sched::Ctx, tid: usize, result: Arc<StdMutex<Option<T>>> },
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish, returning its result. A panic
    /// in a model vthread fails the whole model execution instead of
    /// surfacing here.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            JoinInner::Os(h) => h.join(),
            JoinInner::Model { ctx, tid, result } => {
                ctx.join(tid);
                let v =
                    plain_lock(&result).take().expect("model vthread finished without a result");
                Ok(v)
            }
        }
    }
}

/// Spawns a named thread — an OS thread normally, a scheduler-
/// controlled vthread inside model executions.
///
/// # Panics
///
/// Panics if the OS refuses to spawn a thread (matching the existing
/// call sites, which all `expect`ed the spawn).
pub fn spawn_named<T, F>(name: &str, f: F) -> JoinHandle<T>
where
    T: Send + 'static,
    F: FnOnce() -> T + Send + 'static,
{
    if let (Some(ctx), _) = instrumentation() {
        let result: Arc<StdMutex<Option<T>>> = Arc::new(StdMutex::new(None));
        let slot = Arc::clone(&result);
        let tid = ctx.spawn(
            name,
            Box::new(move || {
                let v = f();
                *plain_lock(&slot) = Some(v);
            }),
        );
        return JoinHandle(JoinInner::Model { ctx, tid, result });
    }
    let handle = std::thread::Builder::new().name(name.to_string()).spawn(f).expect("spawn thread");
    JoinHandle(JoinInner::Os(handle))
}

struct ChanState<T> {
    queue: VecDeque<T>,
    senders: usize,
    receiver_alive: bool,
}

struct Chan<T> {
    state: Mutex<ChanState<T>>,
    cv: Condvar,
}

/// The sending half of [`channel`]. Cloneable.
pub struct Sender<T> {
    chan: Arc<Chan<T>>,
}

/// The receiving half of [`channel`].
pub struct Receiver<T> {
    chan: Arc<Chan<T>>,
}

/// An unbounded mpsc channel built on the facade primitives, so its
/// internals are lockdep-tracked and model-checkable like any other
/// facade lock. API mirrors [`std::sync::mpsc::channel`] (same error
/// types) minus timeouts.
pub fn channel<T>(name: &'static str) -> (Sender<T>, Receiver<T>) {
    let chan = Arc::new(Chan {
        state: Mutex::new(
            name,
            ChanState { queue: VecDeque::new(), senders: 1, receiver_alive: true },
        ),
        cv: Condvar::new(name),
    });
    (Sender { chan: Arc::clone(&chan) }, Receiver { chan })
}

impl<T> Sender<T> {
    /// Enqueues `value`; fails (returning it) if the receiver is gone.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut state = self.chan.state.lock();
        if !state.receiver_alive {
            return Err(SendError(value));
        }
        state.queue.push_back(value);
        drop(state);
        self.chan.cv.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.chan.state.lock().senders += 1;
        Sender { chan: Arc::clone(&self.chan) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let last = {
            let mut state = self.chan.state.lock();
            state.senders -= 1;
            state.senders == 0
        };
        if last {
            // Wake a receiver blocked on a now-forever-empty queue.
            self.chan.cv.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues the next value, blocking while the queue is empty;
    /// fails once every sender is gone and the queue is drained.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut state = self.chan.state.lock();
        loop {
            if let Some(v) = state.queue.pop_front() {
                return Ok(v);
            }
            if state.senders == 0 {
                return Err(RecvError);
            }
            state = self.chan.cv.wait(state);
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.chan.state.lock().receiver_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_condvar_roundtrip_plain() {
        let m = Arc::new(Mutex::new("t.sync-m", 0u32));
        let cv = Arc::new(Condvar::new("t.sync-cv"));
        let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
        let h = spawn_named("setter", move || {
            *m2.lock() = 7;
            cv2.notify_all();
        });
        let mut g = m.lock();
        while *g != 7 {
            g = cv.wait(g);
        }
        drop(g);
        h.join().expect("setter thread");
    }

    #[test]
    fn rwlock_read_write_plain() {
        let l = RwLock::new("t.sync-rw", vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn channel_matches_mpsc_semantics() {
        let (tx, rx) = channel::<u32>("t.sync-chan");
        let tx2 = tx.clone();
        tx.send(1).expect("receiver alive");
        tx2.send(2).expect("receiver alive");
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Err(RecvError), "all senders dropped");
        let (tx, rx) = channel::<u32>("t.sync-chan2");
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)), "receiver dropped");
    }

    #[test]
    fn lockdep_sees_facade_acquisitions() {
        let _serial = crate::lockdep::test_serial();
        let _ = crate::lockdep::take_reports();
        crate::lockdep::enable();
        let a = Mutex::new("t.facade-a", ());
        let b = Mutex::new("t.facade-b", ());
        {
            let _ga = a.lock();
            let _gb = b.lock();
        }
        {
            let _gb = b.lock();
            let _ga = a.lock();
        }
        crate::lockdep::disable();
        let reports = crate::lockdep::take_reports();
        assert!(
            reports.iter().any(|r| r.message.contains("t.facade-a")),
            "facade must feed lockdep: {reports:?}"
        );
    }
}
