//! A lightweight Rust source scanner.
//!
//! The lint rules match *tokens in code*, so the scanner's job is to
//! blank out everything that is not code — line and block comments,
//! string/char literal contents — while remembering two things the
//! rules need: inline `// check: allow(<rule>)` escapes and which
//! lines sit inside test-only regions (`#[cfg(test)]` /`#[test]`
//! items). It is a character-level state machine, not a parser: raw
//! strings, nested block comments and lifetime-vs-char-literal
//! disambiguation are handled, macro bodies are treated as code.

/// One scanned source line.
#[derive(Debug, Clone, Default)]
pub struct ScanLine {
    /// The line with comment and literal contents replaced by spaces
    /// (delimiters kept), so token searches cannot match inside them.
    pub code: String,
    /// Rule IDs allowed on this line by a `// check: allow(...)`
    /// escape on the same line or the line directly above.
    pub allows: Vec<String>,
    /// Whether the line is inside a `#[cfg(test)]` or `#[test]`
    /// region (rules skip test code by default).
    pub in_test: bool,
}

/// A scanned file: per-line code text plus escape/test metadata.
#[derive(Debug, Default)]
pub struct ScannedFile {
    /// Lines in order; index 0 is source line 1.
    pub lines: Vec<ScanLine>,
}

/// Scanner state across newlines.
enum State {
    Code,
    /// Nested block comments (`/* /* */ */`), depth ≥ 1.
    Block(usize),
    /// Ordinary string literal.
    Str,
    /// Raw string literal with this many `#` marks.
    RawStr(usize),
}

/// Scans one file's source text.
pub fn scan(source: &str) -> ScannedFile {
    let mut lines = Vec::new();
    let mut state = State::Code;
    // An escape written on a line covers that line and the next one —
    // but only escapes *written* there, not ones inherited from
    // further above (no transitive cascade).
    let mut prev_own: Vec<String> = Vec::new();
    for raw in source.lines() {
        let (code, comment) = scan_line(raw, &mut state);
        let own = parse_allows(&comment);
        let mut allows = own.clone();
        for a in &prev_own {
            if !allows.contains(a) {
                allows.push(a.clone());
            }
        }
        lines.push(ScanLine { code, allows, in_test: false });
        prev_own = own;
    }
    let mut file = ScannedFile { lines };
    mark_test_regions(&mut file);
    file
}

/// Scans one line, returning `(code-with-literals-blanked, comment
/// text)` and updating the cross-line state.
#[allow(clippy::too_many_lines)]
fn scan_line(raw: &str, state: &mut State) -> (String, String) {
    let b: Vec<char> = raw.chars().collect();
    let mut code = String::with_capacity(raw.len());
    let mut comment = String::new();
    let mut i = 0;
    while i < b.len() {
        match state {
            State::Block(depth) => {
                if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                    *depth += 1;
                    code.push_str("  ");
                    i += 2;
                } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                    *depth -= 1;
                    if *depth == 0 {
                        *state = State::Code;
                    }
                    code.push_str("  ");
                    i += 2;
                } else {
                    comment.push(b[i]);
                    code.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == '\\' {
                    code.push_str("  ");
                    i += 2; // skip the escaped char (may run off: ok)
                } else if b[i] == '"' {
                    *state = State::Code;
                    code.push('"');
                    i += 1;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b[i] == '"' && closes_raw(&b, i + 1, *hashes) {
                    let h = *hashes;
                    *state = State::Code;
                    code.push('"');
                    for _ in 0..h {
                        code.push('#');
                    }
                    i += 1 + h;
                } else {
                    code.push(' ');
                    i += 1;
                }
            }
            State::Code => {
                match b[i] {
                    '/' if b.get(i + 1) == Some(&'/') => {
                        // Line comment: the rest of the line.
                        comment.extend(&b[i + 2..]);
                        break;
                    }
                    '/' if b.get(i + 1) == Some(&'*') => {
                        *state = State::Block(1);
                        code.push_str("  ");
                        i += 2;
                    }
                    '"' => {
                        *state = State::Str;
                        code.push('"');
                        i += 1;
                    }
                    'r' if raw_string_at(&b, i).is_some() => {
                        let hashes = raw_string_at(&b, i).unwrap_or(0);
                        *state = State::RawStr(hashes);
                        code.push('r');
                        for _ in 0..hashes {
                            code.push('#');
                        }
                        code.push('"');
                        i += 2 + hashes;
                    }
                    'b' if b.get(i + 1) == Some(&'"') => {
                        *state = State::Str;
                        code.push_str("b\"");
                        i += 2;
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes
                        // within a few chars (`'x'`, `'\n'`, `'\u{..}'`).
                        if let Some(end) = char_literal_end(&b, i) {
                            code.push('\'');
                            for _ in i + 1..end {
                                code.push(' ');
                            }
                            code.push('\'');
                            i = end + 1;
                        } else {
                            code.push('\'');
                            i += 1;
                        }
                    }
                    c => {
                        code.push(c);
                        i += 1;
                    }
                }
            }
        }
    }
    (code, comment)
}

/// Whether `r"`/`r#"`-style raw string starts at `i`; returns the
/// hash count.
fn raw_string_at(b: &[char], i: usize) -> Option<usize> {
    // Must not be part of an identifier (e.g. `for`): previous char
    // cannot be alphanumeric or `_`.
    if i > 0 && (b[i - 1].is_alphanumeric() || b[i - 1] == '_') {
        return None;
    }
    let mut j = i + 1;
    let mut hashes = 0;
    while b.get(j) == Some(&'#') {
        hashes += 1;
        j += 1;
    }
    (b.get(j) == Some(&'"')).then_some(hashes)
}

/// Whether `#`×`hashes` follows at `i` (closing a raw string).
fn closes_raw(b: &[char], i: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| b.get(i + k) == Some(&'#'))
}

/// If a char literal starts at `i` (a `'`), returns the index of its
/// closing quote; `None` for lifetimes.
fn char_literal_end(b: &[char], i: usize) -> Option<usize> {
    match b.get(i + 1) {
        Some('\\') => {
            // Escaped: find the next unescaped quote within a small
            // window (covers `'\u{10FFFF}'`).
            (i + 3..(i + 12).min(b.len())).find(|&j| b[j] == '\'')
        }
        Some(_) if b.get(i + 2) == Some(&'\'') => Some(i + 2),
        _ => None,
    }
}

/// Extracts rule IDs from `check: allow(a, b)` inside a comment.
fn parse_allows(comment: &str) -> Vec<String> {
    let mut allows = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("check: allow(") {
        let args = &rest[pos + "check: allow(".len()..];
        let Some(close) = args.find(')') else { break };
        for id in args[..close].split(',') {
            let id = id.trim().to_string();
            if !id.is_empty() && !allows.contains(&id) {
                allows.push(id);
            }
        }
        rest = &args[close..];
    }
    allows
}

/// Marks lines inside `#[cfg(test)]`- or `#[test]`-attributed items
/// by matching the braces of the block that follows the attribute.
fn mark_test_regions(file: &mut ScannedFile) {
    let n = file.lines.len();
    let mut line = 0;
    while line < n {
        let code = file.lines[line].code.clone();
        if code.contains("#[cfg(test)]") || code.contains("#[test]") {
            // Find the opening brace of the attributed item (skipping
            // further attribute lines), then mark through its close.
            let mut depth = 0usize;
            let mut opened = false;
            let mut l = line;
            'outer: while l < n {
                for c in file.lines[l].code.clone().chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => {
                            depth = depth.saturating_sub(1);
                        }
                        _ => {}
                    }
                }
                file.lines[l].in_test = true;
                if opened && depth == 0 {
                    break 'outer;
                }
                l += 1;
            }
            line = l + 1;
        } else {
            line += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked() {
        let f = scan("let x = \"Instant::now()\"; // Instant::now()\nInstant::now();\n");
        assert!(!f.lines[0].code.contains("Instant"));
        assert!(f.lines[1].code.contains("Instant::now"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let f = scan("/* a /* b */\nstill comment */ code();\n");
        assert!(!f.lines[0].code.contains('a'));
        assert!(!f.lines[1].code.contains("still"));
        assert!(f.lines[1].code.contains("code()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let f = scan("let s = r#\"HashMap \"quoted\" inside\"#; HashSet::new();\n");
        assert!(!f.lines[0].code.contains("HashMap"));
        assert!(f.lines[0].code.contains("HashSet"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = scan("fn f<'a>(x: &'a str) -> &'a str { x }\nlet c = '\"';\nlet d = 'x';\n");
        assert!(f.lines[0].code.contains("str"));
        // The quote inside the char literal must not open a string.
        assert!(f.lines[2].code.contains("let d"));
    }

    #[test]
    fn allow_escapes_cover_same_and_next_line() {
        let f = scan("// check: allow(wall-clock)\nInstant::now();\nInstant::now();\n");
        assert_eq!(f.lines[0].allows, vec!["wall-clock"]);
        assert_eq!(f.lines[1].allows, vec!["wall-clock"]);
        assert!(f.lines[2].allows.is_empty());
        let g = scan("let t = Instant::now(); // check: allow(wall-clock) timing stats\n");
        assert_eq!(g.lines[0].allows, vec!["wall-clock"]);
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let f = scan(src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[3].in_test);
        assert!(!f.lines[5].in_test);
    }
}
