//! The rule catalogue.
//!
//! Every rule is deny-by-default over its configured file set; the
//! only escape is an inline `// check: allow(<rule>)` on (or directly
//! above) the flagged line, which keeps every exception visible and
//! justified at the use site. Rules skip `#[cfg(test)]`/`#[test]`
//! regions — tests may time things and unwrap freely.

use super::scan::ScannedFile;
use super::Finding;

/// `wall-clock`: no `Instant`/`SystemTime` in determinism-critical
/// code. A wall-clock read that influences control flow or serialized
/// state breaks bit-identical resume; reads that only feed timing
/// *stats* (obs histograms, telemetry phase events) are classified as
/// allowed at the use site.
pub const WALL_CLOCK: &str = "wall-clock";

/// `hash-iter`: no `HashMap`/`HashSet` in ordering-critical files
/// (snapshot codecs, telemetry serialization, cache export). Their
/// iteration order is nondeterministic across processes, so any map
/// that can feed serialized bytes must be a `BTreeMap` or be sorted
/// explicitly — in which case the declaration carries an allow
/// pointing at the sort.
pub const HASH_ITER: &str = "hash-iter";

/// `panic-path`: no `unwrap`/`expect`/`panic!`-family calls in
/// server-facing request paths. A malformed request must produce a
/// logged error response, never kill the serving thread.
pub const PANIC_PATH: &str = "panic-path";

/// `crate-attrs`: every crate root carries `#![forbid(unsafe_code)]`,
/// and the documented-API crates carry `#![deny(missing_docs)]`.
pub const CRATE_ATTRS: &str = "crate-attrs";

/// `trace-ctx`: event-emission sites in the job server and the
/// driver-facing core must carry per-job trace context — either the
/// emission goes through a `TraceCtx` (so the event lands in the
/// job's causally-ordered timeline) or the line is allow-escaped with
/// a justification that the event is genuinely context-free (process-
/// wide aggregates). Keeps uncorrelated events from silently
/// reappearing as the server grows.
pub const TRACE_CTX: &str = "trace-ctx";

/// All rule IDs, for `--help`-style listings and allow validation.
pub const ALL_RULES: [&str; 5] = [WALL_CLOCK, HASH_ITER, PANIC_PATH, CRATE_ATTRS, TRACE_CTX];

/// Files (workspace-relative, `/`-separated; a trailing `/` means
/// prefix match) where `wall-clock` applies: the snapshot codec and
/// PRNG crates plus the snapshot-relevant evaluation paths.
pub const WALL_CLOCK_PATHS: [&str; 8] = [
    "crates/ckpt/src/",
    "crates/rand/src/",
    "crates/core/src/surrogate.rs",
    "crates/core/src/env.rs",
    "crates/core/src/cache.rs",
    "crates/core/src/ckpt.rs",
    "crates/synth/src/synth.rs",
    "crates/synth/src/inc.rs",
];

/// Files where `hash-iter` applies: everything that serializes state
/// (checkpoint codecs, telemetry JSONL) or exports cache contents.
pub const HASH_ITER_PATHS: [&str; 8] = [
    "crates/ckpt/src/",
    "crates/telemetry/src/",
    "crates/core/src/ckpt.rs",
    "crates/core/src/cache.rs",
    "crates/synth/src/ckpt.rs",
    "crates/nn/src/ckpt.rs",
    "crates/nn/src/io.rs",
    "crates/serve/src/",
];

/// Files where `panic-path` applies: server-facing request handlers.
/// The job server's routing, JSON codec and state-mutation layers are
/// all on the request path of a long-running daemon.
pub const PANIC_PATH_PATHS: [&str; 4] = [
    "crates/obs/src/http.rs",
    "crates/serve/src/api.rs",
    "crates/serve/src/json.rs",
    "crates/serve/src/server.rs",
];

/// Files where `trace-ctx` applies: the job server plus the core
/// files whose events describe per-job work (the environment's
/// synthesis/cache path and the driver hooks).
pub const TRACE_CTX_PATHS: [&str; 3] =
    ["crates/serve/src/", "crates/core/src/env.rs", "crates/core/src/hooks.rs"];

/// Crates whose public API is documented under `deny(missing_docs)`
/// (the existing crate contract; extend as crates are upgraded).
pub const MISSING_DOCS_CRATES: [&str; 7] =
    ["check", "ckpt", "lec", "obs", "sat", "serve", "telemetry"];

/// Whether `path` (workspace-relative, `/`-separated) is covered by
/// the given path set.
pub fn path_matches(path: &str, set: &[&str]) -> bool {
    set.iter().any(|p| if p.ends_with('/') { path.starts_with(p) } else { path == *p })
}

/// Searches `code` for `needle` at identifier boundaries (the char
/// before and after must not be part of an identifier).
fn find_token(code: &str, needle: &str) -> Option<usize> {
    let bytes = code.as_bytes();
    let is_ident = |b: u8| b.is_ascii_alphanumeric() || b == b'_';
    let mut from = 0;
    while let Some(rel) = code[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0 || !is_ident(bytes[at - 1]);
        let end = at + needle.len();
        let after_ok = end >= bytes.len() || !is_ident(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + 1;
    }
    None
}

/// Emits one finding per flagged line unless the line carries an
/// allow for `rule`.
fn flag_lines(
    file: &ScannedFile,
    path: &str,
    rule: &'static str,
    needles: &[&str],
    message: &str,
    out: &mut Vec<Finding>,
) {
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let hit = needles.iter().any(|n| find_token(&line.code, n).is_some());
        if !hit {
            continue;
        }
        if line.allows.iter().any(|a| a == rule) {
            continue;
        }
        out.push(Finding {
            rule,
            path: path.to_string(),
            line: idx + 1,
            message: message.to_string(),
            snippet: line.code.trim().to_string(),
        });
    }
}

/// Runs `wall-clock` over one scanned file.
pub fn check_wall_clock(file: &ScannedFile, path: &str, out: &mut Vec<Finding>) {
    if !path_matches(path, &WALL_CLOCK_PATHS) {
        return;
    }
    flag_lines(
        file,
        path,
        WALL_CLOCK,
        &["Instant", "SystemTime"],
        "wall-clock read in determinism-critical code; timing-stats uses \
         must carry `// check: allow(wall-clock)` with a justification",
        out,
    );
}

/// Runs `hash-iter` over one scanned file.
pub fn check_hash_iter(file: &ScannedFile, path: &str, out: &mut Vec<Finding>) {
    if !path_matches(path, &HASH_ITER_PATHS) {
        return;
    }
    flag_lines(
        file,
        path,
        HASH_ITER,
        &["HashMap", "HashSet"],
        "HashMap/HashSet in an ordering-critical file: iteration order \
         can leak into serialized bytes; use BTreeMap/BTreeSet or sort \
         before serializing (and justify with `// check: allow(hash-iter)`)",
        out,
    );
}

/// Runs `panic-path` over one scanned file.
pub fn check_panic_path(file: &ScannedFile, path: &str, out: &mut Vec<Finding>) {
    if !path_matches(path, &PANIC_PATH_PATHS) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.iter().any(|a| a == PANIC_PATH) {
            continue;
        }
        let code = &line.code;
        let hit = code.contains(".unwrap()")
            || code.contains(".expect(")
            || find_token(code, "panic!").is_some()
            || find_token(code, "unreachable!").is_some()
            || find_token(code, "todo!").is_some()
            || find_token(code, "unimplemented!").is_some();
        if hit {
            out.push(Finding {
                rule: PANIC_PATH,
                path: path.to_string(),
                line: idx + 1,
                message: "panicking call in a server-facing request path; return a \
                          logged 400/500 response instead"
                    .to_string(),
                snippet: code.trim().to_string(),
            });
        }
    }
}

/// Runs `trace-ctx` over one scanned file: flags emission sites
/// (`.emit(` calls and `Event::new` constructions) whose line shows
/// no trace correlation — no `trace`/`TraceCtx` token and no
/// `emit_forced` (which is only callable on a `TraceCtx`).
pub fn check_trace_ctx(file: &ScannedFile, path: &str, out: &mut Vec<Finding>) {
    if !path_matches(path, &TRACE_CTX_PATHS) {
        return;
    }
    for (idx, line) in file.lines.iter().enumerate() {
        if line.in_test || line.allows.iter().any(|a| a == TRACE_CTX) {
            continue;
        }
        let code = &line.code;
        let emits = code.contains(".emit(") || code.contains("Event::new");
        if !emits {
            continue;
        }
        let correlated = find_token(code, "trace").is_some()
            || code.contains("TraceCtx")
            || code.contains("emit_forced");
        if correlated {
            continue;
        }
        out.push(Finding {
            rule: TRACE_CTX,
            path: path.to_string(),
            line: idx + 1,
            message: "event emission without per-job trace context; route it \
                      through the job's TraceCtx, or justify with \
                      `// check: allow(trace-ctx)` if it is genuinely \
                      context-free"
                .to_string(),
            snippet: code.trim().to_string(),
        });
    }
}

/// Runs `crate-attrs` over one crate-root file (`src/lib.rs`).
/// `crate_name` is the directory under `crates/` (empty for the
/// workspace root crate).
pub fn check_crate_attrs(source: &str, path: &str, crate_name: &str, out: &mut Vec<Finding>) {
    if !source.contains("#![forbid(unsafe_code)]") {
        out.push(Finding {
            rule: CRATE_ATTRS,
            path: path.to_string(),
            line: 1,
            message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
            snippet: String::new(),
        });
    }
    if MISSING_DOCS_CRATES.contains(&crate_name) && !source.contains("#![deny(missing_docs)]") {
        out.push(Finding {
            rule: CRATE_ATTRS,
            path: path.to_string(),
            line: 1,
            message: "documented-API crate is missing `#![deny(missing_docs)]`".to_string(),
            snippet: String::new(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::super::scan::scan;
    use super::*;

    #[test]
    fn wall_clock_flags_and_allows() {
        let src = "use std::time::Instant;\nlet t = Instant::now(); // check: allow(wall-clock) stats only\n";
        let f = scan(src);
        let mut out = Vec::new();
        check_wall_clock(&f, "crates/ckpt/src/file.rs", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 1);
    }

    #[test]
    fn wall_clock_skips_unconfigured_files_and_tests() {
        let src = "#[cfg(test)]\nmod tests { use std::time::Instant; }\n";
        let f = scan(src);
        let mut out = Vec::new();
        check_wall_clock(&f, "crates/ckpt/src/file.rs", &mut out);
        assert!(out.is_empty(), "{out:?}");
        let g = scan("use std::time::Instant;\n");
        check_wall_clock(&g, "crates/bench/src/lib.rs", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn hash_iter_flags_maps_not_substrings() {
        let f = scan("struct MyHashMapLike;\nuse std::collections::HashMap;\n");
        let mut out = Vec::new();
        check_hash_iter(&f, "crates/telemetry/src/json.rs", &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].line, 2);
    }

    #[test]
    fn panic_path_distinguishes_unwrap_or() {
        let src = "let a = x.unwrap_or(0);\nlet b = y.unwrap();\nlet c = z.expect(\"boom\");\n";
        let f = scan(src);
        let mut out = Vec::new();
        check_panic_path(&f, "crates/obs/src/http.rs", &mut out);
        let lines: Vec<usize> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3], "{out:?}");
    }

    #[test]
    fn trace_ctx_flags_uncorrelated_emissions() {
        let src = "sink.emit(Event::new(\"orphan\"));\n\
                   hooks.trace.emit(\"step\", \"steps_done=3\");\n\
                   sink.emit(ev); // check: allow(trace-ctx) process aggregate\n\
                   sink.emit(Event::trace(&id, e.seq, e.micros, &e.kind, &e.detail));\n";
        let f = scan(src);
        let mut out = Vec::new();
        check_trace_ctx(&f, "crates/serve/src/server.rs", &mut out);
        let lines: Vec<usize> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1], "{out:?}");
        // Unconfigured files are never flagged.
        out.clear();
        check_trace_ctx(&f, "crates/telemetry/src/json.rs", &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn crate_attrs_requires_contract_attrs() {
        let mut out = Vec::new();
        check_crate_attrs("//! docs\n", "crates/ckpt/src/lib.rs", "ckpt", &mut out);
        assert_eq!(out.len(), 2, "{out:?}");
        out.clear();
        check_crate_attrs(
            "#![forbid(unsafe_code)]\n#![deny(missing_docs)]\n",
            "crates/ckpt/src/lib.rs",
            "ckpt",
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
        // Non-contract crates need only forbid(unsafe_code).
        check_crate_attrs(
            "#![forbid(unsafe_code)]\n",
            "crates/bench/src/lib.rs",
            "bench",
            &mut out,
        );
        assert!(out.is_empty(), "{out:?}");
    }
}
