//! The `check-src` lint pass: scanner, rule catalogue and workspace
//! walker.
//!
//! Run it as `cargo run -p rlmul-check` (or `rlmul check-src`); it
//! walks every `.rs` file in the workspace, applies the deny-by-
//! default rules of [`rules`] and exits non-zero on any finding. See
//! the rule constants ([`rules::WALL_CLOCK`], [`rules::HASH_ITER`],
//! [`rules::PANIC_PATH`], [`rules::CRATE_ATTRS`],
//! [`rules::TRACE_CTX`]) for what each rule enforces and which files
//! it covers.

pub mod rules;
pub mod scan;

use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule ID (one of [`rules::ALL_RULES`]).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// What is wrong and how to fix or justify it.
    pub message: String,
    /// The offending code line (comments/literals blanked).
    pub snippet: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.path, self.line, self.rule, self.message)?;
        if !self.snippet.is_empty() {
            write!(f, "\n    {}", self.snippet)?;
        }
        Ok(())
    }
}

/// Result of linting a workspace.
#[derive(Debug, Default)]
pub struct LintReport {
    /// Violations, in file/line order.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

impl LintReport {
    /// Whether the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Human-readable multi-line report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&f.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "check-src: {} file(s) scanned, {} finding(s)\n",
            self.files_scanned,
            self.findings.len()
        ));
        out
    }
}

/// Lints the workspace rooted at `root` (the directory holding the
/// workspace `Cargo.toml`).
///
/// # Errors
///
/// Propagates I/O errors from walking or reading source files.
pub fn run_workspace(root: &Path) -> std::io::Result<LintReport> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut report = LintReport::default();
    for rel in files {
        let text = std::fs::read_to_string(root.join(&rel))?;
        let path = rel.to_string_lossy().replace('\\', "/");
        report.files_scanned += 1;
        lint_source(&text, &path, &mut report.findings);
    }
    Ok(report)
}

/// Lints one file's source text (exposed for tests and tooling).
pub fn lint_source(text: &str, path: &str, out: &mut Vec<Finding>) {
    let scanned = scan::scan(text);
    rules::check_wall_clock(&scanned, path, out);
    rules::check_hash_iter(&scanned, path, out);
    rules::check_panic_path(&scanned, path, out);
    rules::check_trace_ctx(&scanned, path, out);
    if let Some(crate_name) = crate_root_name(path) {
        rules::check_crate_attrs(text, path, crate_name, out);
    }
}

/// If `path` is a crate root (`crates/<name>/src/lib.rs` or the
/// workspace `src/lib.rs`), returns the crate's directory name
/// (empty string for the root crate).
fn crate_root_name(path: &str) -> Option<&str> {
    if path == "src/lib.rs" {
        return Some("");
    }
    let rest = path.strip_prefix("crates/")?;
    let (name, tail) = rest.split_once('/')?;
    (tail == "src/lib.rs").then_some(name)
}

/// Recursively collects `.rs` files under `dir`, skipping build
/// output and VCS metadata.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// Locates the workspace root: walks up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_root_detection() {
        assert_eq!(crate_root_name("crates/ckpt/src/lib.rs"), Some("ckpt"));
        assert_eq!(crate_root_name("src/lib.rs"), Some(""));
        assert_eq!(crate_root_name("crates/ckpt/src/codec.rs"), None);
        assert_eq!(crate_root_name("crates/ckpt/tests/lib.rs"), None);
    }

    #[test]
    fn lint_source_applies_all_rules() {
        let mut out = Vec::new();
        lint_source(
            "use std::collections::HashMap;\nuse std::time::Instant;\n",
            "crates/ckpt/src/codec.rs",
            &mut out,
        );
        let rules: Vec<&str> = out.iter().map(|f| f.rule).collect();
        assert!(rules.contains(&rules::HASH_ITER), "{out:?}");
        assert!(rules.contains(&rules::WALL_CLOCK), "{out:?}");
    }

    /// The workspace itself must lint clean — this is the tier-1 copy
    /// of the CI `check-src` gate. Every allow escape in the tree is
    /// therefore exercised on every `cargo test`.
    #[test]
    fn workspace_is_clean() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/check");
        let report = run_workspace(&root).expect("lint walk");
        assert!(report.is_clean(), "\n{}", report.render());
        assert!(report.files_scanned > 100, "expected the full tree to be scanned");
    }
}
