//! Global fast-path gate shared by the [`crate::sync`] facade.
//!
//! Every facade operation starts with one relaxed load of [`FLAGS`];
//! while it reads zero (no lockdep, no model execution anywhere in
//! the process) the wrappers delegate straight to [`std::sync`] —
//! the same single-branch discipline as the `rlmul-obs` registry's
//! disabled path.

use std::sync::atomic::{AtomicU32, Ordering};

/// Bit 0: lockdep enabled. Bit 1: ≥1 model execution active.
static FLAGS: AtomicU32 = AtomicU32::new(0);
/// Number of concurrently active model executions (test harnesses in
/// parallel test threads may overlap).
static MODEL_COUNT: AtomicU32 = AtomicU32::new(0);

pub(crate) const LOCKDEP: u32 = 1;
pub(crate) const MODEL: u32 = 2;

#[inline]
pub(crate) fn flags() -> u32 {
    FLAGS.load(Ordering::Relaxed)
}

pub(crate) fn set_lockdep(on: bool) {
    if on {
        FLAGS.fetch_or(LOCKDEP, Ordering::Relaxed);
    } else {
        FLAGS.fetch_and(!LOCKDEP, Ordering::Relaxed);
    }
}

pub(crate) fn model_enter() {
    if MODEL_COUNT.fetch_add(1, Ordering::Relaxed) == 0 {
        FLAGS.fetch_or(MODEL, Ordering::Relaxed);
    }
}

pub(crate) fn model_exit() {
    if MODEL_COUNT.fetch_sub(1, Ordering::Relaxed) == 1 {
        FLAGS.fetch_and(!MODEL, Ordering::Relaxed);
    }
}
