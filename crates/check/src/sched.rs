//! Loom-lite deterministic scheduler: model-checked interleavings.
//!
//! [`Model::check`] runs a closure many times, each time forcing a
//! different thread interleaving, until every schedule reachable
//! under the configured preemption bound has been explored (or one
//! fails). Concurrency primitives from [`crate::sync`] become
//! *switch points*: before a lock acquire, after a release, at
//! condvar waits/notifies, at spawn/join and at explicit
//! [`yield_now`] calls, the scheduler picks which virtual thread runs
//! next. Only one virtual thread executes at a time — the OS threads
//! backing them hand a scheduler token around — so every execution is
//! fully serialized and every scheduling decision is recorded.
//!
//! Exploration is depth-first over decision prefixes: an execution
//! records, at each switch point, which runnable threads were
//! available and which was chosen; the next execution replays the
//! longest prefix with an unexplored alternative and diverges there.
//! A preemption bound (default 2) keeps the space tractable: context
//! switches away from a still-runnable thread are limited per
//! execution, which is known to catch the vast majority of real
//! concurrency bugs at tiny bounds.
//!
//! Failures — assertion panics inside the closure, deadlocks, lost
//! wakeups (every thread blocked with no one left to notify) — are
//! reported with the exact schedule that produced them. Feed that
//! schedule to [`Model::replay`] to re-run the single failing
//! interleaving under a debugger, or reuse the printed seed with
//! [`Model::check_random`]. Random mode samples schedules instead of
//! enumerating them, for protocols too large to exhaust.
//!
//! Semantics modelled: mutexes and rwlocks are exclusive (readers are
//! conservatively serialized), condvars have no spurious wakeups and
//! `notify_one` wakes the longest-waiting thread. Code must therefore
//! still loop on its predicate — the model will not excuse a missing
//! loop, because an intervening thread can steal the state between
//! wakeup and reacquisition.

use std::cell::RefCell;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard, Once};

use crate::gate;

/// Panic payload used to unwind virtual threads when an execution
/// aborts (failure found elsewhere). Never escapes the harness.
pub(crate) struct SchedAbort;

/// One scheduling decision: which thread was chosen among the
/// runnable options at a switch point.
#[derive(Debug, Clone)]
struct Choice {
    chosen: usize,
    options: Vec<usize>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Blocked acquiring lock object `.0`.
    Lock(usize),
    /// Blocked in a condvar wait on cv object `.0`.
    Wait(usize),
    /// Blocked joining vthread `.0`.
    Join(usize),
    Finished,
}

#[derive(Debug)]
enum VObj {
    /// Mutexes and (conservatively exclusive) rwlocks.
    Lock { locked: bool },
    /// Condvar: waiting vthreads in FIFO order.
    Cv { waiters: Vec<usize> },
}

struct VThread {
    name: String,
    status: Status,
}

enum Mode {
    Dfs,
    Random(Rng),
}

struct ExecState {
    threads: Vec<VThread>,
    /// Vthread holding the token (`usize::MAX` once all finished).
    current: usize,
    objects: Vec<VObj>,
    by_addr: HashMap<usize, usize>,
    schedule: Vec<Choice>,
    prefix: Vec<usize>,
    cursor: usize,
    preemptions: usize,
    bound: usize,
    max_threads: usize,
    mode: Mode,
    failure: Option<String>,
    abort: bool,
    /// Replay prefix disagreed with the recorded options (the closure
    /// is itself nondeterministic — a modelling error worth flagging).
    divergent: bool,
    os_handles: Vec<std::thread::JoinHandle<()>>,
}

struct Exec {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
}

thread_local! {
    static CTX: RefCell<Option<Ctx>> = const { RefCell::new(None) };
}

/// Per-OS-thread handle into the active model execution.
#[derive(Clone)]
pub(crate) struct Ctx {
    exec: Arc<Exec>,
    tid: usize,
}

/// The model execution this OS thread belongs to, if any.
pub(crate) fn current() -> Option<Ctx> {
    if gate::flags() & gate::MODEL == 0 {
        return None;
    }
    CTX.with(|c| c.borrow().clone())
}

/// Silences panic output from inside model executions: expected
/// failing interleavings and `SchedAbort` unwinds would otherwise
/// spam stderr once per aborted thread. Failures are re-surfaced
/// through [`FailureReport`].
fn install_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SchedAbort>().is_some() {
                return;
            }
            if CTX.with(|c| c.borrow().is_some()) {
                return;
            }
            prev(info);
        }));
    });
}

impl Exec {
    fn lock_state(&self) -> MutexGuard<'_, ExecState> {
        match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Parks the calling OS thread until its vthread holds the token.
    /// Panics with [`SchedAbort`] if the execution aborts meanwhile.
    fn block_until(&self, mut st: MutexGuard<'_, ExecState>, tid: usize) {
        loop {
            if st.abort {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            if st.current == tid {
                return;
            }
            st = match self.cv.wait(st) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// The scheduling decision: picks the next vthread to run.
    /// `from` is the deciding thread; if it is still runnable and the
    /// preemption budget is spent, it must keep running.
    fn pick_next(&self, st: &mut ExecState, from: usize) {
        let mut options: Vec<usize> = Vec::new();
        let from_runnable = st.threads[from].status == Status::Runnable;
        if from_runnable {
            options.push(from); // explore the preemption-free path first
        }
        for (tid, t) in st.threads.iter().enumerate() {
            if tid != from && t.status == Status::Runnable {
                options.push(tid);
            }
        }
        if options.is_empty() {
            if st.threads.iter().all(|t| t.status == Status::Finished) {
                st.current = usize::MAX;
                self.cv.notify_all();
                return;
            }
            let states: Vec<String> = st
                .threads
                .iter()
                .enumerate()
                .map(|(tid, t)| format!("  thread {tid} `{}`: {:?}", t.name, t.status))
                .collect();
            self.fail(
                st,
                format!(
                    "deadlock: no runnable thread (lost wakeup or lock cycle)\n{}",
                    states.join("\n")
                ),
            );
            return;
        }
        let constrained =
            if from_runnable && st.preemptions >= st.bound { vec![from] } else { options };
        let pos = if st.cursor < st.prefix.len() {
            let forced = st.prefix[st.cursor];
            match constrained.iter().position(|&t| t == forced) {
                Some(p) => p,
                None => {
                    st.divergent = true;
                    0
                }
            }
        } else {
            match &mut st.mode {
                Mode::Dfs => 0,
                Mode::Random(rng) => (rng.next() as usize) % constrained.len(),
            }
        };
        let chosen = constrained[pos];
        st.schedule.push(Choice { chosen, options: constrained });
        st.cursor += 1;
        if from_runnable && chosen != from {
            st.preemptions += 1;
        }
        st.current = chosen;
        self.cv.notify_all();
    }

    /// A plain switch point: offer the scheduler a chance to run
    /// someone else, then wait for our turn again.
    fn switch(&self, tid: usize) {
        let mut st = self.lock_state();
        if st.abort {
            drop(st);
            std::panic::panic_any(SchedAbort);
        }
        self.pick_next(&mut st, tid);
        self.block_until(st, tid);
    }

    /// Records a failure (first one wins) and aborts the execution.
    fn fail(&self, st: &mut ExecState, message: String) {
        if st.failure.is_none() {
            st.failure = Some(message);
        }
        st.abort = true;
        self.cv.notify_all();
    }

    /// Vthread function returned normally.
    fn finish(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid].status = Status::Finished;
        for t in st.threads.iter_mut() {
            if t.status == Status::Join(tid) {
                t.status = Status::Runnable;
            }
        }
        self.pick_next(&mut st, tid);
    }

    /// Vthread unwound via [`SchedAbort`]: account it as gone so the
    /// harness's bookkeeping stays consistent.
    fn thread_exited(&self, tid: usize) {
        let mut st = self.lock_state();
        st.threads[tid].status = Status::Finished;
        self.cv.notify_all();
    }

    fn fail_from_panic(&self, tid: usize, payload: Box<dyn std::any::Any + Send>) {
        let message = if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        };
        let mut st = self.lock_state();
        let name = st.threads[tid].name.clone();
        st.threads[tid].status = Status::Finished;
        self.fail(&mut st, format!("thread `{name}` panicked: {message}"));
    }
}

impl Ctx {
    /// Interns the lock object behind `addr` (stable per execution:
    /// objects live for the whole closure run).
    pub(crate) fn lock_object(&self, addr: usize) -> usize {
        self.object(addr, || VObj::Lock { locked: false })
    }

    /// Interns the condvar object behind `addr`.
    pub(crate) fn cv_object(&self, addr: usize) -> usize {
        self.object(addr, || VObj::Cv { waiters: Vec::new() })
    }

    fn object(&self, addr: usize, make: impl FnOnce() -> VObj) -> usize {
        let mut st = self.exec.lock_state();
        if let Some(&id) = st.by_addr.get(&addr) {
            return id;
        }
        let id = st.objects.len();
        st.objects.push(make());
        st.by_addr.insert(addr, id);
        id
    }

    /// Model-acquires lock `obj` (switch point before the acquire).
    pub(crate) fn lock(&self, obj: usize) {
        self.exec.switch(self.tid);
        self.acquire(obj);
    }

    /// The acquire loop without a leading switch point (used after a
    /// condvar wait, where being scheduled *was* the decision).
    fn acquire(&self, obj: usize) {
        loop {
            let mut st = self.exec.lock_state();
            if st.abort {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            match &mut st.objects[obj] {
                VObj::Lock { locked } if !*locked => {
                    *locked = true;
                    return;
                }
                VObj::Lock { .. } => {}
                VObj::Cv { .. } => unreachable!("lock op on condvar object"),
            }
            st.threads[self.tid].status = Status::Lock(obj);
            self.exec.pick_next(&mut st, self.tid);
            self.exec.block_until(st, self.tid);
        }
    }

    /// Model-releases lock `obj` and offers a switch point. Callable
    /// from guard drops during a panic unwind: the state mutation
    /// still happens (other vthreads may outlive the unwind), but the
    /// switch point is skipped — a second panic there would abort the
    /// process.
    pub(crate) fn unlock(&self, obj: usize) {
        {
            let mut st = self.exec.lock_state();
            match &mut st.objects[obj] {
                VObj::Lock { locked } => *locked = false,
                VObj::Cv { .. } => unreachable!("unlock op on condvar object"),
            }
            for t in st.threads.iter_mut() {
                if t.status == Status::Lock(obj) {
                    t.status = Status::Runnable;
                }
            }
        }
        if !std::thread::panicking() {
            self.exec.switch(self.tid);
        }
    }

    /// Atomically releases `mutex`, waits on `cv`, and reacquires
    /// `mutex` once notified. No spurious wakeups.
    pub(crate) fn cv_wait(&self, cv: usize, mutex: usize) {
        {
            let mut st = self.exec.lock_state();
            match &mut st.objects[cv] {
                VObj::Cv { waiters } => waiters.push(self.tid),
                VObj::Lock { .. } => unreachable!("wait op on lock object"),
            }
            match &mut st.objects[mutex] {
                VObj::Lock { locked } => *locked = false,
                VObj::Cv { .. } => unreachable!("wait op released a condvar object"),
            }
            for t in st.threads.iter_mut() {
                if t.status == Status::Lock(mutex) {
                    t.status = Status::Runnable;
                }
            }
            st.threads[self.tid].status = Status::Wait(cv);
            self.exec.pick_next(&mut st, self.tid);
            self.exec.block_until(st, self.tid);
        }
        self.acquire(mutex);
    }

    /// Wakes the longest-waiting thread on `cv`, if any.
    pub(crate) fn notify_one(&self, cv: usize) {
        {
            let mut st = self.exec.lock_state();
            let woken = match &mut st.objects[cv] {
                VObj::Cv { waiters } if !waiters.is_empty() => Some(waiters.remove(0)),
                _ => None,
            };
            if let Some(tid) = woken {
                st.threads[tid].status = Status::Runnable;
            }
        }
        self.exec.switch(self.tid);
    }

    /// Wakes every thread waiting on `cv`.
    pub(crate) fn notify_all(&self, cv: usize) {
        {
            let mut st = self.exec.lock_state();
            let woken = match &mut st.objects[cv] {
                VObj::Cv { waiters } => std::mem::take(waiters),
                VObj::Lock { .. } => unreachable!("notify op on lock object"),
            };
            for tid in woken {
                st.threads[tid].status = Status::Runnable;
            }
        }
        self.exec.switch(self.tid);
    }

    /// Spawns a virtual thread; returns its vthread id for joining.
    pub(crate) fn spawn(&self, name: &str, f: Box<dyn FnOnce() + Send>) -> usize {
        let tid = {
            let mut st = self.exec.lock_state();
            if st.threads.len() >= st.max_threads {
                let max = st.max_threads;
                self.exec.fail(&mut st, format!("model: more than {max} vthreads"));
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            st.threads.push(VThread { name: name.to_string(), status: Status::Runnable });
            st.threads.len() - 1
        };
        let exec = Arc::clone(&self.exec);
        let handle = std::thread::Builder::new()
            .name(format!("model:{name}"))
            .spawn(move || {
                CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), tid }));
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let st = exec.lock_state();
                    exec.block_until(st, tid);
                    f();
                }));
                match r {
                    Ok(()) => exec.finish(tid),
                    Err(p) if p.downcast_ref::<SchedAbort>().is_some() => exec.thread_exited(tid),
                    Err(p) => exec.fail_from_panic(tid, p),
                }
                CTX.with(|c| *c.borrow_mut() = None);
            })
            .expect("spawn model vthread");
        self.exec.lock_state().os_handles.push(handle);
        // Offer the scheduler the chance to run the child first.
        self.exec.switch(self.tid);
        tid
    }

    /// Blocks until vthread `target` finishes.
    pub(crate) fn join(&self, target: usize) {
        loop {
            let mut st = self.exec.lock_state();
            if st.abort {
                drop(st);
                std::panic::panic_any(SchedAbort);
            }
            if st.threads[target].status == Status::Finished {
                return;
            }
            st.threads[self.tid].status = Status::Join(target);
            self.exec.pick_next(&mut st, self.tid);
            self.exec.block_until(st, self.tid);
        }
    }

    /// Explicit switch point.
    pub(crate) fn yield_now(&self) {
        self.exec.switch(self.tid);
    }
}

/// An explicit interleaving point. Inside a model execution this is a
/// full scheduling decision; outside it degrades to
/// [`std::thread::yield_now`] (useful in stress tests).
pub fn yield_now() {
    match current() {
        Some(ctx) => ctx.yield_now(),
        None => std::thread::yield_now(),
    }
}

/// splitmix64 — deterministic, dependency-free schedule sampling.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// One failing interleaving, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// What went wrong (assertion text, deadlock diagnostics…).
    pub message: String,
    /// The chosen vthread at each switch point. Pass to
    /// [`Model::replay`] to re-run exactly this interleaving.
    pub schedule: Vec<usize>,
    /// The per-iteration seed, when found by [`Model::check_random`].
    pub seed: Option<u64>,
}

impl FailureReport {
    /// Human-readable report with reproduction instructions.
    pub fn render(&self) -> String {
        let sched: Vec<String> = self.schedule.iter().map(|t| t.to_string()).collect();
        let mut out = format!(
            "model check failed: {}\nschedule: [{}]\nreproduce with: \
             Model::default().replay(&[{}], f)",
            self.message,
            sched.join(", "),
            sched.join(", "),
        );
        if let Some(seed) = self.seed {
            out.push_str(&format!("\n(found by random exploration, iteration seed {seed})"));
        }
        out
    }
}

/// Result of an exploration run.
#[derive(Debug)]
pub struct Outcome {
    /// Number of executions performed.
    pub executions: usize,
    /// Whether the bounded state space was fully enumerated (always
    /// `false` for random mode).
    pub complete: bool,
    /// The first failing interleaving, if any.
    pub failure: Option<FailureReport>,
}

struct RunResult {
    schedule: Vec<Choice>,
    failure: Option<String>,
}

/// Model-checking configuration.
#[derive(Debug, Clone)]
pub struct Model {
    /// Max context switches away from a still-runnable thread per
    /// execution. 2 catches most real bugs; raise for paranoia.
    pub preemption_bound: usize,
    /// Abort DFS exploration after this many executions.
    pub max_iterations: usize,
    /// Max virtual threads per execution.
    pub max_threads: usize,
}

impl Default for Model {
    fn default() -> Self {
        Model { preemption_bound: 2, max_iterations: 100_000, max_threads: 8 }
    }
}

impl Model {
    /// Exhaustively explores `f` under the preemption bound; panics
    /// with a [`FailureReport`] rendering on the first failure, or if
    /// the space could not be exhausted within `max_iterations`.
    pub fn check(&self, f: impl Fn()) {
        let outcome = self.explore(&f);
        if let Some(failure) = outcome.failure {
            panic!("{}", failure.render());
        }
        assert!(
            outcome.complete,
            "model: state space not exhausted after {} executions; \
             raise max_iterations or lower preemption_bound",
            outcome.executions
        );
    }

    /// Non-panicking exhaustive exploration (also used to assert that
    /// a deliberately buggy protocol IS caught).
    pub fn explore(&self, f: &dyn Fn()) -> Outcome {
        let mut prefix: Vec<usize> = Vec::new();
        let mut executions = 0;
        loop {
            if executions >= self.max_iterations {
                return Outcome { executions, complete: false, failure: None };
            }
            executions += 1;
            let run = self.run_one(prefix.clone(), Mode::Dfs, f);
            if let Some(message) = run.failure {
                let schedule = run.schedule.iter().map(|c| c.chosen).collect();
                return Outcome {
                    executions,
                    complete: false,
                    failure: Some(FailureReport { message, schedule, seed: None }),
                };
            }
            match next_prefix(&run.schedule) {
                Some(p) => prefix = p,
                None => return Outcome { executions, complete: true, failure: None },
            }
        }
    }

    /// Samples `iterations` random schedules derived from `seed`;
    /// panics with the failing schedule and per-iteration seed on the
    /// first failure.
    pub fn check_random(&self, seed: u64, iterations: usize, f: impl Fn()) {
        if let Some(failure) = self.explore_random(seed, iterations, &f) {
            panic!("{}", failure.render());
        }
    }

    /// Non-panicking random exploration.
    pub fn explore_random(
        &self,
        seed: u64,
        iterations: usize,
        f: &dyn Fn(),
    ) -> Option<FailureReport> {
        for i in 0..iterations {
            let iter_seed = Rng(seed ^ (i as u64).wrapping_mul(0x2545_f491_4f6c_dd1d)).next();
            let run = self.run_one(Vec::new(), Mode::Random(Rng(iter_seed)), f);
            if let Some(message) = run.failure {
                let schedule = run.schedule.iter().map(|c| c.chosen).collect();
                return Some(FailureReport { message, schedule, seed: Some(iter_seed) });
            }
        }
        None
    }

    /// Re-runs the single interleaving recorded in `schedule` (from a
    /// [`FailureReport`]); returns its failure, if it still fails.
    pub fn replay(&self, schedule: &[usize], f: impl Fn()) -> Option<FailureReport> {
        let run = self.run_one(schedule.to_vec(), Mode::Dfs, &f);
        run.failure.map(|message| FailureReport {
            message,
            schedule: run.schedule.iter().map(|c| c.chosen).collect(),
            seed: None,
        })
    }

    fn run_one(&self, prefix: Vec<usize>, mode: Mode, f: &dyn Fn()) -> RunResult {
        install_hook();
        let exec = Arc::new(Exec {
            state: StdMutex::new(ExecState {
                threads: vec![VThread { name: "main".to_string(), status: Status::Runnable }],
                current: 0,
                objects: Vec::new(),
                by_addr: HashMap::new(),
                schedule: Vec::new(),
                prefix,
                cursor: 0,
                preemptions: 0,
                bound: self.preemption_bound,
                max_threads: self.max_threads,
                mode,
                failure: None,
                abort: false,
                divergent: false,
                os_handles: Vec::new(),
            }),
            cv: StdCondvar::new(),
        });
        gate::model_enter();
        CTX.with(|c| *c.borrow_mut() = Some(Ctx { exec: Arc::clone(&exec), tid: 0 }));
        let r = catch_unwind(AssertUnwindSafe(f));
        match r {
            Ok(()) => exec.finish(0),
            Err(p) if p.downcast_ref::<SchedAbort>().is_some() => exec.thread_exited(0),
            Err(p) => exec.fail_from_panic(0, p),
        }
        // Joining every OS thread (threads spawned by joined threads
        // included) is the only completion barrier we need: every
        // vthread ends in finish()/thread_exited()/fail_from_panic().
        loop {
            let handles: Vec<_> = {
                let mut st = exec.lock_state();
                st.os_handles.drain(..).collect()
            };
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        CTX.with(|c| *c.borrow_mut() = None);
        gate::model_exit();
        let st = exec.lock_state();
        if st.divergent && st.failure.is_none() {
            return RunResult {
                schedule: st.schedule.clone(),
                failure: Some(
                    "model: replay diverged from recorded schedule — the closure itself \
                     is nondeterministic (wall clock? hash iteration?)"
                        .to_string(),
                ),
            };
        }
        RunResult { schedule: st.schedule.clone(), failure: st.failure.clone() }
    }
}

/// DFS backtracking: the longest prefix of `schedule` with an
/// unexplored alternative at its last position, or `None` when the
/// space is exhausted.
fn next_prefix(schedule: &[Choice]) -> Option<Vec<usize>> {
    for i in (0..schedule.len()).rev() {
        let c = &schedule[i];
        let pos = c.options.iter().position(|&t| t == c.chosen)?;
        if pos + 1 < c.options.len() {
            let mut p: Vec<usize> = schedule[..i].iter().map(|c| c.chosen).collect();
            p.push(c.options[pos + 1]);
            return Some(p);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync;
    use std::sync::Arc;

    #[test]
    fn exhausts_trivial_closure_in_one_execution() {
        let outcome = Model::default().explore(&|| {});
        assert!(outcome.complete);
        assert!(outcome.failure.is_none());
        assert_eq!(outcome.executions, 1);
    }

    #[test]
    fn correct_locked_increments_pass_exhaustively() {
        let outcome = Model::default().explore(&|| {
            let counter = Arc::new(sync::Mutex::new("t.counter", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let c = Arc::clone(&counter);
                handles.push(sync::spawn_named("inc", move || {
                    *c.lock() += 1;
                }));
            }
            for h in handles {
                h.join().expect("vthread");
            }
            assert_eq!(*counter.lock(), 2);
        });
        assert!(outcome.failure.is_none(), "{:?}", outcome.failure);
        assert!(outcome.complete);
        assert!(outcome.executions > 1, "must explore multiple interleavings");
    }

    #[test]
    fn finds_lost_update_and_replays_it() {
        // Classic read-then-write race: load under one critical
        // section, store under another.
        let buggy = || {
            let counter = Arc::new(sync::Mutex::new("t.racy", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let c = Arc::clone(&counter);
                handles.push(sync::spawn_named("rmw", move || {
                    let v = *c.lock();
                    *c.lock() = v + 1;
                }));
            }
            for h in handles {
                h.join().expect("vthread");
            }
            assert_eq!(*counter.lock(), 2, "lost update");
        };
        let outcome = Model::default().explore(&buggy);
        let failure = outcome.failure.expect("exploration must find the lost update");
        assert!(failure.message.contains("lost update"), "{}", failure.message);
        // The printed schedule reproduces the same failure on its own.
        let replayed = Model::default()
            .replay(&failure.schedule, buggy)
            .expect("replay must reproduce the failure");
        assert!(replayed.message.contains("lost update"), "{}", replayed.message);
        // A fresh exhaustive run of the *correct* protocol still passes,
        // so the failure is the bug, not the harness.
    }

    #[test]
    fn detects_lock_order_deadlock() {
        let outcome = Model { preemption_bound: 3, ..Model::default() }.explore(&|| {
            let a = Arc::new(sync::Mutex::new("t.dead-a", ()));
            let b = Arc::new(sync::Mutex::new("t.dead-b", ()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let h = sync::spawn_named("ba", move || {
                let _g1 = b2.lock();
                let _g2 = a2.lock();
            });
            let _g1 = a.lock();
            let _g2 = b.lock();
            drop(_g2);
            drop(_g1);
            let _ = h.join();
        });
        let failure = outcome.failure.expect("must find the AB/BA deadlock");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn detects_lost_wakeup() {
        // A naked wait with no predicate: when the notifier fires
        // before the waiter parks, the notification is lost and the
        // waiter sleeps forever.
        let outcome = Model::default().explore(&|| {
            let m = Arc::new(sync::Mutex::new("t.lw", ()));
            let cv = Arc::new(sync::Condvar::new("t.lw-cv"));
            let cv2 = Arc::clone(&cv);
            let h = sync::spawn_named("notifier", move || {
                cv2.notify_one();
            });
            let g = m.lock();
            let g = cv.wait(g);
            drop(g);
            let _ = h.join();
        });
        let failure = outcome.failure.expect("must find the lost wakeup");
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
        assert!(
            failure.message.contains("Wait"),
            "must show the stuck waiter: {}",
            failure.message
        );
    }

    #[test]
    fn random_mode_is_seed_deterministic() {
        let buggy = || {
            let counter = Arc::new(sync::Mutex::new("t.rand", 0));
            let mut handles = Vec::new();
            for _ in 0..2 {
                let c = Arc::clone(&counter);
                handles.push(sync::spawn_named("rmw", move || {
                    let v = *c.lock();
                    *c.lock() = v + 1;
                }));
            }
            for h in handles {
                h.join().expect("vthread");
            }
            assert_eq!(*counter.lock(), 2, "lost update");
        };
        let m = Model::default();
        let a = m.explore_random(42, 200, &buggy);
        let b = m.explore_random(42, 200, &buggy);
        match (a, b) {
            (Some(fa), Some(fb)) => {
                assert_eq!(fa.schedule, fb.schedule, "same seed must find the same schedule");
                assert_eq!(fa.seed, fb.seed);
            }
            (None, None) => panic!("200 random schedules should hit a 2-thread lost update"),
            _ => panic!("same seed must give the same outcome"),
        }
    }
}
