//! Concurrency & determinism analysis for the RL-MUL workspace.
//!
//! The repository's north-star items (the multi-tenant `rlmul serve`
//! daemon and PrefixRL-scale distributed training) pile heavy
//! concurrency onto the sharded coalescing eval cache, the telemetry
//! ring writer and the A2C worker pool — and they inherit the
//! bit-identical resume guarantees of the snapshot layer. This crate
//! is the tooling that *proves* those primitives and invariants
//! sound, the way the SAT-based CEC proves netlist rewrites sound.
//! Three pillars, all from scratch and dependency-free:
//!
//! * [`lint`] — a lightweight Rust source scanner enforcing project
//!   invariants as deny-by-default rules (`rlmul check-src` /
//!   `cargo run -p rlmul-check`): no wall-clock reads in
//!   determinism-critical code, no `HashMap`/`HashSet` in
//!   ordering-critical (snapshot/telemetry) files, no panicking
//!   calls in server-facing request paths, and per-crate
//!   `#![forbid(unsafe_code)]` / `#![deny(missing_docs)]` contract
//!   checks. Findings are suppressed only by an inline
//!   `// check: allow(<rule>)` escape on (or immediately above) the
//!   offending line, so every exception is visible and justified in
//!   the source.
//! * [`sync`] — drop-in `Mutex`/`RwLock`/`Condvar`/channel/thread
//!   wrappers adopted by the concurrent subsystems. When nothing is
//!   enabled they delegate straight to [`std::sync`] behind a single
//!   relaxed atomic load (the same gating discipline as the
//!   `rlmul-obs` registry). With [`lockdep`] enabled they maintain a
//!   lock-class acquisition-order graph and report potential-deadlock
//!   cycles *before* the process can actually deadlock, through the
//!   `rlmul_lockdep_cycles_total` metric and retrievable reports.
//! * [`sched`] — a loom-lite model checker: code written against the
//!   [`sync`] facade runs on virtual threads under a deterministic
//!   scheduler that explores interleavings (exhaustively with bounded
//!   preemptions, or randomly by seed), detecting deadlocks, lost
//!   wakeups and assertion failures. A failing interleaving prints
//!   its schedule and seed and is bit-reproducible from them.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod gate;
pub mod lint;
pub mod lockdep;
pub mod sched;
pub mod sync;
