//! `rlmul-check` — the `check-src` lint binary.
//!
//! ```sh
//! cargo run -p rlmul-check            # lint the enclosing workspace
//! cargo run -p rlmul-check -- --root /path/to/workspace
//! cargo run -p rlmul-check -- --list-rules
//! ```
//!
//! Exits 0 on a clean workspace, 1 on findings, 2 on usage/IO errors.

#![forbid(unsafe_code)]

use rlmul_check::lint;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("error: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in lint::rules::ALL_RULES {
                    println!("{r}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "rlmul-check: concurrency & determinism source lint\n\
                     \n\
                     USAGE: rlmul-check [--root <workspace>] [--list-rules]\n\
                     \n\
                     RULES (deny-by-default; escape with `// check: allow(<rule>)`):\n\
                     \x20 wall-clock   no Instant/SystemTime in determinism-critical code\n\
                     \x20 hash-iter    no HashMap/HashSet in ordering-critical files\n\
                     \x20 panic-path   no unwrap/expect/panic! in server request paths\n\
                     \x20 crate-attrs  forbid(unsafe_code)/deny(missing_docs) crate contract"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("error: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = root.or_else(|| {
        let cwd = std::env::current_dir().ok()?;
        lint::find_workspace_root(&cwd)
    });
    let Some(root) = root else {
        eprintln!("error: no workspace root found (pass --root)");
        return ExitCode::from(2);
    };
    match lint::run_workspace(&root) {
        Ok(report) => {
            print!("{}", report.render());
            if report.is_clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}
