//! Model-checked sketch of the striped-counter aggregation pattern
//! used by `rlmul-obs` metrics.
//!
//! The obs registry shards hot counters across stripes and aggregates
//! by summing the stripes one at a time, so a concurrent reader can
//! observe a partially-updated snapshot. This test models that
//! protocol with facade mutexes and explicit yield points (rather
//! than instrumenting obs itself, whose atomics are deliberately
//! lock-free) and exhaustively checks the two guarantees the readers
//! rely on: snapshots never overcount, and a sum taken after joining
//! the writers sees every increment.

use rlmul_check::sched::{yield_now, Model};
use rlmul_check::sync::{spawn_named, Mutex};
use std::sync::Arc;

#[test]
fn striped_aggregation_is_monotonic_and_complete() {
    let model = Model::default();
    let outcome = model.explore(&|| {
        let stripes: Arc<Vec<Mutex<u64>>> =
            Arc::new((0..2).map(|_| Mutex::new("check.test.stripe", 0u64)).collect());
        let writers: Vec<_> = (0..2)
            .map(|i| {
                let stripes = Arc::clone(&stripes);
                spawn_named(&format!("writer-{i}"), move || {
                    for _ in 0..2 {
                        *stripes[i].lock() += 1;
                        yield_now();
                    }
                })
            })
            .collect();
        // A snapshot racing the writers walks the stripes one lock at
        // a time; it may miss in-flight increments but must never
        // invent counts that were not yet written.
        let snapshot: u64 = stripes.iter().map(|s| *s.lock()).sum();
        assert!(snapshot <= 4, "partial aggregation overcounted: {snapshot}");
        for w in writers {
            w.join().expect("writer panicked");
        }
        let total: u64 = stripes.iter().map(|s| *s.lock()).sum();
        assert_eq!(total, 4, "post-join aggregation must see every increment");
    });
    assert!(
        outcome.failure.is_none(),
        "{}",
        outcome.failure.map(|f| f.render()).unwrap_or_default()
    );
    assert!(outcome.complete, "state space must be exhausted at the default bound");
    assert!(outcome.executions > 1, "scenario must have more than one interleaving");
}
