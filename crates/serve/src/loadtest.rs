//! The load-test harness: N synthetic clients submitting, polling and
//! cancelling jobs against a live daemon, publishing throughput and
//! latency percentiles.
//!
//! Driven by `rlmul loadtest` (against any address) and by the
//! `bench_serve` binary (which starts an in-process daemon, runs the
//! harness, and writes `results/BENCH_serve.json`). Clients speak the
//! real wire protocol over `TcpStream` — no shortcuts through the
//! server's in-process API — so the measured latencies include
//! request parsing, routing and response rendering.

use crate::json::{parse_object, JsonBuilder};
use rlmul_check::sync::spawn_named;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Load-harness configuration (`rlmul loadtest` flags map onto this).
#[derive(Debug, Clone)]
pub struct LoadtestConfig {
    /// Daemon address, e.g. `127.0.0.1:7171`.
    pub addr: String,
    /// Concurrent synthetic clients.
    pub clients: usize,
    /// Jobs each client submits (sequentially).
    pub jobs_per_client: usize,
    /// Operand width of the submitted jobs.
    pub bits: usize,
    /// Environment steps per job (SA; small keeps the harness fast).
    pub steps: usize,
    /// Cancel every k-th job right after submission (0 = never), so
    /// the cancel paths see load too.
    pub cancel_every: usize,
    /// Poll interval while waiting for a job to turn terminal.
    pub poll_ms: u64,
    /// Per-job wait budget before the client records an error.
    pub timeout_secs: u64,
}

impl Default for LoadtestConfig {
    fn default() -> Self {
        LoadtestConfig {
            addr: "127.0.0.1:7171".into(),
            clients: 4,
            jobs_per_client: 4,
            bits: 4,
            steps: 4,
            cancel_every: 3,
            poll_ms: 20,
            timeout_secs: 300,
        }
    }
}

/// p50/p95/p99/max over one latency population, in milliseconds.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LatencySummary {
    /// Median.
    pub p50_ms: f64,
    /// 95th percentile.
    pub p95_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Worst observation.
    pub max_ms: f64,
    /// Population size.
    pub count: usize,
}

/// Nearest-rank (ceil) percentile over an **ascending-sorted**
/// sample: the smallest observation such that at least `q` of the
/// population is ≤ it. Safe for any population size — including the
/// tiny ones a short harness run produces, where `N = 1` must return
/// the single observation for every quantile (a naive
/// `q * N as usize` index computes rank 0 and either panics or reads
/// the wrong element).
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    // ceil(q·N) is in [1, N] for q in (0, 1]; the clamp additionally
    // covers q = 0 (rank 0) and float rounding at either edge.
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

impl LatencySummary {
    /// Summarizes a population of millisecond samples (all zeros for
    /// an empty one).
    pub fn of(mut samples: Vec<f64>) -> Self {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        LatencySummary {
            p50_ms: percentile(&samples, 0.50),
            p95_ms: percentile(&samples, 0.95),
            p99_ms: percentile(&samples, 0.99),
            max_ms: samples[samples.len() - 1],
            count: samples.len(),
        }
    }

    fn render(&self) -> String {
        JsonBuilder::new()
            .f64("p50_ms", self.p50_ms)
            .f64("p95_ms", self.p95_ms)
            .f64("p99_ms", self.p99_ms)
            .f64("max_ms", self.max_ms)
            .u64("count", self.count as u64)
            .build()
    }
}

/// What the harness measured.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Jobs the clients submitted.
    pub submitted: usize,
    /// Jobs observed `done`.
    pub done: usize,
    /// Jobs observed `cancelled`.
    pub cancelled: usize,
    /// Jobs observed `failed`.
    pub failed: usize,
    /// Client-side errors: transport failures, unexpected statuses,
    /// or per-job timeouts.
    pub errors: usize,
    /// Wall time of the whole run in seconds.
    pub elapsed_secs: f64,
    /// Terminal jobs per second of wall time.
    pub jobs_per_sec: f64,
    /// `POST /jobs` round-trip latency.
    pub submit: LatencySummary,
    /// `GET /jobs/<id>` round-trip latency.
    pub status: LatencySummary,
    /// Submission → first terminal observation.
    pub end_to_end: LatencySummary,
    /// TCP connections the clients opened.
    pub conns_opened: usize,
    /// Requests served over an already-open (kept-alive) connection.
    pub conns_reused: usize,
}

impl LoadReport {
    /// Renders the report as the `results/BENCH_serve.json` document.
    pub fn render_json(&self, cfg: &LoadtestConfig) -> String {
        let config = JsonBuilder::new()
            .u64("clients", cfg.clients as u64)
            .u64("jobs_per_client", cfg.jobs_per_client as u64)
            .u64("bits", cfg.bits as u64)
            .u64("steps", cfg.steps as u64)
            .u64("cancel_every", cfg.cancel_every as u64)
            .build();
        JsonBuilder::new()
            .str("bench", "serve")
            .raw("config", &config)
            .u64("submitted", self.submitted as u64)
            .u64("done", self.done as u64)
            .u64("cancelled", self.cancelled as u64)
            .u64("failed", self.failed as u64)
            .u64("errors", self.errors as u64)
            .f64("elapsed_secs", self.elapsed_secs)
            .f64("jobs_per_sec", self.jobs_per_sec)
            .u64("conns_opened", self.conns_opened as u64)
            .u64("conns_reused", self.conns_reused as u64)
            .raw("submit", &self.submit.render())
            .raw("status", &self.status.render())
            .raw("end_to_end", &self.end_to_end.render())
            .build()
    }
}

/// One raw HTTP/1.1 exchange (`Connection: close` protocol, matching
/// the server).
///
/// # Errors
///
/// Transport failures, or a response without a parsable status line.
pub fn http_call(addr: &str, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: loadtest\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let code: u16 = response
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status line"))?;
    let payload = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    Ok((code, payload))
}

/// A persistent HTTP/1.1 client: sends `Connection: keep-alive` and
/// reuses one TCP connection across sequential requests, reconnecting
/// transparently when the server closes it (the server bounds reuse
/// at 64 requests per connection). Responses are framed by
/// `Content-Length`, so the client never has to read to EOF.
pub struct HttpClient {
    addr: String,
    stream: Option<TcpStream>,
    /// TCP connections opened over the client's lifetime.
    pub conns_opened: usize,
    /// Requests served over an already-open connection.
    pub conns_reused: usize,
}

impl HttpClient {
    /// A client for the daemon at `addr`; connects lazily.
    pub fn new(addr: &str) -> Self {
        HttpClient { addr: addr.to_string(), stream: None, conns_opened: 0, conns_reused: 0 }
    }

    /// One request/response exchange, reusing the open connection
    /// when possible. A send failure on a reused connection (the
    /// server closed it between requests) retries once on a fresh
    /// one.
    ///
    /// # Errors
    ///
    /// Transport failures, or a response without a parsable status
    /// line.
    pub fn call(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        if self.stream.is_some() {
            match self.exchange(method, path, body) {
                Ok(answer) => {
                    self.conns_reused += 1;
                    return Ok(answer);
                }
                Err(_) => self.stream = None, // stale connection; retry fresh
            }
        }
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_read_timeout(Some(Duration::from_secs(10)))?;
        stream.set_write_timeout(Some(Duration::from_secs(10)))?;
        self.stream = Some(stream);
        self.conns_opened += 1;
        self.exchange(method, path, body).inspect_err(|_| self.stream = None)
    }

    /// Writes one request and reads one `Content-Length`-framed
    /// response on the currently open connection.
    fn exchange(&mut self, method: &str, path: &str, body: &str) -> io::Result<(u16, String)> {
        let stream = self
            .stream
            .as_mut()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotConnected, "no connection"))?;
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nHost: loadtest\r\nConnection: keep-alive\r\n\
             Content-Length: {}\r\n\r\n{body}",
            body.len()
        )?;
        let (head, payload) = read_framed_response(stream)?;
        let code: u16 = head
            .strip_prefix("HTTP/1.1 ")
            .and_then(|r| r.split(' ').next())
            .and_then(|c| c.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no status line"))?;
        if !header_value(&head, "connection").is_some_and(|v| v.eq_ignore_ascii_case("keep-alive"))
        {
            self.stream = None; // server asked to close; honor it
        }
        Ok((code, payload))
    }
}

/// Reads one response head plus its `Content-Length` body, leaving the
/// connection positioned at the next response.
fn read_framed_response(stream: &mut TcpStream) -> io::Result<(String, String)> {
    let mut buf = Vec::new();
    let mut byte = [0u8; 1];
    while !buf.ends_with(b"\r\n\r\n") {
        if buf.len() > 64 * 1024 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "response head too large"));
        }
        stream.read_exact(&mut byte)?;
        buf.push(byte[0]);
    }
    let head = String::from_utf8_lossy(&buf).into_owned();
    let len: usize = header_value(&head, "content-length")
        .and_then(|v| v.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "no content-length"))?;
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok((head, String::from_utf8_lossy(&body).into_owned()))
}

/// The value of the first `name:` header in `head` (case-insensitive
/// name), trimmed.
fn header_value<'a>(head: &'a str, name: &str) -> Option<&'a str> {
    head.lines().find_map(|line| {
        let (k, v) = line.split_once(':')?;
        k.trim().eq_ignore_ascii_case(name).then(|| v.trim())
    })
}

/// Per-client measurement bundle, merged by the harness.
#[derive(Debug, Default)]
struct ClientStats {
    submitted: usize,
    done: usize,
    cancelled: usize,
    failed: usize,
    errors: usize,
    conns_opened: usize,
    conns_reused: usize,
    submit_ms: Vec<f64>,
    status_ms: Vec<f64>,
    e2e_ms: Vec<f64>,
}

/// Runs the harness against a live daemon at `cfg.addr` and merges
/// every client's measurements.
///
/// # Errors
///
/// Currently infallible at the harness level (client-side failures
/// are counted in [`LoadReport::errors`]); the `Result` keeps the
/// signature stable for future setup steps.
pub fn run_loadtest(cfg: &LoadtestConfig) -> io::Result<LoadReport> {
    let started = Instant::now();
    let handles: Vec<_> = (0..cfg.clients.max(1))
        .map(|c| {
            let cfg = cfg.clone();
            spawn_named(&format!("loadtest-client-{c}"), move || run_client(&cfg, c))
        })
        .collect();
    let mut merged = ClientStats::default();
    for h in handles {
        if let Ok(stats) = h.join() {
            merged.submitted += stats.submitted;
            merged.done += stats.done;
            merged.cancelled += stats.cancelled;
            merged.failed += stats.failed;
            merged.errors += stats.errors;
            merged.conns_opened += stats.conns_opened;
            merged.conns_reused += stats.conns_reused;
            merged.submit_ms.extend(stats.submit_ms);
            merged.status_ms.extend(stats.status_ms);
            merged.e2e_ms.extend(stats.e2e_ms);
        } else {
            merged.errors += 1;
        }
    }
    let elapsed = started.elapsed().as_secs_f64();
    let terminal = merged.done + merged.cancelled + merged.failed;
    Ok(LoadReport {
        submitted: merged.submitted,
        done: merged.done,
        cancelled: merged.cancelled,
        failed: merged.failed,
        errors: merged.errors,
        elapsed_secs: elapsed,
        jobs_per_sec: if elapsed > 0.0 { terminal as f64 / elapsed } else { 0.0 },
        submit: LatencySummary::of(merged.submit_ms),
        status: LatencySummary::of(merged.status_ms),
        end_to_end: LatencySummary::of(merged.e2e_ms),
        conns_opened: merged.conns_opened,
        conns_reused: merged.conns_reused,
    })
}

fn run_client(cfg: &LoadtestConfig, client: usize) -> ClientStats {
    let mut stats = ClientStats::default();
    let mut http = HttpClient::new(&cfg.addr);
    for j in 0..cfg.jobs_per_client {
        let body = JsonBuilder::new()
            .u64("bits", cfg.bits as u64)
            .str("method", "sa")
            .u64("steps", cfg.steps as u64)
            .u64("seed", (client * cfg.jobs_per_client + j + 1) as u64)
            .u64("ckpt_every", 0)
            .str("tenant", &format!("load-{client}"))
            .u64("priority", (j % 3) as u64)
            .build();
        let t0 = Instant::now();
        let id = match http.call("POST", "/jobs", &body) {
            Ok((201, payload)) => {
                match parse_object(payload.as_bytes()).ok().and_then(|o| o.get_u64("id")) {
                    Some(id) => id,
                    None => {
                        stats.errors += 1;
                        continue;
                    }
                }
            }
            _ => {
                stats.errors += 1;
                continue;
            }
        };
        stats.submit_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        stats.submitted += 1;

        if cfg.cancel_every > 0 && (j + 1) % cfg.cancel_every == 0 {
            // 200 (still queued), 202 (running) and 409 (already
            // terminal) are all legitimate outcomes of a racy cancel.
            match http.call("POST", &format!("/jobs/{id}/cancel"), "") {
                Ok((200 | 202 | 409, _)) => {}
                _ => stats.errors += 1,
            }
        }

        // Poll until terminal or the per-job budget runs out.
        let deadline = t0 + Duration::from_secs(cfg.timeout_secs);
        loop {
            if Instant::now() > deadline {
                stats.errors += 1;
                break;
            }
            let tq = Instant::now();
            let state = match http.call("GET", &format!("/jobs/{id}"), "") {
                Ok((200, payload)) => parse_object(payload.as_bytes())
                    .ok()
                    .and_then(|o| o.get_str("state").map(str::to_owned)),
                _ => None,
            };
            stats.status_ms.push(tq.elapsed().as_secs_f64() * 1e3);
            match state.as_deref() {
                Some("done") => {
                    stats.done += 1;
                    stats.e2e_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    break;
                }
                Some("cancelled") => {
                    stats.cancelled += 1;
                    stats.e2e_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    break;
                }
                Some("failed") => {
                    stats.failed += 1;
                    stats.e2e_ms.push(t0.elapsed().as_secs_f64() * 1e3);
                    break;
                }
                _ => std::thread::sleep(Duration::from_millis(cfg.poll_ms)),
            }
        }
    }
    stats.conns_opened = http.conns_opened;
    stats.conns_reused = http.conns_reused;
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_summary_percentiles() {
        let s = LatencySummary::of((1..=100).map(|v| v as f64).collect());
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p95_ms, 95.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert_eq!(s.count, 100);
        assert_eq!(LatencySummary::of(vec![]), LatencySummary::default());
        let single = LatencySummary::of(vec![7.5]);
        assert_eq!((single.p50_ms, single.p99_ms, single.count), (7.5, 7.5, 1));
    }

    #[test]
    fn percentile_handles_tiny_samples() {
        // N = 1: every quantile is the single observation — the whole
        // point of the ceil-rank clamp.
        for q in [0.0, 0.01, 0.50, 0.95, 0.99, 1.0] {
            assert_eq!(percentile(&[42.0], q), 42.0, "q = {q}");
        }
        // N = 2: p50 is the first element (ceil(1.0) = 1), the upper
        // quantiles the second.
        assert_eq!(percentile(&[1.0, 2.0], 0.50), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.95), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], 0.99), 2.0);
        // N = 3: ceil-rank picks 2nd/3rd/3rd.
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.50), 2.0);
        assert_eq!(percentile(&[1.0, 2.0, 3.0], 0.95), 3.0);
        // Empty population degrades to zero, never an index panic.
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    #[test]
    fn report_renders_valid_flatish_json() {
        let report = LoadReport {
            submitted: 8,
            done: 6,
            cancelled: 2,
            failed: 0,
            errors: 0,
            elapsed_secs: 1.5,
            jobs_per_sec: 8.0 / 1.5,
            submit: LatencySummary::of(vec![1.0, 2.0]),
            status: LatencySummary::of(vec![0.5]),
            end_to_end: LatencySummary::of(vec![100.0, 200.0]),
            conns_opened: 4,
            conns_reused: 28,
        };
        let body = report.render_json(&LoadtestConfig::default());
        assert!(body.contains("\"bench\":\"serve\""), "{body}");
        assert!(body.contains("\"jobs_per_sec\":"), "{body}");
        assert!(body.contains("\"p95_ms\":"), "{body}");
        assert!(body.contains("\"submitted\":8"), "{body}");
        assert!(body.contains("\"conns_opened\":4"), "{body}");
        assert!(body.contains("\"conns_reused\":28"), "{body}");
    }
}
