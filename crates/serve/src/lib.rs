//! `rlmul serve` — the multi-tenant optimization job server.
//!
//! A long-running daemon that accepts concurrent multiplier
//! optimization jobs over HTTP (the from-scratch `rlmul-obs` HTTP/1.1
//! layer), runs them on a bounded worker pool behind a FIFO+priority
//! queue, and survives `kill -9` at any instant:
//!
//! * every job lifecycle transition is persisted through the
//!   `rlmul-ckpt` atomic snapshot machinery (record kind `"job"`), so
//!   a restarted daemon re-adopts queued jobs and resumes running
//!   ones from their last driver snapshot without repeating completed
//!   synthesis work;
//! * all jobs of all tenants share one [`rlmul_core::EvalCache`], so
//!   a second tenant optimizing the same design rides on the first
//!   tenant's synthesis results;
//! * every new lock, condvar and channel is an `rlmul_check::sync`
//!   facade primitive — lockdep-tracked in production (`--lockdep
//!   on`) and model-checkable in the `loom-lite` scheduler (the
//!   queue handoff and cancellation paths are checked in
//!   `tests/model_check.rs`).
//!
//! The crate splits into:
//!
//! * [`job`] — the job model: spec, lifecycle state machine, result
//!   summary, durable record;
//! * [`queue`] — the FIFO+priority job queue (facade mutex+condvar);
//! * [`server`] — the daemon: recovery, worker pool, HTTP front end;
//! * [`api`] — the HTTP route table (documented route-by-route in
//!   DESIGN.md §16);
//! * [`json`] — the dependency-free flat JSON codec the API speaks;
//! * [`trace`] — durable per-job traces: the persisted record and the
//!   rendering shared by `GET /jobs/:id/trace` and the live
//!   `GET /jobs/:id/events` stream;
//! * [`loadtest`] — the synthetic-client load harness behind `rlmul
//!   loadtest` and `bench_serve`.
//!
//! # Example
//!
//! ```no_run
//! use rlmul_serve::{Server, ServeConfig};
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     dir: "serve-state".into(),
//!     ..Default::default()
//! })?;
//! println!("serving jobs at http://{}/", server.local_addr());
//! // ... accept and run jobs until it is time to drain:
//! server.shutdown();
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod api;
pub mod job;
pub mod json;
pub mod loadtest;
pub mod queue;
pub mod server;
pub mod trace;

pub use job::{JobRecord, JobResult, JobSpec, JobState, Method, Pref, JOB_RECORD_KIND};
pub use loadtest::{percentile, run_loadtest, HttpClient, LoadReport, LoadtestConfig};
pub use queue::JobQueue;
pub use server::{ServeConfig, Server};
pub use trace::{render_event, TraceRecord, TRACE_RECORD_KIND};
