//! Durable per-job traces: the persisted record and the shared JSON
//! rendering used by both the stored-trace route and the live event
//! stream.
//!
//! A job's [`rlmul_obs::TraceCtx`] accumulates its causally-ordered
//! event timeline in memory while the job runs. At every *terminal*
//! transition the server freezes the timeline into a [`TraceRecord`]
//! and persists it through the same atomic `rlmul-ckpt` path as the
//! job record (`jobs/trace-<id>.ckpt`, written under the table lock),
//! so `kill -9` after completion cannot lose a finished job's trace.
//!
//! Rendering is deliberately shared: `GET /jobs/:id/trace` renders a
//! stored (or live-snapshotted) record via [`TraceRecord::render`],
//! and `GET /jobs/:id/events` streams one [`render_event`] line per
//! event — the same function the stored render uses per element — so
//! a live stream observed during a run matches the stored trace
//! event-for-event, byte-for-byte.

use crate::json::{json_array, JsonBuilder};
use rlmul_ckpt::{CkptError, Decoder, Encoder, Record};
use rlmul_obs::{TraceCtx, TraceEvent};

/// The snapshot-record kind tag every trace record carries on disk.
pub const TRACE_RECORD_KIND: &str = "trace";

/// Codec version of [`TraceRecord`]; bumped on layout changes so
/// stale files are rejected instead of misread.
const TRACE_RECORD_VERSION: u8 = 1;

/// A frozen per-job trace: the job's id, its trace ID
/// (`tr-<id>.<resumes>`), how many events the bounded buffer had to
/// drop, and the ordered event timeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceRecord {
    /// The job this trace belongs to.
    pub job_id: u64,
    /// The job-scoped trace ID (`tr-<id:08>.<resumes>`); the resume
    /// epoch changes when a daemon restart re-adopts the job.
    pub trace_id: String,
    /// Events refused by the bounded buffer (drop-newest policy, so
    /// the retained prefix is exact).
    pub dropped: u64,
    /// The causally-ordered timeline; `events[i].seq == i`.
    pub events: Vec<TraceEvent>,
}

impl TraceRecord {
    /// Freezes `ctx`'s current timeline into a record.
    pub fn from_ctx(job_id: u64, ctx: &TraceCtx) -> Self {
        TraceRecord {
            job_id,
            trace_id: ctx.trace_id().unwrap_or_default().to_string(),
            dropped: ctx.dropped(),
            events: ctx.snapshot(),
        }
    }

    /// Renders the full structured timeline as one JSON object — the
    /// `GET /jobs/:id/trace` body. Each element of `events` is
    /// exactly one [`render_event`] line, so the stored exposition
    /// and the live stream agree byte-for-byte per event.
    pub fn render(&self) -> String {
        let events: Vec<String> =
            self.events.iter().map(|e| render_event(&self.trace_id, e)).collect();
        JsonBuilder::new()
            .u64("job_id", self.job_id)
            .str("trace_id", &self.trace_id)
            .u64("dropped", self.dropped)
            .raw("events", &json_array(&events))
            .build()
    }
}

/// Renders one trace event as a JSON object string — one line of the
/// `GET /jobs/:id/events` stream, and one element of
/// [`TraceRecord::render`]'s `events` array.
pub fn render_event(trace_id: &str, e: &TraceEvent) -> String {
    JsonBuilder::new()
        .str("trace_id", trace_id)
        .u64("seq", e.seq)
        .u64("micros", e.micros)
        .str("kind", &e.kind)
        .str("detail", &e.detail)
        .build()
}

impl Record for TraceRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(TRACE_RECORD_VERSION);
        enc.put_u64(self.job_id);
        enc.put_str(&self.trace_id);
        enc.put_u64(self.dropped);
        enc.put_usize(self.events.len());
        for e in &self.events {
            enc.put_u64(e.seq);
            enc.put_u64(e.micros);
            enc.put_str(&e.kind);
            enc.put_str(&e.detail);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        let version = dec.get_u8()?;
        if version != TRACE_RECORD_VERSION {
            return Err(CkptError::Invalid { what: format!("trace record version {version}") });
        }
        let job_id = dec.get_u64()?;
        let trace_id = dec.get_str()?;
        let dropped = dec.get_u64()?;
        let len = dec.get_len(32)?; // 2×u64 + two 8-byte string length prefixes
        let mut events = Vec::with_capacity(len);
        for _ in 0..len {
            events.push(TraceEvent {
                seq: dec.get_u64()?,
                micros: dec.get_u64()?,
                kind: dec.get_str()?,
                detail: dec.get_str()?,
            });
        }
        Ok(TraceRecord { job_id, trace_id, dropped, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_object;

    fn sample() -> TraceRecord {
        let ctx = TraceCtx::new("tr-00000003.1");
        ctx.emit("submitted", "tenant=acme priority=2");
        ctx.emit("claimed", "worker pool");
        ctx.emit("step", "steps_done=1");
        TraceRecord::from_ctx(3, &ctx)
    }

    #[test]
    fn record_round_trips_through_codec() {
        let r = sample();
        assert_eq!(TraceRecord::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn truncated_record_is_rejected() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(TraceRecord::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rendered_trace_embeds_exact_event_lines() {
        let r = sample();
        let rendered = r.render();
        assert!(rendered.contains("\"trace_id\":\"tr-00000003.1\""), "{rendered}");
        // Every stream line appears verbatim inside the stored render.
        for e in &r.events {
            let line = render_event(&r.trace_id, e);
            assert!(rendered.contains(&line), "missing {line} in {rendered}");
            // And each line is itself a parseable flat object.
            let o = parse_object(line.as_bytes()).unwrap();
            assert_eq!(o.get_u64("seq"), Some(e.seq));
            assert_eq!(o.get_str("kind").unwrap(), e.kind);
        }
    }

    #[test]
    fn empty_trace_renders_and_round_trips() {
        let r = TraceRecord::from_ctx(9, &TraceCtx::disabled());
        assert_eq!(r.events.len(), 0);
        assert_eq!(TraceRecord::from_bytes(&r.to_bytes()).unwrap(), r);
        assert!(r.render().contains("\"events\":[]"), "{}", r.render());
    }
}
