//! Flat-ish JSON for the job API: a hand-rolled parser for request
//! and response bodies, and a small builder for (possibly nested)
//! response bodies.
//!
//! Requests are flat objects — string, number, boolean values only —
//! which keeps the API easy to drive with `curl`. The parser still
//! accepts nested objects/arrays (they are captured verbatim as
//! [`JsonValue::Raw`] without interpretation) because the *response*
//! side needs them: a terminal job's status nests its `result`
//! object, and the load-test clients parse those responses with this
//! same parser. The builder exposes explicit `raw` splicing for
//! pre-rendered sub-objects.
//!
//! Everything here is error-returning, never panicking: this module
//! sits on the server's request path.

use std::fmt::Write as _;

/// A parsed JSON scalar.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// String value.
    Str(String),
    /// Any JSON number (kept as f64; the API's integers are small).
    Num(f64),
    /// Boolean value.
    Bool(bool),
    /// JSON `null`.
    Null,
    /// A nested object or array, captured verbatim (balanced,
    /// string-aware) but not interpreted. Lets the parser read the
    /// server's own responses, whose terminal jobs nest a `result`
    /// object.
    Raw(String),
}

impl JsonValue {
    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an f64, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if numeric and integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// A parsed flat JSON object: ordered `(key, value)` pairs.
#[derive(Debug, Clone, Default)]
pub struct JsonObject {
    fields: Vec<(String, JsonValue)>,
}

impl JsonObject {
    /// Looks up a field by key (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// String field accessor.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(JsonValue::as_str)
    }

    /// Unsigned-integer field accessor.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        self.get(key).and_then(JsonValue::as_u64)
    }

    /// Float field accessor.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(JsonValue::as_f64)
    }

    /// All fields in document order.
    pub fn fields(&self) -> &[(String, JsonValue)] {
        &self.fields
    }
}

/// Parses one JSON object (UTF-8 bytes). Scalar fields become typed
/// [`JsonValue`]s; nested objects and arrays are captured verbatim as
/// [`JsonValue::Raw`] — deep enough for every body this API sends or
/// receives. Duplicate keys are rejected (a duplicate would make
/// accessors answer from an attacker-chosen copy).
///
/// # Errors
///
/// A human-readable description of the first syntax problem, suitable
/// for a 400 response body.
pub fn parse_object(bytes: &[u8]) -> Result<JsonObject, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "body is not UTF-8".to_string())?;
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.eat(b'{')?;
    let mut fields = Vec::new();
    p.skip_ws();
    if !p.peek_is(b'}') {
        loop {
            p.skip_ws();
            let key = p.string()?;
            p.skip_ws();
            p.eat(b':')?;
            p.skip_ws();
            let value = p.value()?;
            if fields.iter().any(|(k, _)| *k == key) {
                // Accepting duplicates would make `get` answer from
                // whichever copy it scans first — a classic
                // request-smuggling foothold. Reject loudly instead.
                return Err(format!("duplicate key `{key}`"));
            }
            fields.push((key, value));
            p.skip_ws();
            if p.peek_is(b',') {
                p.pos += 1;
                continue;
            }
            break;
        }
    }
    p.skip_ws();
    p.eat(b'}')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after object".into());
    }
    Ok(JsonObject { fields })
}

/// Parses a JSON array of objects — the shape of the `/jobs` listing
/// and of a stored trace's `events` field. Each element goes through
/// [`parse_object`], so element-level guarantees (typed scalars,
/// duplicate-key rejection) hold here too.
///
/// # Errors
///
/// A human-readable description of the first syntax problem.
pub fn parse_object_array(text: &str) -> Result<Vec<JsonObject>, String> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    p.eat(b'[')?;
    let mut out = Vec::new();
    p.skip_ws();
    if !p.peek_is(b']') {
        loop {
            p.skip_ws();
            if !p.peek_is(b'{') {
                return Err(format!("array element at byte {} is not an object", p.pos));
            }
            match p.raw_nested(b'{', b'}')? {
                JsonValue::Raw(obj) => out.push(parse_object(obj.as_bytes())?),
                _ => return Err("array element is not an object".into()),
            }
            p.skip_ws();
            if p.peek_is(b',') {
                p.pos += 1;
                continue;
            }
            break;
        }
    }
    p.skip_ws();
    p.eat(b']')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err("trailing characters after array".into());
    }
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek_is(&self, b: u8) -> bool {
        self.bytes.get(self.pos) == Some(&b)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek_is(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(&esc) = self.bytes.get(self.pos) else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape '\\{}'", other as char)),
                    }
                }
                _ => {
                    // Re-take the full UTF-8 character starting here.
                    let start = self.pos - 1;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    let Some(c) = text.chars().next() else {
                        return Err("unterminated string".into());
                    };
                    out.push(c);
                    self.pos = start + c.len_utf8();
                }
            }
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.bytes.get(self.pos) {
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'{') => self.raw_nested(b'{', b'}'),
            Some(b'[') => self.raw_nested(b'[', b']'),
            Some(_) => {
                let start = self.pos;
                while self.bytes.get(self.pos).is_some_and(|b| {
                    b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E')
                }) {
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid number".to_string())?;
                text.parse::<f64>()
                    .map(JsonValue::Num)
                    .map_err(|_| format!("invalid number `{text}`"))
            }
            None => Err("unexpected end of input".into()),
        }
    }

    /// Captures a balanced nested object/array verbatim, tracking
    /// string boundaries so braces inside string values don't count.
    fn raw_nested(&mut self, open: u8, close: u8) -> Result<JsonValue, String> {
        let start = self.pos;
        let mut depth = 0usize;
        let mut in_string = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            self.pos += 1;
            if in_string {
                match b {
                    b'\\' => self.pos += 1, // skip the escaped byte
                    b'"' => in_string = false,
                    _ => {}
                }
                continue;
            }
            match b {
                b'"' => in_string = true,
                _ if b == open => depth += 1,
                _ if b == close => {
                    depth -= 1;
                    if depth == 0 {
                        let text = std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| "invalid UTF-8 in nested value".to_string())?;
                        return Ok(JsonValue::Raw(text.to_owned()));
                    }
                }
                _ => {}
            }
        }
        Err("unterminated nested value".into())
    }

    fn literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("expected `{lit}` at byte {}", self.pos))
        }
    }
}

/// Incremental JSON object builder for response bodies. Fields render
/// in insertion order; strings are escaped; floats use Rust's
/// shortest-round-trip formatting (non-finite values become `null`).
#[derive(Debug, Default)]
pub struct JsonBuilder {
    out: String,
    any: bool,
}

impl JsonBuilder {
    /// An empty object (`{`).
    pub fn new() -> Self {
        JsonBuilder { out: String::from("{"), any: false }
    }

    fn key(&mut self, key: &str) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        escape_into(&mut self.out, key);
        self.out.push(':');
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        escape_into(&mut self.out, value);
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, key: &str, value: u64) -> Self {
        self.key(key);
        let _ = write!(self.out, "{value}");
        self
    }

    /// Adds a float field (`null` when non-finite).
    pub fn f64(mut self, key: &str, value: f64) -> Self {
        self.key(key);
        if value.is_finite() {
            let start = self.out.len();
            let _ = write!(self.out, "{value}");
            if !self.out[start..].contains(['.', 'e', 'E']) {
                self.out.push_str(".0");
            }
        } else {
            self.out.push_str("null");
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, value: bool) -> Self {
        self.key(key);
        self.out.push_str(if value { "true" } else { "false" });
        self
    }

    /// Splices pre-rendered JSON (an object or array) as a field
    /// value. The caller guarantees `value` is valid JSON.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.key(key);
        self.out.push_str(value);
        self
    }

    /// Closes and returns the rendered object.
    pub fn build(mut self) -> String {
        self.out.push('}');
        self.out
    }
}

/// Renders a JSON array from pre-rendered element strings.
pub fn json_array(elements: &[String]) -> String {
    let mut out = String::from("[");
    for (i, e) in elements.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push(']');
    out
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flat_objects() {
        let o = parse_object(br#"{"bits": 8, "kind": "and", "deep": false, "x": 1.5}"#).unwrap();
        assert_eq!(o.get_u64("bits"), Some(8));
        assert_eq!(o.get_str("kind"), Some("and"));
        assert_eq!(o.get("deep"), Some(&JsonValue::Bool(false)));
        assert_eq!(o.get_f64("x"), Some(1.5));
        assert_eq!(o.get("missing"), None);
    }

    #[test]
    fn captures_nested_values_verbatim() {
        let o = parse_object(br#"{"id":7,"result":{"best_cost":1.5,"tags":["a","}"]},"ok":true}"#)
            .unwrap();
        assert_eq!(o.get_u64("id"), Some(7));
        assert_eq!(
            o.get("result"),
            Some(&JsonValue::Raw(r#"{"best_cost":1.5,"tags":["a","}"]}"#.into()))
        );
        assert_eq!(o.get("ok"), Some(&JsonValue::Bool(true)));
        // Nested values are opaque: typed accessors refuse them.
        assert_eq!(o.get_u64("result"), None);
        // Arrays of objects (the /jobs listing shape) round-trip too.
        let list = parse_object(br#"{"count":2,"jobs":[{"id":1},{"id":2}]}"#).unwrap();
        assert_eq!(list.get("jobs"), Some(&JsonValue::Raw(r#"[{"id":1},{"id":2}]"#.into())));
        assert!(parse_object(br#"{"a": {"b": 1}"#).is_err(), "unbalanced nesting");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_object(b"not json").is_err());
        assert!(parse_object(br#"{"a": 1} trailing"#).is_err());
        assert!(parse_object(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn escapes_round_trip() {
        let body = JsonBuilder::new().str("msg", "a\"b\\c\nd").u64("n", 3).build();
        let o = parse_object(body.as_bytes()).unwrap();
        assert_eq!(o.get_str("msg"), Some("a\"b\\c\nd"));
        assert_eq!(o.get_u64("n"), Some(3));
    }

    #[test]
    fn builder_renders_arrays_and_floats() {
        let rows = vec![JsonBuilder::new().u64("id", 1).build()];
        let body = JsonBuilder::new()
            .raw("jobs", &json_array(&rows))
            .f64("p50", 0.5)
            .f64("bad", f64::NAN)
            .bool("ok", true)
            .build();
        assert_eq!(body, r#"{"jobs":[{"id":1}],"p50":0.5,"bad":null,"ok":true}"#);
    }

    #[test]
    fn object_arrays_parse_per_element() {
        let rows = parse_object_array(r#"[{"seq":0,"kind":"a"},{"seq":1,"kind":"b"}]"#).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].get_u64("seq"), Some(0));
        assert_eq!(rows[1].get_str("kind"), Some("b"));
        assert!(parse_object_array("[]").unwrap().is_empty());
        assert!(parse_object_array(r#"[{"a":1},2]"#).is_err(), "non-object element");
        assert!(parse_object_array(r#"[{"a":1}"#).is_err(), "unterminated array");
        assert!(parse_object_array(r#"[{"a":1,"a":2}]"#).is_err(), "duplicate key in element");
    }

    #[test]
    fn integral_floats_keep_floatness() {
        let body = JsonBuilder::new().f64("v", 2.0).build();
        assert_eq!(body, r#"{"v":2.0}"#);
        let o = parse_object(body.as_bytes()).unwrap();
        assert_eq!(o.get_f64("v"), Some(2.0));
    }
}
