//! The job model: specification, lifecycle state machine, result
//! summary and the persisted record.
//!
//! Every submitted job is one [`JobRecord`], persisted through the
//! `rlmul-ckpt` snapshot machinery (record kind `"job"`, atomic
//! tmp + fsync + rename writes) on every state transition, so a
//! `kill -9` at any instant leaves each job's last durable state
//! intact for recovery.
//!
//! The lifecycle state machine (DESIGN.md §16):
//!
//! ```text
//!            ┌────────────┐ cancel
//!   submit → │   Queued   │────────────────────┐
//!            └─────┬──────┘                    │
//!        worker    │          ▲ daemon restart │
//!        claims    ▼          │ (recovery)     ▼
//!            ┌────────────┐───┘ done     ┌───────────┐
//!            │  Running   │─────────────▶│   Done    │
//!            └─────┬──────┘              └───────────┘
//!                  │ cancel (cooperative)  ┌───────────┐
//!                  ├───────────────────────▶ Cancelled │
//!                  │ driver error           └───────────┘
//!                  └───────────────────────▶ Failed
//! ```
//!
//! `Done`, `Cancelled` and `Failed` are terminal. The only backward
//! edge is `Running → Queued`, taken exclusively by crash recovery
//! when a restarted daemon finds a record claiming `Running` with no
//! live worker behind it.

use crate::json::{JsonBuilder, JsonObject};
use rlmul_ckpt::{CkptError, Decoder, Encoder, Record};
use rlmul_core::CostWeights;
use rlmul_ct::PpgKind;

/// The snapshot-record kind tag every job record carries on disk.
pub const JOB_RECORD_KIND: &str = "job";

/// Codec version of [`JobRecord`]; bumped on layout changes so stale
/// files are rejected instead of misread.
const JOB_RECORD_VERSION: u8 = 1;

/// Search method requested for a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Simulated annealing on the synthesis-backed cost.
    Sa,
    /// Native RL-MUL (DQN).
    Dqn,
    /// RL-MUL-E (synchronous parallel A2C).
    A2c,
}

impl Method {
    /// Lowercase wire label (`sa` | `dqn` | `a2c`).
    pub fn as_str(self) -> &'static str {
        match self {
            Method::Sa => "sa",
            Method::Dqn => "dqn",
            Method::A2c => "a2c",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "sa" => Some(Method::Sa),
            "dqn" => Some(Method::Dqn),
            "a2c" => Some(Method::A2c),
            _ => None,
        }
    }
}

/// Optimization preference (maps to [`CostWeights`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pref {
    /// Pure area objective.
    Area,
    /// Pure delay objective.
    Timing,
    /// The paper's area/delay trade-off.
    Tradeoff,
}

impl Pref {
    /// Lowercase wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            Pref::Area => "area",
            Pref::Timing => "timing",
            Pref::Tradeoff => "tradeoff",
        }
    }

    /// Parses a wire label.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "area" => Some(Pref::Area),
            "timing" => Some(Pref::Timing),
            "tradeoff" => Some(Pref::Tradeoff),
            _ => None,
        }
    }

    /// The reward weights this preference selects.
    pub fn weights(self) -> CostWeights {
        match self {
            Pref::Area => CostWeights::AREA,
            Pref::Timing => CostWeights::TIMING,
            Pref::Tradeoff => CostWeights::TRADE_OFF,
        }
    }
}

fn kind_parse(s: &str) -> Option<PpgKind> {
    match s {
        "and" => Some(PpgKind::And),
        "mbe" => Some(PpgKind::Mbe),
        "mac-and" => Some(PpgKind::MacAnd),
        "mac-mbe" => Some(PpgKind::MacMbe),
        _ => None,
    }
}

/// Everything a client specifies when submitting a job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Operand width.
    pub bits: usize,
    /// Partial-product scheme.
    pub kind: PpgKind,
    /// Search method.
    pub method: Method,
    /// Environment steps.
    pub steps: usize,
    /// RNG seed.
    pub seed: u64,
    /// Optimization preference.
    pub pref: Pref,
    /// Scheduling priority: higher runs earlier; FIFO within a
    /// priority class.
    pub priority: u8,
    /// Tenant tag (isolation is accounting-level: jobs of all tenants
    /// share the evaluation cache — see DESIGN.md §16 caveats).
    pub tenant: String,
    /// Client-chosen idempotency key; a re-submission with the same
    /// `(tenant, idempotency_key)` returns the existing job instead
    /// of creating a duplicate. Empty disables the check.
    pub idempotency_key: String,
    /// Roll the job's crash-recovery snapshot every this many
    /// completed steps (0 = only at shutdown).
    pub ckpt_every: usize,
}

impl JobSpec {
    /// Bounds enforced at submission (`bits`, `steps`) so a hostile
    /// or confused client cannot wedge a worker on a giant job.
    pub const MAX_BITS: usize = 64;
    /// Upper bound on requested steps.
    pub const MAX_STEPS: usize = 1_000_000;

    /// Builds a spec from a parsed submission body, applying defaults
    /// and validating every field.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending field, suitable
    /// for a 400 response.
    pub fn from_json(o: &JsonObject) -> Result<Self, String> {
        let bits = o.get_u64("bits").unwrap_or(8) as usize;
        if !(2..=Self::MAX_BITS).contains(&bits) {
            return Err(format!("`bits` must be in 2..={} (got {bits})", Self::MAX_BITS));
        }
        let kind_str = o.get_str("kind").unwrap_or("and");
        let Some(kind) = kind_parse(kind_str) else {
            return Err(format!("unknown `kind` `{kind_str}` (and|mbe|mac-and|mac-mbe)"));
        };
        let method_str = o.get_str("method").unwrap_or("sa");
        let Some(method) = Method::parse(method_str) else {
            return Err(format!("unknown `method` `{method_str}` (sa|dqn|a2c)"));
        };
        let steps = o.get_u64("steps").unwrap_or(40) as usize;
        if !(1..=Self::MAX_STEPS).contains(&steps) {
            return Err(format!("`steps` must be in 1..={} (got {steps})", Self::MAX_STEPS));
        }
        let pref_str = o.get_str("pref").unwrap_or("tradeoff");
        let Some(pref) = Pref::parse(pref_str) else {
            return Err(format!("unknown `pref` `{pref_str}` (area|timing|tradeoff)"));
        };
        let priority = match o.get_u64("priority").unwrap_or(0) {
            p @ 0..=255 => p as u8,
            p => return Err(format!("`priority` must be in 0..=255 (got {p})")),
        };
        Ok(JobSpec {
            bits,
            kind,
            method,
            steps,
            seed: o.get_u64("seed").unwrap_or(1),
            pref,
            priority,
            tenant: o.get_str("tenant").unwrap_or("default").to_owned(),
            idempotency_key: o.get_str("idempotency_key").unwrap_or("").to_owned(),
            ckpt_every: o.get_u64("ckpt_every").unwrap_or(10) as usize,
        })
    }

    /// Renders the spec fields into a response builder.
    pub fn render_into(&self, b: JsonBuilder) -> JsonBuilder {
        b.u64("bits", self.bits as u64)
            .str("kind", self.kind.label())
            .str("method", self.method.as_str())
            .u64("steps", self.steps as u64)
            .u64("seed", self.seed)
            .str("pref", self.pref.as_str())
            .u64("priority", self.priority as u64)
            .str("tenant", &self.tenant)
    }
}

impl Record for JobSpec {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.bits);
        enc.put_str(self.kind.label());
        enc.put_str(self.method.as_str());
        enc.put_usize(self.steps);
        enc.put_u64(self.seed);
        enc.put_str(self.pref.as_str());
        enc.put_u8(self.priority);
        enc.put_str(&self.tenant);
        enc.put_str(&self.idempotency_key);
        enc.put_usize(self.ckpt_every);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        let bits = dec.get_usize()?;
        let kind_str = dec.get_str()?;
        let kind = kind_parse(&kind_str)
            .ok_or_else(|| CkptError::Invalid { what: format!("PPG kind `{kind_str}`") })?;
        let method_str = dec.get_str()?;
        let method = Method::parse(&method_str)
            .ok_or_else(|| CkptError::Invalid { what: format!("method `{method_str}`") })?;
        let steps = dec.get_usize()?;
        let seed = dec.get_u64()?;
        let pref_str = dec.get_str()?;
        let pref = Pref::parse(&pref_str)
            .ok_or_else(|| CkptError::Invalid { what: format!("pref `{pref_str}`") })?;
        Ok(JobSpec {
            bits,
            kind,
            method,
            steps,
            seed,
            pref,
            priority: dec.get_u8()?,
            tenant: dec.get_str()?,
            idempotency_key: dec.get_str()?,
            ckpt_every: dec.get_usize()?,
        })
    }
}

/// Lifecycle state of a job (see the module-level state machine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted and waiting in the queue.
    Queued,
    /// Claimed by a worker and executing.
    Running,
    /// Finished normally; a result is attached.
    Done,
    /// Cancelled by a client (while queued, or cooperatively while
    /// running; a partial result may be attached).
    Cancelled,
    /// The driver returned an error; the message is attached.
    Failed,
}

impl JobState {
    /// Lowercase wire label.
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether this state admits no further transitions.
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled | JobState::Failed)
    }

    /// Whether `self → to` is a legal lifecycle edge. The recovery
    /// edge `Running → Queued` is legal only with `recovery` set —
    /// the daemon takes it exclusively at startup, for records that
    /// claim `Running` with no live worker behind them.
    pub fn can_transition(self, to: JobState, recovery: bool) -> bool {
        match (self, to) {
            (JobState::Queued, JobState::Running | JobState::Cancelled) => true,
            (JobState::Running, JobState::Done | JobState::Cancelled | JobState::Failed) => true,
            (JobState::Running, JobState::Queued) => recovery,
            _ => false,
        }
    }

    fn code(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Cancelled => 3,
            JobState::Failed => 4,
        }
    }

    fn from_code(code: u8) -> Result<Self, CkptError> {
        Ok(match code {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Cancelled,
            4 => JobState::Failed,
            b => return Err(CkptError::Invalid { what: format!("job state code {b}") }),
        })
    }
}

/// Summary of a finished (or cancelled-partway) optimization run.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// Best weighted cost found.
    pub best_cost: f64,
    /// Environment steps actually completed.
    pub steps_done: usize,
    /// Distinct states evaluated.
    pub states_visited: usize,
    /// Per-delay-target synthesis runs.
    pub synth_runs: usize,
    /// Real synthesis pipeline invocations by this run — the number
    /// the recovery test pins down: work served from the shared cache
    /// or a resumed snapshot never counts here.
    pub synthesis_calls: usize,
    /// Evaluations answered from the shared cross-tenant cache.
    pub cache_hits: usize,
    /// Evaluations this run had to compute.
    pub cache_misses: usize,
}

impl JobResult {
    /// Renders the result as a JSON object string.
    pub fn render(&self) -> String {
        JsonBuilder::new()
            .f64("best_cost", self.best_cost)
            .u64("steps_done", self.steps_done as u64)
            .u64("states_visited", self.states_visited as u64)
            .u64("synth_runs", self.synth_runs as u64)
            .u64("synthesis_calls", self.synthesis_calls as u64)
            .u64("cache_hits", self.cache_hits as u64)
            .u64("cache_misses", self.cache_misses as u64)
            .build()
    }
}

impl Record for JobResult {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.best_cost);
        enc.put_usize(self.steps_done);
        enc.put_usize(self.states_visited);
        enc.put_usize(self.synth_runs);
        enc.put_usize(self.synthesis_calls);
        enc.put_usize(self.cache_hits);
        enc.put_usize(self.cache_misses);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(JobResult {
            best_cost: dec.get_f64()?,
            steps_done: dec.get_usize()?,
            states_visited: dec.get_usize()?,
            synth_runs: dec.get_usize()?,
            synthesis_calls: dec.get_usize()?,
            cache_hits: dec.get_usize()?,
            cache_misses: dec.get_usize()?,
        })
    }
}

/// The durable unit of the job server: one job's spec, lifecycle
/// state, and terminal payload. Persisted on every transition.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Server-assigned id; also the FIFO sequence number within a
    /// priority class.
    pub id: u64,
    /// What the client asked for.
    pub spec: JobSpec,
    /// Current lifecycle state.
    pub state: JobState,
    /// Result summary (`Done`, and possibly a partial one on
    /// `Cancelled`).
    pub result: Option<JobResult>,
    /// Driver error message (`Failed`).
    pub error: Option<String>,
    /// How many daemon restarts have re-adopted this job (recovery
    /// requeues of a `Running` record).
    pub resumes: u32,
}

impl JobRecord {
    /// A freshly accepted record in `Queued`.
    pub fn new(id: u64, spec: JobSpec) -> Self {
        JobRecord { id, spec, state: JobState::Queued, result: None, error: None, resumes: 0 }
    }

    /// Applies a lifecycle transition, enforcing the state machine.
    ///
    /// # Errors
    ///
    /// A message naming the illegal edge (the current state is left
    /// untouched), suitable for a 409 response.
    pub fn transition(&mut self, to: JobState, recovery: bool) -> Result<(), String> {
        if !self.state.can_transition(to, recovery) {
            return Err(format!(
                "job {} is {}; cannot transition to {}",
                self.id,
                self.state.as_str(),
                to.as_str()
            ));
        }
        self.state = to;
        Ok(())
    }

    /// Renders the record as a JSON object string. `progress` is the
    /// live step counter of a running job (the persisted record holds
    /// no live progress).
    pub fn render(&self, progress: usize) -> String {
        let mut b = JsonBuilder::new().u64("id", self.id).str("state", self.state.as_str());
        b = self.spec.render_into(b);
        b = b.u64("progress", progress as u64).u64("resumes", self.resumes as u64);
        if let Some(r) = &self.result {
            b = b.raw("result", &r.render());
        }
        if let Some(e) = &self.error {
            b = b.str("error", e);
        }
        b.build()
    }
}

impl Record for JobRecord {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(JOB_RECORD_VERSION);
        enc.put_u64(self.id);
        self.spec.encode(enc);
        enc.put_u8(self.state.code());
        self.result.encode(enc);
        self.error.encode(enc);
        enc.put_u32(self.resumes);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        let version = dec.get_u8()?;
        if version != JOB_RECORD_VERSION {
            return Err(CkptError::Invalid { what: format!("job record version {version}") });
        }
        Ok(JobRecord {
            id: dec.get_u64()?,
            spec: JobSpec::decode(dec)?,
            state: JobState::from_code(dec.get_u8()?)?,
            result: Option::<JobResult>::decode(dec)?,
            error: Option::<String>::decode(dec)?,
            resumes: dec.get_u32()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse_object;

    fn spec() -> JobSpec {
        JobSpec::from_json(&parse_object(br#"{"bits":4,"steps":6}"#).unwrap()).unwrap()
    }

    #[test]
    fn submission_defaults_and_validation() {
        let s = spec();
        assert_eq!((s.bits, s.steps, s.method, s.pref), (4, 6, Method::Sa, Pref::Tradeoff));
        assert_eq!(s.tenant, "default");
        for bad in [
            br#"{"bits":1}"#.as_slice(),
            br#"{"bits":128}"#.as_slice(),
            br#"{"steps":0}"#.as_slice(),
            br#"{"method":"ppo"}"#.as_slice(),
            br#"{"kind":"nand"}"#.as_slice(),
            br#"{"pref":"speed"}"#.as_slice(),
            br#"{"priority":900}"#.as_slice(),
        ] {
            let o = parse_object(bad).unwrap();
            assert!(JobSpec::from_json(&o).is_err(), "{:?}", String::from_utf8_lossy(bad));
        }
    }

    #[test]
    fn state_machine_edges() {
        use JobState::*;
        let legal = [
            (Queued, Running),
            (Queued, Cancelled),
            (Running, Done),
            (Running, Cancelled),
            (Running, Failed),
        ];
        for (from, to) in legal {
            assert!(from.can_transition(to, false), "{from:?}→{to:?}");
        }
        // The recovery edge needs the recovery flag.
        assert!(!Running.can_transition(Queued, false));
        assert!(Running.can_transition(Queued, true));
        // Terminal states admit nothing, recovery or not.
        for terminal in [Done, Cancelled, Failed] {
            assert!(terminal.is_terminal());
            for to in [Queued, Running, Done, Cancelled, Failed] {
                assert!(!terminal.can_transition(to, true), "{terminal:?}→{to:?}");
            }
        }
        // And Queued cannot jump straight to a result state.
        assert!(!Queued.can_transition(Done, false));
        assert!(!Queued.can_transition(Failed, false));
    }

    #[test]
    fn transition_errors_leave_state_untouched() {
        let mut r = JobRecord::new(1, spec());
        r.transition(JobState::Running, false).unwrap();
        r.transition(JobState::Done, false).unwrap();
        let err = r.transition(JobState::Running, false).unwrap_err();
        assert!(err.contains("done"), "{err}");
        assert_eq!(r.state, JobState::Done);
    }

    #[test]
    fn record_round_trips_through_codec() {
        let mut r = JobRecord::new(7, spec());
        r.transition(JobState::Running, false).unwrap();
        r.resumes = 2;
        r.result = Some(JobResult {
            best_cost: 1.25,
            steps_done: 6,
            states_visited: 5,
            synth_runs: 20,
            synthesis_calls: 5,
            cache_hits: 1,
            cache_misses: 5,
        });
        r.error = Some("boom".into());
        let back = JobRecord::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn truncated_record_is_rejected() {
        let bytes = JobRecord::new(1, spec()).to_bytes();
        for cut in 0..bytes.len() {
            assert!(JobRecord::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn rendered_record_is_valid_json() {
        let mut r = JobRecord::new(3, spec());
        r.result = Some(JobResult {
            best_cost: 0.5,
            steps_done: 6,
            states_visited: 4,
            synth_runs: 16,
            synthesis_calls: 4,
            cache_hits: 2,
            cache_misses: 4,
        });
        let rendered = r.render(6);
        // The top level nests the result object, so parse a flattened
        // probe instead: every scalar field must be readable.
        assert!(rendered.contains("\"state\":\"queued\""), "{rendered}");
        assert!(rendered.contains("\"result\":{"), "{rendered}");
        assert!(rendered.contains("\"best_cost\":0.5"), "{rendered}");
    }
}
