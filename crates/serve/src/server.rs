//! The job daemon: crash recovery, the bounded worker pool, and the
//! HTTP front end.
//!
//! # Thread layout
//!
//! One accept thread (`serve-accept`) hands accepted sockets over a
//! facade channel to `http_workers` HTTP threads (`serve-http-N`),
//! each of which parses/answers one connection at a time through the
//! shared `rlmul-obs` wire functions. `workers` job threads
//! (`serve-worker-N`) block on the [`JobQueue`] and run one
//! optimization each. All coordination state lives in `Inner`
//! behind `rlmul-check` facade primitives.
//!
//! # Lock ordering
//!
//! `serve.jobs` (the job table) may be held while acquiring
//! `serve.queue` (submission pushes, cancellation removes), never the
//! reverse — workers release the queue lock (inside `pop`) before
//! touching the table. `--lockdep on` verifies this invariant in
//! production.
//!
//! # Durability protocol
//!
//! Every lifecycle transition writes `jobs/job-<id>.ckpt` through the
//! atomic `rlmul-ckpt` path *while the table lock is held*, so the
//! on-disk record never runs ahead of (or behind) the in-memory state
//! machine. Driver progress rolls `ckpt-<id>/latest.ckpt` every
//! `ckpt_every` steps from inside the run. After `kill -9`, the next
//! start replays `jobs/`: terminal records become history, `Queued`
//! records re-enter the queue, and `Running` records take the
//! recovery edge back to `Queued` (bumping `resumes`) so a worker
//! re-adopts them from their last driver snapshot — completed
//! synthesis work is served from the snapshot's re-imported cache
//! entries instead of being repeated.

use crate::job::{JobRecord, JobResult, JobSpec, JobState, Method, JOB_RECORD_KIND};
use crate::queue::JobQueue;
use crate::trace::{TraceRecord, TRACE_RECORD_KIND};
use rlmul_baselines::SaConfig;
use rlmul_check::sync::{channel, spawn_named, JoinHandle, Mutex, Receiver, RwLock};
use rlmul_ckpt::{read_snapshot, write_snapshot, SnapshotStore};
use rlmul_core::{
    resume_dqn_cached, run_sa_with, train_a2c_with, train_dqn_with, A2cConfig, DqnConfig,
    EnvConfig, EvalCache, MulEnv, OptimizationOutcome, RlMulError, TrainHooks,
};
use rlmul_obs::{handle_connection, Counter, Gauge, Histo, Registry, TraceCtx};
use std::collections::BTreeMap;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Daemon configuration (`rlmul serve` flags map 1:1 onto this).
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Listen address (`host:port`; port 0 picks a free port, which
    /// is then discoverable via `<dir>/serve.addr`).
    pub addr: String,
    /// State directory: job records under `jobs/`, per-job driver
    /// snapshots under `ckpt-<id>/`, the bound address in
    /// `serve.addr`.
    pub dir: PathBuf,
    /// Job worker threads (concurrent optimizations).
    pub workers: usize,
    /// HTTP worker threads.
    pub http_workers: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:7171".into(),
            dir: PathBuf::from("serve-state"),
            workers: 2,
            http_workers: 2,
        }
    }
}

/// What a cancellation request found (drives the HTTP status).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum CancelOutcome {
    /// Cancelled before any worker ran it; now terminal `Cancelled`.
    WhileQueued,
    /// The stop flag is raised; the run winds down cooperatively
    /// (terminal state follows asynchronously).
    WhileRunning,
    /// Already terminal; nothing to cancel.
    Terminal(JobState),
    /// No such job.
    Unknown,
}

/// The job-scoped trace ID: `tr-<id:08>.<epoch>`, where the epoch is
/// the job's resume count — a daemon restart that re-adopts a job
/// starts a fresh trace under the next epoch, so IDs stay unique
/// across recoveries while remaining deterministic.
pub(crate) fn trace_id_for(id: u64, epoch: u32) -> String {
    format!("tr-{id:08}.{epoch}")
}

/// Live bookkeeping for one job: the authoritative record plus the
/// flags shared with its (possible) worker thread.
#[derive(Debug)]
pub(crate) struct JobEntry {
    pub(crate) record: JobRecord,
    /// Cooperative stop: cancellation *or* daemon shutdown.
    stop: Arc<AtomicBool>,
    /// User intent: set only by an explicit cancel request. Separates
    /// "stop because cancelled" (→ `Cancelled`) from "stop because
    /// the daemon is draining" (→ stays `Running` on disk, resumed by
    /// the next start).
    cancelled: Arc<AtomicBool>,
    /// Live step counter published by the driver via `TrainHooks`.
    progress: Arc<AtomicUsize>,
    /// The job's live trace timeline; disabled for jobs recovered
    /// already-terminal (their timeline lives in `stored_trace`).
    trace: TraceCtx,
    /// The durable trace, frozen and persisted at the terminal
    /// transition (or loaded from disk by recovery).
    stored_trace: Option<TraceRecord>,
    /// When the job (re-)entered the queue; start of the queue-wait
    /// interval observed at worker claim.
    enqueued_at: Instant,
}

impl JobEntry {
    fn new(record: JobRecord) -> Self {
        let trace = if record.state.is_terminal() {
            TraceCtx::disabled()
        } else {
            TraceCtx::new(&trace_id_for(record.id, record.resumes))
        };
        JobEntry {
            record,
            stop: Arc::new(AtomicBool::new(false)),
            cancelled: Arc::new(AtomicBool::new(false)),
            progress: Arc::new(AtomicUsize::new(0)),
            trace,
            stored_trace: None,
            enqueued_at: Instant::now(),
        }
    }

    /// Best progress estimate: the live counter while running, the
    /// recorded steps once terminal.
    fn progress(&self) -> usize {
        match &self.record.result {
            Some(r) => r.steps_done,
            None => self.progress.load(Ordering::Relaxed),
        }
    }
}

struct Metrics {
    jobs_submitted: Counter,
    jobs_done: Counter,
    jobs_cancelled: Counter,
    jobs_failed: Counter,
    jobs_resumed: Counter,
    queue_depth: Gauge,
    http_requests: Counter,
    http_seconds: Histo,
}

impl Metrics {
    fn new(reg: &Registry) -> Self {
        Metrics {
            jobs_submitted: reg
                .counter("rlmul_serve_jobs_submitted_total", "Jobs accepted by POST /jobs."),
            jobs_done: reg.counter("rlmul_serve_jobs_done_total", "Jobs finished normally."),
            jobs_cancelled: reg
                .counter("rlmul_serve_jobs_cancelled_total", "Jobs reaching the Cancelled state."),
            jobs_failed: reg.counter("rlmul_serve_jobs_failed_total", "Jobs whose driver errored."),
            jobs_resumed: reg.counter(
                "rlmul_serve_jobs_resumed_total",
                "Running jobs re-adopted by a daemon restart.",
            ),
            queue_depth: reg.gauge("rlmul_serve_queue_depth", "Jobs currently queued."),
            http_requests: reg
                .counter("rlmul_serve_http_requests_total", "HTTP connections handled."),
            http_seconds: reg
                .histogram("rlmul_serve_http_seconds", "Wall time per handled connection."),
        }
    }
}

/// All shared daemon state; `Arc<Inner>` is held by every thread and
/// by the [`Server`] handle.
pub(crate) struct Inner {
    cfg: ServeConfig,
    /// The job table — lock class `serve.jobs`; see the module docs
    /// for the ordering against `serve.queue`.
    table: RwLock<BTreeMap<u64, JobEntry>>,
    queue: JobQueue,
    /// The cross-tenant shared evaluation cache (clones share one
    /// store).
    cache: EvalCache,
    next_id: AtomicU64,
    registry: Registry,
    shutting_down: AtomicBool,
    metrics: Metrics,
}

impl Inner {
    pub(crate) fn registry(&self) -> &Registry {
        &self.registry
    }

    pub(crate) fn is_shutting_down(&self) -> bool {
        self.shutting_down.load(Ordering::Relaxed)
    }

    /// Persists `record` through the atomic snapshot path. Called
    /// with the table lock held, so disk order equals transition
    /// order. A write failure is logged, never panicked — the
    /// in-memory state machine stays authoritative for this daemon's
    /// lifetime.
    fn persist(&self, record: &JobRecord) {
        let path = self.cfg.dir.join("jobs").join(format!("job-{:08}.ckpt", record.id));
        if let Err(e) = write_snapshot(path, JOB_RECORD_KIND, record) {
            eprintln!("rlmul-serve: persisting job {} failed: {e}", record.id);
        }
    }

    /// Persists a frozen trace next to its job record
    /// (`jobs/trace-<id>.ckpt`). Same atomic path, same
    /// called-under-the-table-lock discipline as [`Inner::persist`].
    fn persist_trace(&self, record: &TraceRecord) {
        let path = self.cfg.dir.join("jobs").join(format!("trace-{:08}.ckpt", record.job_id));
        if let Err(e) = write_snapshot(path, TRACE_RECORD_KIND, record) {
            eprintln!("rlmul-serve: persisting trace for job {} failed: {e}", record.job_id);
        }
    }

    /// Seals a job's trace at its terminal transition: records the
    /// final lifecycle event, closes the timeline (waking every live
    /// subscriber), freezes it into a [`TraceRecord`] and persists it
    /// durably. Also settles the per-tenant metric families. Called
    /// with the table lock held, right after the state transition
    /// persisted.
    fn finish_job(&self, entry: &mut JobEntry, kind: &str, detail: &str) {
        entry.trace.emit_forced(kind, detail);
        entry.trace.close();
        let frozen = TraceRecord::from_ctx(entry.record.id, &entry.trace);
        self.persist_trace(&frozen);
        entry.stored_trace = Some(frozen);
        let tenant = entry.record.spec.tenant.as_str();
        self.tenant_active(tenant).add(-1.0);
        self.tenant_terminal(tenant, entry.record.state.as_str()).inc();
    }

    /// Per-tenant gauge of jobs currently queued or running.
    fn tenant_active(&self, tenant: &str) -> Gauge {
        self.registry.labeled_gauge(
            "rlmul_serve_tenant_active_jobs",
            "Jobs currently queued or running, by tenant.",
            &[("tenant", tenant)],
        )
    }

    /// Per-tenant, per-terminal-state counter of transitions observed
    /// by this daemon process (recovery replays of already-terminal
    /// records do not count).
    fn tenant_terminal(&self, tenant: &str, state: &str) -> Counter {
        self.registry.labeled_counter(
            "rlmul_serve_tenant_jobs_terminal_total",
            "Terminal job transitions observed, by tenant and state.",
            &[("tenant", tenant), ("state", state)],
        )
    }

    /// Per-priority-class queue-wait histogram, observed at worker
    /// claim (submission or recovery requeue → claim).
    fn observe_queue_wait(&self, priority: u8, secs: f64) {
        self.registry
            .labeled_histogram(
                "rlmul_serve_queue_wait_seconds",
                "Queue wait from enqueue to worker claim, by priority class.",
                &[("priority", &priority.to_string())],
            )
            .observe(secs);
    }

    /// Accepts a job: assigns an id, persists the `Queued` record and
    /// enqueues it. Returns `(id, created)`; `created` is `false`
    /// when `(tenant, idempotency_key)` matched an existing job,
    /// which is returned instead of duplicated.
    ///
    /// # Errors
    ///
    /// Refused while the daemon is shutting down.
    pub(crate) fn submit(&self, spec: JobSpec) -> Result<(u64, bool), &'static str> {
        if self.is_shutting_down() {
            return Err("shutting down");
        }
        let mut table = self.table.write();
        if !spec.idempotency_key.is_empty() {
            if let Some(existing) = table.values().find(|e| {
                e.record.spec.tenant == spec.tenant
                    && e.record.spec.idempotency_key == spec.idempotency_key
            }) {
                return Ok((existing.record.id, false));
            }
        }
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let record = JobRecord::new(id, spec);
        self.persist(&record);
        let priority = record.spec.priority;
        let entry = JobEntry::new(record);
        entry.trace.emit_forced(
            "submitted",
            &format!("tenant={} priority={priority}", entry.record.spec.tenant),
        );
        entry.trace.emit_forced("queued", &format!("depth={}", self.queue.len() + 1));
        self.tenant_active(&entry.record.spec.tenant).add(1.0);
        table.insert(id, entry);
        self.queue.push(priority, id, id);
        self.metrics.jobs_submitted.inc();
        self.metrics.queue_depth.set(self.queue.len() as f64);
        Ok((id, true))
    }

    /// One job's record plus its live progress.
    pub(crate) fn snapshot_job(&self, id: u64) -> Option<(JobRecord, usize)> {
        let table = self.table.read();
        table.get(&id).map(|e| (e.record.clone(), e.progress()))
    }

    /// Every job's record plus live progress, in id order.
    pub(crate) fn list_jobs(&self) -> Vec<(JobRecord, usize)> {
        self.table.read().values().map(|e| (e.record.clone(), e.progress())).collect()
    }

    /// One job's trace as a frozen record: the durable store for
    /// terminal jobs, a live snapshot otherwise. `None` for unknown
    /// ids.
    pub(crate) fn trace_snapshot(&self, id: u64) -> Option<TraceRecord> {
        let table = self.table.read();
        let e = table.get(&id)?;
        Some(match &e.stored_trace {
            Some(stored) => stored.clone(),
            None => TraceRecord::from_ctx(id, &e.trace),
        })
    }

    /// Stream source for `GET /jobs/:id/events`: the live context
    /// (subscribable; closed-but-complete for jobs that finished in
    /// this process) plus the durable record for jobs recovered
    /// already-terminal, whose context is disabled. `None` for
    /// unknown ids.
    pub(crate) fn trace_stream(&self, id: u64) -> Option<(TraceCtx, Option<TraceRecord>)> {
        let table = self.table.read();
        let e = table.get(&id)?;
        Some((e.trace.clone(), e.stored_trace.clone()))
    }

    /// Cancels a job (see [`CancelOutcome`]). Queued jobs become
    /// terminal immediately; running jobs get their cooperative stop
    /// flag raised and wind down after the in-flight step.
    pub(crate) fn cancel(&self, id: u64) -> CancelOutcome {
        let mut table = self.table.write();
        let Some(entry) = table.get_mut(&id) else {
            return CancelOutcome::Unknown;
        };
        match entry.record.state {
            JobState::Queued => {
                // Either the queue still holds the id (plain case) or
                // a worker popped it and is blocked on the table lock
                // we hold — the Cancelled state makes its claim step
                // a no-op, so both races resolve to one winner.
                let _ = self.queue.remove(id);
                entry.cancelled.store(true, Ordering::Relaxed);
                entry.stop.store(true, Ordering::Relaxed);
                if entry.record.transition(JobState::Cancelled, false).is_err() {
                    return CancelOutcome::Terminal(entry.record.state);
                }
                self.persist(&entry.record);
                self.finish_job(entry, "cancelled", "while queued");
                self.metrics.jobs_cancelled.inc();
                self.metrics.queue_depth.set(self.queue.len() as f64);
                CancelOutcome::WhileQueued
            }
            JobState::Running => {
                entry.cancelled.store(true, Ordering::Relaxed);
                entry.stop.store(true, Ordering::Relaxed);
                entry.trace.emit_forced("cancel_requested", "cooperative stop raised");
                CancelOutcome::WhileRunning
            }
            terminal => CancelOutcome::Terminal(terminal),
        }
    }

    /// The worker loop body: claim, execute, finish.
    fn run_job(self: &Arc<Self>, id: u64) {
        // Claim: Queued → Running. A cancel that won the race leaves
        // the record terminal and the claim refuses.
        let (spec, stop, cancelled, progress, trace, waited) = {
            let mut table = self.table.write();
            let Some(entry) = table.get_mut(&id) else { return };
            if entry.record.transition(JobState::Running, false).is_err() {
                return;
            }
            self.persist(&entry.record);
            self.metrics.queue_depth.set(self.queue.len() as f64);
            let waited = entry.enqueued_at.elapsed().as_secs_f64();
            entry
                .trace
                .emit_forced("claimed", &format!("wait_ms={}", (waited * 1e3).round() as u64));
            (
                entry.record.spec.clone(),
                Arc::clone(&entry.stop),
                Arc::clone(&entry.cancelled),
                Arc::clone(&entry.progress),
                entry.trace.clone(),
                waited,
            )
        };
        self.observe_queue_wait(spec.priority, waited);

        let outcome = self.execute(id, &spec, &stop, &progress, &trace);

        let mut table = self.table.write();
        let Some(entry) = table.get_mut(&id) else { return };
        match outcome {
            Ok(out) => {
                let result = summarize(&out);
                if cancelled.load(Ordering::Relaxed) {
                    let detail = format!("steps_done={}", result.steps_done);
                    entry.record.result = Some(result);
                    if entry.record.transition(JobState::Cancelled, false).is_ok() {
                        self.metrics.jobs_cancelled.inc();
                        self.persist(&entry.record);
                        self.finish_job(entry, "cancelled", &detail);
                    }
                } else if self.is_shutting_down() {
                    // Drain stop, not user intent: leave the record
                    // `Running` on disk. The driver rolled its final
                    // snapshot on the stop flag; the next start takes
                    // the recovery edge and resumes. The open trace is
                    // in-memory only — the resumed run starts a fresh
                    // epoch.
                    entry.progress.store(result.steps_done, Ordering::Relaxed);
                } else {
                    let detail =
                        format!("best_cost={} steps_done={}", result.best_cost, result.steps_done);
                    entry.record.result = Some(result);
                    if entry.record.transition(JobState::Done, false).is_ok() {
                        self.metrics.jobs_done.inc();
                        self.persist(&entry.record);
                        self.finish_job(entry, "done", &detail);
                    }
                }
            }
            Err(err) => {
                entry.record.error = Some(err.to_string());
                if entry.record.transition(JobState::Failed, false).is_ok() {
                    self.metrics.jobs_failed.inc();
                    self.persist(&entry.record);
                    let detail = entry.record.error.clone().unwrap_or_default();
                    self.finish_job(entry, "failed", &detail);
                }
            }
        }
    }

    /// Runs the optimization for one claimed job, resuming from its
    /// last driver snapshot when one exists. Config mapping mirrors
    /// `rlmul train` so server runs reproduce CLI runs bit-for-bit.
    fn execute(
        &self,
        id: u64,
        spec: &JobSpec,
        stop: &Arc<AtomicBool>,
        progress: &Arc<AtomicUsize>,
        trace: &TraceCtx,
    ) -> Result<OptimizationOutcome, RlMulError> {
        let mut env_cfg = EnvConfig::new(spec.bits, spec.kind);
        env_cfg.weights = spec.pref.weights();
        let store =
            SnapshotStore::new(self.cfg.dir.join(format!("ckpt-{id:08}")), spec.method.as_str());
        let hooks = TrainHooks {
            store: Some(store.clone()),
            checkpoint_every: spec.ckpt_every,
            stop: Some(Arc::clone(stop)),
            progress: Some(Arc::clone(progress)),
            trace: trace.clone(),
            ..Default::default()
        };
        let cache = self.cache.clone();
        match spec.method {
            Method::Sa => {
                let cfg = SaConfig { steps: spec.steps, ..Default::default() };
                let resume = store.load_latest().ok();
                run_sa_with(&env_cfg, &cfg, spec.seed, cache, &hooks, resume)
            }
            Method::Dqn => {
                let cfg = DqnConfig {
                    steps: spec.steps,
                    warmup: (spec.steps / 5).max(4),
                    seed: spec.seed,
                    ..Default::default()
                };
                match store.load_latest().ok() {
                    Some(snap) => resume_dqn_cached(&env_cfg, &cfg, snap, cache, &hooks),
                    None => {
                        let mut env = MulEnv::with_cache(env_cfg.clone(), cache)?;
                        train_dqn_with(&mut env, &cfg, &hooks, None)
                    }
                }
            }
            Method::A2c => {
                let cfg = A2cConfig {
                    steps: (spec.steps / 4).max(2),
                    n_envs: 4,
                    seed: spec.seed,
                    ..Default::default()
                };
                let resume = store.load_latest().ok();
                train_a2c_with(&env_cfg, &cfg, cache, &hooks, resume)
            }
        }
    }
}

/// Collapses a driver outcome into the persisted result summary.
fn summarize(out: &OptimizationOutcome) -> JobResult {
    JobResult {
        best_cost: out.best_cost,
        steps_done: out.trajectory.len(),
        states_visited: out.states_visited,
        synth_runs: out.synth_runs,
        synthesis_calls: out.pipeline.synthesis_calls,
        cache_hits: out.pipeline.cache_hits,
        cache_misses: out.pipeline.cache_misses,
    }
}

/// Handle to a running daemon. [`Server::shutdown`] (or drop) drains
/// it gracefully: no new jobs, queued jobs stay persisted for the
/// next start, running jobs checkpoint and stay `Running` on disk.
pub struct Server {
    inner: Arc<Inner>,
    local: SocketAddr,
    accept_stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server").field("local", &self.local).finish_non_exhaustive()
    }
}

impl Server {
    /// Starts the daemon: recovers persisted jobs from `cfg.dir`,
    /// binds `cfg.addr`, writes the bound address to
    /// `<dir>/serve.addr`, and spawns the accept, HTTP and job worker
    /// threads.
    ///
    /// # Errors
    ///
    /// Bind and state-directory I/O failures.
    pub fn start(cfg: ServeConfig) -> io::Result<Server> {
        let workers = cfg.workers.max(1);
        let http_workers = cfg.http_workers.max(1);
        std::fs::create_dir_all(cfg.dir.join("jobs"))?;
        let listener = TcpListener::bind(&cfg.addr)?;
        let local = listener.local_addr()?;
        std::fs::write(cfg.dir.join("serve.addr"), local.to_string())?;

        let registry = Registry::new();
        let metrics = Metrics::new(&registry);
        let inner = Arc::new(Inner {
            table: RwLock::new("serve.jobs", BTreeMap::new()),
            queue: JobQueue::new(),
            cache: EvalCache::new(),
            next_id: AtomicU64::new(1),
            registry,
            shutting_down: AtomicBool::new(false),
            metrics,
            cfg,
        });
        inner.recover()?;

        let mut threads = Vec::new();

        // HTTP: accept thread feeding a facade channel drained by the
        // HTTP worker pool. Dropping the sender (accept thread exit)
        // ends the workers via RecvError.
        let (conn_tx, conn_rx) = channel::<TcpStream>("serve.http");
        let conn_rx = Arc::new(Mutex::new("serve.http-recv", conn_rx));
        let handler = crate::api::router(Arc::clone(&inner));
        for n in 0..http_workers {
            let rx = Arc::clone(&conn_rx);
            let registry = inner.registry.clone();
            let handler = handler.clone();
            let http_inner = Arc::clone(&inner);
            threads.push(spawn_named(&format!("serve-http-{n}"), move || {
                http_worker(&rx, &registry, &handler, &http_inner)
            }));
        }
        let accept_stop = Arc::new(AtomicBool::new(false));
        {
            let stop = Arc::clone(&accept_stop);
            threads.push(spawn_named("serve-accept", move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::Relaxed) {
                        return; // conn_tx drops; HTTP workers drain out
                    }
                    let Ok(stream) = conn else { continue };
                    if conn_tx.send(stream).is_err() {
                        return;
                    }
                }
            }));
        }

        for n in 0..workers {
            let worker_inner = Arc::clone(&inner);
            threads.push(spawn_named(&format!("serve-worker-{n}"), move || {
                while let Some(id) = worker_inner.queue.pop() {
                    worker_inner.run_job(id);
                }
            }));
        }

        Ok(Server { inner, local, accept_stop, threads })
    }

    /// The bound listen address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The daemon's metrics registry (exposed at `GET /metrics`).
    pub fn registry(&self) -> Registry {
        self.inner.registry.clone()
    }

    /// Drains the daemon: refuses new submissions, closes the queue
    /// (queued jobs stay persisted as `Queued`), raises the stop flag
    /// of every running job (they checkpoint and stay `Running` on
    /// disk for the next start), then joins every thread.
    pub fn shutdown(mut self) {
        self.drain();
    }

    fn drain(&mut self) {
        if self.threads.is_empty() {
            return;
        }
        self.inner.shutting_down.store(true, Ordering::Relaxed);
        self.inner.queue.close();
        {
            let table = self.inner.table.read();
            for entry in table.values() {
                if entry.record.state == JobState::Running {
                    entry.stop.store(true, Ordering::Relaxed);
                }
            }
        }
        self.accept_stop.store(true, Ordering::Relaxed);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.local);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

impl Inner {
    /// Replays `jobs/` into the table: terminal records become
    /// history, `Queued` records re-enter the queue, `Running`
    /// records take the recovery edge (`Running → Queued`, bumping
    /// `resumes`) and re-enter the queue to be resumed from their
    /// last driver snapshot.
    fn recover(self: &Arc<Self>) -> io::Result<()> {
        let jobs_dir = self.cfg.dir.join("jobs");
        let mut records: Vec<JobRecord> = Vec::new();
        for entry in std::fs::read_dir(&jobs_dir)? {
            let path = entry?.path();
            if path.extension().is_none_or(|e| e != "ckpt") {
                continue;
            }
            // Trace records share the directory under `trace-*.ckpt`;
            // they are loaded per terminal job below, not replayed.
            if path.file_name().is_some_and(|n| n.to_string_lossy().starts_with("trace-")) {
                continue;
            }
            match read_snapshot::<JobRecord, _>(&path, JOB_RECORD_KIND) {
                Ok(record) => records.push(record),
                Err(e) => {
                    // A torn tmp file can't exist (atomic rename), but
                    // a foreign or corrupted file can; skip it loudly.
                    eprintln!("rlmul-serve: skipping unreadable {}: {e}", path.display());
                }
            }
        }
        records.sort_by_key(|r| r.id);
        let mut table = self.table.write();
        let mut max_id = 0;
        for mut record in records {
            max_id = max_id.max(record.id);
            let id = record.id;
            let requeue = match record.state {
                JobState::Queued => true,
                JobState::Running => {
                    // The previous daemon died (or drained) with this
                    // job in flight: re-adopt it via the recovery
                    // edge. `Running → Queued` with the recovery flag
                    // is always legal, so the error arm is dead; it
                    // is kept error-shaped to hold the no-panic
                    // contract of this file.
                    match record.transition(JobState::Queued, true) {
                        Ok(()) => {
                            record.resumes += 1;
                            self.metrics.jobs_resumed.inc();
                            self.persist(&record);
                            true
                        }
                        Err(e) => {
                            eprintln!("rlmul-serve: cannot re-adopt job {}: {e}", record.id);
                            false
                        }
                    }
                }
                _ => false,
            };
            let priority = record.spec.priority;
            let mut entry = JobEntry::new(record);
            if entry.record.state.is_terminal() {
                // Re-attach the durable trace; a missing or unreadable
                // file leaves the timeline empty rather than failing
                // recovery.
                let trace_path = jobs_dir.join(format!("trace-{id:08}.ckpt"));
                entry.stored_trace =
                    read_snapshot::<TraceRecord, _>(&trace_path, TRACE_RECORD_KIND).ok();
            } else {
                self.tenant_active(&entry.record.spec.tenant).add(1.0);
                entry.trace.emit_forced(
                    "recovered",
                    &format!("epoch={} state=queued", entry.record.resumes),
                );
            }
            table.insert(id, entry);
            if requeue {
                self.queue.push(priority, id, id);
            }
        }
        self.metrics.queue_depth.set(self.queue.len() as f64);
        self.next_id.store(max_id + 1, Ordering::Relaxed);
        Ok(())
    }
}

/// One HTTP worker: drains the connection channel until the accept
/// thread drops the sender.
fn http_worker(
    rx: &Mutex<Receiver<TcpStream>>,
    registry: &Registry,
    handler: &rlmul_obs::Handler,
    inner: &Inner,
) {
    loop {
        // Holding the receiver lock while blocked in recv serializes
        // the *waiting*, not the handling: the lock drops before the
        // connection is served, so another worker picks up the next
        // socket immediately.
        let stream = match rx.lock().recv() {
            Ok(s) => s,
            Err(_) => return,
        };
        let started = Instant::now();
        // I/O errors mean the client went away; keep serving.
        let _ = handle_connection(stream, registry, handler);
        inner.metrics.http_requests.inc();
        inner.metrics.http_seconds.observe(started.elapsed().as_secs_f64());
    }
}
