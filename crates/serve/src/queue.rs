//! The FIFO+priority job queue between the HTTP front end and the
//! worker pool.
//!
//! Built on the `rlmul-check` sync facade (one mutex class
//! `serve.queue` plus one condvar), so every push/pop handoff is
//! lockdep-tracked in production and enumerable by the loom-lite
//! model checker — `tests/model_check.rs` checks exactly this type.
//!
//! Ordering: higher [`priority`](crate::JobSpec::priority) first;
//! within a priority class, lower sequence number (submission order)
//! first. Cancellation of a queued job is [`JobQueue::remove`]; the
//! pop/remove race resolves to exactly one winner because both run
//! under the queue mutex.

use rlmul_check::sync::{Condvar, Mutex};
use std::collections::BinaryHeap;

/// One queued entry, ordered for the max-heap: priority descending,
/// then sequence ascending.
#[derive(Debug, PartialEq, Eq)]
struct Entry {
    priority: u8,
    seq: u64,
    id: u64,
}

impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: larger priority wins; ties go to the *smaller*
        // sequence number (earlier submission), hence the reversal.
        self.priority.cmp(&other.priority).then(other.seq.cmp(&self.seq))
    }
}

impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[derive(Debug)]
struct QueueState {
    heap: BinaryHeap<Entry>,
    closed: bool,
}

/// A blocking FIFO+priority queue of job ids (see the module docs).
#[derive(Debug)]
pub struct JobQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
}

impl Default for JobQueue {
    fn default() -> Self {
        JobQueue::new()
    }
}

impl JobQueue {
    /// An empty, open queue.
    pub fn new() -> Self {
        JobQueue {
            state: Mutex::new("serve.queue", QueueState { heap: BinaryHeap::new(), closed: false }),
            cv: Condvar::new("serve.queue"),
        }
    }

    /// Enqueues job `id` with `priority`; `seq` breaks priority ties
    /// FIFO (the server passes the job id, which is submission-
    /// ordered). Returns `false` — and drops the entry — once the
    /// queue is closed.
    pub fn push(&self, priority: u8, seq: u64, id: u64) -> bool {
        {
            let mut state = self.state.lock();
            if state.closed {
                return false;
            }
            state.heap.push(Entry { priority, seq, id });
        }
        self.cv.notify_one();
        true
    }

    /// Dequeues the highest-priority (then oldest) id, blocking while
    /// the queue is empty. Returns `None` once the queue is closed —
    /// immediately, even with entries still queued, so a draining
    /// daemon stops handing out work while the persisted `Queued`
    /// records wait for the next start.
    pub fn pop(&self) -> Option<u64> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return None;
            }
            if let Some(entry) = state.heap.pop() {
                return Some(entry.id);
            }
            state = self.cv.wait(state);
        }
    }

    /// Removes a queued id (cancel-while-queued). Returns whether the
    /// id was still queued — `false` means a worker already popped it
    /// (the caller must cancel the *running* job instead). Exactly one
    /// of `pop`/`remove` wins any race on the same id.
    pub fn remove(&self, id: u64) -> bool {
        let mut state = self.state.lock();
        let before = state.heap.len();
        state.heap.retain(|e| e.id != id);
        state.heap.len() < before
    }

    /// Entries currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().heap.len()
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: every blocked and future [`JobQueue::pop`]
    /// returns `None`, every future [`JobQueue::push`] is refused.
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_check::sync::spawn_named;
    use std::sync::Arc;

    #[test]
    fn orders_by_priority_then_fifo() {
        let q = JobQueue::new();
        assert!(q.push(0, 1, 1));
        assert!(q.push(2, 2, 2));
        assert!(q.push(2, 3, 3));
        assert!(q.push(1, 4, 4));
        let order: Vec<u64> = (0..4).map(|_| q.pop().expect("queued")).collect();
        assert_eq!(order, vec![2, 3, 4, 1]);
    }

    #[test]
    fn remove_wins_only_while_queued() {
        let q = JobQueue::new();
        q.push(0, 1, 1);
        assert!(q.remove(1), "still queued");
        assert!(!q.remove(1), "already removed");
        q.push(0, 2, 2);
        assert_eq!(q.pop(), Some(2));
        assert!(!q.remove(2), "already popped");
    }

    #[test]
    fn close_releases_blocked_poppers_and_refuses_pushes() {
        let q = Arc::new(JobQueue::new());
        let q2 = Arc::clone(&q);
        let h = spawn_named("popper", move || q2.pop());
        // The popper may or may not have blocked yet; close must
        // release it either way.
        q.close();
        assert_eq!(h.join().expect("popper"), None);
        assert!(!q.push(0, 1, 9), "closed queue refuses work");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_with_backlog_still_returns_none() {
        let q = JobQueue::new();
        q.push(0, 1, 1);
        q.close();
        assert_eq!(q.pop(), None, "a draining daemon hands out no more work");
        assert_eq!(q.len(), 1, "the backlog stays for the persisted records to cover");
    }
}
