//! The HTTP API of the job server. Every route, status code and
//! example body is documented in DESIGN.md §16; this module is the
//! implementation, one function per route family.
//!
//! Routing contract:
//!
//! | Route                    | Method      | Success | Errors              |
//! |--------------------------|-------------|---------|---------------------|
//! | `/`                      | GET         | 200     | 405                 |
//! | `/healthz`               | GET         | 200     | 405                 |
//! | `/metrics`               | GET         | 200     | 405                 |
//! | `/jobs`                  | POST        | 201/200 | 400, 405, 503       |
//! | `/jobs`                  | GET         | 200     | 405                 |
//! | `/jobs/<id>`             | GET         | 200     | 400, 404, 405       |
//! | `/jobs/<id>`             | DELETE      | 200/202 | 400, 404, 409       |
//! | `/jobs/<id>/result`      | GET         | 200     | 400, 404, 409       |
//! | `/jobs/<id>/cancel`      | POST        | 200/202 | 400, 404, 409       |
//!
//! This file is on the request path and therefore panic-free (the
//! repo's `panic-path` source lint enforces it); anything unexpected
//! degrades to a 4xx/5xx answer, never a dead serving thread.

use crate::job::{JobSpec, JobState};
use crate::json::{json_array, parse_object, JsonBuilder};
use crate::server::{CancelOutcome, Inner};
use rlmul_obs::{render_prometheus, Handler, HttpRequest, HttpResponse};
use std::sync::Arc;

/// Builds the daemon's request handler over the shared state.
pub(crate) fn router(inner: Arc<Inner>) -> Handler {
    Arc::new(move |req| route(&inner, req))
}

fn route(inner: &Inner, req: &HttpRequest) -> HttpResponse {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => index(),
        ("GET", ["healthz"]) => healthz(inner),
        ("GET", ["metrics"]) => HttpResponse {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: render_prometheus(inner.registry()),
        },
        ("POST", ["jobs"]) => submit(inner, &req.body),
        ("GET", ["jobs"]) => list(inner),
        ("GET", ["jobs", id]) => with_id(id, |id| status(inner, id)),
        ("DELETE", ["jobs", id]) => with_id(id, |id| cancel(inner, id)),
        ("GET", ["jobs", id, "result"]) => with_id(id, |id| result(inner, id)),
        ("POST", ["jobs", id, "cancel"]) => with_id(id, |id| cancel(inner, id)),
        ("GET" | "POST" | "DELETE", _) => error("404 Not Found", "no such route"),
        _ => error("405 Method Not Allowed", "unsupported method"),
    }
}

/// Uniform error body: `{"error": "..."}`.
fn error(status: &'static str, message: &str) -> HttpResponse {
    HttpResponse::json(status, JsonBuilder::new().str("error", message).build())
}

/// Parses a path id segment, answering 400 for non-numeric ids.
fn with_id(raw: &str, f: impl FnOnce(u64) -> HttpResponse) -> HttpResponse {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => error("400 Bad Request", &format!("job id `{raw}` is not a number")),
    }
}

/// `GET /` — service index.
fn index() -> HttpResponse {
    let routes = [
        "GET /healthz",
        "GET /metrics",
        "POST /jobs",
        "GET /jobs",
        "GET /jobs/<id>",
        "GET /jobs/<id>/result",
        "POST /jobs/<id>/cancel",
        "DELETE /jobs/<id>",
    ];
    let rendered: Vec<String> =
        routes.iter().map(|r| JsonBuilder::new().str("route", r).build()).collect();
    HttpResponse::json(
        "200 OK",
        JsonBuilder::new()
            .str("service", "rlmul-serve")
            .raw("routes", &json_array(&rendered))
            .build(),
    )
}

/// `GET /healthz` — liveness plus coarse load.
fn healthz(inner: &Inner) -> HttpResponse {
    let jobs = inner.list_jobs();
    let running = jobs.iter().filter(|(r, _)| r.state == JobState::Running).count();
    let queued = jobs.iter().filter(|(r, _)| r.state == JobState::Queued).count();
    HttpResponse::json(
        "200 OK",
        JsonBuilder::new()
            .bool("ok", true)
            .bool("shutting_down", inner.is_shutting_down())
            .u64("jobs", jobs.len() as u64)
            .u64("running", running as u64)
            .u64("queued", queued as u64)
            .build(),
    )
}

/// `POST /jobs` — submit. 201 on creation, 200 when the idempotency
/// key matched an existing job, 400 on a bad body, 503 while
/// draining.
fn submit(inner: &Inner, body: &[u8]) -> HttpResponse {
    let parsed = match parse_object(body) {
        Ok(o) => o,
        Err(e) => return error("400 Bad Request", &format!("bad JSON body: {e}")),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return error("400 Bad Request", &e),
    };
    match inner.submit(spec) {
        Ok((id, created)) => {
            let status = if created { "201 Created" } else { "200 OK" };
            match inner.snapshot_job(id) {
                Some((record, progress)) => HttpResponse::json(status, record.render(progress)),
                None => error("500 Internal Server Error", "job vanished after submit"),
            }
        }
        Err(reason) => error("503 Service Unavailable", reason),
    }
}

/// `GET /jobs` — every job, id-ordered.
fn list(inner: &Inner) -> HttpResponse {
    let rendered: Vec<String> =
        inner.list_jobs().iter().map(|(record, progress)| record.render(*progress)).collect();
    HttpResponse::json(
        "200 OK",
        JsonBuilder::new()
            .u64("count", rendered.len() as u64)
            .raw("jobs", &json_array(&rendered))
            .build(),
    )
}

/// `GET /jobs/<id>` — one job's full status.
fn status(inner: &Inner, id: u64) -> HttpResponse {
    match inner.snapshot_job(id) {
        Some((record, progress)) => HttpResponse::json("200 OK", record.render(progress)),
        None => error("404 Not Found", &format!("no job {id}")),
    }
}

/// `GET /jobs/<id>/result` — the result summary, only once `Done`
/// (409 with the current state otherwise, so pollers can
/// distinguish "not yet" from "never").
fn result(inner: &Inner, id: u64) -> HttpResponse {
    let Some((record, _)) = inner.snapshot_job(id) else {
        return error("404 Not Found", &format!("no job {id}"));
    };
    match (&record.state, &record.result) {
        (JobState::Done, Some(r)) => HttpResponse::json(
            "200 OK",
            JsonBuilder::new().u64("id", id).raw("result", &r.render()).build(),
        ),
        _ => error(
            "409 Conflict",
            &format!("job {id} is {}, result requires done", record.state.as_str()),
        ),
    }
}

/// `POST /jobs/<id>/cancel` and `DELETE /jobs/<id>` — cancellation.
/// 200 when the job was still queued (now terminal), 202 when the
/// running job's stop flag was raised (terminal state follows), 409
/// when already terminal.
fn cancel(inner: &Inner, id: u64) -> HttpResponse {
    match inner.cancel(id) {
        CancelOutcome::WhileQueued => answer_cancel(inner, id, "200 OK"),
        CancelOutcome::WhileRunning => answer_cancel(inner, id, "202 Accepted"),
        CancelOutcome::Terminal(state) => {
            error("409 Conflict", &format!("job {id} is already {}", state.as_str()))
        }
        CancelOutcome::Unknown => error("404 Not Found", &format!("no job {id}")),
    }
}

fn answer_cancel(inner: &Inner, id: u64, status: &'static str) -> HttpResponse {
    match inner.snapshot_job(id) {
        Some((record, progress)) => HttpResponse::json(status, record.render(progress)),
        None => error("404 Not Found", &format!("no job {id}")),
    }
}
