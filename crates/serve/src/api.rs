//! The HTTP API of the job server. Every route, status code and
//! example body is documented in DESIGN.md §16; this module is the
//! implementation, one function per route family.
//!
//! Routing contract:
//!
//! | Route                    | Method      | Success | Errors              |
//! |--------------------------|-------------|---------|---------------------|
//! | `/`                      | GET         | 200     | 405                 |
//! | `/healthz`               | GET         | 200     | 405                 |
//! | `/metrics`               | GET         | 200     | 405                 |
//! | `/jobs`                  | POST        | 201/200 | 400, 405, 503       |
//! | `/jobs`                  | GET         | 200     | 405                 |
//! | `/jobs/<id>`             | GET         | 200     | 400, 404, 405       |
//! | `/jobs/<id>`             | DELETE      | 200/202 | 400, 404, 409       |
//! | `/jobs/<id>/result`      | GET         | 200     | 400, 404, 409       |
//! | `/jobs/<id>/cancel`      | POST        | 200/202 | 400, 404, 409       |
//! | `/jobs/<id>/trace`       | GET         | 200     | 400, 404            |
//! | `/jobs/<id>/events`      | GET (chunked stream) | 200 | 400, 404       |
//!
//! This file is on the request path and therefore panic-free (the
//! repo's `panic-path` source lint enforces it); anything unexpected
//! degrades to a 4xx/5xx answer, never a dead serving thread.

use crate::job::{JobSpec, JobState};
use crate::json::{json_array, parse_object, JsonBuilder};
use crate::server::{CancelOutcome, Inner};
use crate::trace::render_event;
use rlmul_obs::{render_prometheus, Handler, HttpRequest, HttpResponse, StreamBody};
use std::io::Write;
use std::sync::Arc;
use std::time::Duration;

/// Builds the daemon's request handler over the shared state.
pub(crate) fn router(inner: Arc<Inner>) -> Handler {
    Arc::new(move |req| route(&inner, req))
}

fn route(inner: &Arc<Inner>, req: &HttpRequest) -> HttpResponse {
    let path = req.path.split('?').next().unwrap_or("");
    let segments: Vec<&str> = path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", []) => index(),
        ("GET", ["healthz"]) => healthz(inner),
        ("GET", ["metrics"]) => HttpResponse {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            body: render_prometheus(inner.registry()),
            stream: None,
        },
        ("POST", ["jobs"]) => submit(inner, &req.body),
        ("GET", ["jobs"]) => list(inner),
        ("GET", ["jobs", id]) => with_id(id, |id| status(inner, id)),
        ("DELETE", ["jobs", id]) => with_id(id, |id| cancel(inner, id)),
        ("GET", ["jobs", id, "result"]) => with_id(id, |id| result(inner, id)),
        ("POST", ["jobs", id, "cancel"]) => with_id(id, |id| cancel(inner, id)),
        ("GET", ["jobs", id, "trace"]) => with_id(id, |id| trace(inner, id)),
        ("GET", ["jobs", id, "events"]) => with_id(id, |id| events(inner, id)),
        ("GET" | "POST" | "DELETE", _) => error("404 Not Found", "no such route"),
        _ => error("405 Method Not Allowed", "unsupported method"),
    }
}

/// Uniform error body: `{"error": "..."}`.
fn error(status: &'static str, message: &str) -> HttpResponse {
    HttpResponse::json(status, JsonBuilder::new().str("error", message).build())
}

/// Parses a path id segment, answering 400 for non-numeric ids.
fn with_id(raw: &str, f: impl FnOnce(u64) -> HttpResponse) -> HttpResponse {
    match raw.parse::<u64>() {
        Ok(id) => f(id),
        Err(_) => error("400 Bad Request", &format!("job id `{raw}` is not a number")),
    }
}

/// `GET /` — service index.
fn index() -> HttpResponse {
    let routes = [
        "GET /healthz",
        "GET /metrics",
        "POST /jobs",
        "GET /jobs",
        "GET /jobs/<id>",
        "GET /jobs/<id>/result",
        "GET /jobs/<id>/trace",
        "GET /jobs/<id>/events",
        "POST /jobs/<id>/cancel",
        "DELETE /jobs/<id>",
    ];
    let rendered: Vec<String> =
        routes.iter().map(|r| JsonBuilder::new().str("route", r).build()).collect();
    HttpResponse::json(
        "200 OK",
        JsonBuilder::new()
            .str("service", "rlmul-serve")
            .raw("routes", &json_array(&rendered))
            .build(),
    )
}

/// `GET /healthz` — liveness plus coarse load.
fn healthz(inner: &Inner) -> HttpResponse {
    let jobs = inner.list_jobs();
    let running = jobs.iter().filter(|(r, _)| r.state == JobState::Running).count();
    let queued = jobs.iter().filter(|(r, _)| r.state == JobState::Queued).count();
    HttpResponse::json(
        "200 OK",
        JsonBuilder::new()
            .bool("ok", true)
            .bool("shutting_down", inner.is_shutting_down())
            .u64("jobs", jobs.len() as u64)
            .u64("running", running as u64)
            .u64("queued", queued as u64)
            .build(),
    )
}

/// `POST /jobs` — submit. 201 on creation, 200 when the idempotency
/// key matched an existing job, 400 on a bad body, 503 while
/// draining.
fn submit(inner: &Inner, body: &[u8]) -> HttpResponse {
    let parsed = match parse_object(body) {
        Ok(o) => o,
        Err(e) => return error("400 Bad Request", &format!("bad JSON body: {e}")),
    };
    let spec = match JobSpec::from_json(&parsed) {
        Ok(s) => s,
        Err(e) => return error("400 Bad Request", &e),
    };
    match inner.submit(spec) {
        Ok((id, created)) => {
            let status = if created { "201 Created" } else { "200 OK" };
            match inner.snapshot_job(id) {
                Some((record, progress)) => HttpResponse::json(status, record.render(progress)),
                None => error("500 Internal Server Error", "job vanished after submit"),
            }
        }
        Err(reason) => error("503 Service Unavailable", reason),
    }
}

/// `GET /jobs` — every job, id-ordered.
fn list(inner: &Inner) -> HttpResponse {
    let rendered: Vec<String> =
        inner.list_jobs().iter().map(|(record, progress)| record.render(*progress)).collect();
    HttpResponse::json(
        "200 OK",
        JsonBuilder::new()
            .u64("count", rendered.len() as u64)
            .raw("jobs", &json_array(&rendered))
            .build(),
    )
}

/// `GET /jobs/<id>` — one job's full status.
fn status(inner: &Inner, id: u64) -> HttpResponse {
    match inner.snapshot_job(id) {
        Some((record, progress)) => HttpResponse::json("200 OK", record.render(progress)),
        None => error("404 Not Found", &format!("no job {id}")),
    }
}

/// `GET /jobs/<id>/result` — the result summary, only once `Done`
/// (409 with the current state otherwise, so pollers can
/// distinguish "not yet" from "never").
fn result(inner: &Inner, id: u64) -> HttpResponse {
    let Some((record, _)) = inner.snapshot_job(id) else {
        return error("404 Not Found", &format!("no job {id}"));
    };
    match (&record.state, &record.result) {
        (JobState::Done, Some(r)) => HttpResponse::json(
            "200 OK",
            JsonBuilder::new().u64("id", id).raw("result", &r.render()).build(),
        ),
        _ => error(
            "409 Conflict",
            &format!("job {id} is {}, result requires done", record.state.as_str()),
        ),
    }
}

/// `GET /jobs/<id>/trace` — the job's full structured timeline: the
/// durable record for terminal jobs, a live snapshot otherwise. Each
/// element of `events` is byte-identical to the corresponding
/// `/events` stream line.
fn trace(inner: &Inner, id: u64) -> HttpResponse {
    match inner.trace_snapshot(id) {
        Some(record) => HttpResponse::json("200 OK", record.render()),
        None => error("404 Not Found", &format!("no job {id}")),
    }
}

/// `GET /jobs/<id>/events` — the job's event timeline as a chunked
/// live stream, one JSON object per line. Events already recorded
/// arrive immediately; the stream then follows the job until its
/// trace closes at the terminal transition (or the daemon drains).
/// For jobs recovered already-terminal the durable trace streams in
/// full and the stream ends.
fn events(inner: &Arc<Inner>, id: u64) -> HttpResponse {
    let Some((ctx, stored)) = inner.trace_stream(id) else {
        return error("404 Not Found", &format!("no job {id}"));
    };
    let shutdown_probe = Arc::clone(inner);
    let stream: StreamBody = Arc::new(move |w: &mut dyn Write| {
        if let Some(record) = &stored {
            for e in &record.events {
                w.write_all(render_event(&record.trace_id, e).as_bytes())?;
                w.write_all(b"\n")?;
            }
            return Ok(());
        }
        let trace_id = ctx.trace_id().unwrap_or_default().to_string();
        let mut from = 0u64;
        loop {
            // The wait is bounded so a drain (which leaves running
            // jobs' traces open for the next daemon) still ends the
            // stream promptly.
            let Some((batch, closed)) = ctx.events_since(from, Duration::from_millis(500)) else {
                return Ok(()); // disabled context: nothing to stream
            };
            if let Some(last) = batch.last() {
                from = last.seq + 1;
            }
            for e in &batch {
                w.write_all(render_event(&trace_id, e).as_bytes())?;
                w.write_all(b"\n")?;
            }
            if batch.is_empty() && (closed || shutdown_probe.is_shutting_down()) {
                return Ok(());
            }
            w.flush()?;
        }
    });
    HttpResponse::streaming("200 OK", "application/jsonl", stream)
}

/// `POST /jobs/<id>/cancel` and `DELETE /jobs/<id>` — cancellation.
/// 200 when the job was still queued (now terminal), 202 when the
/// running job's stop flag was raised (terminal state follows), 409
/// when already terminal.
fn cancel(inner: &Inner, id: u64) -> HttpResponse {
    match inner.cancel(id) {
        CancelOutcome::WhileQueued => answer_cancel(inner, id, "200 OK"),
        CancelOutcome::WhileRunning => answer_cancel(inner, id, "202 Accepted"),
        CancelOutcome::Terminal(state) => {
            error("409 Conflict", &format!("job {id} is already {}", state.as_str()))
        }
        CancelOutcome::Unknown => error("404 Not Found", &format!("no job {id}")),
    }
}

fn answer_cancel(inner: &Inner, id: u64, status: &'static str) -> HttpResponse {
    match inner.snapshot_job(id) {
        Some((record, progress)) => HttpResponse::json(status, record.render(progress)),
        None => error("404 Not Found", &format!("no job {id}")),
    }
}
