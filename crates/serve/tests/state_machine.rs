//! End-to-end lifecycle tests of the job server over the real wire
//! protocol: every state-machine edge, idempotent re-submission, the
//! two cancellation shapes, the HTTP error contract, and clean-
//! restart recovery from the persisted job records.

use rlmul_serve::loadtest::http_call;
use rlmul_serve::{JobState, ServeConfig, Server};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlmul-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(dir: &Path, workers: usize) -> (Server, String) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.to_path_buf(),
        workers,
        http_workers: 2,
    })
    .expect("start server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn field_u64(body: &str, key: &str) -> Option<u64> {
    let tagged = format!("\"{key}\":");
    let rest = &body[body.find(&tagged)? + tagged.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

fn field_str<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let tagged = format!("\"{key}\":\"");
    let rest = &body[body.find(&tagged)? + tagged.len()..];
    Some(&rest[..rest.find('"')?])
}

fn submit(addr: &str, body: &str) -> (u16, u64, String) {
    let (code, payload) = http_call(addr, "POST", "/jobs", body).expect("submit");
    let id = field_u64(&payload, "id").unwrap_or(0);
    (code, id, payload)
}

fn wait_for_state(addr: &str, id: u64, want: &str, secs: u64) -> String {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let (code, payload) =
            http_call(addr, "GET", &format!("/jobs/{id}"), "").expect("status poll");
        assert_eq!(code, 200, "{payload}");
        if field_str(&payload, "state") == Some(want) {
            return payload;
        }
        assert!(Instant::now() < deadline, "job {id} never reached `{want}`; last: {payload}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn submit_runs_to_done_and_serves_the_result() {
    let dir = tmpdir("done");
    let (server, addr) = start(&dir, 2);

    // Result before the job exists: 404.
    let (code, _) = http_call(&addr, "GET", "/jobs/1/result", "").unwrap();
    assert_eq!(code, 404);

    let (code, id, payload) =
        submit(&addr, r#"{"bits":4,"method":"sa","steps":3,"seed":5,"tenant":"t1"}"#);
    assert_eq!(code, 201, "{payload}");
    assert!(id > 0);
    // The response snapshots the record *after* enqueueing, so a fast
    // worker may already have claimed (or even finished) the job.
    let state = field_str(&payload, "state").expect("state field");
    assert!(["queued", "running", "done"].contains(&state), "{payload}");
    assert_eq!(field_str(&payload, "tenant"), Some("t1"), "{payload}");

    let done = wait_for_state(&addr, id, "done", 120);
    assert_eq!(field_u64(&done, "resumes"), Some(0));
    assert!(done.contains("\"result\":{"), "{done}");
    assert_eq!(field_u64(&done, "steps_done"), Some(3), "{done}");

    let (code, result) = http_call(&addr, "GET", &format!("/jobs/{id}/result"), "").unwrap();
    assert_eq!(code, 200, "{result}");
    assert!(result.contains("\"best_cost\":"), "{result}");
    assert!(field_u64(&result, "synthesis_calls").is_some(), "{result}");

    // Cancelling a terminal job: 409.
    let (code, conflict) = http_call(&addr, "POST", &format!("/jobs/{id}/cancel"), "").unwrap();
    assert_eq!(code, 409, "{conflict}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn duplicate_submission_is_idempotent() {
    let dir = tmpdir("idem");
    let (server, addr) = start(&dir, 1);
    let body = r#"{"bits":4,"steps":2,"tenant":"acme","idempotency_key":"run-42"}"#;
    let (code_a, id_a, _) = submit(&addr, body);
    let (code_b, id_b, _) = submit(&addr, body);
    assert_eq!(code_a, 201, "first submission creates");
    assert_eq!(code_b, 200, "duplicate returns the existing job");
    assert_eq!(id_a, id_b);
    // A different tenant with the same key is a different job.
    let other = r#"{"bits":4,"steps":2,"tenant":"umbrella","idempotency_key":"run-42"}"#;
    let (code_c, id_c, _) = submit(&addr, other);
    assert_eq!(code_c, 201);
    assert_ne!(id_c, id_a, "idempotency keys are tenant-scoped");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_while_queued_is_immediate_and_never_runs() {
    let dir = tmpdir("cancel-q");
    // One worker, so a second submission reliably waits in the queue
    // behind the first.
    let (server, addr) = start(&dir, 1);
    let (_, busy, _) = submit(&addr, r#"{"bits":4,"steps":40,"seed":1}"#);
    let (_, queued, _) = submit(&addr, r#"{"bits":4,"steps":40,"seed":2}"#);
    wait_for_state(&addr, busy, "running", 60);

    let (code, payload) = http_call(&addr, "DELETE", &format!("/jobs/{queued}"), "").unwrap();
    assert_eq!(code, 200, "queued cancel is immediate: {payload}");
    assert_eq!(field_str(&payload, "state"), Some("cancelled"), "{payload}");
    assert_eq!(field_u64(&payload, "progress"), Some(0), "never ran a step");
    assert!(!payload.contains("\"result\""), "no result for a never-run job: {payload}");

    // Unblock the worker quickly: cancel the running job too.
    let (code, _) = http_call(&addr, "POST", &format!("/jobs/{busy}/cancel"), "").unwrap();
    assert_eq!(code, 202);
    wait_for_state(&addr, busy, "cancelled", 120);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancel_while_running_stops_cooperatively_with_partial_result() {
    let dir = tmpdir("cancel-r");
    let (server, addr) = start(&dir, 1);
    let (_, id, _) = submit(&addr, r#"{"bits":4,"steps":500,"seed":3}"#);
    // Wait until it is demonstrably mid-run.
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let (_, payload) = http_call(&addr, "GET", &format!("/jobs/{id}"), "").unwrap();
        if field_str(&payload, "state") == Some("running")
            && field_u64(&payload, "progress").unwrap_or(0) >= 1
        {
            break;
        }
        assert!(Instant::now() < deadline, "job never started: {payload}");
        std::thread::sleep(Duration::from_millis(10));
    }
    let (code, payload) = http_call(&addr, "POST", &format!("/jobs/{id}/cancel"), "").unwrap();
    assert_eq!(code, 202, "running cancel is asynchronous: {payload}");
    assert_eq!(field_str(&payload, "state"), Some("running"), "{payload}");

    let final_payload = wait_for_state(&addr, id, "cancelled", 120);
    let steps_done = field_u64(&final_payload, "steps_done").expect("partial result attached");
    assert!(
        (1..500).contains(&(steps_done as usize)),
        "cooperative stop keeps the partial trajectory: {final_payload}"
    );
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn http_error_contract() {
    let dir = tmpdir("errors");
    let (server, addr) = start(&dir, 1);
    for (method, path, body, want) in [
        ("POST", "/jobs", "not json", 400),
        ("POST", "/jobs", r#"{"bits":1}"#, 400),
        ("POST", "/jobs", r#"{"method":"ppo"}"#, 400),
        ("GET", "/jobs/999", "", 404),
        ("GET", "/jobs/xyz", "", 400),
        ("GET", "/jobs/999/result", "", 404),
        ("POST", "/jobs/999/cancel", "", 404),
        ("GET", "/nope", "", 404),
        ("PUT", "/jobs", "", 405),
    ] {
        let (code, payload) = http_call(&addr, method, path, body).unwrap();
        assert_eq!(code, want, "{method} {path}: {payload}");
        assert!(payload.contains("\"error\""), "{method} {path}: {payload}");
    }
    // The index and health endpoints answer.
    let (code, index) = http_call(&addr, "GET", "/", "").unwrap();
    assert_eq!(code, 200);
    assert!(index.contains("rlmul-serve"), "{index}");
    let (code, health) = http_call(&addr, "GET", "/healthz", "").unwrap();
    assert_eq!(code, 200);
    assert!(health.contains("\"ok\":true"), "{health}");
    let (code, metrics) = http_call(&addr, "GET", "/metrics", "").unwrap();
    assert_eq!(code, 200);
    assert!(metrics.contains("rlmul_serve_jobs_submitted_total"), "{metrics}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_restart_recovers_queued_and_running_jobs() {
    let dir = tmpdir("restart");
    let first_id;
    let queued_id;
    {
        let (server, addr) = start(&dir, 1);
        let (_, a, _) = submit(&addr, r#"{"bits":4,"steps":60,"seed":7,"ckpt_every":4}"#);
        let (_, b, _) = submit(&addr, r#"{"bits":4,"steps":2,"seed":8}"#);
        first_id = a;
        queued_id = b;
        // Let the first job make checkpointed progress, then drain.
        let deadline = Instant::now() + Duration::from_secs(60);
        loop {
            let (_, payload) = http_call(&addr, "GET", &format!("/jobs/{a}"), "").unwrap();
            if field_u64(&payload, "progress").unwrap_or(0) >= 4 {
                break;
            }
            assert!(Instant::now() < deadline, "no progress: {payload}");
            std::thread::sleep(Duration::from_millis(10));
        }
        server.shutdown();
    }
    // The drained daemon left the running job `Running` on disk and
    // the queued one `Queued`; a new daemon re-adopts both.
    {
        let (server, addr) = start(&dir, 1);
        let done_a = wait_for_state(&addr, first_id, "done", 180);
        assert_eq!(field_u64(&done_a, "resumes"), Some(1), "re-adopted exactly once: {done_a}");
        assert_eq!(field_u64(&done_a, "steps_done"), Some(60), "{done_a}");
        let done_b = wait_for_state(&addr, queued_id, "done", 180);
        assert_eq!(field_u64(&done_b, "resumes"), Some(0), "{done_b}");
        // Terminal states survive as history.
        let (code, listing) = http_call(&addr, "GET", "/jobs", "").unwrap();
        assert_eq!(code, 200);
        assert_eq!(field_u64(&listing, "count"), Some(2), "{listing}");
        server.shutdown();
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn terminal_states_are_immutable() {
    use JobState::*;
    for terminal in [Done, Cancelled, Failed] {
        for to in [Queued, Running, Done, Cancelled, Failed] {
            assert!(!terminal.can_transition(to, true));
        }
    }
}
