//! End-to-end tests of the per-job trace routes over the real wire
//! protocol: the golden `GET /jobs/:id/trace` exposition shape, the
//! chunked `GET /jobs/:id/events` live stream, and the contract the
//! tentpole promises — a live stream observed during a run matches
//! the stored trace event-for-event, byte-for-byte.

use rlmul_serve::json::{parse_object, parse_object_array, JsonValue};
use rlmul_serve::loadtest::http_call;
use rlmul_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rlmul-trace-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(dir: &Path, workers: usize) -> (Server, String) {
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        dir: dir.to_path_buf(),
        workers,
        http_workers: 2,
    })
    .expect("start server");
    let addr = server.local_addr().to_string();
    (server, addr)
}

fn field_str<'a>(body: &'a str, key: &str) -> Option<&'a str> {
    let tagged = format!("\"{key}\":\"");
    let rest = &body[body.find(&tagged)? + tagged.len()..];
    Some(&rest[..rest.find('"')?])
}

fn submit(addr: &str, body: &str) -> u64 {
    let (code, payload) = http_call(addr, "POST", "/jobs", body).expect("submit");
    assert_eq!(code, 201, "{payload}");
    parse_object(payload.as_bytes()).unwrap().get_u64("id").expect("id")
}

fn wait_for_state(addr: &str, id: u64, want: &str, secs: u64) {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        let (_, payload) = http_call(addr, "GET", &format!("/jobs/{id}"), "").expect("poll");
        if field_str(&payload, "state") == Some(want) {
            return;
        }
        assert!(Instant::now() < deadline, "job {id} never reached `{want}`; last: {payload}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Performs one GET and decodes a chunked response body to the raw
/// streamed bytes (falls through for identity-framed bodies).
fn http_stream(addr: &str, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(120))).unwrap();
    write!(stream, "GET {path} HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read stream to EOF");
    let code: u16 = raw
        .strip_prefix("HTTP/1.1 ")
        .and_then(|r| r.split(' ').next())
        .and_then(|c| c.parse().ok())
        .expect("status line");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header terminator");
    if !head.to_ascii_lowercase().contains("transfer-encoding: chunked") {
        return (code, body.to_owned());
    }
    let mut rest = body;
    let mut out = String::new();
    loop {
        let (len_line, tail) = rest.split_once("\r\n").expect("chunk length line");
        let len = usize::from_str_radix(len_line.trim(), 16).expect("hex chunk length");
        if len == 0 {
            break;
        }
        out.push_str(&tail[..len]);
        rest = &tail[len + 2..]; // past the data and its CRLF
    }
    (code, out)
}

#[test]
fn golden_trace_exposition() {
    let dir = tmpdir("golden");
    let (server, addr) = start(&dir, 1);
    let id = submit(&addr, r#"{"bits":4,"method":"sa","steps":3,"seed":11,"tenant":"golden"}"#);
    wait_for_state(&addr, id, "done", 120);

    let (code, body) = http_call(&addr, "GET", &format!("/jobs/{id}/trace"), "").unwrap();
    assert_eq!(code, 200, "{body}");
    let record = parse_object(body.as_bytes()).expect("trace body parses");
    let tid = format!("tr-{id:08}.0");
    assert_eq!(record.get_u64("job_id"), Some(id), "{body}");
    assert_eq!(record.get_str("trace_id"), Some(tid.as_str()), "{body}");
    assert_eq!(record.get_u64("dropped"), Some(0), "{body}");

    // Golden exposition shape: fixed field order per event, the known
    // lifecycle details verbatim.
    assert!(
        body.contains(&format!(r#"{{"trace_id":"{tid}","seq":0,"micros":"#)),
        "first event leads with trace_id then seq: {body}"
    );
    assert!(body.contains(r#""kind":"submitted","detail":"tenant=golden priority=0"}"#), "{body}");
    assert!(body.contains(r#""kind":"queued","detail":"depth=1"}"#), "{body}");
    assert!(body.contains(r#""kind":"claimed""#), "{body}");
    assert!(body.contains(r#""detail":"steps_done=3"}"#), "progress landed: {body}");

    // Structural invariants: dense seq from 0, nondecreasing time,
    // lifecycle order, terminal event last.
    let events = match record.get("events") {
        Some(JsonValue::Raw(raw)) => parse_object_array(raw).expect("events array"),
        other => panic!("events missing: {other:?}"),
    };
    assert!(events.len() >= 5, "submitted/queued/claimed/steps/done: {body}");
    let kinds: Vec<&str> = events.iter().map(|e| e.get_str("kind").unwrap()).collect();
    assert_eq!(&kinds[..3], &["submitted", "queued", "claimed"], "{kinds:?}");
    assert_eq!(*kinds.last().unwrap(), "done", "{kinds:?}");
    assert!(kinds.contains(&"synth"), "synthesis decisions traced: {kinds:?}");
    let mut last_micros = 0;
    for (i, e) in events.iter().enumerate() {
        assert_eq!(e.get_u64("seq"), Some(i as u64), "dense seq at {i}");
        let micros = e.get_u64("micros").expect("micros");
        assert!(micros >= last_micros, "time goes forward at {i}");
        last_micros = micros;
    }
    let done = events.last().unwrap().get_str("detail").unwrap();
    assert!(done.contains("best_cost=") && done.contains("steps_done=3"), "{done}");

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn live_event_stream_matches_stored_trace_byte_for_byte() {
    let dir = tmpdir("stream");
    let (server, addr) = start(&dir, 1);
    let id = submit(&addr, r#"{"bits":4,"method":"sa","steps":200,"seed":21,"tenant":"s"}"#);

    // Follow the stream while the job runs; the reader thread blocks
    // until the trace closes at the terminal transition.
    let stream_addr = addr.clone();
    let reader =
        std::thread::spawn(move || http_stream(&stream_addr, &format!("/jobs/{id}/events")));
    wait_for_state(&addr, id, "done", 180);
    let (code, streamed) = reader.join().expect("stream reader");
    assert_eq!(code, 200);

    let (code, body) = http_call(&addr, "GET", &format!("/jobs/{id}/trace"), "").unwrap();
    assert_eq!(code, 200, "{body}");
    let record = parse_object(body.as_bytes()).expect("trace body parses");
    let stored_events = match record.get("events") {
        Some(JsonValue::Raw(raw)) => raw.clone(),
        other => panic!("events missing: {other:?}"),
    };

    // Event-for-event byte identity: joining the stream's lines with
    // commas reconstructs the stored events array exactly — same IDs,
    // same seq order, same rendering.
    let lines: Vec<&str> = streamed.lines().collect();
    assert!(!lines.is_empty(), "stream delivered events");
    assert_eq!(format!("[{}]", lines.join(",")), stored_events);

    // And the stream is valid JSONL on its own.
    for line in &lines {
        let o = parse_object(line.as_bytes()).expect("stream line parses");
        assert_eq!(o.get_str("trace_id"), Some(format!("tr-{id:08}.0").as_str()));
    }

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cancelled_while_queued_trace_is_complete_and_durable() {
    let dir = tmpdir("cancelq");
    let (server, addr) = start(&dir, 1);
    // Occupy the single worker so the second job stays queued.
    let busy = submit(&addr, r#"{"bits":4,"steps":300,"seed":1}"#);
    let queued = submit(&addr, r#"{"bits":4,"steps":5,"seed":2}"#);
    wait_for_state(&addr, busy, "running", 60);
    let (code, _) = http_call(&addr, "DELETE", &format!("/jobs/{queued}"), "").unwrap();
    assert_eq!(code, 200);

    let (code, body) = http_call(&addr, "GET", &format!("/jobs/{queued}/trace"), "").unwrap();
    assert_eq!(code, 200, "{body}");
    let record = parse_object(body.as_bytes()).unwrap();
    let events = match record.get("events") {
        Some(JsonValue::Raw(raw)) => parse_object_array(raw).unwrap(),
        other => panic!("events missing: {other:?}"),
    };
    let kinds: Vec<&str> = events.iter().map(|e| e.get_str("kind").unwrap()).collect();
    assert_eq!(kinds, ["submitted", "queued", "cancelled"], "{body}");

    // A terminal trace streams in full and ends immediately.
    let (code, streamed) = http_stream(&addr, &format!("/jobs/{queued}/events"));
    assert_eq!(code, 200);
    assert_eq!(streamed.lines().count(), 3, "{streamed}");

    // Unblock the worker.
    let (_, _) = http_call(&addr, "POST", &format!("/jobs/{busy}/cancel"), "").unwrap();
    wait_for_state(&addr, busy, "cancelled", 120);
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_routes_error_contract() {
    let dir = tmpdir("errors");
    let (server, addr) = start(&dir, 1);
    for (path, want) in
        [("/jobs/999/trace", 404), ("/jobs/999/events", 404), ("/jobs/xyz/trace", 400)]
    {
        let (code, payload) = http_call(&addr, "GET", path, "").unwrap();
        assert_eq!(code, want, "GET {path}: {payload}");
        assert!(payload.contains("\"error\""), "GET {path}: {payload}");
    }
    // The index advertises the trace routes.
    let (_, index) = http_call(&addr, "GET", "/", "").unwrap();
    assert!(index.contains("GET /jobs/<id>/trace"), "{index}");
    assert!(index.contains("GET /jobs/<id>/events"), "{index}");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
