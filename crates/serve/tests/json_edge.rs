//! Edge-case coverage for the API's hand-rolled JSON codec: the
//! parser sits directly on the request path, so every malformed body
//! must come back as a clean `Err` (which the API turns into a 400)
//! — never a panic, never a silently wrong parse.
//!
//! Fixed corpus first (the shapes we know are nasty: escapes, deep
//! nesting, truncation, duplicate keys), then deterministic property
//! sweeps over generated bodies and random truncations/corruptions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_serve::json::{parse_object, JsonBuilder, JsonValue};

// ---------------------------------------------------------------
// Fixed corpus: escape sequences
// ---------------------------------------------------------------

#[test]
fn escape_sequences_decode_exactly() {
    let o = parse_object(br#"{"s":"a\"b\\c\/d\ne\rf\tgA\u00e9"}"#).unwrap();
    assert_eq!(o.get_str("s"), Some("a\"b\\c/d\ne\rf\tgA\u{e9}"));
}

#[test]
fn escaped_quotes_do_not_end_strings_or_keys() {
    let o = parse_object(br#"{"k\"ey":"v\"alue"}"#).unwrap();
    assert_eq!(o.get_str("k\"ey"), Some("v\"alue"));
}

#[test]
fn broken_escapes_are_clean_errors() {
    let cases: &[&[u8]] = &[
        br#"{"s":"\x"}"#,     // unknown escape
        br#"{"s":"\"#,        // escape at end of input
        br#"{"s":"\u00"}"#,   // truncated \u
        br#"{"s":"\u00zz"}"#, // non-hex \u
        br#"{"s":"unterminated"#,
    ];
    for body in cases {
        let err = parse_object(body).expect_err(&format!("{}", String::from_utf8_lossy(body)));
        assert!(!err.is_empty());
    }
}

#[test]
fn lone_surrogate_escape_degrades_to_replacement_char() {
    // \ud800 is not a valid scalar value; the parser substitutes
    // U+FFFD rather than erroring or panicking in char::from_u32.
    let o = parse_object(br#"{"s":"\ud800"}"#).unwrap();
    assert_eq!(o.get_str("s"), Some("\u{fffd}"));
}

// ---------------------------------------------------------------
// Fixed corpus: deeply nested Raw values
// ---------------------------------------------------------------

#[test]
fn deeply_nested_raw_values_capture_verbatim() {
    // 128 levels of object nesting, captured as one opaque Raw.
    let mut inner = String::from(r#"{"leaf":1}"#);
    for _ in 0..127 {
        inner = format!(r#"{{"n":{inner}}}"#);
    }
    let body = format!(r#"{{"deep":{inner},"after":true}}"#);
    let o = parse_object(body.as_bytes()).unwrap();
    assert_eq!(o.get("deep"), Some(&JsonValue::Raw(inner)));
    assert_eq!(o.get("after"), Some(&JsonValue::Bool(true)));
}

#[test]
fn nested_raw_tracks_brackets_inside_strings() {
    let o = parse_object(br#"{"v":{"a":"}{][","b":["{","]"]},"tail":0}"#).unwrap();
    assert_eq!(o.get("v"), Some(&JsonValue::Raw(r#"{"a":"}{][","b":["{","]"]}"#.into())));
    assert_eq!(o.get_u64("tail"), Some(0));
}

#[test]
fn unbalanced_nesting_is_a_clean_error() {
    assert!(parse_object(br#"{"v":{"a":1"#).is_err());
    assert!(parse_object(br#"{"v":[[[1]]"#).is_err());
    assert!(parse_object(br#"{"v":{"s":"{"#).is_err());
}

// ---------------------------------------------------------------
// Fixed corpus: duplicate keys
// ---------------------------------------------------------------

#[test]
fn duplicate_keys_are_rejected() {
    let err = parse_object(br#"{"bits":4,"bits":64}"#).unwrap_err();
    assert!(err.contains("duplicate key `bits`"), "{err}");
    // Escaped spellings that decode to the same key count too.
    assert!(parse_object(br#"{"ab":1,"ab":2}"#).is_err(), "escaped duplicate");
    // Distinct keys stay fine.
    assert!(parse_object(br#"{"a":1,"b":1,"c":1}"#).is_ok());
}

// ---------------------------------------------------------------
// Property sweeps
// ---------------------------------------------------------------

/// A printable string with embedded JSON-hostile characters mixed in.
fn hostile_string(rng: &mut StdRng) -> String {
    let pool = ['"', '\\', '{', '}', '[', ']', ',', ':', '\n', '\t', 'a', 'é', '∑', ' '];
    let len = rng.gen_range(0..24);
    (0..len).map(|_| pool[rng.gen_range(0..pool.len())]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Builder output always re-parses, and hostile strings survive
    /// the escape/unescape round trip exactly.
    #[test]
    fn built_bodies_round_trip(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s1 = hostile_string(&mut rng);
        let s2 = hostile_string(&mut rng);
        let n: u64 = rng.gen_range(0..1 << 40);
        let body = JsonBuilder::new()
            .str("first", &s1)
            .u64("n", n)
            .str("second", &s2)
            .bool("flag", n.is_multiple_of(2))
            .build();
        let o = parse_object(body.as_bytes()).unwrap();
        prop_assert_eq!(o.get_str("first"), Some(s1.as_str()));
        prop_assert_eq!(o.get_str("second"), Some(s2.as_str()));
        prop_assert_eq!(o.get_u64("n"), Some(n));
    }

    /// Every strict prefix of a valid body is an error, never a panic
    /// and never an accidental parse.
    #[test]
    fn truncated_bodies_are_clean_errors(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let body = JsonBuilder::new()
            .str("s", &hostile_string(&mut rng))
            .raw("nest", r#"{"a":[1,{"b":"}"}]}"#)
            .u64("n", rng.gen_range(0..1000))
            .build();
        prop_assert!(parse_object(body.as_bytes()).is_ok());
        for cut in 0..body.len() {
            let prefix = &body.as_bytes()[..cut];
            prop_assert!(parse_object(prefix).is_err(), "cut {} of {}", cut, body);
        }
    }

    /// Arbitrary byte garbage never panics the parser.
    #[test]
    fn random_bytes_never_panic(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let len = rng.gen_range(0..64);
        let bytes: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        let _ = parse_object(&bytes); // Ok or Err, both fine — just no panic
    }

    /// A duplicated key inserted at a random position is always
    /// rejected.
    #[test]
    fn any_duplicate_key_is_rejected(seed in 0u64..1 << 32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let keys = ["bits", "steps", "seed", "tenant"];
        let dup = keys[rng.gen_range(0..keys.len())];
        let mut fields: Vec<String> =
            keys.iter().map(|k| format!(r#""{k}":1"#)).collect();
        let at = rng.gen_range(0..=fields.len());
        fields.insert(at, format!(r#""{dup}":2"#));
        let body = format!("{{{}}}", fields.join(","));
        let err = parse_object(body.as_bytes()).unwrap_err();
        prop_assert!(err.contains("duplicate key"), "{}: {}", body, err);
    }
}
