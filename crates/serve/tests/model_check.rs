//! Loom-lite model checks of the job server's concurrency protocols:
//! the queue handoff between submitters and workers, and the
//! cancel-vs-claim race.
//!
//! These run the *real* [`rlmul_serve::JobQueue`] (not a sketch)
//! under the `rlmul-check` deterministic scheduler — the queue is
//! built exclusively on facade primitives, so every interleaving of
//! its mutex/condvar protocol is enumerable. A reported failure
//! prints a replayable schedule; see EXPERIMENTS.md for the
//! schedule-replay workflow.

use rlmul_check::sched::Model;
use rlmul_check::sync::{spawn_named, Mutex};
use rlmul_serve::JobQueue;
use std::sync::Arc;

fn assert_exhausted(model: &Model, f: impl Fn()) {
    let outcome = model.explore(&f);
    assert!(
        outcome.failure.is_none(),
        "{}",
        outcome.failure.map(|f| f.render()).unwrap_or_default()
    );
    assert!(outcome.complete, "state space must be exhausted ({} executions)", outcome.executions);
    assert!(outcome.executions > 1, "scenario must have more than one interleaving");
}

/// Two submitters race one worker: every pushed id is popped exactly
/// once, none invented, none lost.
#[test]
fn handoff_loses_and_duplicates_nothing() {
    assert_exhausted(&Model::default(), || {
        let q = Arc::new(JobQueue::new());
        let producers: Vec<_> = [1u64, 2u64]
            .into_iter()
            .map(|id| {
                let q = Arc::clone(&q);
                spawn_named(&format!("submit-{id}"), move || {
                    assert!(q.push(0, id, id), "open queue accepts work");
                })
            })
            .collect();
        let qc = Arc::clone(&q);
        let consumer = spawn_named("worker", move || {
            let a = qc.pop().expect("two pushes precede any close");
            let b = qc.pop().expect("two pushes precede any close");
            (a, b)
        });
        for p in producers {
            p.join().expect("submitter");
        }
        let (a, b) = consumer.join().expect("worker");
        let mut got = [a, b];
        got.sort_unstable();
        assert_eq!(got, [1, 2], "each id delivered exactly once");
        assert!(q.is_empty());
    });
}

/// A blocked worker must be woken by a racing push — the classic
/// lost-wakeup shape. A missed notification deadlocks the execution,
/// which the scheduler reports as a failure.
#[test]
fn push_wakes_a_blocked_worker() {
    assert_exhausted(&Model::default(), || {
        let q = Arc::new(JobQueue::new());
        let qc = Arc::clone(&q);
        let worker = spawn_named("worker", move || qc.pop());
        assert!(q.push(1, 7, 7));
        assert_eq!(worker.join().expect("worker"), Some(7));
    });
}

/// Cancel-while-queued races a worker's pop: exactly one side wins
/// the entry — it is either popped or removed, never both, never
/// neither.
#[test]
fn cancel_and_pop_have_exactly_one_winner() {
    assert_exhausted(&Model::default(), || {
        let q = Arc::new(JobQueue::new());
        q.push(0, 1, 1);
        let qa = Arc::clone(&q);
        let popper = spawn_named("worker", move || qa.pop());
        let qb = Arc::clone(&q);
        let canceller = spawn_named("cancel", move || qb.remove(1));
        // Close so a popper that lost the race unblocks with None.
        q.close();
        let popped = popper.join().expect("worker");
        let removed = canceller.join().expect("cancel");
        assert!(
            popped.is_some() ^ removed,
            "exactly one winner required (popped {popped:?}, removed {removed})"
        );
    });
}

/// The full cancel-vs-claim protocol of the server: the worker claims
/// only a still-`Queued` record under the table lock; the canceller
/// transitions the record under the same lock after removing it from
/// the queue. The job must end up exactly once — run or cancelled.
#[test]
fn claim_and_cancel_are_mutually_exclusive() {
    const QUEUED: u8 = 0;
    const RUNNING: u8 = 1;
    const CANCELLED: u8 = 2;
    assert_exhausted(&Model::default(), || {
        let q = Arc::new(JobQueue::new());
        q.push(0, 1, 1);
        let table = Arc::new(Mutex::new("test.table", QUEUED));
        let (qw, tw) = (Arc::clone(&q), Arc::clone(&table));
        let worker = spawn_named("worker", move || {
            match qw.pop() {
                Some(id) => {
                    assert_eq!(id, 1);
                    let mut state = tw.lock();
                    if *state == QUEUED {
                        *state = RUNNING; // the claim
                        true
                    } else {
                        false // cancel won; claim refuses
                    }
                }
                None => false, // cancel emptied the queue before us
            }
        });
        let (qc, tc) = (Arc::clone(&q), Arc::clone(&table));
        let canceller = spawn_named("cancel", move || {
            // Mirrors Inner::cancel: table lock, then queue removal,
            // then the state transition.
            let mut state = tc.lock();
            if *state == QUEUED {
                let _ = qc.remove(1);
                *state = CANCELLED;
                true
            } else {
                false
            }
        });
        q.close();
        let ran = worker.join().expect("worker");
        let cancelled = canceller.join().expect("cancel");
        let final_state = *table.lock();
        assert!(ran ^ cancelled, "exactly one side may win (ran {ran}, cancelled {cancelled})");
        assert_eq!(final_state, if ran { RUNNING } else { CANCELLED });
    });
}

/// Closing the queue releases every blocked worker — shutdown must
/// not deadlock on parked threads, and queued backlog must survive
/// for the restart to re-adopt.
#[test]
fn close_releases_every_blocked_worker() {
    assert_exhausted(&Model::default(), || {
        let q = Arc::new(JobQueue::new());
        let workers: Vec<_> = (0..2)
            .map(|n| {
                let q = Arc::clone(&q);
                spawn_named(&format!("worker-{n}"), move || q.pop())
            })
            .collect();
        q.push(0, 1, 1);
        q.close();
        let results: Vec<_> = workers.into_iter().map(|w| w.join().expect("worker")).collect();
        // At most one worker got the entry before the close; closing
        // released the rest with None either way.
        assert!(results.iter().filter(|r| r.is_some()).count() <= 1);
    });
}
