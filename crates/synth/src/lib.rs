//! Synthesis substrate for RL-MUL — the reproduction's stand-in for
//! the paper's Yosys + OpenROAD + OpenSTA flow over the NanGate 45nm
//! Open Cell Library.
//!
//! The flow is: technology mapping ([`MappedNetlist`]) onto a
//! NanGate45-flavoured [`Library`], static timing analysis with a
//! load-dependent linear delay model ([`analyze`]), TILOS-style
//! greedy gate sizing under a target delay ([`size_to_target`]), and
//! switching-activity power estimation ([`estimate_power`]). The
//! [`Synthesizer`] driver ties these together and supports the
//! multi-constraint runs and target-delay sweeps the paper's
//! Pareto-driven reward consumes.
//!
//! # Example
//!
//! ```
//! use rlmul_ct::{CompressorTree, PpgKind};
//! use rlmul_rtl::MultiplierNetlist;
//! use rlmul_synth::{SynthesisOptions, Synthesizer};
//!
//! let tree = CompressorTree::wallace(8, PpgKind::And)?;
//! let m = MultiplierNetlist::elaborate(&tree)?;
//! let report = Synthesizer::nangate45()
//!     .run(m.netlist(), &SynthesisOptions::default())?;
//! println!("{:.0} um^2 @ {:.3} ns, {:.3} mW",
//!          report.area_um2, report.delay_ns, report.power_mw);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod ckpt;
mod error;
mod inc;
mod library;
mod map;
mod power;
mod size;
mod sta;
mod synth;

pub use error::SynthError;
pub use inc::{IncrementalSynthesis, SynthMode};
pub use library::{Cell, Drive, Library};
pub use map::{MappedNetlist, NetConn};
pub use power::{estimate as estimate_power, PowerReport};
pub use size::{size_to_target, size_to_target_seeded, SizingOutcome};
pub use sta::{analyze, IncrementalSta, StaStats, TimingReport};
pub use synth::{SynthesisOptions, SynthesisReport, Synthesizer};
