//! A NanGate-45nm-flavoured standard-cell library.
//!
//! Cell areas follow the NanGate 45nm Open Cell Library's site grid;
//! timing uses a load-dependent linear model
//! `delay = intrinsic + R_drive · C_load` calibrated so that an
//! inverter FO4 delay lands near 50 ps — the regime the paper's
//! OpenROAD + OpenSTA flow operates in. Every function is offered at
//! three drive strengths (X1/X2/X4) so the sizing pass can trade area
//! and power for delay under a timing constraint, reproducing how
//! synthesis under different target delays yields different netlists
//! for the same RTL (paper Section V-A).

use rlmul_rtl::GateKind;

/// Drive strength of a cell variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Drive {
    /// Unit drive.
    X1,
    /// Double drive.
    X2,
    /// Quadruple drive.
    X4,
}

impl Drive {
    /// All strengths, weakest first.
    pub const ALL: [Drive; 3] = [Drive::X1, Drive::X2, Drive::X4];

    /// Numeric strength multiplier.
    pub fn factor(self) -> f64 {
        match self {
            Drive::X1 => 1.0,
            Drive::X2 => 2.0,
            Drive::X4 => 4.0,
        }
    }

    /// The next stronger variant, if any.
    pub fn upsize(self) -> Option<Drive> {
        match self {
            Drive::X1 => Some(Drive::X2),
            Drive::X2 => Some(Drive::X4),
            Drive::X4 => None,
        }
    }
}

/// One library cell (a logic function at a drive strength).
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Liberty-style name, e.g. `FA_X2`.
    pub name: String,
    /// Implemented function.
    pub kind: GateKind,
    /// Drive strength.
    pub drive: Drive,
    /// Cell area in µm².
    pub area_um2: f64,
    /// Capacitance of each input pin in fF.
    pub input_cap_ff: f64,
    /// Intrinsic delay per output in ns (`[out0, out1, out2]`).
    pub intrinsic_ns: [f64; 3],
    /// Output drive resistance in kΩ (1 kΩ · 1 fF = 1 ps).
    pub drive_res_kohm: f64,
    /// Leakage power in nW.
    pub leakage_nw: f64,
    /// Internal switching energy per output transition in fJ.
    pub internal_energy_fj: f64,
}

/// Per-function X1 base parameters:
/// (area, cap, intrinsics, resistance, leakage, energy).
fn base(kind: GateKind) -> (f64, f64, [f64; 3], f64, f64, f64) {
    match kind {
        //                       area   cap  [int0, int1, int2]       R    leak  E
        GateKind::Inv => (0.532, 1.6, [0.008, 0.0, 0.0], 5.0, 1.5, 0.30),
        GateKind::Buf => (0.798, 1.5, [0.025, 0.0, 0.0], 4.5, 2.0, 0.50),
        GateKind::And2 => (1.064, 1.7, [0.030, 0.0, 0.0], 5.5, 2.8, 0.65),
        GateKind::Or2 => (1.064, 1.7, [0.032, 0.0, 0.0], 5.5, 2.9, 0.65),
        GateKind::Nand2 => (0.798, 1.7, [0.014, 0.0, 0.0], 5.5, 2.3, 0.45),
        GateKind::Nor2 => (0.798, 1.9, [0.018, 0.0, 0.0], 6.5, 2.3, 0.45),
        GateKind::Xor2 => (1.596, 2.5, [0.045, 0.0, 0.0], 6.0, 3.8, 1.10),
        GateKind::Xnor2 => (1.596, 2.5, [0.045, 0.0, 0.0], 6.0, 3.8, 1.10),
        GateKind::Mux2 => (1.862, 2.0, [0.040, 0.0, 0.0], 6.0, 4.0, 1.00),
        // Full adder: sum (out0) slower than carry (out1).
        GateKind::FullAdder => (4.256, 2.8, [0.110, 0.075, 0.0], 6.5, 9.5, 2.60),
        GateKind::HalfAdder => (2.394, 2.3, [0.055, 0.040, 0.0], 6.0, 5.5, 1.40),
        // 4:2 compressor: cheaper and faster than two discrete FAs
        // (shared XOR network); cout (out2) is a single-FA-carry arc.
        GateKind::Compressor42 => (7.448, 2.9, [0.165, 0.125, 0.075], 6.5, 16.5, 4.40),
        // DFF: intrinsic is clk→Q.
        GateKind::Dff => (4.522, 1.8, [0.085, 0.0, 0.0], 5.0, 10.0, 2.80),
    }
}

/// Area growth per drive step (X2 ≈ 1.5×, X4 ≈ 2.5× — the NanGate
/// pattern, where upsizing shares the cell's static structure).
fn area_factor(drive: Drive) -> f64 {
    match drive {
        Drive::X1 => 1.0,
        Drive::X2 => 1.5,
        Drive::X4 => 2.5,
    }
}

/// A complete cell library plus interconnect/environment parameters.
#[derive(Debug, Clone)]
pub struct Library {
    name: String,
    cells: Vec<Cell>,
    /// Estimated wire load added per fanout pin, fF.
    pub wire_cap_per_fanout_ff: f64,
    /// Load presented by a primary output, fF.
    pub output_load_ff: f64,
    /// Flip-flop setup time, ns.
    pub setup_ns: f64,
    /// Supply voltage, V (for dynamic-power scaling).
    pub vdd: f64,
}

impl Library {
    /// Builds the NanGate45-flavoured default library.
    pub fn nangate45() -> Self {
        let mut cells = Vec::new();
        for kind in [
            GateKind::Inv,
            GateKind::Buf,
            GateKind::And2,
            GateKind::Or2,
            GateKind::Nand2,
            GateKind::Nor2,
            GateKind::Xor2,
            GateKind::Xnor2,
            GateKind::Mux2,
            GateKind::HalfAdder,
            GateKind::FullAdder,
            GateKind::Compressor42,
            GateKind::Dff,
        ] {
            let (area, cap, intrinsics, r, leak, e) = base(kind);
            for drive in Drive::ALL {
                let f = drive.factor();
                cells.push(Cell {
                    name: format!("{}_X{}", super::map::kind_cell_stem(kind), f as u32),
                    kind,
                    drive,
                    area_um2: area * area_factor(drive),
                    input_cap_ff: cap * f,
                    intrinsic_ns: intrinsics,
                    drive_res_kohm: r / f,
                    leakage_nw: leak * f,
                    internal_energy_fj: e * f,
                });
            }
        }
        Library {
            name: "nangate45-flavoured".to_owned(),
            cells,
            wire_cap_per_fanout_ff: 0.6,
            output_load_ff: 4.0,
            setup_ns: 0.05,
            vdd: 1.1,
        }
    }

    /// Library name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All cells.
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// Index of the cell implementing `kind` at `drive`.
    ///
    /// # Panics
    ///
    /// Panics if the library lacks the variant (the default library
    /// is complete).
    pub fn cell_index(&self, kind: GateKind, drive: Drive) -> usize {
        self.cells
            .iter()
            .position(|c| c.kind == kind && c.drive == drive)
            .unwrap_or_else(|| panic!("library missing {kind:?} at {drive:?}"))
    }

    /// The cell at `index`.
    pub fn cell(&self, index: usize) -> &Cell {
        &self.cells[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_is_complete_over_kinds_and_drives() {
        let lib = Library::nangate45();
        assert_eq!(lib.cells().len(), 13 * 3);
        for drive in Drive::ALL {
            let idx = lib.cell_index(GateKind::FullAdder, drive);
            assert_eq!(lib.cell(idx).drive, drive);
        }
    }

    #[test]
    fn fo4_delay_is_about_50ps() {
        let lib = Library::nangate45();
        let inv = lib.cell(lib.cell_index(GateKind::Inv, Drive::X1));
        let load = 4.0 * inv.input_cap_ff + 4.0 * lib.wire_cap_per_fanout_ff;
        let d = inv.intrinsic_ns[0] + inv.drive_res_kohm * load / 1000.0;
        assert!((0.03..=0.07).contains(&d), "FO4 = {d} ns");
    }

    #[test]
    fn upsizing_lowers_resistance_and_raises_area() {
        let lib = Library::nangate45();
        let x1 = lib.cell(lib.cell_index(GateKind::Nand2, Drive::X1));
        let x4 = lib.cell(lib.cell_index(GateKind::Nand2, Drive::X4));
        assert!(x4.drive_res_kohm < x1.drive_res_kohm / 3.0);
        assert!(x4.area_um2 > x1.area_um2 * 2.0);
        assert!(x4.input_cap_ff > x1.input_cap_ff);
    }

    #[test]
    fn drive_upsize_chain_terminates() {
        assert_eq!(Drive::X1.upsize(), Some(Drive::X2));
        assert_eq!(Drive::X2.upsize(), Some(Drive::X4));
        assert_eq!(Drive::X4.upsize(), None);
    }

    #[test]
    fn cell_names_are_unique() {
        let lib = Library::nangate45();
        let mut names: Vec<&str> = lib.cells().iter().map(|c| c.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before);
    }

    #[test]
    fn comp42_is_cheaper_than_two_full_adders() {
        let lib = Library::nangate45();
        let fa = lib.cell(lib.cell_index(GateKind::FullAdder, Drive::X1));
        let c42 = lib.cell(lib.cell_index(GateKind::Compressor42, Drive::X1));
        assert!(c42.area_um2 < 2.0 * fa.area_um2);
        // The cout arc is a single-FA carry arc.
        assert!((c42.intrinsic_ns[2] - fa.intrinsic_ns[1]).abs() < 1e-9);
    }

    #[test]
    fn full_adder_sum_is_slower_than_carry() {
        let lib = Library::nangate45();
        let fa = lib.cell(lib.cell_index(GateKind::FullAdder, Drive::X1));
        assert!(fa.intrinsic_ns[0] > fa.intrinsic_ns[1]);
    }
}
