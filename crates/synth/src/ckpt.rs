//! Checkpoint codec support for synthesis results.
//!
//! Cached [`SynthesisReport`]s are part of a training run's state:
//! exporting the evaluation cache into a snapshot turns every
//! already-synthesized structure into a cache hit on resume, which is
//! what makes resumed runs bit-identical *and* fast.

use crate::sta::StaStats;
use crate::synth::SynthesisReport;
use rlmul_ckpt::{CkptError, Decoder, Encoder, Record};

impl Record for StaStats {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.full_passes);
        enc.put_usize(self.incremental_passes);
        enc.put_usize(self.full_gate_visits);
        enc.put_usize(self.incremental_gate_visits);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(StaStats {
            full_passes: dec.get_usize()?,
            incremental_passes: dec.get_usize()?,
            full_gate_visits: dec.get_usize()?,
            incremental_gate_visits: dec.get_usize()?,
        })
    }
}

impl Record for SynthesisReport {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.area_um2);
        enc.put_f64(self.delay_ns);
        enc.put_f64(self.power_mw);
        self.target_delay_ns.encode(enc);
        enc.put_bool(self.met_target);
        self.drive_histogram.encode(enc);
        enc.put_usize(self.sizing_moves);
        enc.put_usize(self.num_cells);
        self.sta.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(SynthesisReport {
            area_um2: dec.get_f64()?,
            delay_ns: dec.get_f64()?,
            power_mw: dec.get_f64()?,
            target_delay_ns: Option::decode(dec)?,
            met_target: dec.get_bool()?,
            drive_histogram: <[usize; 3]>::decode(dec)?,
            sizing_moves: dec.get_usize()?,
            num_cells: dec.get_usize()?,
            sta: StaStats::decode(dec)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_round_trips_bit_exactly() {
        let r = SynthesisReport {
            area_um2: 1234.5678,
            delay_ns: 1.375,
            power_mw: 0.0625,
            target_delay_ns: Some(1.5),
            met_target: true,
            drive_histogram: [10, 4, 1],
            sizing_moves: 7,
            num_cells: 321,
            sta: StaStats {
                full_passes: 2,
                incremental_passes: 9,
                full_gate_visits: 642,
                incremental_gate_visits: 77,
            },
        };
        let back = SynthesisReport::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back.area_um2.to_bits(), r.area_um2.to_bits());
        assert_eq!(back.delay_ns.to_bits(), r.delay_ns.to_bits());
        assert_eq!(back.power_mw.to_bits(), r.power_mw.to_bits());
        assert_eq!(back.target_delay_ns, r.target_delay_ns);
        assert_eq!(back.met_target, r.met_target);
        assert_eq!(back.drive_histogram, r.drive_histogram);
        assert_eq!(back.sizing_moves, r.sizing_moves);
        assert_eq!(back.num_cells, r.num_cells);
        assert_eq!(back.sta.full_passes, r.sta.full_passes);
        assert_eq!(back.sta.incremental_gate_visits, r.sta.incremental_gate_visits);
    }

    #[test]
    fn none_target_round_trips() {
        let r = SynthesisReport {
            area_um2: 1.0,
            delay_ns: 2.0,
            power_mw: 3.0,
            target_delay_ns: None,
            met_target: false,
            drive_histogram: [0, 0, 0],
            sizing_moves: 0,
            num_cells: 0,
            sta: StaStats::default(),
        };
        let back = SynthesisReport::from_bytes(&r.to_bytes()).unwrap();
        assert_eq!(back.target_delay_ns, None);
        assert!(!back.met_target);
    }
}
