//! Static timing analysis — the reproduction's OpenSTA stand-in.
//!
//! Arrival times propagate in topological order with the library's
//! load-dependent linear delay model. Endpoints are primary outputs
//! and flip-flop D pins (plus setup); startpoints are primary inputs
//! and flip-flop Q pins (plus clk→Q). The worst endpoint and its
//! critical path are reported for the sizing pass.

use crate::map::MappedNetlist;
use rlmul_rtl::{Gate, GateKind, NetId};

/// The inputs that output slot `k` of `g` actually depends on.
fn arc_inputs(g: &Gate, k: usize) -> &[NetId] {
    match (g.kind, k) {
        (GateKind::Compressor42, 2) => &g.ins[..3], // cout = maj(x1, x2, x3)
        _ => &g.ins[..g.kind.num_inputs()],
    }
}

/// Result of one timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Worst path delay (combinational delay, or minimum clock period
    /// for sequential netlists), in ns.
    pub worst_delay_ns: f64,
    /// Arrival time of every net, ns.
    pub arrivals: Vec<f64>,
    /// Gates along the worst path, startpoint first.
    pub critical_path: Vec<usize>,
}

/// Runs STA over the mapped netlist.
pub fn analyze(m: &MappedNetlist<'_>) -> TimingReport {
    let n = m.netlist();
    let num_nets = n.num_nets() as usize;
    let mut arrivals = vec![0.0f64; num_nets];
    // Driver gate of each net (for path extraction).
    let mut driver: Vec<Option<u32>> = vec![None; num_nets];

    for (gi, g) in n.gates().iter().enumerate() {
        let cell = m.cell_of(gi);
        if g.kind == GateKind::Dff {
            // Q is a startpoint: clk→Q only.
            let q = g.outs[0];
            arrivals[q.0 as usize] = cell.intrinsic_ns[0];
            driver[q.0 as usize] = Some(gi as u32);
            continue;
        }
        for (k, &o) in g.outputs().iter().enumerate() {
            // Per-arc timing: the 4:2 compressor's cout depends only
            // on its first three inputs (never on cin), so same-stage
            // cout chains do not ripple.
            let at_in = arc_inputs(g, k)
                .iter()
                .map(|&i| arrivals[i.0 as usize])
                .fold(0.0f64, f64::max);
            let load = m.load_ff(o);
            arrivals[o.0 as usize] =
                at_in + cell.intrinsic_ns[k] + cell.drive_res_kohm * load / 1000.0;
            driver[o.0 as usize] = Some(gi as u32);
        }
    }

    // Endpoints.
    let mut worst = 0.0f64;
    let mut worst_net: Option<NetId> = None;
    for p in n.outputs() {
        for &b in &p.bits {
            if !b.is_const() && arrivals[b.0 as usize] > worst {
                worst = arrivals[b.0 as usize];
                worst_net = Some(b);
            }
        }
    }
    let setup = m.library().setup_ns;
    for g in n.gates() {
        if g.kind == GateKind::Dff {
            let d = g.ins[0];
            let t = arrivals[d.0 as usize] + setup;
            if t > worst {
                worst = t;
                worst_net = Some(d);
            }
        }
    }

    // Critical-path extraction: walk max-arrival predecessors.
    let mut critical_path = Vec::new();
    let mut cur = worst_net;
    while let Some(net) = cur {
        let Some(gi) = driver[net.0 as usize] else { break };
        critical_path.push(gi as usize);
        let g = &n.gates()[gi as usize];
        if g.kind == GateKind::Dff {
            break; // startpoint reached
        }
        let slot = g
            .outputs()
            .iter()
            .position(|&o| o == net)
            .expect("driver gate must own the net");
        cur = arc_inputs(g, slot)
            .iter()
            .filter(|i| !i.is_const())
            .max_by(|a, b| {
                arrivals[a.0 as usize]
                    .partial_cmp(&arrivals[b.0 as usize])
                    .expect("arrivals are finite")
            })
            .copied();
        if let Some(net) = cur {
            if driver[net.0 as usize].is_none() {
                break; // primary input
            }
        }
    }
    critical_path.reverse();
    TimingReport { worst_delay_ns: worst, arrivals, critical_path }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use rlmul_ct::{CompressorTree, PpgKind};
    use rlmul_rtl::{MultiplierNetlist, NetlistBuilder};

    #[test]
    fn chain_delay_accumulates() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("chain");
        let x = b.input("x", 1);
        let mut v = x[0];
        for _ in 0..10 {
            v = b.inv(v);
        }
        b.output("y", &[v]);
        let n = b.finish();
        let m = MappedNetlist::map(&n, &lib);
        let t = analyze(&m);
        // 10 inverters, each ≥ intrinsic 8 ps.
        assert!(t.worst_delay_ns > 0.08, "delay = {}", t.worst_delay_ns);
        assert_eq!(t.critical_path.len(), 10);
    }

    #[test]
    fn deeper_trees_are_slower() {
        let lib = Library::nangate45();
        let shallow = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let fast = MultiplierNetlist::elaborate(&shallow).unwrap();
        let nl_fast = fast.into_netlist();
        let m_fast = MappedNetlist::map(&nl_fast, &lib);
        let d_fast = analyze(&m_fast).worst_delay_ns;

        let big = CompressorTree::dadda(16, PpgKind::And).unwrap();
        let slow = MultiplierNetlist::elaborate(&big).unwrap();
        let nl_slow = slow.into_netlist();
        let m_slow = MappedNetlist::map(&nl_slow, &lib);
        let d_slow = analyze(&m_slow).worst_delay_ns;
        assert!(d_slow > d_fast, "{d_slow} vs {d_fast}");
    }

    #[test]
    fn sequential_endpoint_includes_setup() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("seq");
        let x = b.input("x", 1);
        let q = b.dff(x[0]);
        let y = b.inv(q);
        let q2 = b.dff(y);
        b.output("y", &[q2]);
        let n = b.finish();
        let m = MappedNetlist::map(&n, &lib);
        let t = analyze(&m);
        // clk→Q + inverter + setup.
        assert!(t.worst_delay_ns > lib.setup_ns + 0.08);
    }

    #[test]
    fn comp42_cout_chain_does_not_ripple() {
        // A long same-stage cout chain must cost one cout arc, not N:
        // cout depends only on x1..x3, never on the chained cin.
        let lib = Library::nangate45();
        let build = |len: usize| {
            let mut b = NetlistBuilder::new("chain42");
            let x = b.input("x", 4 * len);
            let mut cin = rlmul_rtl::CONST0;
            let mut sums = Vec::new();
            for k in 0..len {
                let xs = [x[4 * k], x[4 * k + 1], x[4 * k + 2], x[4 * k + 3]];
                let (s, c, cout) = b.compressor42(xs, cin);
                sums.push(s);
                sums.push(c);
                cin = cout;
            }
            b.output("y", &sums);
            b.finish()
        };
        let short = build(2);
        let long = build(16);
        let d_short = analyze(&MappedNetlist::map(&short, &lib)).worst_delay_ns;
        let d_long = analyze(&MappedNetlist::map(&long, &lib)).worst_delay_ns;
        // One extra cin→sum arc at most — far below 14 extra couts.
        assert!(
            d_long < d_short + 0.05,
            "cout chain ripples: {d_short} → {d_long}"
        );
    }

    #[test]
    fn multiplier_delay_is_in_paper_regime() {
        // The paper's 8-bit AND multipliers land between 0.7 and
        // 0.9 ns at minimum-area sizing; the model should be within a
        // loose factor of that window.
        let lib = Library::nangate45();
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
        let m = MappedNetlist::map(&nl, &lib);
        let d = analyze(&m).worst_delay_ns;
        assert!((0.4..2.0).contains(&d), "delay = {d} ns");
    }
}
