//! Static timing analysis — the reproduction's OpenSTA stand-in.
//!
//! Arrival times propagate in topological order with the library's
//! load-dependent linear delay model. Endpoints are primary outputs
//! and flip-flop D pins (plus setup); startpoints are primary inputs
//! and flip-flop Q pins (plus clk→Q). The worst endpoint and its
//! critical path are reported for the sizing pass.
//!
//! Two engines share the delay model: [`analyze`] propagates over the
//! whole netlist, and [`IncrementalSta`] re-propagates only through
//! the fanout cone of gates touched by a sizing batch. Because both
//! evaluate the identical arc expression on identical operands, the
//! incremental arrivals are bit-identical to a full pass (asserted as
//! a debug-build oracle).

use crate::map::MappedNetlist;
use rlmul_rtl::{Gate, GateKind, NetId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The inputs that output slot `k` of `g` actually depends on.
fn arc_inputs(g: &Gate, k: usize) -> &[NetId] {
    match (g.kind, k) {
        (GateKind::Compressor42, 2) => &g.ins[..3], // cout = maj(x1, x2, x3)
        _ => &g.ins[..g.kind.num_inputs()],
    }
}

/// Result of one timing analysis.
#[derive(Debug, Clone)]
pub struct TimingReport {
    /// Worst path delay (combinational delay, or minimum clock period
    /// for sequential netlists), in ns.
    pub worst_delay_ns: f64,
    /// Arrival time of every net, ns.
    pub arrivals: Vec<f64>,
    /// Gates along the worst path, startpoint first.
    pub critical_path: Vec<usize>,
}

/// Work counters for the timing engines, kept per synthesis run so
/// the evaluation pipeline can report how much of the STA work the
/// incremental engine avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StaStats {
    /// Whole-netlist propagation passes.
    pub full_passes: usize,
    /// Incremental (fanout-cone) update passes.
    pub incremental_passes: usize,
    /// Gate evaluations performed by full passes.
    pub full_gate_visits: usize,
    /// Gate evaluations performed by incremental passes.
    pub incremental_gate_visits: usize,
}

impl StaStats {
    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: StaStats) {
        self.full_passes += other.full_passes;
        self.incremental_passes += other.incremental_passes;
        self.full_gate_visits += other.full_gate_visits;
        self.incremental_gate_visits += other.incremental_gate_visits;
    }
}

/// Evaluates the timing arcs of gate `gi`, writing the arrival of
/// each output net. Shared verbatim by the full and incremental
/// engines so their results are bit-identical.
#[inline]
fn propagate_gate(m: &MappedNetlist<'_>, gi: usize, g: &Gate, arrivals: &mut [f64]) {
    let cell = m.cell_of(gi);
    if g.kind == GateKind::Dff {
        // Q is a startpoint: clk→Q only.
        let q = g.outs[0];
        arrivals[q.0 as usize] = cell.intrinsic_ns[0];
        return;
    }
    for (k, &o) in g.outputs().iter().enumerate() {
        // Per-arc timing: the 4:2 compressor's cout depends only
        // on its first three inputs (never on cin), so same-stage
        // cout chains do not ripple.
        let at_in = arc_inputs(g, k).iter().map(|&i| arrivals[i.0 as usize]).fold(0.0f64, f64::max);
        let load = m.load_ff(o);
        arrivals[o.0 as usize] = at_in + cell.intrinsic_ns[k] + cell.drive_res_kohm * load / 1000.0;
    }
}

/// Endpoint scan: worst arrival over primary outputs, then flip-flop
/// D pins (plus setup). `dffs` optionally supplies the flip-flop gate
/// indices in ascending order so the scan skips the O(gates) walk; it
/// must list exactly the Dff gates in netlist order for the
/// tie-breaking (`>`, first maximum wins) to match a full scan.
pub(crate) fn worst_endpoint(
    m: &MappedNetlist<'_>,
    arrivals: &[f64],
    dffs: Option<&[u32]>,
) -> (f64, Option<NetId>) {
    let n = m.netlist();
    let mut worst = 0.0f64;
    let mut worst_net: Option<NetId> = None;
    for p in n.outputs() {
        for &b in &p.bits {
            if !b.is_const() && arrivals[b.0 as usize] > worst {
                worst = arrivals[b.0 as usize];
                worst_net = Some(b);
            }
        }
    }
    let setup = m.library().setup_ns;
    let mut check_dff = |g: &Gate| {
        if g.kind == GateKind::Dff {
            let d = g.ins[0];
            let t = arrivals[d.0 as usize] + setup;
            if t > worst {
                worst = t;
                worst_net = Some(d);
            }
        }
    };
    match dffs {
        Some(list) => list.iter().for_each(|&gi| check_dff(&n.gates()[gi as usize])),
        None => n.gates().iter().for_each(check_dff),
    }
    (worst, worst_net)
}

/// Critical-path extraction: walk max-arrival predecessors from the
/// worst endpoint back to a startpoint. Gates are returned startpoint
/// first.
pub(crate) fn critical_path_from(
    m: &MappedNetlist<'_>,
    arrivals: &[f64],
    worst_net: Option<NetId>,
) -> Vec<usize> {
    let n = m.netlist();
    let mut critical_path = Vec::new();
    let mut cur = worst_net;
    while let Some(net) = cur {
        let Some(gi) = m.driver_of(net) else { break };
        critical_path.push(gi);
        let g = &n.gates()[gi];
        if g.kind == GateKind::Dff {
            break; // startpoint reached
        }
        let slot =
            g.outputs().iter().position(|&o| o == net).expect("driver gate must own the net");
        cur = arc_inputs(g, slot)
            .iter()
            .filter(|i| !i.is_const())
            .max_by(|a, b| {
                arrivals[a.0 as usize]
                    .partial_cmp(&arrivals[b.0 as usize])
                    .expect("arrivals are finite")
            })
            .copied();
        if let Some(net) = cur {
            if m.driver_of(net).is_none() {
                break; // primary input
            }
        }
    }
    critical_path.reverse();
    critical_path
}

/// Endpoint scan and critical-path walk over finished arrivals.
fn report_from(m: &MappedNetlist<'_>, arrivals: Vec<f64>) -> TimingReport {
    let (worst, worst_net) = worst_endpoint(m, &arrivals, None);
    let critical_path = critical_path_from(m, &arrivals, worst_net);
    TimingReport { worst_delay_ns: worst, arrivals, critical_path }
}

/// Runs STA over the mapped netlist.
pub fn analyze(m: &MappedNetlist<'_>) -> TimingReport {
    let n = m.netlist();
    let mut arrivals = vec![0.0f64; n.num_nets() as usize];
    for (gi, g) in n.gates().iter().enumerate() {
        propagate_gate(m, gi, g, &mut arrivals);
    }
    report_from(m, arrivals)
}

/// Incremental timing engine for the sizing loop.
///
/// After a batch of drive-strength changes, only the gates whose
/// timing can have moved are re-evaluated: the resized gates
/// themselves, the drivers of their input nets (whose load changed
/// with the input capacitance), and — transitively — every reader of
/// a net whose arrival actually changed. Gates are processed in
/// ascending index order (the netlist's gate order is topological),
/// so each gate sees final fanin arrivals exactly as a full pass
/// would, and the arithmetic is bit-identical.
#[derive(Debug, Clone, Default)]
pub struct IncrementalSta {
    arrivals: Vec<f64>,
    queued: Vec<bool>,
    stats: StaStats,
}

/// Queue a gate for the topological worklist unless already queued.
#[inline]
fn push_gate(heap: &mut BinaryHeap<Reverse<u32>>, queued: &mut [bool], gi: usize) {
    if !queued[gi] {
        queued[gi] = true;
        heap.push(Reverse(gi as u32));
    }
}

impl IncrementalSta {
    /// A fresh engine; call [`IncrementalSta::analyze_full`] before
    /// the first [`IncrementalSta::update`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Engine pre-loaded with the arrivals of a *previous* netlist,
    /// ready to be rebased onto an edited one via
    /// [`IncrementalSta::patch_baseline`].
    pub fn from_baseline(arrivals: Vec<f64>) -> Self {
        IncrementalSta { arrivals, queued: Vec::new(), stats: StaStats::default() }
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> StaStats {
        self.stats
    }

    /// The cached per-net arrival times.
    pub fn arrivals(&self) -> &[f64] {
        &self.arrivals
    }

    /// Consumes the engine, yielding the cached arrivals without a
    /// copy.
    pub fn into_arrivals(self) -> Vec<f64> {
        self.arrivals
    }

    /// Whole-netlist pass that (re)seeds the cached arrivals.
    pub fn analyze_full(&mut self, m: &MappedNetlist<'_>) -> TimingReport {
        let report = analyze(m);
        self.arrivals = report.arrivals.clone();
        self.queued = vec![false; m.netlist().gates().len()];
        self.stats.full_passes += 1;
        self.stats.full_gate_visits += m.netlist().gates().len();
        report
    }

    /// Installs externally computed arrivals (e.g. a clone of a shared
    /// per-step baseline) without any propagation pass.
    pub fn seed(&mut self, m: &MappedNetlist<'_>, arrivals: Vec<f64>) {
        debug_assert_eq!(arrivals.len(), m.netlist().num_nets() as usize);
        self.queued = vec![false; m.netlist().gates().len()];
        self.arrivals = arrivals;
    }

    /// Re-propagates arrivals through the fanout cone of `resized`
    /// gates without producing a report. The caller must seed the
    /// engine first.
    pub fn propagate(&mut self, m: &MappedNetlist<'_>, resized: &[usize]) {
        assert!(!self.arrivals.is_empty(), "IncrementalSta::propagate before arrivals seeded");
        let gates = m.netlist().gates();
        let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();

        // Seeds: the resized gates (their drive resistance changed)
        // and the drivers of their input nets (their load changed via
        // the resized cell's input capacitance).
        for &gi in resized {
            push_gate(&mut heap, &mut self.queued, gi);
            for &i in gates[gi].inputs() {
                if let Some(d) = m.driver_of(i) {
                    push_gate(&mut heap, &mut self.queued, d);
                }
            }
        }
        self.drain(m, heap);
        self.stats.incremental_passes += 1;
    }

    /// Rebases cached arrivals from an old netlist onto `m_new`, where
    /// the two netlists share a gate prefix of `first_suffix_gate`
    /// gates. Every suffix gate is re-evaluated, plus the caller's
    /// `seeds` — prefix gates whose output load changed because the
    /// edit rewired their readers or primary-output fanout — plus,
    /// transitively, any reader of a net whose arrival moved. The
    /// result is bit-identical to a full [`analyze`] of `m_new`
    /// (asserted in debug builds).
    pub fn patch_baseline(
        &mut self,
        m_new: &MappedNetlist<'_>,
        seeds: &[usize],
        first_suffix_gate: usize,
    ) {
        assert!(!self.arrivals.is_empty(), "IncrementalSta::patch_baseline before analyze_full");
        let n = m_new.netlist();
        self.arrivals.resize(n.num_nets() as usize, 0.0);
        // Undriven ids (sweep holes, primary inputs) are never written
        // by a full pass and must read 0.0, not a stale old arrival.
        for net in 0..n.num_nets() {
            if m_new.driver_of(NetId(net)).is_none() {
                self.arrivals[net as usize] = 0.0;
            }
        }
        self.queued.clear();
        self.queued.resize(n.gates().len(), false);
        let mut heap: BinaryHeap<Reverse<u32>> = BinaryHeap::new();
        for &gi in seeds {
            push_gate(&mut heap, &mut self.queued, gi);
        }
        // Suffix-gate sinks are themselves suffix gates (gate order is
        // topological, so drivers precede readers), hence queueing the
        // whole suffix makes stale change-detection on reused net ids
        // harmless.
        for gi in first_suffix_gate..n.gates().len() {
            push_gate(&mut heap, &mut self.queued, gi);
        }
        self.drain(m_new, heap);
        self.stats.incremental_passes += 1;

        #[cfg(debug_assertions)]
        {
            let full = analyze(m_new);
            if full.arrivals != self.arrivals {
                let diffs: Vec<(usize, f64, f64)> = full
                    .arrivals
                    .iter()
                    .zip(&self.arrivals)
                    .enumerate()
                    .filter(|(_, (a, b))| a != b)
                    .map(|(i, (&a, &b))| (i, a, b))
                    .take(8)
                    .collect();
                panic!(
                    "patched STA baseline diverged from full analyze: \
                     first diffs (net, full, patched) = {diffs:?}, \
                     first_suffix_gate = {first_suffix_gate}",
                );
            }
        }
    }

    /// Topological worklist: ascending gate index equals topological
    /// order, and a changed net only ever wakes readers with larger
    /// indices, so every popped gate sees final fanin arrivals.
    fn drain(&mut self, m: &MappedNetlist<'_>, mut heap: BinaryHeap<Reverse<u32>>) {
        let gates = m.netlist().gates();
        while let Some(Reverse(gi)) = heap.pop() {
            let gi = gi as usize;
            self.queued[gi] = false;
            self.stats.incremental_gate_visits += 1;
            let g = &gates[gi];
            let mut before = [0.0f64; 3];
            for (k, &o) in g.outputs().iter().enumerate() {
                before[k] = self.arrivals[o.0 as usize];
            }
            propagate_gate(m, gi, g, &mut self.arrivals);
            for (k, &o) in g.outputs().iter().enumerate() {
                if self.arrivals[o.0 as usize] != before[k] {
                    for &(sink, _) in m.sinks(o) {
                        push_gate(&mut heap, &mut self.queued, sink as usize);
                    }
                }
            }
        }
    }

    /// Re-propagates arrivals through the fanout cone of `resized`
    /// gates and returns a report identical to a full [`analyze`].
    pub fn update(&mut self, m: &MappedNetlist<'_>, resized: &[usize]) -> TimingReport {
        assert!(!self.arrivals.is_empty(), "IncrementalSta::update before analyze_full");
        self.propagate(m, resized);

        let report = report_from(m, self.arrivals.clone());

        // Debug oracle: the incremental arrivals must be bit-identical
        // to a from-scratch full analysis.
        #[cfg(debug_assertions)]
        {
            let full = analyze(m);
            debug_assert!(
                full.arrivals == report.arrivals
                    && full.worst_delay_ns == report.worst_delay_ns
                    && full.critical_path == report.critical_path,
                "incremental STA diverged from full analyze \
                 (worst {} vs {})",
                report.worst_delay_ns,
                full.worst_delay_ns,
            );
        }

        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use rlmul_ct::{CompressorTree, PpgKind};
    use rlmul_rtl::{MultiplierNetlist, NetlistBuilder};

    #[test]
    fn chain_delay_accumulates() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("chain");
        let x = b.input("x", 1);
        let mut v = x[0];
        for _ in 0..10 {
            v = b.inv(v);
        }
        b.output("y", &[v]);
        let n = b.finish();
        let m = MappedNetlist::map(&n, &lib);
        let t = analyze(&m);
        // 10 inverters, each ≥ intrinsic 8 ps.
        assert!(t.worst_delay_ns > 0.08, "delay = {}", t.worst_delay_ns);
        assert_eq!(t.critical_path.len(), 10);
    }

    #[test]
    fn deeper_trees_are_slower() {
        let lib = Library::nangate45();
        let shallow = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let fast = MultiplierNetlist::elaborate(&shallow).unwrap();
        let nl_fast = fast.into_netlist();
        let m_fast = MappedNetlist::map(&nl_fast, &lib);
        let d_fast = analyze(&m_fast).worst_delay_ns;

        let big = CompressorTree::dadda(16, PpgKind::And).unwrap();
        let slow = MultiplierNetlist::elaborate(&big).unwrap();
        let nl_slow = slow.into_netlist();
        let m_slow = MappedNetlist::map(&nl_slow, &lib);
        let d_slow = analyze(&m_slow).worst_delay_ns;
        assert!(d_slow > d_fast, "{d_slow} vs {d_fast}");
    }

    #[test]
    fn sequential_endpoint_includes_setup() {
        let lib = Library::nangate45();
        let mut b = NetlistBuilder::new("seq");
        let x = b.input("x", 1);
        let q = b.dff(x[0]);
        let y = b.inv(q);
        let q2 = b.dff(y);
        b.output("y", &[q2]);
        let n = b.finish();
        let m = MappedNetlist::map(&n, &lib);
        let t = analyze(&m);
        // clk→Q + inverter + setup.
        assert!(t.worst_delay_ns > lib.setup_ns + 0.08);
    }

    #[test]
    fn comp42_cout_chain_does_not_ripple() {
        // A long same-stage cout chain must cost one cout arc, not N:
        // cout depends only on x1..x3, never on the chained cin.
        let lib = Library::nangate45();
        let build = |len: usize| {
            let mut b = NetlistBuilder::new("chain42");
            let x = b.input("x", 4 * len);
            let mut cin = rlmul_rtl::CONST0;
            let mut sums = Vec::new();
            for k in 0..len {
                let xs = [x[4 * k], x[4 * k + 1], x[4 * k + 2], x[4 * k + 3]];
                let (s, c, cout) = b.compressor42(xs, cin);
                sums.push(s);
                sums.push(c);
                cin = cout;
            }
            b.output("y", &sums);
            b.finish()
        };
        let short = build(2);
        let long = build(16);
        let d_short = analyze(&MappedNetlist::map(&short, &lib)).worst_delay_ns;
        let d_long = analyze(&MappedNetlist::map(&long, &lib)).worst_delay_ns;
        // One extra cin→sum arc at most — far below 14 extra couts.
        assert!(d_long < d_short + 0.05, "cout chain ripples: {d_short} → {d_long}");
    }

    #[test]
    fn multiplier_delay_is_in_paper_regime() {
        // The paper's 8-bit AND multipliers land between 0.7 and
        // 0.9 ns at minimum-area sizing; the model should be within a
        // loose factor of that window.
        let lib = Library::nangate45();
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
        let m = MappedNetlist::map(&nl, &lib);
        let d = analyze(&m).worst_delay_ns;
        assert!((0.4..2.0).contains(&d), "delay = {d} ns");
    }
}
