//! Switching-activity-based power estimation.
//!
//! Signal probabilities propagate from primary inputs (p = 0.5)
//! through the gate network under an independence assumption; toggle
//! rates follow `t = 2·p·(1 − p)`. Dynamic power combines net
//! switching energy (`½·C·V²` per toggle) with per-cell internal
//! energy, evaluated at the design's critical frequency; leakage sums
//! the cell table.

use crate::map::MappedNetlist;
use rlmul_rtl::GateKind;

/// Power breakdown in mW.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerReport {
    /// Net + internal switching power, mW.
    pub dynamic_mw: f64,
    /// Leakage power, mW.
    pub leakage_mw: f64,
}

impl PowerReport {
    /// Total power in mW.
    pub fn total_mw(&self) -> f64 {
        self.dynamic_mw + self.leakage_mw
    }
}

/// Estimates power at operating frequency `freq_ghz`.
pub fn estimate(m: &MappedNetlist<'_>, freq_ghz: f64) -> PowerReport {
    let n = m.netlist();
    let num_nets = n.num_nets() as usize;
    // Signal probability per net.
    let mut p = vec![0.5f64; num_nets];
    p[0] = 0.0;
    p[1] = 1.0;
    for g in n.gates() {
        let a = p[g.ins[0].0 as usize];
        let b = p[g.ins[1].0 as usize];
        let c = p[g.ins[2].0 as usize];
        let xor2 = |x: f64, y: f64| x + y - 2.0 * x * y;
        match g.kind {
            GateKind::Inv => p[g.outs[0].0 as usize] = 1.0 - a,
            GateKind::Buf | GateKind::Dff => p[g.outs[0].0 as usize] = a,
            GateKind::And2 => p[g.outs[0].0 as usize] = a * b,
            GateKind::Or2 => p[g.outs[0].0 as usize] = a + b - a * b,
            GateKind::Nand2 => p[g.outs[0].0 as usize] = 1.0 - a * b,
            GateKind::Nor2 => p[g.outs[0].0 as usize] = 1.0 - (a + b - a * b),
            GateKind::Xor2 => p[g.outs[0].0 as usize] = xor2(a, b),
            GateKind::Xnor2 => p[g.outs[0].0 as usize] = 1.0 - xor2(a, b),
            GateKind::Mux2 => p[g.outs[0].0 as usize] = c * b + (1.0 - c) * a,
            GateKind::HalfAdder => {
                p[g.outs[0].0 as usize] = xor2(a, b);
                p[g.outs[1].0 as usize] = a * b;
            }
            GateKind::FullAdder => {
                p[g.outs[0].0 as usize] = xor2(xor2(a, b), c);
                // Majority of independent a, b, c.
                p[g.outs[1].0 as usize] = a * b + a * c + b * c - 2.0 * a * b * c;
            }
            GateKind::Compressor42 => {
                let maj = |x: f64, y: f64, z: f64| x * y + x * z + y * z - 2.0 * x * y * z;
                let d = p[g.ins[3].0 as usize];
                let e = p[g.ins[4].0 as usize];
                let s1 = xor2(xor2(a, b), c);
                p[g.outs[0].0 as usize] = xor2(xor2(s1, d), e); // sum
                p[g.outs[1].0 as usize] = maj(s1, d, e); // carry
                p[g.outs[2].0 as usize] = maj(a, b, c); // cout
            }
        }
    }
    let vdd = m.library().vdd;
    let mut energy_fj_per_cycle = 0.0f64;
    let mut leakage_nw = 0.0f64;
    for (gi, g) in n.gates().iter().enumerate() {
        let cell = m.cell_of(gi);
        leakage_nw += cell.leakage_nw;
        for &o in g.outputs() {
            let prob = p[o.0 as usize];
            let toggle = 2.0 * prob * (1.0 - prob);
            let cap = m.load_ff(o);
            energy_fj_per_cycle += toggle * (0.5 * cap * vdd * vdd + cell.internal_energy_fj);
        }
    }
    // fJ per cycle × GHz = µW.
    let dynamic_mw = energy_fj_per_cycle * freq_ghz / 1000.0;
    let leakage_mw = leakage_nw / 1.0e6;
    PowerReport { dynamic_mw, leakage_mw }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::map::MappedNetlist;
    use rlmul_ct::{CompressorTree, PpgKind};
    use rlmul_rtl::MultiplierNetlist;

    #[test]
    fn power_scales_with_frequency() {
        let lib = Library::nangate45();
        let tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
        let m = MappedNetlist::map(&nl, &lib);
        let p1 = estimate(&m, 1.0);
        let p2 = estimate(&m, 2.0);
        assert!(p2.dynamic_mw > 1.9 * p1.dynamic_mw);
        assert!((p2.leakage_mw - p1.leakage_mw).abs() < 1e-12);
        assert!(p1.total_mw() > 0.0);
    }

    #[test]
    fn bigger_designs_burn_more_power() {
        let lib = Library::nangate45();
        let t8 = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let t16 = CompressorTree::dadda(16, PpgKind::And).unwrap();
        let n8 = MultiplierNetlist::elaborate(&t8).unwrap().into_netlist();
        let n16 = MultiplierNetlist::elaborate(&t16).unwrap().into_netlist();
        let p8 = estimate(&MappedNetlist::map(&n8, &lib), 1.0);
        let p16 = estimate(&MappedNetlist::map(&n16, &lib), 1.0);
        assert!(p16.total_mw() > 2.0 * p8.total_mw());
    }

    #[test]
    fn probabilities_stay_in_unit_interval() {
        let lib = Library::nangate45();
        let tree = CompressorTree::wallace(8, PpgKind::Mbe).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
        let m = MappedNetlist::map(&nl, &lib);
        // estimate() would produce NaN/negative energies otherwise.
        let p = estimate(&m, 1.0);
        assert!(p.dynamic_mw.is_finite() && p.dynamic_mw >= 0.0);
    }
}
