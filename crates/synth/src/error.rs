use std::error::Error;
use std::fmt;

/// Errors produced by the synthesis engine.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SynthError {
    /// The netlist contains no gates (nothing to map).
    EmptyNetlist,
    /// A delay sweep was requested with a degenerate range.
    InvalidSweep {
        /// Sweep start, ns.
        from_ns: f64,
        /// Sweep end, ns.
        to_ns: f64,
        /// Requested sample count.
        points: usize,
    },
}

impl fmt::Display for SynthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthError::EmptyNetlist => write!(f, "netlist has no gates to synthesize"),
            SynthError::InvalidSweep { from_ns, to_ns, points } => {
                write!(f, "invalid sweep: {from_ns} ns .. {to_ns} ns with {points} points")
            }
        }
    }
}

impl Error for SynthError {}
