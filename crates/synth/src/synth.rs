//! The synthesis driver: map → size under constraint → report PPA.

use crate::library::Library;
use crate::map::MappedNetlist;
use crate::power::estimate;
use crate::size::size_to_target;
use crate::sta::{analyze, StaStats};
use crate::SynthError;
use rlmul_rtl::Netlist;

/// Options for one synthesis run.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Target delay in ns. `None` synthesizes for minimum area
    /// (all-X1 mapping, no sizing).
    pub target_delay_ns: Option<f64>,
    /// Upper bound on sizing moves.
    pub max_upsizes: usize,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions { target_delay_ns: None, max_upsizes: 12000 }
    }
}

impl SynthesisOptions {
    /// Options targeting `delay_ns`.
    pub fn with_target(delay_ns: f64) -> Self {
        SynthesisOptions { target_delay_ns: Some(delay_ns), ..Default::default() }
    }
}

/// Synthesized power/performance/area numbers for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisReport {
    /// Total cell area, µm².
    pub area_um2: f64,
    /// Achieved critical delay, ns.
    pub delay_ns: f64,
    /// Total power at the critical frequency, mW.
    pub power_mw: f64,
    /// Target delay requested, if any.
    pub target_delay_ns: Option<f64>,
    /// Whether the target was met.
    pub met_target: bool,
    /// Instance counts at X1/X2/X4.
    pub drive_histogram: [usize; 3],
    /// Sizing moves applied.
    pub sizing_moves: usize,
    /// Gate instances.
    pub num_cells: usize,
    /// Timing-engine work performed by this run.
    pub sta: StaStats,
}

impl SynthesisReport {
    /// `(area, delay)` pair, the paper's two reduced objectives
    /// (Section IV-B folds power into area).
    pub fn area_delay(&self) -> (f64, f64) {
        (self.area_um2, self.delay_ns)
    }
}

/// A reusable synthesis engine bound to one library.
///
/// ```
/// use rlmul_ct::{CompressorTree, PpgKind};
/// use rlmul_rtl::MultiplierNetlist;
/// use rlmul_synth::{SynthesisOptions, Synthesizer};
///
/// let tree = CompressorTree::dadda(8, PpgKind::And)?;
/// let m = MultiplierNetlist::elaborate(&tree)?;
/// let synth = Synthesizer::nangate45();
/// let fast = synth.run(m.netlist(), &SynthesisOptions::with_target(0.6))?;
/// let small = synth.run(m.netlist(), &SynthesisOptions::default())?;
/// assert!(fast.area_um2 >= small.area_um2);
/// assert!(fast.delay_ns <= small.delay_ns);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct Synthesizer {
    library: Library,
}

impl Synthesizer {
    /// Engine with the NanGate45-flavoured default library.
    pub fn nangate45() -> Self {
        Synthesizer { library: Library::nangate45() }
    }

    /// Engine with a custom library.
    pub fn with_library(library: Library) -> Self {
        Synthesizer { library }
    }

    /// The bound library.
    pub fn library(&self) -> &Library {
        &self.library
    }

    /// Synthesizes `netlist` under `options`.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::EmptyNetlist`] for gate-free netlists.
    pub fn run(
        &self,
        netlist: &Netlist,
        options: &SynthesisOptions,
    ) -> Result<SynthesisReport, SynthError> {
        if netlist.gates().is_empty() {
            return Err(SynthError::EmptyNetlist);
        }
        let obs = rlmul_obs::global();
        let _span = obs.span("synth.run");
        // check: allow(wall-clock) duration feeds the obs histogram only
        let started = std::time::Instant::now();
        let mut mapped = MappedNetlist::map(netlist, &self.library);
        let (timing, moves, met, sta) = match options.target_delay_ns {
            Some(target) => {
                let out = size_to_target(&mut mapped, target, options.max_upsizes);
                (out.timing, out.moves, out.met_target, out.sta)
            }
            None => (
                analyze(&mapped),
                0,
                true,
                StaStats {
                    full_passes: 1,
                    full_gate_visits: netlist.gates().len(),
                    ..StaStats::default()
                },
            ),
        };
        let delay = timing.worst_delay_ns.max(1e-6);
        let power = estimate(&mapped, 1.0 / delay);
        if obs.is_enabled() {
            obs.counter("rlmul_synth_runs_total", "Synthesis runs completed.").inc();
            obs.histogram("rlmul_synth_run_seconds", "Wall time per synthesis run.")
                .observe_duration(started.elapsed());
            let visits = "Gate evaluations performed by timing analysis.";
            obs.labeled_counter("rlmul_sta_gate_visits_total", visits, &[("mode", "full")])
                .add(sta.full_gate_visits as u64);
            obs.labeled_counter("rlmul_sta_gate_visits_total", visits, &[("mode", "incremental")])
                .add(sta.incremental_gate_visits as u64);
            let passes = "Timing-analysis propagation passes.";
            obs.labeled_counter("rlmul_sta_passes_total", passes, &[("mode", "full")])
                .add(sta.full_passes as u64);
            obs.labeled_counter("rlmul_sta_passes_total", passes, &[("mode", "incremental")])
                .add(sta.incremental_passes as u64);
        }
        Ok(SynthesisReport {
            area_um2: mapped.area_um2(),
            delay_ns: timing.worst_delay_ns,
            power_mw: power.total_mw(),
            target_delay_ns: options.target_delay_ns,
            met_target: met,
            drive_histogram: mapped.drive_histogram(),
            sizing_moves: moves,
            num_cells: netlist.gates().len(),
            sta,
        })
    }

    /// Synthesizes once per target delay — the paper's "synthesis
    /// under multiple design constraints" producing the points the
    /// Pareto-driven reward aggregates (Eq. 9).
    ///
    /// # Errors
    ///
    /// Same as [`Synthesizer::run`].
    pub fn run_multi(
        &self,
        netlist: &Netlist,
        targets_ns: &[f64],
    ) -> Result<Vec<SynthesisReport>, SynthError> {
        let options: Vec<SynthesisOptions> =
            targets_ns.iter().map(|&t| SynthesisOptions::with_target(t)).collect();
        self.run_many(netlist, &options)
    }

    /// Runs one synthesis per option set, fanning the independent
    /// runs out over scoped threads and collecting reports in option
    /// order.
    ///
    /// Each run maps, sizes, and times its own private
    /// [`MappedNetlist`]; `self` and `netlist` are only read. That
    /// shared-`&self` contract is what makes [`Synthesizer`] safe to
    /// call from many threads at once, and it keeps the parallel
    /// reports bit-identical to [`Synthesizer::run_many_serial`] —
    /// the same deterministic computation runs per target, only the
    /// wall-clock interleaving changes.
    ///
    /// # Errors
    ///
    /// The first error in option order, as [`Synthesizer::run`].
    pub fn run_many(
        &self,
        netlist: &Netlist,
        options: &[SynthesisOptions],
    ) -> Result<Vec<SynthesisReport>, SynthError> {
        if options.len() < 2 {
            return self.run_many_serial(netlist, options);
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> =
                options.iter().map(|o| scope.spawn(move || self.run(netlist, o))).collect();
            handles.into_iter().map(|h| h.join().expect("synthesis worker panicked")).collect()
        })
    }

    /// Serial reference path for [`Synthesizer::run_many`]: identical
    /// reports, one thread.
    pub fn run_many_serial(
        &self,
        netlist: &Netlist,
        options: &[SynthesisOptions],
    ) -> Result<Vec<SynthesisReport>, SynthError> {
        options.iter().map(|o| self.run(netlist, o)).collect()
    }

    /// Sweeps target delays uniformly over `[from_ns, to_ns]` with
    /// `points` samples (paper Section V-A sweeps 0.05–1.2 ns),
    /// returning one report per target.
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::InvalidSweep`] when `points < 2` or the
    /// range is degenerate; otherwise as [`Synthesizer::run`].
    pub fn sweep(
        &self,
        netlist: &Netlist,
        from_ns: f64,
        to_ns: f64,
        points: usize,
    ) -> Result<Vec<SynthesisReport>, SynthError> {
        if points < 2 || from_ns >= to_ns {
            return Err(SynthError::InvalidSweep { from_ns, to_ns, points });
        }
        let targets: Vec<f64> = (0..points)
            .map(|i| from_ns + (to_ns - from_ns) * i as f64 / (points - 1) as f64)
            .collect();
        self.run_multi(netlist, &targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::{CompressorTree, PpgKind};
    use rlmul_rtl::MultiplierNetlist;

    fn mul_netlist(bits: usize, kind: PpgKind) -> Netlist {
        let tree = CompressorTree::wallace(bits, kind).unwrap();
        MultiplierNetlist::elaborate(&tree).unwrap().into_netlist()
    }

    #[test]
    fn min_area_8bit_multiplier_is_in_paper_ballpark() {
        // Paper Table I: 8-bit AND multipliers at minimum area sit
        // near 390–430 µm². The model should land within ±40%.
        let synth = Synthesizer::nangate45();
        let r = synth.run(&mul_netlist(8, PpgKind::And), &SynthesisOptions::default()).unwrap();
        assert!((250.0..650.0).contains(&r.area_um2), "area = {}", r.area_um2);
    }

    #[test]
    fn sixteen_bit_is_about_four_times_eight_bit() {
        let synth = Synthesizer::nangate45();
        let r8 = synth.run(&mul_netlist(8, PpgKind::And), &SynthesisOptions::default()).unwrap();
        let r16 = synth.run(&mul_netlist(16, PpgKind::And), &SynthesisOptions::default()).unwrap();
        let ratio = r16.area_um2 / r8.area_um2;
        assert!((3.0..5.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn tighter_targets_grow_area_monotonically_ish() {
        let synth = Synthesizer::nangate45();
        let nl = mul_netlist(8, PpgKind::And);
        let reports = synth.sweep(&nl, 0.5, 1.2, 5).unwrap();
        let first = &reports[0]; // tightest
        let last = &reports[reports.len() - 1]; // loosest
        assert!(first.area_um2 >= last.area_um2);
        assert!(first.delay_ns <= last.delay_ns + 1e-9);
    }

    #[test]
    fn empty_netlist_is_an_error() {
        use rlmul_rtl::NetlistBuilder;
        let mut b = NetlistBuilder::new("empty");
        let x = b.input("x", 1);
        b.output("y", &[x[0]]);
        let n = b.finish();
        let synth = Synthesizer::nangate45();
        assert!(matches!(
            synth.run(&n, &SynthesisOptions::default()),
            Err(SynthError::EmptyNetlist)
        ));
    }

    #[test]
    fn run_multi_returns_one_report_per_target() {
        let synth = Synthesizer::nangate45();
        let nl = mul_netlist(4, PpgKind::And);
        let reports = synth.run_multi(&nl, &[0.8, 1.0, 1.4]).unwrap();
        assert_eq!(reports.len(), 3);
        assert_eq!(reports[1].target_delay_ns, Some(1.0));
    }

    #[test]
    fn drive_histogram_sums_to_cell_count() {
        let synth = Synthesizer::nangate45();
        let nl = mul_netlist(8, PpgKind::And);
        let r = synth.run(&nl, &SynthesisOptions::with_target(0.9)).unwrap();
        assert_eq!(
            r.drive_histogram.iter().sum::<usize>(),
            r.num_cells,
            "every instance has exactly one drive strength"
        );
    }

    #[test]
    fn sequential_designs_synthesize() {
        use rlmul_rtl::{pe_array, PeArrayConfig, PeStyle};
        let tree = CompressorTree::dadda(4, PpgKind::And).unwrap();
        let nl =
            pe_array(&tree, PeArrayConfig { rows: 2, cols: 2, style: PeStyle::MultiplierAdder })
                .unwrap();
        let synth = Synthesizer::nangate45();
        let r = synth.run(&nl, &SynthesisOptions::default()).unwrap();
        assert!(r.power_mw > 0.0 && r.delay_ns > 0.0);
    }

    #[test]
    fn parallel_run_many_is_bit_identical_to_serial() {
        let synth = Synthesizer::nangate45();
        let nl = mul_netlist(8, PpgKind::And);
        let options: Vec<SynthesisOptions> =
            [0.7, 0.85, 1.0, 1.15].iter().map(|&t| SynthesisOptions::with_target(t)).collect();
        let parallel = synth.run_many(&nl, &options).unwrap();
        let serial = synth.run_many_serial(&nl, &options).unwrap();
        assert_eq!(parallel, serial);
        for (r, o) in parallel.iter().zip(&options) {
            assert_eq!(r.target_delay_ns, o.target_delay_ns, "reports stay in request order");
        }
    }

    #[test]
    fn invalid_sweep_is_rejected() {
        let synth = Synthesizer::nangate45();
        let nl = mul_netlist(4, PpgKind::And);
        assert!(synth.sweep(&nl, 1.0, 0.5, 4).is_err());
        assert!(synth.sweep(&nl, 0.5, 1.0, 1).is_err());
    }
}
