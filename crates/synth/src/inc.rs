//! Incremental synthesis session: re-synthesize an edited netlist in
//! time proportional to the edit, with results bit-identical to a
//! from-scratch [`Synthesizer`] run.
//!
//! The session caches, between calls, everything a full run would
//! rebuild from zero even though most of it did not change:
//!
//! * the previous netlist and its [`NetConn`] connectivity tables —
//!   patched over the differing gate suffix instead of rebuilt;
//! * the all-X1 baseline arrival times — rebased through the edit's
//!   fanout cone by [`IncrementalSta::patch_baseline`] instead of a
//!   whole-netlist propagation pass;
//! * the (ascending) flip-flop gate list for endpoint scans.
//!
//! Per delay target, the sizing loop then runs
//! [`size_to_target_seeded`], which mirrors [`size_to_target`]
//! decision for decision. Because every floating-point operation that
//! feeds a decision is evaluated on identical operands in identical
//! order, the reported PPA numbers equal the full run's bit for bit —
//! only the [`StaStats`] work counters differ (that equality is
//! asserted as a debug-build oracle against a real full run).

use crate::library::{Drive, Library};
use crate::map::{x1_cell_of, MappedNetlist, NetConn};
use crate::power::estimate;
use crate::size::{size_to_target_seeded, size_to_targets_seeded};
use crate::sta::{critical_path_from, worst_endpoint, IncrementalSta, StaStats, TimingReport};
use crate::synth::{SynthesisOptions, SynthesisReport, Synthesizer};
use crate::SynthError;
use rlmul_rtl::{GateKind, NetId, Netlist};

/// State carried from the previous call.
#[derive(Debug, Clone)]
struct PrevState {
    netlist: Netlist,
    conn: NetConn,
    /// All-X1 arrival times (the sizing loops' shared starting point).
    baseline: Vec<f64>,
    /// Dff gate indices in ascending (= netlist) order.
    dffs: Vec<u32>,
    /// All-X1 cell binding — each target's mapping starts as a memcpy
    /// of this instead of per-gate library scans.
    cell_of: Vec<usize>,
}

/// How the shared per-step state was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SynthMode {
    /// No usable previous state: everything was built from scratch.
    Full,
    /// Previous state was patched over the edit suffix.
    Patched,
}

/// A stateful synthesis engine for sequences of closely related
/// netlists — the RL loop's one-action-per-step edits.
///
/// [`IncrementalSynthesis::run_many`] accepts the same inputs as
/// [`Synthesizer::run_many`] and returns bit-identical reports
/// (modulo [`StaStats`]); it is simply faster when the netlist shares
/// a long gate prefix with the previous call's.
#[derive(Debug, Clone)]
pub struct IncrementalSynthesis {
    synthesizer: Synthesizer,
    prev: Option<PrevState>,
    last_mode: Option<SynthMode>,
}

/// Longest shared gate prefix of two netlists.
fn shared_gate_prefix(a: &Netlist, b: &Netlist) -> usize {
    a.gates().iter().zip(b.gates()).take_while(|(x, y)| x == y).count()
}

impl IncrementalSynthesis {
    /// A session around `synthesizer`.
    pub fn new(synthesizer: Synthesizer) -> Self {
        IncrementalSynthesis { synthesizer, prev: None, last_mode: None }
    }

    /// Session with the NanGate45-flavoured default library.
    pub fn nangate45() -> Self {
        Self::new(Synthesizer::nangate45())
    }

    /// The bound library.
    pub fn library(&self) -> &Library {
        self.synthesizer.library()
    }

    /// The underlying stateless engine.
    pub fn synthesizer(&self) -> &Synthesizer {
        &self.synthesizer
    }

    /// Drops cached state; the next call rebuilds from scratch.
    pub fn reset(&mut self) {
        self.prev = None;
        self.last_mode = None;
    }

    /// Whether the previous [`IncrementalSynthesis::run_many`] patched
    /// cached state or built it from scratch.
    pub fn last_mode(&self) -> Option<SynthMode> {
        self.last_mode
    }

    /// Synthesizes once per target delay, like
    /// [`Synthesizer::run_multi`].
    ///
    /// # Errors
    ///
    /// As [`IncrementalSynthesis::run_many`].
    pub fn run_multi(
        &mut self,
        netlist: &Netlist,
        targets_ns: &[f64],
    ) -> Result<Vec<SynthesisReport>, SynthError> {
        let options: Vec<SynthesisOptions> =
            targets_ns.iter().map(|&t| SynthesisOptions::with_target(t)).collect();
        self.run_many(netlist, &options)
    }

    /// Runs one synthesis per option set against `netlist`, reusing as
    /// much of the previous call's work as the gate-prefix overlap
    /// allows. Reports are in option order and bit-identical (modulo
    /// [`StaStats`]) to [`Synthesizer::run_many`].
    ///
    /// # Errors
    ///
    /// Returns [`SynthError::EmptyNetlist`] for gate-free netlists.
    pub fn run_many(
        &mut self,
        netlist: &Netlist,
        options: &[SynthesisOptions],
    ) -> Result<Vec<SynthesisReport>, SynthError> {
        if netlist.gates().is_empty() {
            return Err(SynthError::EmptyNetlist);
        }
        let obs = rlmul_obs::global();
        let _span = obs.span("synth.inc_run");
        // check: allow(wall-clock) duration feeds the obs histogram only
        let started = std::time::Instant::now();

        let (conn, baseline, dffs, cell_of, mode) = self.prepare_state(netlist);
        let library = self.synthesizer.library();

        let mut slots: Vec<Option<SynthesisReport>> = options.iter().map(|_| None).collect();
        // Min-area options report straight off the shared baseline.
        for (i, o) in options.iter().enumerate() {
            if o.target_delay_ns.is_none() {
                slots[i] = Some(run_option(netlist, library, &conn, &baseline, &dffs, &cell_of, o));
            }
        }

        // Delay-targeted options with a common move budget share one
        // sizing trajectory: batch selection never reads the target,
        // so each option's independent run is a prefix of the
        // tightest's, and its report is emitted at its stop point.
        let targeted: Vec<usize> =
            (0..options.len()).filter(|&i| options[i].target_delay_ns.is_some()).collect();
        let shareable = targeted.len() >= 2
            && targeted.iter().all(|&i| options[i].max_upsizes == options[targeted[0]].max_upsizes);
        if shareable {
            let _s = obs.span("synth.inc_sizing");
            let targets: Vec<f64> =
                targeted.iter().map(|&i| options[i].target_delay_ns.expect("targeted")).collect();
            let mut mapped =
                MappedNetlist::map_with_parts(netlist, library, &conn, cell_of.clone());
            size_to_targets_seeded(
                &mut mapped,
                &targets,
                options[targeted[0]].max_upsizes,
                baseline.clone(),
                &dffs,
                |m, ti, stop| {
                    let oi = targeted[ti];
                    let delay = stop.worst_delay_ns.max(1e-6);
                    let power = estimate(m, 1.0 / delay);
                    slots[oi] = Some(SynthesisReport {
                        area_um2: m.area_um2(),
                        delay_ns: stop.worst_delay_ns,
                        power_mw: power.total_mw(),
                        target_delay_ns: options[oi].target_delay_ns,
                        met_target: stop.met_target,
                        drive_histogram: m.drive_histogram(),
                        sizing_moves: stop.moves,
                        num_cells: netlist.gates().len(),
                        sta: stop.sta,
                    });
                },
            );
        } else {
            for &i in &targeted {
                slots[i] = Some(run_option(
                    netlist,
                    library,
                    &conn,
                    &baseline,
                    &dffs,
                    &cell_of,
                    &options[i],
                ));
            }
        }
        let reports: Vec<SynthesisReport> =
            slots.into_iter().map(|s| s.expect("every option produced a report")).collect();

        // Debug oracle: the incremental session must report the same
        // PPA as a from-scratch run, bit for bit (work counters aside).
        #[cfg(debug_assertions)]
        for (r, o) in reports.iter().zip(options) {
            let full = self.synthesizer.run(netlist, o).expect("full-run oracle failed");
            debug_assert!(
                r.area_um2 == full.area_um2
                    && r.delay_ns == full.delay_ns
                    && r.power_mw == full.power_mw
                    && r.met_target == full.met_target
                    && r.drive_histogram == full.drive_histogram
                    && r.sizing_moves == full.sizing_moves
                    && r.num_cells == full.num_cells,
                "incremental synthesis diverged from full run at target {:?}: \
                 {:?} vs {:?}",
                o.target_delay_ns,
                (r.area_um2, r.delay_ns, r.power_mw),
                (full.area_um2, full.delay_ns, full.power_mw),
            );
        }

        if obs.is_enabled() {
            obs.counter("rlmul_synth_inc_sessions_total", "Incremental synthesis session runs.")
                .inc();
            let label = match mode {
                SynthMode::Full => "full",
                SynthMode::Patched => "patched",
            };
            obs.labeled_counter(
                "rlmul_synth_inc_mode_total",
                "Incremental synthesis state preparation mode.",
                &[("mode", label)],
            )
            .inc();
            obs.histogram(
                "rlmul_synth_inc_run_seconds",
                "Wall time per incremental synthesis session run.",
            )
            .observe_duration(started.elapsed());
        }

        self.prev = Some(PrevState { netlist: netlist.clone(), conn, baseline, dffs, cell_of });
        self.last_mode = Some(mode);
        Ok(reports)
    }

    /// Produces the shared per-step state for `netlist`: connectivity
    /// tables, all-X1 baseline arrivals, and the Dff list — patched
    /// from the previous call when the netlists overlap, rebuilt
    /// otherwise.
    fn prepare_state(
        &mut self,
        netlist: &Netlist,
    ) -> (NetConn, Vec<f64>, Vec<u32>, Vec<usize>, SynthMode) {
        let _s = rlmul_obs::global().span("synth.inc_prepare");
        let taken = self.prev.take();
        let library = self.synthesizer.library();
        let prev = match taken {
            // Patching splices suffixes over a shared gate prefix and
            // identical input ports; anything else falls back to a
            // from-scratch build.
            Some(p) if p.netlist.inputs() == netlist.inputs() => p,
            _ => {
                let conn = NetConn::build(netlist);
                let cell_of = x1_cell_of(netlist, library);
                let mapped =
                    MappedNetlist::map_with_parts(netlist, library, &conn, cell_of.clone());
                let baseline = crate::sta::analyze(&mapped).arrivals;
                let dffs = dff_list(netlist, 0, &[]);
                return (conn, baseline, dffs, cell_of, SynthMode::Full);
            }
        };

        let k = shared_gate_prefix(&prev.netlist, netlist);
        let PrevState { netlist: old, mut conn, baseline, mut dffs, mut cell_of } = prev;

        // Prefix gates whose output load the edit can change: drivers
        // of any net the old or new suffix reads, and drivers of
        // primary-output bits (their PO fanout may move). Collected
        // against the *new* netlist's tables — stale old-only nets
        // resolve to None and suffix drivers (≥ k) are already queued.
        conn.patch(&old, netlist, k);
        let mut touched: Vec<NetId> = Vec::new();
        for g in old.gates().iter().skip(k).chain(netlist.gates().iter().skip(k)) {
            touched.extend(g.inputs().iter().copied());
        }
        for p in old.outputs().iter().chain(netlist.outputs()) {
            touched.extend(p.bits.iter().copied());
        }
        let mut seeds: Vec<usize> = touched
            .into_iter()
            .filter_map(|net| conn.driver_index(net))
            .filter(|&d| (d as usize) < k)
            .map(|d| d as usize)
            .collect();
        seeds.sort_unstable();
        seeds.dedup();

        // Rebase the cell template over the suffix: prefix bindings
        // are all-X1 already, so only the new tail needs lookups —
        // memoized per gate kind, since `Library::cell_index` is a
        // linear scan and the suffix repeats a handful of kinds.
        let mut x1_memo = [usize::MAX; 16];
        cell_of.truncate(k);
        cell_of.extend(netlist.gates().iter().skip(k).map(|g| {
            let slot = &mut x1_memo[g.kind as usize];
            if *slot == usize::MAX {
                *slot = library.cell_index(g.kind, Drive::X1);
            }
            *slot
        }));

        let mapped = MappedNetlist::map_with_parts(netlist, library, &conn, cell_of.clone());
        let mut sta = IncrementalSta::from_baseline(baseline);
        sta.patch_baseline(&mapped, &seeds, k);
        let baseline = sta.into_arrivals();

        dffs.retain(|&gi| (gi as usize) < k);
        let suffix_dffs = dff_list(netlist, k, &dffs);
        (conn, baseline, suffix_dffs, cell_of, SynthMode::Patched)
    }
}

/// One synthesis target over the shared per-step state — the per-job
/// body of [`IncrementalSynthesis::run_many`].
fn run_option(
    netlist: &Netlist,
    library: &Library,
    conn: &NetConn,
    baseline: &[f64],
    dffs: &[u32],
    cell_of: &[usize],
    o: &SynthesisOptions,
) -> SynthesisReport {
    let _s = rlmul_obs::global().span("synth.inc_option");
    let mut mapped = MappedNetlist::map_with_parts(netlist, library, conn, cell_of.to_vec());
    let (timing, moves, met, sta) = match o.target_delay_ns {
        Some(target) => {
            let out =
                size_to_target_seeded(&mut mapped, target, o.max_upsizes, baseline.to_vec(), dffs);
            (out.timing, out.moves, out.met_target, out.sta)
        }
        None => {
            // Minimum-area mapping: report straight off the shared
            // baseline, no sizing.
            let (worst, worst_net) = worst_endpoint(&mapped, baseline, Some(dffs));
            let critical_path = critical_path_from(&mapped, baseline, worst_net);
            let timing =
                TimingReport { worst_delay_ns: worst, arrivals: baseline.to_vec(), critical_path };
            (timing, 0, true, StaStats::default())
        }
    };
    let delay = timing.worst_delay_ns.max(1e-6);
    let power = estimate(&mapped, 1.0 / delay);
    SynthesisReport {
        area_um2: mapped.area_um2(),
        delay_ns: timing.worst_delay_ns,
        power_mw: power.total_mw(),
        target_delay_ns: o.target_delay_ns,
        met_target: met,
        drive_histogram: mapped.drive_histogram(),
        sizing_moves: moves,
        num_cells: netlist.gates().len(),
        sta,
    }
}

/// Moves `prefix` + the Dff gates of `netlist.gates()[from..]` into
/// one ascending list.
fn dff_list(netlist: &Netlist, from: usize, prefix: &[u32]) -> Vec<u32> {
    let mut dffs = prefix.to_vec();
    for (gi, g) in netlist.gates().iter().enumerate().skip(from) {
        if g.kind == GateKind::Dff {
            dffs.push(gi as u32);
        }
    }
    dffs
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::{CompressorTree, PpgKind};
    use rlmul_rtl::{IncrementalMultiplier, MultiplierNetlist};

    const TARGETS: [f64; 4] = [0.7, 0.85, 1.0, 1.15];

    fn strip_sta(mut r: SynthesisReport) -> SynthesisReport {
        r.sta = StaStats::default();
        r
    }

    #[test]
    fn session_matches_full_runs_across_an_action_walk() {
        let tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let mut inc = IncrementalMultiplier::new(&tree).unwrap();
        let mut session = IncrementalSynthesis::nangate45();
        let full = Synthesizer::nangate45();

        // Deterministic action walk, as in the rtl incremental tests.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut tree = tree;
        for step in 0..4 {
            let reports = session.run_multi(inc.netlist(), &TARGETS).unwrap();
            let oracle = full.run_multi(inc.netlist(), &TARGETS).unwrap();
            for (r, o) in reports.into_iter().zip(oracle) {
                assert_eq!(strip_sta(r), strip_sta(o), "step {step}");
            }
            let actions = tree.valid_actions();
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = actions[(seed >> 33) as usize % actions.len()];
            tree = tree.apply_action(a).unwrap();
            inc.retarget(&tree).unwrap();
        }
        assert_eq!(session.last_mode(), Some(SynthMode::Patched));
    }

    #[test]
    fn first_run_is_full_then_patched() {
        let tree = CompressorTree::wallace(4, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
        let mut session = IncrementalSynthesis::nangate45();
        session.run_multi(&nl, &[1.0]).unwrap();
        assert_eq!(session.last_mode(), Some(SynthMode::Full));
        session.run_multi(&nl, &[1.0]).unwrap();
        assert_eq!(session.last_mode(), Some(SynthMode::Patched));
        session.reset();
        session.run_multi(&nl, &[1.0]).unwrap();
        assert_eq!(session.last_mode(), Some(SynthMode::Full));
    }

    #[test]
    fn min_area_run_matches_full_path() {
        let tree = CompressorTree::dadda(4, PpgKind::Mbe).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
        let mut session = IncrementalSynthesis::nangate45();
        let r = session.run_many(&nl, &[SynthesisOptions::default()]).unwrap();
        let o = Synthesizer::nangate45().run(&nl, &SynthesisOptions::default()).unwrap();
        assert_eq!(strip_sta(r.into_iter().next().unwrap()), strip_sta(o));
    }

    #[test]
    fn empty_netlist_is_an_error() {
        let mut b = rlmul_rtl::NetlistBuilder::new("empty");
        let x = b.input("x", 1);
        b.output("y", &[x[0]]);
        let n = b.finish();
        let mut session = IncrementalSynthesis::nangate45();
        assert!(matches!(session.run_many(&n, &[]), Err(SynthError::EmptyNetlist)));
    }
}
