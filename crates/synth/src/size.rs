//! TILOS-style greedy gate sizing under a delay target.
//!
//! Starting from an all-X1 mapping (minimum area), the sizer
//! repeatedly upsizes the critical-path cell with the best estimated
//! delay-gain per added area until the target is met, no move helps,
//! or the move budget is exhausted. This reproduces the mechanism by
//! which synthesizing the same RTL under different delay constraints
//! yields different area/power points (paper Section V-A).

use crate::library::Drive;
use crate::map::MappedNetlist;
use crate::sta::{critical_path_from, worst_endpoint, IncrementalSta, StaStats, TimingReport};

/// Result of a sizing run.
#[derive(Debug, Clone)]
pub struct SizingOutcome {
    /// Final timing report.
    pub timing: TimingReport,
    /// Upsizing moves applied.
    pub moves: usize,
    /// Whether the delay target was met.
    pub met_target: bool,
    /// Timing-engine work counters for this run.
    pub sta: StaStats,
}

/// Upsizing moves applied per timing-analysis pass. Classic TILOS
/// re-times after every move; batching positive-gain moves along the
/// critical path converges to near-identical results in far fewer
/// STA passes, which matters for 10⁵-gate PE arrays.
const MOVES_PER_PASS: usize = 8;

/// Upstream resistance assumed when the critical input is a primary
/// input (no driver cell to read): a typical X1 drive resistance.
const PRIMARY_INPUT_DRIVE_RES_KOHM: f64 = 5.5;

/// Sizes `m` toward `target_ns`; `max_moves` bounds the loop.
///
/// One full timing pass seeds the loop; every sizing batch after that
/// is re-timed incrementally through the fanout cone of the resized
/// gates only (bit-identical to a full pass; see [`IncrementalSta`]).
pub fn size_to_target(
    m: &mut MappedNetlist<'_>,
    target_ns: f64,
    max_moves: usize,
) -> SizingOutcome {
    let mut sta = IncrementalSta::new();
    let mut timing = sta.analyze_full(m);
    let mut moves = 0;
    let mut resized = Vec::with_capacity(MOVES_PER_PASS);
    while timing.worst_delay_ns > target_ns && moves < max_moves {
        let batch = best_moves(
            m,
            &timing.critical_path,
            &timing.arrivals,
            MOVES_PER_PASS.min(max_moves - moves),
        );
        if batch.is_empty() {
            break;
        }
        resized.clear();
        for &(gi, drive) in &batch {
            m.set_drive(gi, drive);
            resized.push(gi);
        }
        moves += batch.len();
        timing = sta.update(m, &resized);
    }
    let met_target = timing.worst_delay_ns <= target_ns;
    SizingOutcome { timing, moves, met_target, sta: sta.stats() }
}

/// Variant of [`size_to_target`] that starts from externally supplied
/// all-X1 baseline arrivals instead of a full timing pass, and avoids
/// the per-batch arrival clone and whole-netlist flip-flop scan of the
/// report path (`dffs` lists the Dff gate indices in ascending order).
///
/// Decision-for-decision it mirrors [`size_to_target`] — same batch
/// selection, same convergence test, same arc arithmetic — so the
/// final drive assignment, move count, and worst delay are
/// bit-identical to the from-scratch run. Only the [`StaStats`] work
/// counters differ (no initial full pass is charged).
pub fn size_to_target_seeded(
    m: &mut MappedNetlist<'_>,
    target_ns: f64,
    max_moves: usize,
    baseline: Vec<f64>,
    dffs: &[u32],
) -> SizingOutcome {
    let mut sta = IncrementalSta::new();
    sta.seed(m, baseline);
    let (mut worst, mut worst_net) = worst_endpoint(m, sta.arrivals(), Some(dffs));
    let mut moves = 0;
    let mut resized = Vec::with_capacity(MOVES_PER_PASS);
    while worst > target_ns && moves < max_moves {
        let path = critical_path_from(m, sta.arrivals(), worst_net);
        let batch = best_moves(m, &path, sta.arrivals(), MOVES_PER_PASS.min(max_moves - moves));
        if batch.is_empty() {
            break;
        }
        resized.clear();
        for &(gi, drive) in &batch {
            m.set_drive(gi, drive);
            resized.push(gi);
        }
        moves += batch.len();
        sta.propagate(m, &resized);
        (worst, worst_net) = worst_endpoint(m, sta.arrivals(), Some(dffs));
    }
    let met_target = worst <= target_ns;
    let critical_path = critical_path_from(m, sta.arrivals(), worst_net);
    let timing =
        TimingReport { worst_delay_ns: worst, arrivals: sta.arrivals().to_vec(), critical_path };
    SizingOutcome { timing, moves, met_target, sta: sta.stats() }
}

/// Stop-state handed to the emission callback of
/// [`size_to_targets_seeded`].
#[derive(Debug, Clone)]
pub struct TargetStop {
    /// Worst endpoint arrival at the stop point.
    pub worst_delay_ns: f64,
    /// Upsizing moves applied up to the stop point.
    pub moves: usize,
    /// Whether the target was met there.
    pub met_target: bool,
    /// Timing-engine work counters at the stop point.
    pub sta: StaStats,
}

/// Sizes `m` along the single TILOS trajectory shared by several
/// delay targets, reporting each entry of `targets_ns` at its stop
/// point via `emit(m, target_index, stop)`.
///
/// [`size_to_target`]'s batch selection depends only on the current
/// mapping and arrival state — the delay target merely decides when
/// the loop *stops*. Every looser target's independent run is
/// therefore a prefix of the tightest target's, and one trajectory
/// serves all targets bit-identically: `emit` observes `m` exactly as
/// the equivalent [`size_to_target_seeded`] call (same `max_moves`,
/// same baseline) would have left it. The evaluation pipeline leans on
/// this to synthesize a netlist under its whole fan of delay
/// constraints for little more than the cost of the tightest one.
pub fn size_to_targets_seeded(
    m: &mut MappedNetlist<'_>,
    targets_ns: &[f64],
    max_moves: usize,
    baseline: Vec<f64>,
    dffs: &[u32],
    mut emit: impl FnMut(&MappedNetlist<'_>, usize, &TargetStop),
) {
    let mut sta = IncrementalSta::new();
    sta.seed(m, baseline);
    let (mut worst, mut worst_net) = worst_endpoint(m, sta.arrivals(), Some(dffs));
    // Ascending by target: the loosest pending target sits last and
    // satisfied targets pop off the back.
    let mut pending: Vec<(usize, f64)> = targets_ns.iter().copied().enumerate().collect();
    pending.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite targets"));
    let mut moves = 0;
    let mut resized = Vec::with_capacity(MOVES_PER_PASS);
    loop {
        while let Some(&(idx, target)) = pending.last() {
            if worst > target {
                break;
            }
            let stop =
                TargetStop { worst_delay_ns: worst, moves, met_target: true, sta: sta.stats() };
            emit(m, idx, &stop);
            pending.pop();
        }
        if pending.is_empty() || moves >= max_moves {
            break;
        }
        let path = critical_path_from(m, sta.arrivals(), worst_net);
        let batch = best_moves(m, &path, sta.arrivals(), MOVES_PER_PASS.min(max_moves - moves));
        if batch.is_empty() {
            break;
        }
        resized.clear();
        for &(gi, drive) in &batch {
            m.set_drive(gi, drive);
            resized.push(gi);
        }
        moves += batch.len();
        sta.propagate(m, &resized);
        (worst, worst_net) = worst_endpoint(m, sta.arrivals(), Some(dffs));
    }
    // Targets the trajectory never reached (move cap or no helpful
    // move left) all end in the same final state, exactly where their
    // independent runs would have given up.
    for &(idx, target) in pending.iter().rev() {
        let stop = TargetStop {
            worst_delay_ns: worst,
            moves,
            met_target: worst <= target,
            sta: sta.stats(),
        };
        emit(m, idx, &stop);
    }
}

/// Picks up to `limit` distinct critical-path upsizes with the best
/// estimated gain-per-area among moves with positive estimated gain.
fn best_moves(
    m: &MappedNetlist<'_>,
    critical_path: &[usize],
    arrivals: &[f64],
    limit: usize,
) -> Vec<(usize, Drive)> {
    let n = m.netlist();
    let mut scored: Vec<(usize, Drive, f64)> = Vec::new();
    for &gi in critical_path {
        let cell = m.cell_of(gi);
        let Some(up) = cell.drive.upsize() else { continue };
        let upcell = m.library().cell(m.library().cell_index(n.gates()[gi].kind, up));
        // Gain: lower drive resistance on our load …
        let load: f64 = n.gates()[gi].outputs().iter().map(|&o| m.load_ff(o)).fold(0.0, f64::max);
        let gain_out = (cell.drive_res_kohm - upcell.drive_res_kohm) * load / 1000.0;
        // … minus extra input capacitance slowing the upstream driver.
        // The path enters this gate through its latest-arriving input,
        // so charge that pin's actual driver cell; primary inputs fall
        // back to a typical X1 resistance.
        let upstream_r = n.gates()[gi]
            .inputs()
            .iter()
            .filter(|i| !i.is_const())
            .max_by(|a, b| {
                arrivals[a.0 as usize]
                    .partial_cmp(&arrivals[b.0 as usize])
                    .expect("arrivals are finite")
            })
            .and_then(|&i| m.driver_of(i))
            .map(|d| m.cell_of(d).drive_res_kohm)
            .unwrap_or(PRIMARY_INPUT_DRIVE_RES_KOHM);
        let penalty = (upcell.input_cap_ff - cell.input_cap_ff) * upstream_r / 1000.0;
        let gain = gain_out - penalty;
        if gain <= 0.0 {
            continue;
        }
        let darea = upcell.area_um2 - cell.area_um2;
        scored.push((gi, up, gain / darea.max(1e-9)));
    }
    scored.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite scores"));
    scored.truncate(limit);
    scored.into_iter().map(|(gi, d, _)| (gi, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::sta::analyze;
    use rlmul_ct::{CompressorTree, PpgKind};
    use rlmul_rtl::MultiplierNetlist;

    #[test]
    fn sizing_trades_area_for_delay() {
        let lib = Library::nangate45();
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();

        let mut loose = MappedNetlist::map(&nl, &lib);
        let t_loose = analyze(&loose).worst_delay_ns;
        let area_loose = loose.area_um2();
        let out_loose = size_to_target(&mut loose, t_loose + 1.0, 500);
        assert_eq!(out_loose.moves, 0, "already meets a loose target");

        let mut tight = MappedNetlist::map(&nl, &lib);
        let out_tight = size_to_target(&mut tight, t_loose * 0.8, 2000);
        assert!(out_tight.moves > 0);
        assert!(tight.area_um2() > area_loose);
        assert!(out_tight.timing.worst_delay_ns < t_loose);
    }

    #[test]
    fn seeded_sizing_is_bit_identical_to_from_scratch() {
        let lib = Library::nangate45();
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();

        let mut a = MappedNetlist::map(&nl, &lib);
        let target = analyze(&a).worst_delay_ns * 0.8;
        let out_a = size_to_target(&mut a, target, 800);

        let mut b = MappedNetlist::map(&nl, &lib);
        let baseline = analyze(&b).arrivals;
        let out_b = size_to_target_seeded(&mut b, target, 800, baseline, &[]);

        assert_eq!(out_a.moves, out_b.moves);
        assert_eq!(out_a.met_target, out_b.met_target);
        assert_eq!(out_a.timing.worst_delay_ns, out_b.timing.worst_delay_ns);
        assert_eq!(out_a.timing.critical_path, out_b.timing.critical_path);
        assert_eq!(out_a.timing.arrivals, out_b.timing.arrivals);
        assert_eq!(a.drive_histogram(), b.drive_histogram());
        assert_eq!(a.area_um2(), b.area_um2());
    }

    #[test]
    fn seeded_sizing_handles_sequential_endpoints() {
        let lib = Library::nangate45();
        let mut b = rlmul_rtl::NetlistBuilder::new("seq");
        let x = b.input("x", 4);
        let mut regs = Vec::new();
        for &xi in x.iter().take(4) {
            let q = b.dff(xi);
            regs.push(q);
        }
        let s0 = b.xor2(regs[0], regs[1]);
        let s1 = b.xor2(regs[2], regs[3]);
        let s = b.xor2(s0, s1);
        let q = b.dff(s);
        b.output("y", &[q]);
        let nl = b.finish();

        let dffs: Vec<u32> = nl
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == rlmul_rtl::GateKind::Dff)
            .map(|(gi, _)| gi as u32)
            .collect();
        assert_eq!(dffs.len(), 5);

        let mut full = MappedNetlist::map(&nl, &lib);
        let target = analyze(&full).worst_delay_ns * 0.9;
        let out_full = size_to_target(&mut full, target, 100);

        let mut seeded = MappedNetlist::map(&nl, &lib);
        let baseline = analyze(&seeded).arrivals;
        let out_seeded = size_to_target_seeded(&mut seeded, target, 100, baseline, &dffs);

        assert_eq!(out_full.moves, out_seeded.moves);
        assert_eq!(out_full.timing.worst_delay_ns, out_seeded.timing.worst_delay_ns);
        assert_eq!(full.drive_histogram(), seeded.drive_histogram());
    }

    #[test]
    fn unreachable_target_stops_gracefully() {
        let lib = Library::nangate45();
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
        let mut m = MappedNetlist::map(&nl, &lib);
        let out = size_to_target(&mut m, 0.01, 3000);
        assert!(!out.met_target);
        // But sizing still made things faster than all-X1.
        let fresh = MappedNetlist::map(&nl, &lib);
        assert!(out.timing.worst_delay_ns <= analyze(&fresh).worst_delay_ns);
    }
}
