//! TILOS-style greedy gate sizing under a delay target.
//!
//! Starting from an all-X1 mapping (minimum area), the sizer
//! repeatedly upsizes the critical-path cell with the best estimated
//! delay-gain per added area until the target is met, no move helps,
//! or the move budget is exhausted. This reproduces the mechanism by
//! which synthesizing the same RTL under different delay constraints
//! yields different area/power points (paper Section V-A).

use crate::library::Drive;
use crate::map::MappedNetlist;
use crate::sta::{IncrementalSta, StaStats, TimingReport};

/// Result of a sizing run.
#[derive(Debug, Clone)]
pub struct SizingOutcome {
    /// Final timing report.
    pub timing: TimingReport,
    /// Upsizing moves applied.
    pub moves: usize,
    /// Whether the delay target was met.
    pub met_target: bool,
    /// Timing-engine work counters for this run.
    pub sta: StaStats,
}

/// Upsizing moves applied per timing-analysis pass. Classic TILOS
/// re-times after every move; batching positive-gain moves along the
/// critical path converges to near-identical results in far fewer
/// STA passes, which matters for 10⁵-gate PE arrays.
const MOVES_PER_PASS: usize = 8;

/// Upstream resistance assumed when the critical input is a primary
/// input (no driver cell to read): a typical X1 drive resistance.
const PRIMARY_INPUT_DRIVE_RES_KOHM: f64 = 5.5;

/// Sizes `m` toward `target_ns`; `max_moves` bounds the loop.
///
/// One full timing pass seeds the loop; every sizing batch after that
/// is re-timed incrementally through the fanout cone of the resized
/// gates only (bit-identical to a full pass; see [`IncrementalSta`]).
pub fn size_to_target(
    m: &mut MappedNetlist<'_>,
    target_ns: f64,
    max_moves: usize,
) -> SizingOutcome {
    let mut sta = IncrementalSta::new();
    let mut timing = sta.analyze_full(m);
    let mut moves = 0;
    let mut resized = Vec::with_capacity(MOVES_PER_PASS);
    while timing.worst_delay_ns > target_ns && moves < max_moves {
        let batch = best_moves(m, &timing, MOVES_PER_PASS.min(max_moves - moves));
        if batch.is_empty() {
            break;
        }
        resized.clear();
        for &(gi, drive) in &batch {
            m.set_drive(gi, drive);
            resized.push(gi);
        }
        moves += batch.len();
        timing = sta.update(m, &resized);
    }
    let met_target = timing.worst_delay_ns <= target_ns;
    SizingOutcome { timing, moves, met_target, sta: sta.stats() }
}

/// Picks up to `limit` distinct critical-path upsizes with the best
/// estimated gain-per-area among moves with positive estimated gain.
fn best_moves(m: &MappedNetlist<'_>, timing: &TimingReport, limit: usize) -> Vec<(usize, Drive)> {
    let n = m.netlist();
    let mut scored: Vec<(usize, Drive, f64)> = Vec::new();
    for &gi in &timing.critical_path {
        let cell = m.cell_of(gi);
        let Some(up) = cell.drive.upsize() else { continue };
        let upcell = m.library().cell(m.library().cell_index(n.gates()[gi].kind, up));
        // Gain: lower drive resistance on our load …
        let load: f64 = n.gates()[gi].outputs().iter().map(|&o| m.load_ff(o)).fold(0.0, f64::max);
        let gain_out = (cell.drive_res_kohm - upcell.drive_res_kohm) * load / 1000.0;
        // … minus extra input capacitance slowing the upstream driver.
        // The path enters this gate through its latest-arriving input,
        // so charge that pin's actual driver cell; primary inputs fall
        // back to a typical X1 resistance.
        let upstream_r = n.gates()[gi]
            .inputs()
            .iter()
            .filter(|i| !i.is_const())
            .max_by(|a, b| {
                timing.arrivals[a.0 as usize]
                    .partial_cmp(&timing.arrivals[b.0 as usize])
                    .expect("arrivals are finite")
            })
            .and_then(|&i| m.driver_of(i))
            .map(|d| m.cell_of(d).drive_res_kohm)
            .unwrap_or(PRIMARY_INPUT_DRIVE_RES_KOHM);
        let penalty = (upcell.input_cap_ff - cell.input_cap_ff) * upstream_r / 1000.0;
        let gain = gain_out - penalty;
        if gain <= 0.0 {
            continue;
        }
        let darea = upcell.area_um2 - cell.area_um2;
        scored.push((gi, up, gain / darea.max(1e-9)));
    }
    scored.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite scores"));
    scored.truncate(limit);
    scored.into_iter().map(|(gi, d, _)| (gi, d)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::library::Library;
    use crate::sta::analyze;
    use rlmul_ct::{CompressorTree, PpgKind};
    use rlmul_rtl::MultiplierNetlist;

    #[test]
    fn sizing_trades_area_for_delay() {
        let lib = Library::nangate45();
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();

        let mut loose = MappedNetlist::map(&nl, &lib);
        let t_loose = analyze(&loose).worst_delay_ns;
        let area_loose = loose.area_um2();
        let out_loose = size_to_target(&mut loose, t_loose + 1.0, 500);
        assert_eq!(out_loose.moves, 0, "already meets a loose target");

        let mut tight = MappedNetlist::map(&nl, &lib);
        let out_tight = size_to_target(&mut tight, t_loose * 0.8, 2000);
        assert!(out_tight.moves > 0);
        assert!(tight.area_um2() > area_loose);
        assert!(out_tight.timing.worst_delay_ns < t_loose);
    }

    #[test]
    fn unreachable_target_stops_gracefully() {
        let lib = Library::nangate45();
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let nl = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
        let mut m = MappedNetlist::map(&nl, &lib);
        let out = size_to_target(&mut m, 0.01, 3000);
        assert!(!out.met_target);
        // But sizing still made things faster than all-X1.
        let fresh = MappedNetlist::map(&nl, &lib);
        assert!(out.timing.worst_delay_ns <= analyze(&fresh).worst_delay_ns);
    }
}
