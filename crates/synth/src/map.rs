//! Technology mapping: binding netlist gates to library cells.
//!
//! Mapping is structural (the netlist IR's gate kinds correspond 1:1
//! to cell families); the interesting synthesis work — drive-strength
//! selection under a delay target — happens in the sizing pass.

use crate::library::{Drive, Library};
use rlmul_rtl::{GateKind, Netlist};

pub(crate) fn kind_cell_stem(kind: GateKind) -> &'static str {
    match kind {
        GateKind::Inv => "INV",
        GateKind::Buf => "BUF",
        GateKind::And2 => "AND2",
        GateKind::Or2 => "OR2",
        GateKind::Nand2 => "NAND2",
        GateKind::Nor2 => "NOR2",
        GateKind::Xor2 => "XOR2",
        GateKind::Xnor2 => "XNOR2",
        GateKind::Mux2 => "MUX2",
        GateKind::HalfAdder => "HA",
        GateKind::FullAdder => "FA",
        GateKind::Compressor42 => "COMP42",
        GateKind::Dff => "DFF",
    }
}

/// Per-net connectivity tables (sinks, drivers, primary-output
/// fanout), factored out of [`MappedNetlist`] so one instance can be
/// built once — or patched incrementally after a netlist splice — and
/// then *shared* by several mappings (one per delay target in the
/// evaluation pipeline).
///
/// Sink lists are kept in ascending `(gate, pin)` order, exactly the
/// order a from-scratch [`NetConn::build`] produces. That invariant
/// matters: capacitive loads are floating-point sums over sink lists,
/// and bit-identical synthesis numbers require summing in the same
/// order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetConn {
    /// For every net: `(gate index, input pin)` sinks.
    sinks: Vec<Vec<(u32, u8)>>,
    /// For every net: the gate driving it (`None` for primary inputs
    /// and constants).
    driver: Vec<Option<u32>>,
    /// For every net: number of primary-output bits it drives.
    po_fanout: Vec<u16>,
}

impl NetConn {
    /// Builds the tables from scratch in one O(gates + nets) pass.
    pub fn build(netlist: &Netlist) -> Self {
        let mut sinks = vec![Vec::new(); netlist.num_nets() as usize];
        for (gi, g) in netlist.gates().iter().enumerate() {
            for (pin, &inp) in g.inputs().iter().enumerate() {
                if !inp.is_const() {
                    sinks[inp.0 as usize].push((gi as u32, pin as u8));
                }
            }
        }
        let mut driver = vec![None; netlist.num_nets() as usize];
        for (gi, g) in netlist.gates().iter().enumerate() {
            for &o in g.outputs() {
                driver[o.0 as usize] = Some(gi as u32);
            }
        }
        let mut po_fanout = vec![0u16; netlist.num_nets() as usize];
        for p in netlist.outputs() {
            for &b in &p.bits {
                if !b.is_const() {
                    po_fanout[b.0 as usize] += 1;
                }
            }
        }
        NetConn { sinks, driver, po_fanout }
    }

    /// Updates tables built for `old` to describe `new`, where the two
    /// netlists share their first `shared_prefix` gates (and their
    /// input ports). Cost is proportional to the differing suffixes,
    /// not the circuit.
    ///
    /// The result is exactly `NetConn::build(new)` — order-preserving
    /// removals plus ascending-index appends keep every sink list in
    /// build order (debug builds assert the equality).
    pub fn patch(&mut self, old: &Netlist, new: &Netlist, shared_prefix: usize) {
        debug_assert!(old.gates()[..shared_prefix] == new.gates()[..shared_prefix]);
        // Retract the old suffix while its net ids are still in range.
        for (gi, g) in old.gates().iter().enumerate().skip(shared_prefix) {
            for (pin, &inp) in g.inputs().iter().enumerate() {
                if !inp.is_const() {
                    let v = &mut self.sinks[inp.0 as usize];
                    if let Some(pos) = v.iter().position(|&(s, p)| s == gi as u32 && p == pin as u8)
                    {
                        v.remove(pos); // order-preserving
                    }
                }
            }
            for &o in g.outputs() {
                self.driver[o.0 as usize] = None;
            }
        }
        // Grow to the new net count if needed. Tables never shrink:
        // when the net space contracts, the retraction above already
        // emptied the tail entries (the shared prefix cannot reference
        // suffix-created nets), and keeping them preserves each sink
        // list's capacity for the next patch.
        let nets = new.num_nets() as usize;
        if self.sinks.len() < nets {
            self.sinks.resize(nets, Vec::new());
            self.driver.resize(nets, None);
            self.po_fanout.resize(nets, 0);
        }
        // Register the new suffix; its gate indices all exceed every
        // surviving prefix entry, so appends keep sink lists sorted.
        for (gi, g) in new.gates().iter().enumerate().skip(shared_prefix) {
            for (pin, &inp) in g.inputs().iter().enumerate() {
                if !inp.is_const() {
                    self.sinks[inp.0 as usize].push((gi as u32, pin as u8));
                }
            }
            for &o in g.outputs() {
                self.driver[o.0 as usize] = Some(gi as u32);
            }
        }
        // Primary-output reads: O(output bits).
        self.po_fanout.iter_mut().for_each(|c| *c = 0);
        for p in new.outputs() {
            for &b in &p.bits {
                if !b.is_const() {
                    self.po_fanout[b.0 as usize] += 1;
                }
            }
        }
        debug_assert!(
            self.agrees_with(&NetConn::build(new)),
            "patched NetConn diverged from rebuild"
        );
    }

    /// Whether this table describes the same connectivity as `fresh`
    /// (a from-scratch build), ignoring cleaned-out tail entries left
    /// behind by a shrinking patch. Debug-validation helper.
    fn agrees_with(&self, fresh: &NetConn) -> bool {
        let n = fresh.sinks.len();
        self.sinks.len() >= n
            && self.sinks[..n] == fresh.sinks[..]
            && self.driver[..n] == fresh.driver[..]
            && self.po_fanout[..n] == fresh.po_fanout[..]
            && self.sinks[n..].iter().all(Vec::is_empty)
            && self.driver[n..].iter().all(Option::is_none)
            && self.po_fanout[n..].iter().all(|&c| c == 0)
    }

    /// Driving gate of `net`, `None` for primary inputs, constants,
    /// and out-of-range ids (stale nets from a pre-patch netlist).
    pub(crate) fn driver_index(&self, net: rlmul_rtl::NetId) -> Option<u32> {
        if net.is_const() {
            return None;
        }
        self.driver.get(net.0 as usize).copied().flatten()
    }
}

/// The all-X1 cell binding of `netlist` — the template
/// [`MappedNetlist::map_with_parts`] expects.
pub fn x1_cell_of(netlist: &Netlist, library: &Library) -> Vec<usize> {
    netlist.gates().iter().map(|g| library.cell_index(g.kind, Drive::X1)).collect()
}

/// Either owns its connectivity tables or borrows shared ones.
#[derive(Debug, Clone)]
enum ConnStore<'a> {
    Owned(NetConn),
    Borrowed(&'a NetConn),
}

impl ConnStore<'_> {
    fn get(&self) -> &NetConn {
        match self {
            ConnStore::Owned(c) => c,
            ConnStore::Borrowed(c) => c,
        }
    }
}

/// A netlist bound to library cells, with per-instance drive
/// strengths and precomputed fanout information for timing and power.
#[derive(Debug, Clone)]
pub struct MappedNetlist<'a> {
    netlist: &'a Netlist,
    library: &'a Library,
    /// Cell index (into the library) of each gate instance.
    cell_of: Vec<usize>,
    conn: ConnStore<'a>,
}

impl<'a> MappedNetlist<'a> {
    /// Maps every gate to its X1 library cell.
    pub fn map(netlist: &'a Netlist, library: &'a Library) -> Self {
        let cell_of =
            netlist.gates().iter().map(|g| library.cell_index(g.kind, Drive::X1)).collect();
        MappedNetlist { netlist, library, cell_of, conn: ConnStore::Owned(NetConn::build(netlist)) }
    }

    /// Maps every gate to its X1 cell, borrowing pre-built
    /// connectivity tables instead of rebuilding them — the
    /// incremental pipeline shares one patched [`NetConn`] across all
    /// delay targets of a step.
    pub fn map_with_conn(netlist: &'a Netlist, library: &'a Library, conn: &'a NetConn) -> Self {
        let cell_of = x1_cell_of(netlist, library);
        Self::map_with_parts(netlist, library, conn, cell_of)
    }

    /// Maps with a precomputed all-X1 cell binding (the incremental
    /// pipeline keeps one as a patched template and hands each delay
    /// target a memcpy of it, skipping the per-gate library lookups).
    pub fn map_with_parts(
        netlist: &'a Netlist,
        library: &'a Library,
        conn: &'a NetConn,
        cell_of: Vec<usize>,
    ) -> Self {
        debug_assert!(conn.sinks.len() >= netlist.num_nets() as usize);
        debug_assert_eq!(cell_of, x1_cell_of(netlist, library), "stale cell template");
        MappedNetlist { netlist, library, cell_of, conn: ConnStore::Borrowed(conn) }
    }

    /// The source netlist.
    pub fn netlist(&self) -> &Netlist {
        self.netlist
    }

    /// The bound library.
    pub fn library(&self) -> &Library {
        self.library
    }

    /// Cell currently bound to gate `gi`.
    pub fn cell_of(&self, gi: usize) -> &crate::library::Cell {
        self.library.cell(self.cell_of[gi])
    }

    /// Rebinds gate `gi` to `drive`.
    pub fn set_drive(&mut self, gi: usize, drive: Drive) {
        let kind = self.netlist.gates()[gi].kind;
        self.cell_of[gi] = self.library.cell_index(kind, drive);
    }

    /// `(gate, pin)` sinks of `net`.
    pub fn sinks(&self, net: rlmul_rtl::NetId) -> &[(u32, u8)] {
        &self.conn.get().sinks[net.0 as usize]
    }

    /// Gate driving `net`, or `None` for primary inputs and constants.
    pub fn driver_of(&self, net: rlmul_rtl::NetId) -> Option<usize> {
        if net.is_const() {
            return None;
        }
        self.conn.get().driver[net.0 as usize].map(|gi| gi as usize)
    }

    /// Capacitive load on `net` in fF: sink pin caps, wire estimate,
    /// and primary-output loads.
    pub fn load_ff(&self, net: rlmul_rtl::NetId) -> f64 {
        let lib = self.library;
        let conn = self.conn.get();
        let s = &conn.sinks[net.0 as usize];
        let pin_caps: f64 = s.iter().map(|&(gi, _)| self.cell_of(gi as usize).input_cap_ff).sum();
        let fanout = s.len() as f64 + conn.po_fanout[net.0 as usize] as f64;
        pin_caps
            + fanout * lib.wire_cap_per_fanout_ff
            + conn.po_fanout[net.0 as usize] as f64 * lib.output_load_ff
    }

    /// Total cell area in µm².
    pub fn area_um2(&self) -> f64 {
        self.cell_of.iter().map(|&ci| self.library.cell(ci).area_um2).sum()
    }

    /// Instance count per drive strength (X1, X2, X4).
    pub fn drive_histogram(&self) -> [usize; 3] {
        let mut h = [0usize; 3];
        for &ci in &self.cell_of {
            match self.library.cell(ci).drive {
                Drive::X1 => h[0] += 1,
                Drive::X2 => h[1] += 1,
                Drive::X4 => h[2] += 1,
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_rtl::NetlistBuilder;

    fn toy() -> Netlist {
        let mut b = NetlistBuilder::new("toy");
        let x = b.input("x", 2);
        let y = b.and2(x[0], x[1]);
        let z = b.xor2(y, x[0]);
        b.output("z", &[z]);
        b.finish()
    }

    #[test]
    fn initial_mapping_is_all_x1() {
        let lib = Library::nangate45();
        let n = toy();
        let m = MappedNetlist::map(&n, &lib);
        assert_eq!(m.drive_histogram(), [2, 0, 0]);
    }

    #[test]
    fn load_accounts_for_sinks_and_pos() {
        let lib = Library::nangate45();
        let n = toy();
        let m = MappedNetlist::map(&n, &lib);
        // x[0] feeds the AND and the XOR.
        let x0 = n.inputs()[0].bits[0];
        assert_eq!(m.sinks(x0).len(), 2);
        let load = m.load_ff(x0);
        assert!(load > 2.0 * 1.5, "load = {load}");
        // The PO net gets the output load added.
        let z = n.outputs()[0].bits[0];
        assert!(m.load_ff(z) >= lib.output_load_ff);
    }

    #[test]
    fn upsizing_raises_area() {
        let lib = Library::nangate45();
        let n = toy();
        let mut m = MappedNetlist::map(&n, &lib);
        let a0 = m.area_um2();
        m.set_drive(0, Drive::X4);
        assert!(m.area_um2() > a0);
        assert_eq!(m.drive_histogram(), [1, 0, 1]);
    }
}
