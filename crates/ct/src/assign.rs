use crate::{CompressorMatrix, CtError, PpProfile};

/// The paper's tensor representation `T ∈ N^{K×2N×ST}` (`K = 2`
/// compressor kinds): a stage-resolved placement of every compressor,
/// derived deterministically from a [`CompressorMatrix`] by paper
/// Algorithm 1.
///
/// Columns are processed from the least to the most significant bit;
/// within a column the assignment greedily fires as many 3:2
/// compressors as the stage's available rows allow, then 2:2
/// compressors, and advances to the next stage. Sums stay in the
/// column (arriving one stage later), carries move to the next column
/// (also one stage later). The procedure is total on legal matrices,
/// so each matrix maps to exactly one tensor — the property the paper
/// needs for an unambiguous state encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageTensor {
    /// `columns[j][i] = (n32, n22)` fired at stage `i` of column `j`.
    columns: Vec<Vec<(u32, u32)>>,
    stage_count: usize,
}

/// Hard bound on reduction depth; legal trees are far shallower.
const MAX_STAGES: usize = 256;

impl StageTensor {
    /// Runs paper Algorithm 1 on `matrix` over `profile`.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::AssignmentStuck`] if the matrix requests
    /// compressors that can never receive enough input rows (only
    /// possible for illegal matrices).
    pub fn assign(profile: &PpProfile, matrix: &CompressorMatrix) -> Result<Self, CtError> {
        let ncols = profile.num_columns();
        debug_assert_eq!(matrix.num_columns(), ncols);
        let mut columns: Vec<Vec<(u32, u32)>> = Vec::with_capacity(ncols);
        // Carries arriving at the *next* column, indexed by stage.
        let mut carry_arrivals: Vec<u32> = Vec::new();
        let mut stage_count = 0usize;

        for j in 0..ncols {
            let arrivals = std::mem::take(&mut carry_arrivals);
            let (mut rem32, mut rem22) = (matrix.count32(j), matrix.count22(j));
            let mut per_stage: Vec<(u32, u32)> = Vec::new();
            let mut avail: u32 = profile.columns()[j];
            let mut sums_next: u32 = 0;
            let mut stage = 0usize;
            while rem32 > 0 || rem22 > 0 {
                if stage > 0 {
                    avail += sums_next + arrivals.get(stage).copied().unwrap_or(0);
                } else {
                    avail += arrivals.first().copied().unwrap_or(0);
                }
                let f = rem32.min(avail / 3);
                avail -= 3 * f;
                rem32 -= f;
                let h = rem22.min(avail / 2);
                avail -= 2 * h;
                rem22 -= h;
                per_stage.push((f, h));
                sums_next = f + h;
                if f + h > 0 {
                    let slot = stage + 1;
                    if carry_arrivals.len() <= slot {
                        carry_arrivals.resize(slot + 1, 0);
                    }
                    carry_arrivals[slot] += f + h;
                }
                let future_inputs = arrivals.iter().skip(stage + 1).sum::<u32>() + sums_next;
                if f == 0 && h == 0 && future_inputs == 0 {
                    return Err(CtError::AssignmentStuck { column: j });
                }
                stage += 1;
                if stage > MAX_STAGES {
                    return Err(CtError::AssignmentStuck { column: j });
                }
            }
            // Trim trailing idle stages.
            while matches!(per_stage.last(), Some(&(0, 0))) {
                per_stage.pop();
            }
            stage_count = stage_count.max(per_stage.len());
            // Carries into the column above must still be registered even
            // if this column fired nothing (possible only when empty).
            columns.push(per_stage);
            // Arrivals not consumed here still travel to no one: they are
            // the residual rows of this column, which the final adder eats.
        }
        Ok(StageTensor { columns, stage_count })
    }

    /// Reduction depth `ST`: the number of compression stages used by
    /// the deepest column. The paper identifies this as a primary
    /// delay/area driver (Fig. 8) and prunes actions that inflate it.
    pub fn stage_count(&self) -> usize {
        self.stage_count
    }

    /// Number of columns (`2N`).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Stage-wise `(3:2, 2:2)` counts of `column`.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of bounds.
    pub fn column_stages(&self, column: usize) -> &[(u32, u32)] {
        &self.columns[column]
    }

    /// `(3:2, 2:2)` compressors fired at `(column, stage)`; `(0, 0)`
    /// beyond the column's depth.
    pub fn counts_at(&self, column: usize, stage: usize) -> (u32, u32) {
        self.columns.get(column).and_then(|c| c.get(stage)).copied().unwrap_or((0, 0))
    }

    /// Dense `K × 2N × ST_pad` encoding (row-major `[kind][column][stage]`)
    /// for the agent network, zero-padded or truncated to `stages`.
    pub fn to_dense(&self, stages: usize) -> Vec<f32> {
        let mut out = Vec::new();
        self.to_dense_into(stages, &mut out);
        out
    }

    /// [`StageTensor::to_dense`] writing into a caller-owned buffer,
    /// so per-step encodings (one per candidate action in surrogate
    /// screening) reuse one allocation.
    pub fn to_dense_into(&self, stages: usize, out: &mut Vec<f32>) {
        let ncols = self.columns.len();
        out.clear();
        out.resize(2 * ncols * stages, 0.0);
        for (j, col) in self.columns.iter().enumerate() {
            for (i, &(f, h)) in col.iter().enumerate().take(stages) {
                out[j * stages + i] = f as f32;
                out[ncols * stages + j * stages + i] = h as f32;
            }
        }
    }

    /// Sums the tensor back into per-column `(3:2, 2:2)` totals —
    /// by construction equal to the source matrix.
    pub fn to_matrix(&self) -> CompressorMatrix {
        CompressorMatrix::from_counts(
            self.columns
                .iter()
                .map(|col| col.iter().fold((0, 0), |(a, b), &(f, h)| (a + f, b + h))),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressorTree, PpgKind};

    #[test]
    fn assignment_reproduces_matrix_totals() {
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let tensor = tree.assign_stages().unwrap();
        assert_eq!(&tensor.to_matrix(), tree.matrix());
    }

    #[test]
    fn assignment_of_empty_matrix_is_empty() {
        let p = PpProfile::new(4, PpgKind::And).unwrap();
        // Width-2 columns need nothing; an all-zero matrix on a width-2
        // profile would be illegal, but assignment itself still works.
        let m = CompressorMatrix::zeros(p.num_columns());
        let t = StageTensor::assign(&p, &m).unwrap();
        assert_eq!(t.stage_count(), 0);
    }

    #[test]
    fn wallace_4bit_depth_is_shallow() {
        // A 4-bit Wallace-style reduction needs 2–3 stages depending on
        // how carries are scheduled; the greedy LSB-first assignment
        // must stay within that envelope.
        let tree = CompressorTree::wallace(4, PpgKind::And).unwrap();
        let t = tree.assign_stages().unwrap();
        assert!((2..=3).contains(&t.stage_count()), "got {}", t.stage_count());
    }

    #[test]
    fn dense_encoding_shape_and_content() {
        let tree = CompressorTree::wallace(4, PpgKind::And).unwrap();
        let t = tree.assign_stages().unwrap();
        let st = 4;
        let dense = t.to_dense(st);
        assert_eq!(dense.len(), 2 * 8 * st);
        let total32: f32 = dense[..8 * st].iter().sum();
        let total22: f32 = dense[8 * st..].iter().sum();
        assert_eq!(total32 as u32, tree.matrix().total32());
        assert_eq!(total22 as u32, tree.matrix().total22());
    }

    #[test]
    fn infeasible_matrix_is_rejected() {
        let p = PpProfile::new(4, PpgKind::And).unwrap();
        // Column 0 has a single PP: a 3:2 compressor can never fire.
        let mut counts = vec![(0u32, 0u32); 8];
        counts[0] = (1, 0);
        let m = CompressorMatrix::from_counts(counts);
        assert!(matches!(StageTensor::assign(&p, &m), Err(CtError::AssignmentStuck { column: 0 })));
    }

    #[test]
    fn counts_at_out_of_range_is_zero() {
        let tree = CompressorTree::wallace(4, PpgKind::And).unwrap();
        let t = tree.assign_stages().unwrap();
        assert_eq!(t.counts_at(0, 99), (0, 0));
        assert_eq!(t.counts_at(99, 0), (0, 0));
    }
}
