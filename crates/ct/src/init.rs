use crate::{CompressorMatrix, PpProfile};

/// Simulates a classic Wallace reduction [Wallace 1964] of `profile`
/// and returns the per-column compressor totals.
///
/// At every stage, each column of height ≥ 3 groups rows into as many
/// 3:2 compressors as possible and applies a 2:2 compressor to a
/// leftover pair; columns already at height ≤ 2 pass through. The
/// sweep repeats until every column holds at most two rows.
pub(crate) fn wallace_matrix(profile: &PpProfile) -> CompressorMatrix {
    let ncols = profile.num_columns();
    let mut heights: Vec<u32> = profile.columns().to_vec();
    let mut matrix = CompressorMatrix::zeros(ncols);
    while heights.iter().any(|&h| h > 2) {
        let mut next = vec![0u32; ncols];
        for j in 0..ncols {
            let h = heights[j];
            if h <= 2 {
                next[j] += h;
                continue;
            }
            let fulls = h / 3;
            let rem = h % 3;
            let halves = u32::from(rem == 2);
            let counts = matrix.counts_mut(j);
            counts.0 += fulls;
            counts.1 += halves;
            // Sums (and a passing single row) stay in the column …
            next[j] += fulls + halves + u32::from(rem == 1);
            // … carries move up, discarded past the MSB (mod 2^{2N}).
            if j + 1 < ncols {
                next[j + 1] += fulls + halves;
            }
        }
        heights = next;
    }
    matrix
}

/// Dadda's capacity sequence: `d_1 = 2`, `d_{k+1} = ⌊1.5 · d_k⌋`.
fn dadda_targets(max_height: u32) -> Vec<u32> {
    let mut seq = vec![2u32];
    while *seq.last().expect("nonempty") < max_height {
        let last = *seq.last().expect("nonempty");
        seq.push(last * 3 / 2);
    }
    seq
}

/// Simulates a Dadda reduction [Dadda 1983] of `profile`: each stage
/// reduces every column to the next capacity target using the minimum
/// number of compressors, threading same-stage carries from lower
/// columns.
pub(crate) fn dadda_matrix(profile: &PpProfile) -> CompressorMatrix {
    let ncols = profile.num_columns();
    let mut heights: Vec<u32> = profile.columns().to_vec();
    let mut matrix = CompressorMatrix::zeros(ncols);
    let targets = dadda_targets(heights.iter().copied().max().unwrap_or(2));
    for &target in targets.iter().rev() {
        if heights.iter().all(|&h| h <= target) {
            continue;
        }
        let mut next = vec![0u32; ncols];
        let mut carries = 0u32;
        for j in 0..ncols {
            let mut cur = heights[j] + carries;
            carries = 0;
            let counts = matrix.counts_mut(j);
            while cur > target {
                if cur == target + 1 {
                    counts.1 += 1; // half adder: −1 row, +1 carry
                    cur -= 1;
                } else {
                    counts.0 += 1; // full adder: −2 rows, +1 carry
                    cur -= 2;
                }
                carries += 1;
            }
            next[j] = cur;
        }
        // A carry past the MSB is discarded (mod 2^{2N} arithmetic).
        heights = next;
    }
    matrix
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressorTree, PpgKind};

    #[test]
    fn wallace_is_legal_for_all_profiles() {
        for bits in [2, 4, 8, 16, 32] {
            for kind in [PpgKind::And, PpgKind::MacAnd] {
                let t = CompressorTree::wallace(bits, kind).unwrap();
                t.check_legal().unwrap_or_else(|e| panic!("{bits}-bit {kind}: {e}"));
            }
        }
        for bits in [4, 8, 16, 32] {
            for kind in [PpgKind::Mbe, PpgKind::MacMbe] {
                let t = CompressorTree::wallace(bits, kind).unwrap();
                t.check_legal().unwrap_or_else(|e| panic!("{bits}-bit {kind}: {e}"));
            }
        }
    }

    #[test]
    fn dadda_is_legal_for_all_profiles() {
        for bits in [2, 4, 8, 16, 32] {
            let t = CompressorTree::dadda(bits, PpgKind::And).unwrap();
            t.check_legal().unwrap_or_else(|e| panic!("{bits}-bit: {e}"));
        }
        for bits in [4, 8, 16] {
            let t = CompressorTree::dadda(bits, PpgKind::Mbe).unwrap();
            t.check_legal().unwrap_or_else(|e| panic!("{bits}-bit mbe: {e}"));
        }
    }

    #[test]
    fn dadda_uses_no_more_compressors_than_wallace() {
        for bits in [8, 16] {
            let w = CompressorTree::wallace(bits, PpgKind::And).unwrap();
            let d = CompressorTree::dadda(bits, PpgKind::And).unwrap();
            let wall = w.matrix().total32() + w.matrix().total22();
            let dad = d.matrix().total32() + d.matrix().total22();
            assert!(dad <= wall, "{bits}-bit: dadda {dad} vs wallace {wall}");
        }
    }

    #[test]
    fn dadda_capacity_sequence() {
        assert_eq!(dadda_targets(9), vec![2, 3, 4, 6, 9]);
        assert_eq!(dadda_targets(2), vec![2]);
    }

    #[test]
    fn row_conservation_identity() {
        // Each 3:2 removes one row globally (consumes 3, emits 2);
        // 2:2 compressors are row-neutral except when their carry falls
        // past the MSB. Hence: finals = initial − total32 − msb_carries.
        for (bits, kind) in [(8, PpgKind::And), (16, PpgKind::And), (8, PpgKind::Mbe)] {
            let t = CompressorTree::wallace(bits, kind).unwrap();
            let initial: i64 = t.profile().total_bits() as i64;
            let finals: i64 = t.matrix().residuals(t.profile()).iter().sum();
            let (a_last, b_last) = *t.matrix().counts().last().expect("has columns");
            let msb_carries = (a_last + b_last) as i64;
            assert_eq!(
                finals,
                initial - t.matrix().total32() as i64 - msb_carries,
                "{bits}-bit {kind}"
            );
        }
    }
}
