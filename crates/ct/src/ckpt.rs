//! Checkpoint codec support for compressor-tree state.
//!
//! A [`CompressorTree`] is fully determined by its bit width, partial
//! product generator kind and per-column compressor counts, so the
//! snapshot stores exactly that triple and reconstructs through the
//! same validated path (`PpProfile::new` → `CompressorMatrix` →
//! `CompressorTree::from_matrix`) used everywhere else — a corrupted
//! snapshot that decodes into an illegal structure is rejected, never
//! silently accepted.

use crate::matrix::CompressorMatrix;
use crate::profile::{PpProfile, PpgKind};
use crate::tree::CompressorTree;
use rlmul_ckpt::{CkptError, Decoder, Encoder, Record};

impl Record for PpgKind {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            PpgKind::And => 0,
            PpgKind::Mbe => 1,
            PpgKind::MacAnd => 2,
            PpgKind::MacMbe => 3,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        match dec.get_u8()? {
            0 => Ok(PpgKind::And),
            1 => Ok(PpgKind::Mbe),
            2 => Ok(PpgKind::MacAnd),
            3 => Ok(PpgKind::MacMbe),
            b => Err(CkptError::Invalid { what: format!("PpgKind tag {b:#04x}") }),
        }
    }
}

impl Record for CompressorTree {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.bits());
        self.profile().kind().encode(enc);
        self.matrix().counts().to_vec().encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        let bits = dec.get_usize()?;
        let kind = PpgKind::decode(dec)?;
        let counts = Vec::<(u32, u32)>::decode(dec)?;
        let profile = PpProfile::new(bits, kind)
            .map_err(|e| CkptError::Invalid { what: format!("snapshot profile: {e}") })?;
        if counts.len() != profile.num_columns() {
            return Err(CkptError::Invalid {
                what: format!(
                    "snapshot has {} columns, {bits}-bit {} profile needs {}",
                    counts.len(),
                    kind.label(),
                    profile.num_columns()
                ),
            });
        }
        CompressorTree::from_matrix(profile, CompressorMatrix::from_counts(counts))
            .map_err(|e| CkptError::Invalid { what: format!("snapshot tree: {e}") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kind_round_trips() {
        for kind in [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd, PpgKind::MacMbe] {
            assert_eq!(PpgKind::from_bytes(&kind.to_bytes()).unwrap(), kind);
        }
        assert!(PpgKind::from_bytes(&[4]).is_err());
    }

    #[test]
    fn trees_round_trip_including_modified_structures() {
        for kind in [PpgKind::And, PpgKind::Mbe] {
            let mut tree = CompressorTree::wallace(8, kind).unwrap();
            // Walk a few legal actions so the snapshot is not just the
            // canonical initial structure.
            for _ in 0..4 {
                let Some(&a) = tree.valid_actions().first() else { break };
                tree = tree.apply_action(a).unwrap();
            }
            let back = CompressorTree::from_bytes(&tree.to_bytes()).unwrap();
            assert_eq!(back.matrix().counts(), tree.matrix().counts());
            assert_eq!(back.bits(), tree.bits());
            assert_eq!(back.profile().kind(), tree.profile().kind());
        }
    }

    #[test]
    fn illegal_snapshot_contents_are_rejected() {
        let tree = CompressorTree::dadda(4, PpgKind::And).unwrap();
        let bytes = tree.to_bytes();
        // Truncated column list.
        let mut short = tree.matrix().counts().to_vec();
        short.pop();
        let mut enc = Encoder::new();
        enc.put_usize(tree.bits());
        PpgKind::And.encode(&mut enc);
        short.encode(&mut enc);
        assert!(CompressorTree::from_bytes(&enc.into_bytes()).is_err());
        // Sane input still round-trips.
        assert!(CompressorTree::from_bytes(&bytes).is_ok());
    }
}
