use crate::CtError;

/// Partial-product generation scheme, optionally with a merged
/// multiply-accumulate addend (paper Section III-C).
///
/// The merged-MAC variants inject the `2N`-bit accumulator operand as
/// one extra partial product per column, so the very same
/// compressor-tree optimization machinery applies to MAC designs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PpgKind {
    /// Plain AND-gate array: `p_j = |{(a, b) : a + b = j}|`.
    And,
    /// Radix-4 Modified Booth Encoding with sign-extension prevention.
    Mbe,
    /// AND-based PPG with a merged `2N`-bit accumulator row.
    MacAnd,
    /// MBE-based PPG with a merged `2N`-bit accumulator row.
    MacMbe,
}

impl PpgKind {
    /// Whether this profile merges a MAC addend into the tree.
    pub fn is_mac(self) -> bool {
        matches!(self, PpgKind::MacAnd | PpgKind::MacMbe)
    }

    /// The underlying partial-product generator without the MAC addend.
    pub fn base(self) -> PpgKind {
        match self {
            PpgKind::And | PpgKind::MacAnd => PpgKind::And,
            PpgKind::Mbe | PpgKind::MacMbe => PpgKind::Mbe,
        }
    }

    /// Short lowercase label used in reports (`and`, `mbe`, `mac-and`,
    /// `mac-mbe`).
    pub fn label(self) -> &'static str {
        match self {
            PpgKind::And => "and",
            PpgKind::Mbe => "mbe",
            PpgKind::MacAnd => "mac-and",
            PpgKind::MacMbe => "mac-mbe",
        }
    }
}

impl std::fmt::Display for PpgKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-column initial partial-product counts of an `N × N` datapath
/// block with `2N` columns.
///
/// The profile is the immutable part of an RL-MUL state: actions only
/// ever change the compressor counts, never the partial products.
///
/// ```
/// use rlmul_ct::{PpProfile, PpgKind};
///
/// let p = PpProfile::new(8, PpgKind::And)?;
/// assert_eq!(p.num_columns(), 16);
/// assert_eq!(p.columns()[7], 8); // tallest AND column has N products
/// # Ok::<(), rlmul_ct::CtError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PpProfile {
    bits: usize,
    kind: PpgKind,
    columns: Vec<u32>,
}

/// Maximum supported operand width. 64-bit designs are the scaling
/// ceiling the incremental-elaboration benchmarks exercise.
pub(crate) const MAX_BITS: usize = 64;

impl PpProfile {
    /// Builds the initial partial-product profile for an `bits`-bit
    /// design of the given kind.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::UnsupportedWidth`] when `bits` is outside
    /// `2..=64`, or odd for an MBE-based kind (radix-4 Booth digits
    /// pair up bits).
    pub fn new(bits: usize, kind: PpgKind) -> Result<Self, CtError> {
        if !(2..=MAX_BITS).contains(&bits) {
            return Err(CtError::UnsupportedWidth { bits });
        }
        if kind.base() == PpgKind::Mbe && !bits.is_multiple_of(2) {
            return Err(CtError::UnsupportedWidth { bits });
        }
        let mut columns = match kind.base() {
            PpgKind::And => and_columns(bits),
            PpgKind::Mbe => mbe_columns(bits),
            _ => unreachable!("base() only returns And or Mbe"),
        };
        if kind.is_mac() {
            for c in columns.iter_mut() {
                *c += 1;
            }
        }
        Ok(PpProfile { bits, kind, columns })
    }

    /// Operand bit-width `N`.
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// Partial-product generation scheme.
    pub fn kind(&self) -> PpgKind {
        self.kind
    }

    /// Initial partial-product count per column (length `2N`).
    pub fn columns(&self) -> &[u32] {
        &self.columns
    }

    /// Number of columns, always `2N`.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Total number of initial partial products.
    pub fn total_bits(&self) -> u32 {
        self.columns.iter().sum()
    }

    /// Height of the tallest column.
    pub fn max_height(&self) -> u32 {
        self.columns.iter().copied().max().unwrap_or(0)
    }
}

/// AND-array column heights: column `j` holds one product bit for each
/// pair `(a, b) ∈ [0, N)²` with `a + b = j`.
fn and_columns(bits: usize) -> Vec<u32> {
    let n = bits;
    (0..2 * n)
        .map(|j| {
            let lo = j.saturating_sub(n - 1);
            let hi = j.min(n - 1);
            if hi >= lo {
                (hi - lo + 1) as u32
            } else {
                0
            }
        })
        .collect()
}

/// Number of radix-4 Booth digits for an unsigned `N`-bit multiplier
/// (`N` even): `N/2 + 1`, the top digit covering the zero-extended
/// high bits.
pub fn mbe_digit_count(bits: usize) -> usize {
    bits / 2 + 1
}

/// Sign-extension-prevention constant folded into the partial products
/// of the MBE array, reduced modulo `2^{2N}`.
///
/// Each potentially-negative row `i ∈ [0, N/2)` contributes
/// `−s_i·2^{2i+N+1}`, rewritten as `(¬s_i)·2^{2i+N+1} − 2^{2i+N+1}`;
/// the constant parts sum to this value.
pub fn mbe_constant(bits: usize) -> u128 {
    let n = bits as u32;
    let modulus_mask: u128 = if 2 * n == 128 { u128::MAX } else { (1u128 << (2 * n)) - 1 };
    let mut acc: u128 = 0;
    for i in 0..bits / 2 {
        let p = 2 * i as u32 + n + 1;
        if p < 2 * n {
            acc = acc.wrapping_add(1u128 << p);
        }
    }
    acc.wrapping_neg() & modulus_mask
}

/// MBE column heights. Row `i` of the array contributes:
/// * `N + 1` encoded magnitude bits `e_{i,k}` at columns `2i + k`;
/// * a two's-complement correction bit `s_i` at column `2i`
///   (rows `i < N/2`, the only ones with a possibly-negative digit);
/// * a sign-extension-prevention bit `¬s_i` at column `2i + N + 1`
///   (same rows);
/// * plus the folded constant [`mbe_constant`] as constant-one bits.
fn mbe_columns(bits: usize) -> Vec<u32> {
    let n = bits;
    let mut cols = vec![0u32; 2 * n];
    let digits = mbe_digit_count(n);
    for i in 0..digits {
        for k in 0..=n {
            let col = 2 * i + k;
            if col < 2 * n {
                cols[col] += 1;
            }
        }
    }
    for i in 0..n / 2 {
        cols[2 * i] += 1; // s_i correction
        let p = 2 * i + n + 1;
        if p < 2 * n {
            cols[p] += 1; // ¬s_i
        }
    }
    let k = mbe_constant(n);
    for (j, col) in cols.iter_mut().enumerate() {
        if (k >> j) & 1 == 1 {
            *col += 1;
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_profile_is_symmetric_triangle() {
        let p = PpProfile::new(4, PpgKind::And).unwrap();
        assert_eq!(p.columns(), &[1, 2, 3, 4, 3, 2, 1, 0]);
        assert_eq!(p.total_bits(), 16);
    }

    #[test]
    fn and_profile_total_is_n_squared() {
        for n in 2..=16 {
            let p = PpProfile::new(n, PpgKind::And).unwrap();
            assert_eq!(p.total_bits(), (n * n) as u32, "n = {n}");
        }
    }

    #[test]
    fn mbe_profile_shorter_than_and_for_wide_operands() {
        let and = PpProfile::new(16, PpgKind::And).unwrap();
        let mbe = PpProfile::new(16, PpgKind::Mbe).unwrap();
        assert!(mbe.max_height() < and.max_height());
        // Roughly N/2 + 1 rows plus correction bits.
        assert!(mbe.max_height() <= mbe_digit_count(16) as u32 + 3);
    }

    #[test]
    fn mac_adds_one_row_everywhere() {
        let mul = PpProfile::new(8, PpgKind::And).unwrap();
        let mac = PpProfile::new(8, PpgKind::MacAnd).unwrap();
        for j in 0..mul.num_columns() {
            assert_eq!(mac.columns()[j], mul.columns()[j] + 1);
        }
    }

    #[test]
    fn mbe_requires_even_width() {
        assert!(PpProfile::new(7, PpgKind::Mbe).is_err());
        assert!(PpProfile::new(7, PpgKind::And).is_ok());
    }

    #[test]
    fn width_bounds_are_enforced() {
        assert!(PpProfile::new(1, PpgKind::And).is_err());
        assert!(PpProfile::new(65, PpgKind::And).is_err());
        assert!(PpProfile::new(64, PpgKind::And).is_ok());
        assert!(PpProfile::new(33, PpgKind::And).is_ok());
    }

    #[test]
    fn mbe_constant_matches_manual_n4() {
        // Rows 0, 1 contribute −(2^5 + 2^7) ≡ 96 (mod 256).
        assert_eq!(mbe_constant(4), 96);
    }

    #[test]
    fn display_labels() {
        assert_eq!(PpgKind::And.to_string(), "and");
        assert_eq!(PpgKind::MacMbe.to_string(), "mac-mbe");
        assert!(PpgKind::MacAnd.is_mac());
        assert_eq!(PpgKind::MacMbe.base(), PpgKind::Mbe);
    }
}
