use crate::action::action_mask;
use crate::assign::StageTensor;
use crate::init::{dadda_matrix, wallace_matrix};
use crate::legalize::legalize;
use crate::{Action, CompressorMatrix, CtError, PpProfile, PpgKind, ACTIONS_PER_COLUMN};

/// A complete RL-MUL state: a partial-product profile plus a legal
/// compressor matrix over it.
///
/// `CompressorTree` is the value the RL agent, the baselines and the
/// RTL generator all operate on. Constructors guarantee legality;
/// [`CompressorTree::apply_action`] preserves it by running the paper's
/// legalization sweep after every modification.
///
/// ```
/// use rlmul_ct::{CompressorTree, PpgKind};
///
/// let tree = CompressorTree::dadda(8, PpgKind::And)?;
/// let actions = tree.valid_actions();
/// assert!(!actions.is_empty());
/// let next = tree.apply_action(actions[0])?;
/// assert!(next.is_legal());
/// # Ok::<(), rlmul_ct::CtError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressorTree {
    profile: PpProfile,
    matrix: CompressorMatrix,
}

impl CompressorTree {
    /// Builds the Wallace-tree initial structure for a `bits`-bit
    /// design (paper baseline \[1\] and default initial state `s_0`).
    ///
    /// # Errors
    ///
    /// Propagates [`CtError::UnsupportedWidth`] from profile
    /// construction.
    pub fn wallace(bits: usize, kind: PpgKind) -> Result<Self, CtError> {
        let profile = PpProfile::new(bits, kind)?;
        let matrix = wallace_matrix(&profile);
        let tree = CompressorTree { profile, matrix };
        tree.check_legal()?;
        Ok(tree)
    }

    /// Builds the Dadda-tree structure for a `bits`-bit design.
    ///
    /// # Errors
    ///
    /// Propagates [`CtError::UnsupportedWidth`] from profile
    /// construction.
    pub fn dadda(bits: usize, kind: PpgKind) -> Result<Self, CtError> {
        let profile = PpProfile::new(bits, kind)?;
        let matrix = dadda_matrix(&profile);
        let tree = CompressorTree { profile, matrix };
        tree.check_legal()?;
        Ok(tree)
    }

    /// Wraps an explicit matrix after validating it against `profile`.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::IllegalStructure`] when the matrix violates
    /// the residual invariant.
    pub fn from_matrix(profile: PpProfile, matrix: CompressorMatrix) -> Result<Self, CtError> {
        matrix.check_legal(&profile)?;
        Ok(CompressorTree { profile, matrix })
    }

    /// The immutable partial-product profile.
    pub fn profile(&self) -> &PpProfile {
        &self.profile
    }

    /// The compressor matrix `M`.
    pub fn matrix(&self) -> &CompressorMatrix {
        &self.matrix
    }

    /// Operand bit-width `N`.
    pub fn bits(&self) -> usize {
        self.profile.bits()
    }

    /// Size of the flattened action space, `8N`.
    pub fn action_space(&self) -> usize {
        self.matrix.num_columns() * ACTIONS_PER_COLUMN
    }

    /// Validity mask over the flattened action space (paper Eq. (6)).
    pub fn action_mask(&self) -> Vec<bool> {
        action_mask(&self.profile, &self.matrix)
    }

    /// [`CompressorTree::action_mask`] into a caller-owned buffer.
    pub fn action_mask_into(&self, out: &mut Vec<bool>) {
        crate::action::action_mask_into(&self.profile, &self.matrix, out);
    }

    /// All currently valid actions.
    pub fn valid_actions(&self) -> Vec<Action> {
        self.action_mask()
            .iter()
            .enumerate()
            .filter(|(_, &ok)| ok)
            .map(|(idx, _)| {
                Action::from_flat_index(idx, self.matrix.num_columns()).expect("mask-sized index")
            })
            .collect()
    }

    /// Applies `action` followed by the legalization sweep, returning
    /// the successor state.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::InvalidAction`] when the action's mask bit
    /// is 0 in this state.
    pub fn apply_action(&self, action: Action) -> Result<Self, CtError> {
        if !action.is_valid(&self.profile, &self.matrix) {
            return Err(CtError::InvalidAction { index: action.flat_index() });
        }
        let mut next = self.clone();
        action.apply_raw(&mut next.matrix);
        legalize(&next.profile, &mut next.matrix, action.column());
        debug_assert!(next.is_legal(), "legalization left an illegal state");
        Ok(next)
    }

    /// Checks the residual legality invariant.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::IllegalStructure`] naming the first
    /// offending column.
    pub fn check_legal(&self) -> Result<(), CtError> {
        self.matrix.check_legal(&self.profile)
    }

    /// `true` when the state satisfies the legality invariant.
    pub fn is_legal(&self) -> bool {
        self.matrix.is_legal(&self.profile)
    }

    /// Runs paper Algorithm 1, producing the stage-resolved tensor.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::AssignmentStuck`] for infeasible matrices
    /// (unreachable from legal states).
    pub fn assign_stages(&self) -> Result<StageTensor, CtError> {
        StageTensor::assign(&self.profile, &self.matrix)
    }

    /// Reduction depth of the tree (convenience for
    /// `assign_stages()?.stage_count()`).
    ///
    /// # Errors
    ///
    /// Same as [`CompressorTree::assign_stages`].
    pub fn stage_count(&self) -> Result<usize, CtError> {
        Ok(self.assign_stages()?.stage_count())
    }

    /// Total compressor count (3:2 plus 2:2), the GOMIL-style size
    /// proxy.
    pub fn total_compressors(&self) -> u32 {
        self.matrix.total32() + self.matrix.total22()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_valid_action_yields_legal_successor() {
        for kind in [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd] {
            let tree = CompressorTree::wallace(8, kind).unwrap();
            for action in tree.valid_actions() {
                let next = tree.apply_action(action).unwrap();
                next.check_legal().unwrap_or_else(|e| panic!("{kind} {action:?}: {e}"));
                // The successor must also be assignable.
                next.assign_stages().unwrap_or_else(|e| panic!("{kind} {action:?}: {e}"));
            }
        }
    }

    #[test]
    fn invalid_action_is_rejected() {
        let tree = CompressorTree::wallace(4, PpgKind::And).unwrap();
        let mask = tree.action_mask();
        let idx = mask.iter().position(|&ok| !ok).expect("some invalid action");
        let action = Action::from_flat_index(idx, tree.matrix().num_columns()).unwrap();
        assert!(matches!(tree.apply_action(action), Err(CtError::InvalidAction { .. })));
    }

    #[test]
    fn action_space_size_is_8n() {
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        assert_eq!(tree.action_space(), 64);
        assert_eq!(tree.action_mask().len(), 64);
    }

    #[test]
    fn from_matrix_validates() {
        let profile = PpProfile::new(8, PpgKind::And).unwrap();
        let bad = CompressorMatrix::zeros(16);
        assert!(CompressorTree::from_matrix(profile, bad).is_err());
    }

    #[test]
    fn valid_actions_match_mask_population() {
        let tree = CompressorTree::dadda(8, PpgKind::Mbe).unwrap();
        let mask = tree.action_mask();
        assert_eq!(tree.valid_actions().len(), mask.iter().filter(|&&ok| ok).count());
    }

    #[test]
    fn total_compressors_is_matrix_sum() {
        let tree = CompressorTree::wallace(8, PpgKind::MacMbe).unwrap();
        assert_eq!(tree.total_compressors(), tree.matrix().total32() + tree.matrix().total22());
    }

    #[test]
    fn random_walk_preserves_legality() {
        // A deterministic pseudo-random 200-step walk.
        let mut tree = CompressorTree::dadda(8, PpgKind::And).unwrap();
        let mut seed = 0x9e3779b97f4a7c15u64;
        for step in 0..200 {
            let actions = tree.valid_actions();
            assert!(!actions.is_empty(), "no valid actions at step {step}");
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let pick = (seed >> 33) as usize % actions.len();
            tree = tree.apply_action(actions[pick]).unwrap();
        }
        tree.check_legal().unwrap();
        tree.assign_stages().unwrap();
    }
}
