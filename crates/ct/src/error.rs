use std::error::Error;
use std::fmt;

/// Errors produced by compressor-tree construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CtError {
    /// The requested operand bit-width is outside the supported range.
    UnsupportedWidth {
        /// Requested width.
        bits: usize,
    },
    /// A compressor matrix does not satisfy the per-column residual
    /// constraint `res_j ∈ {1, 2}` (or `0` for empty columns).
    IllegalStructure {
        /// First offending column.
        column: usize,
        /// Residual row count observed in that column.
        residual: i64,
    },
    /// Stage assignment could not place every compressor (the matrix
    /// is structurally infeasible).
    AssignmentStuck {
        /// Column at which assignment deadlocked.
        column: usize,
    },
    /// An action was applied whose validity mask bit is 0.
    InvalidAction {
        /// Flattened action index.
        index: usize,
    },
    /// An action index is outside `0..8N`.
    ActionOutOfRange {
        /// Flattened action index.
        index: usize,
        /// Size of the action space.
        space: usize,
    },
}

impl fmt::Display for CtError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtError::UnsupportedWidth { bits } => {
                write!(f, "unsupported operand width {bits} (supported: 2..=32)")
            }
            CtError::IllegalStructure { column, residual } => {
                write!(f, "illegal compressor tree: column {column} compresses to {residual} rows")
            }
            CtError::AssignmentStuck { column } => {
                write!(f, "stage assignment deadlocked at column {column}: matrix is infeasible")
            }
            CtError::InvalidAction { index } => {
                write!(f, "action {index} is masked out in the current state")
            }
            CtError::ActionOutOfRange { index, space } => {
                write!(f, "action index {index} outside action space of size {space}")
            }
        }
    }
}

impl Error for CtError {}
