//! Compressor-tree state representation for RL-MUL.
//!
//! This crate implements the structural half of the RL-MUL paper
//! (Zuo, Zhu, Ouyang, Ma — DAC 2023): the matrix representation
//! `M ∈ N^{2N×2}` of a multiplier's compressor tree, the deterministic
//! stage-assignment (paper Algorithm 1) producing the tensor
//! `T ∈ N^{2×2N×ST}`, the 4-actions-per-column modification space with
//! validity masking (paper Section III-D), and the deterministic
//! legalization procedure (paper Algorithm 2).
//!
//! A compressor tree compresses the partial-product (PP) columns of a
//! multiplier, merged multiply-accumulator (MAC) or other datapath
//! block down to two rows that a final carry-propagate adder resolves.
//! With `a_j` 3:2 compressors (full adders) and `b_j` 2:2 compressors
//! (half adders) in column `j`, and `p_j` initial partial products, the
//! residual row count after complete compression is
//!
//! ```text
//! res_j = p_j − 2·a_j − b_j + a_{j−1} + b_{j−1}
//! ```
//!
//! (the trailing term is the carry-in from column `j − 1`). A structure
//! is *legal* when every active column ends with one or two rows.
//!
//! # Example
//!
//! ```
//! use rlmul_ct::{CompressorTree, PpgKind};
//!
//! // 8-bit AND-based multiplier, Wallace-reduced initial structure.
//! let tree = CompressorTree::wallace(8, PpgKind::And)?;
//! assert!(tree.is_legal());
//! let tensor = tree.assign_stages()?;
//! assert!(tensor.stage_count() >= 1);
//! # Ok::<(), rlmul_ct::CtError>(())
//! ```

#![forbid(unsafe_code)]

mod action;
mod assign;
mod ckpt;
mod error;
mod init;
mod legalize;
mod matrix;
mod profile;
mod quad;
mod render;
mod tree;

pub use action::{Action, ActionKind, ACTIONS_PER_COLUMN};
pub use assign::StageTensor;
pub use error::CtError;
pub use matrix::CompressorMatrix;
pub use profile::{mbe_constant, mbe_digit_count, PpProfile, PpgKind};
pub use quad::{QuadColumn, QuadSchedule};
pub use render::render_structure;
pub use tree::CompressorTree;
