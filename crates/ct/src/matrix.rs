use crate::{CtError, PpProfile};

/// The paper's matrix representation `M ∈ N^{2N×2}`: per-column totals
/// of 3:2 compressors (full adders) and 2:2 compressors (half adders),
/// aggregated over all stages.
///
/// The matrix is the *canonical search state*; the stage-resolved
/// tensor is derived deterministically from it (paper Algorithm 1, see
/// [`crate::StageTensor`]).
///
/// ```
/// use rlmul_ct::{CompressorMatrix, PpProfile, PpgKind};
///
/// let profile = PpProfile::new(8, PpgKind::And)?;
/// let m = CompressorMatrix::zeros(profile.num_columns());
/// // An empty tree leaves tall columns uncompressed: illegal.
/// assert!(m.check_legal(&profile).is_err());
/// # Ok::<(), rlmul_ct::CtError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CompressorMatrix {
    counts: Vec<(u32, u32)>,
}

impl CompressorMatrix {
    /// An all-zero matrix with `columns` columns.
    pub fn zeros(columns: usize) -> Self {
        CompressorMatrix { counts: vec![(0, 0); columns] }
    }

    /// Builds a matrix from explicit per-column `(3:2, 2:2)` counts.
    pub fn from_counts<I: IntoIterator<Item = (u32, u32)>>(counts: I) -> Self {
        CompressorMatrix { counts: counts.into_iter().collect() }
    }

    /// Number of columns (`2N`).
    pub fn num_columns(&self) -> usize {
        self.counts.len()
    }

    /// Count of 3:2 compressors (full adders) in `column`.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of bounds.
    pub fn count32(&self, column: usize) -> u32 {
        self.counts[column].0
    }

    /// Count of 2:2 compressors (half adders) in `column`.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of bounds.
    pub fn count22(&self, column: usize) -> u32 {
        self.counts[column].1
    }

    /// Mutable access to the `(3:2, 2:2)` pair of `column`.
    pub(crate) fn counts_mut(&mut self, column: usize) -> &mut (u32, u32) {
        &mut self.counts[column]
    }

    /// Per-column `(3:2, 2:2)` counts.
    pub fn counts(&self) -> &[(u32, u32)] {
        &self.counts
    }

    /// Total number of 3:2 compressors.
    pub fn total32(&self) -> u32 {
        self.counts.iter().map(|c| c.0).sum()
    }

    /// Total number of 2:2 compressors.
    pub fn total22(&self) -> u32 {
        self.counts.iter().map(|c| c.1).sum()
    }

    /// Carry-in arriving at `column` from the column below
    /// (`a_{j−1} + b_{j−1}`, or 0 for column 0).
    pub fn carry_in(&self, column: usize) -> u32 {
        if column == 0 {
            0
        } else {
            let (a, b) = self.counts[column - 1];
            a + b
        }
    }

    /// Residual row count of `column` after complete compression:
    /// `res_j = p_j − 2·a_j − b_j + a_{j−1} + b_{j−1}`.
    ///
    /// Negative values indicate an over-provisioned column.
    pub fn residual(&self, profile: &PpProfile, column: usize) -> i64 {
        let (a, b) = self.counts[column];
        profile.columns()[column] as i64 - 2 * a as i64 - b as i64 + self.carry_in(column) as i64
    }

    /// Residuals of every column.
    pub fn residuals(&self, profile: &PpProfile) -> Vec<i64> {
        (0..self.counts.len()).map(|j| self.residual(profile, j)).collect()
    }

    /// Checks the legality invariant: every column with at least one
    /// input row must compress to one or two rows; a column with zero
    /// inputs must hold no compressors.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::IllegalStructure`] naming the first
    /// offending column.
    pub fn check_legal(&self, profile: &PpProfile) -> Result<(), CtError> {
        debug_assert_eq!(self.counts.len(), profile.num_columns());
        for j in 0..self.counts.len() {
            let inputs = profile.columns()[j] as i64 + self.carry_in(j) as i64;
            let res = self.residual(profile, j);
            let (a, b) = self.counts[j];
            if inputs == 0 {
                if a != 0 || b != 0 {
                    return Err(CtError::IllegalStructure { column: j, residual: res });
                }
            } else if !(1..=2).contains(&res) {
                return Err(CtError::IllegalStructure { column: j, residual: res });
            }
        }
        Ok(())
    }

    /// `true` when [`CompressorMatrix::check_legal`] succeeds.
    pub fn is_legal(&self, profile: &PpProfile) -> bool {
        self.check_legal(profile).is_ok()
    }

    /// Flattens the matrix into a feature vector
    /// `[a_0, …, a_{2N−1}, b_0, …, b_{2N−1}]` for ML consumers.
    pub fn to_features(&self) -> Vec<f32> {
        let mut v = Vec::with_capacity(2 * self.counts.len());
        v.extend(self.counts.iter().map(|c| c.0 as f32));
        v.extend(self.counts.iter().map(|c| c.1 as f32));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PpgKind;

    fn profile4() -> PpProfile {
        PpProfile::new(4, PpgKind::And).unwrap()
    }

    #[test]
    fn residual_accounts_for_carry_chain() {
        // 4-bit AND profile: [1, 2, 3, 4, 3, 2, 1, 0].
        let p = profile4();
        let mut m = CompressorMatrix::zeros(8);
        *m.counts_mut(1) = (0, 1); // one half adder in column 1
        assert_eq!(m.residual(&p, 1), 1); // 2 − 1
        assert_eq!(m.residual(&p, 2), 4); // 3 + carry 1
        assert_eq!(m.carry_in(2), 1);
    }

    #[test]
    fn zero_matrix_is_illegal_for_tall_profiles() {
        let p = profile4();
        let m = CompressorMatrix::zeros(8);
        let err = m.check_legal(&p).unwrap_err();
        assert!(matches!(err, CtError::IllegalStructure { column: 2, residual: 3 }));
    }

    #[test]
    fn empty_trailing_column_is_legal() {
        // Hand-built legal reduction of the 4-bit AND profile.
        // p = [1,2,3,4,3,2,1,0]
        let p = profile4();
        let m = CompressorMatrix::from_counts([
            (0, 0), // res 1
            (0, 1), // res 1, carry 1 -> col2
            (1, 0), // res 3+1-2 = 2, carry 1 -> col3
            (1, 1), // res 4+1-3 = 2, carry 2 -> col4
            (1, 1), // res 3+2-3 = 2, carry 2 -> col5
            (1, 0), // res 2+2-2 = 2, carry 1 -> col6
            (0, 0), // res 1+1 = 2, carry 0 -> col7
            (0, 0), // res 0, empty
        ]);
        m.check_legal(&p).unwrap();
        assert_eq!(m.total32(), 4);
        assert_eq!(m.total22(), 3);
    }

    #[test]
    fn compressors_in_empty_column_are_illegal() {
        let p = profile4();
        let mut m = CompressorMatrix::zeros(8);
        *m.counts_mut(7) = (0, 1);
        assert!(!m.is_legal(&p));
    }

    #[test]
    fn feature_vector_layout() {
        let mut m = CompressorMatrix::zeros(3);
        *m.counts_mut(0) = (5, 7);
        let f = m.to_features();
        assert_eq!(f, vec![5.0, 0.0, 0.0, 7.0, 0.0, 0.0]);
    }
}
