//! 4:2-compressor reduction schedules — the paper's named extension
//! point ("this framework is designed for potential extension to
//! accommodate more compressor variants", Section III-B).
//!
//! A 4:2 compressor consumes four rows of a column plus a same-stage
//! carry-in (`cin`) from the previous column and produces a sum (same
//! column, next stage), a carry (next column, next stage) and a
//! same-stage carry-out (`cout`, next column). Because
//! `cout = maj(x₁, x₂, x₃)` is independent of `cin`, the intra-stage
//! cout chain never ripples — the property that makes 4:2 trees
//! attractive in practice.
//!
//! The schedule built here is Wallace-style: every stage places as
//! many 4:2 compressors as each column's rows allow, then cleans up
//! with 3:2 / 2:2 compressors. The [`CompressorMatrix`] action space
//! of the RL agent is untouched (the paper's `K = 2`); this module
//! demonstrates the `K = 3` tensor encoding and provides the 4:2
//! baseline used by the `ablation_compressor42` harness.

use crate::{CtError, PpProfile};

/// Per-column placement within one stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QuadColumn {
    /// 4:2 compressors placed in the column.
    pub n42: u32,
    /// How many of them consume a same-stage `cin` (always the first
    /// ones in elaboration order).
    pub n42_with_cin: u32,
    /// Cleanup 3:2 compressors.
    pub n32: u32,
    /// Cleanup 2:2 compressors.
    pub n22: u32,
}

/// A stage-resolved 4:2 reduction schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuadSchedule {
    stages: Vec<Vec<QuadColumn>>,
    num_columns: usize,
}

/// Hard bound on depth; real schedules are ⌈log₁.₅…⌉ shallow.
const MAX_STAGES: usize = 64;

impl QuadSchedule {
    /// Builds the Wallace-style 4:2 schedule for `profile`.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::AssignmentStuck`] if reduction fails to
    /// converge (unreachable for valid profiles; defensive bound).
    pub fn build(profile: &PpProfile) -> Result<Self, CtError> {
        let ncols = profile.num_columns();
        let mut heights: Vec<u32> = profile.columns().to_vec();
        let mut stages: Vec<Vec<QuadColumn>> = Vec::new();
        while heights.iter().any(|&h| h > 2) {
            if stages.len() >= MAX_STAGES {
                return Err(CtError::AssignmentStuck { column: 0 });
            }
            let mut stage = vec![QuadColumn::default(); ncols];
            let mut new_h = vec![0u32; ncols];
            // Same-stage couts pending consumption, per column.
            let mut couts = vec![0u32; ncols + 1];
            for j in 0..ncols {
                // Carries from column j−1's compressors (this stage)
                // have already been recorded in new_h[j]; accounting
                // for them lets the cleanup reach height ≤ 2 in one
                // stage instead of rippling column by column.
                let carried = new_h[j];
                let mut avail = heights[j];
                let mut cins = couts[j];
                let mut sums = 0u32;
                let slot = &mut stage[j];
                while avail >= 4 {
                    avail -= 4;
                    slot.n42 += 1;
                    if cins > 0 {
                        cins -= 1;
                        slot.n42_with_cin += 1;
                    }
                    sums += 1;
                    if j + 1 < ncols {
                        new_h[j + 1] += 1; // carry
                        couts[j + 1] += 1; // same-stage cout
                    }
                }
                // Unconsumed same-stage couts become plain rows.
                let mut remaining = avail + cins;
                while carried + sums + remaining > 2 && remaining >= 2 {
                    if remaining >= 3 {
                        remaining -= 3;
                        slot.n32 += 1;
                    } else {
                        remaining -= 2;
                        slot.n22 += 1;
                    }
                    sums += 1;
                    if j + 1 < ncols {
                        new_h[j + 1] += 1;
                    }
                }
                new_h[j] = carried + sums + remaining;
            }
            stages.push(stage);
            heights = new_h;
        }
        Ok(QuadSchedule { stages, num_columns: ncols })
    }

    /// Number of reduction stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Number of columns (`2N`).
    pub fn num_columns(&self) -> usize {
        self.num_columns
    }

    /// Placement for `(stage, column)`.
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn at(&self, stage: usize, column: usize) -> QuadColumn {
        self.stages[stage][column]
    }

    /// Totals `(4:2, 3:2, 2:2)` over the whole schedule.
    pub fn totals(&self) -> (u32, u32, u32) {
        self.stages
            .iter()
            .flatten()
            .fold((0, 0, 0), |(a, b, c), q| (a + q.n42, b + q.n32, c + q.n22))
    }

    /// Dense `K × 2N × ST_pad` tensor with `K = 3` kinds
    /// (`[4:2, 3:2, 2:2]`) — the paper's extensible state encoding.
    pub fn to_dense(&self, stages: usize) -> Vec<f32> {
        let ncols = self.num_columns;
        let mut out = vec![0.0f32; 3 * ncols * stages];
        for (i, stage) in self.stages.iter().enumerate().take(stages) {
            for (j, q) in stage.iter().enumerate() {
                out[j * stages + i] = q.n42 as f32;
                out[ncols * stages + j * stages + i] = q.n32 as f32;
                out[2 * ncols * stages + j * stages + i] = q.n22 as f32;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressorTree, PpgKind};

    #[test]
    fn schedule_converges_for_all_kinds() {
        for bits in [4, 8, 16, 32] {
            for kind in [PpgKind::And, PpgKind::MacAnd] {
                let p = PpProfile::new(bits, kind).unwrap();
                let q = QuadSchedule::build(&p).unwrap();
                assert!(q.stage_count() >= 1, "{bits} {kind}");
            }
        }
        let p = PpProfile::new(16, PpgKind::Mbe).unwrap();
        QuadSchedule::build(&p).unwrap();
    }

    #[test]
    fn quad_tree_is_shallower_than_32_tree() {
        for bits in [16usize, 32] {
            let p = PpProfile::new(bits, PpgKind::And).unwrap();
            let quad = QuadSchedule::build(&p).unwrap();
            let wallace = CompressorTree::wallace(bits, PpgKind::And).unwrap();
            let st32 = wallace.assign_stages().unwrap().stage_count();
            assert!(
                quad.stage_count() < st32,
                "{bits}-bit: quad {} vs 3:2 {}",
                quad.stage_count(),
                st32
            );
        }
    }

    #[test]
    fn cin_counts_never_exceed_n42() {
        let p = PpProfile::new(16, PpgKind::And).unwrap();
        let q = QuadSchedule::build(&p).unwrap();
        for s in 0..q.stage_count() {
            for j in 0..q.num_columns() {
                let col = q.at(s, j);
                assert!(col.n42_with_cin <= col.n42);
            }
        }
    }

    #[test]
    fn dense_tensor_has_three_kind_planes() {
        let p = PpProfile::new(8, PpgKind::And).unwrap();
        let q = QuadSchedule::build(&p).unwrap();
        let st = q.stage_count();
        let dense = q.to_dense(st);
        assert_eq!(dense.len(), 3 * 16 * st);
        let (n42, n32, n22) = q.totals();
        let plane = 16 * st;
        assert_eq!(dense[..plane].iter().sum::<f32>() as u32, n42);
        assert_eq!(dense[plane..2 * plane].iter().sum::<f32>() as u32, n32);
        assert_eq!(dense[2 * plane..].iter().sum::<f32>() as u32, n22);
    }
}
