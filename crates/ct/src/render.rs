//! Human-readable rendering of multiplier structures — the textual
//! analogue of the paper's Fig. 4 (matrix and stage-resolved tensor).

use crate::{CompressorTree, CtError};
use std::fmt::Write as _;

/// Renders the matrix `M`, the per-column residuals, and the tensor
/// `T` of `tree` as an aligned text diagram.
///
/// Digits are compressor counts; `.` is zero. Columns run LSB (left)
/// to MSB (right).
///
/// # Errors
///
/// Propagates stage-assignment errors (unreachable for legal trees).
///
/// # Example
///
/// ```
/// use rlmul_ct::{render_structure, CompressorTree, PpgKind};
///
/// let tree = CompressorTree::dadda(4, PpgKind::And)?;
/// let art = render_structure(&tree)?;
/// assert!(art.contains("matrix M"));
/// assert!(art.contains("tensor T"));
/// # Ok::<(), rlmul_ct::CtError>(())
/// ```
pub fn render_structure(tree: &CompressorTree) -> Result<String, CtError> {
    let ncols = tree.matrix().num_columns();
    let tensor = tree.assign_stages()?;
    let mut s = String::new();
    let digit = |v: u32| -> char {
        match v {
            0 => '.',
            1..=9 => char::from(b'0' + v as u8),
            _ => '+',
        }
    };
    let row = |label: &str, vals: &mut dyn Iterator<Item = u32>| -> String {
        let mut line = format!("{label:<10}");
        for v in vals {
            line.push(digit(v));
            line.push(' ');
        }
        line.trim_end().to_owned()
    };

    let _ = writeln!(
        s,
        "{}-bit {} — {} FA, {} HA, {} stages",
        tree.bits(),
        tree.profile().kind(),
        tree.matrix().total32(),
        tree.matrix().total22(),
        tensor.stage_count()
    );
    let _ = writeln!(s, "matrix M (columns LSB→MSB)");
    let _ = writeln!(s, "{}", row("  pp", &mut tree.profile().columns().iter().copied()));
    let _ = writeln!(s, "{}", row("  3:2", &mut (0..ncols).map(|j| tree.matrix().count32(j))));
    let _ = writeln!(s, "{}", row("  2:2", &mut (0..ncols).map(|j| tree.matrix().count22(j))));
    let _ = writeln!(
        s,
        "{}",
        row("  res", &mut tree.matrix().residuals(tree.profile()).iter().map(|&r| r.max(0) as u32))
    );
    let _ = writeln!(s, "tensor T (one row per stage; `f/h` = 3:2 / 2:2 counts)");
    for stage in 0..tensor.stage_count() {
        let mut line = format!("  s{stage:<3}    ");
        for j in 0..ncols {
            let (f, h) = tensor.counts_at(j, stage);
            if f == 0 && h == 0 {
                line.push_str(".  ");
            } else {
                line.push(digit(f));
                line.push('/');
                line.push(digit(h));
            }
        }
        let _ = writeln!(s, "{}", line.trim_end());
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PpgKind;

    #[test]
    fn render_contains_all_sections() {
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let art = render_structure(&tree).unwrap();
        assert!(art.contains("8-bit and"));
        assert!(art.contains("matrix M"));
        assert!(art.contains("tensor T"));
        // One tensor row per stage.
        let stages = tree.stage_count().unwrap();
        assert_eq!(art.matches("\n  s").count(), stages);
    }

    #[test]
    fn digits_saturate_above_nine() {
        let tree = CompressorTree::wallace(32, PpgKind::And).unwrap();
        let art = render_structure(&tree).unwrap();
        assert!(art.contains('+'), "32-bit columns hold >9 compressors");
    }
}
