use crate::{CompressorMatrix, PpProfile};

/// Deterministic legalization (paper Algorithm 2).
///
/// After an action on column `c` the carry count flowing into column
/// `c + 1` may have changed, leaving a residual of 0 or 3 somewhere
/// upstream. This sweep walks from `c + 1` to the MSB and repairs each
/// column:
///
/// * `res = 3` (under-compressed): replace a 2:2 with a 3:2 if one
///   exists (carry count preserved — repair stops), else add a 3:2
///   (one extra carry propagates).
/// * `res = 0` (over-compressed): delete a 2:2 if one exists, else a
///   3:2; one fewer carry propagates in either case.
/// * `res ∈ {1, 2}`: legal — the sweep terminates.
///
/// Returns the number of columns modified.
pub(crate) fn legalize(profile: &PpProfile, matrix: &mut CompressorMatrix, column: usize) -> usize {
    let ncols = matrix.num_columns();
    let mut touched = 0;
    for j in column + 1..ncols {
        let res = matrix.residual(profile, j);
        match res {
            1 | 2 => return touched,
            3 => {
                let counts = matrix.counts_mut(j);
                if counts.1 >= 1 {
                    // Replace a 2:2 with a 3:2: res −1, carries kept.
                    counts.1 -= 1;
                    counts.0 += 1;
                    touched += 1;
                    return touched;
                }
                // Add a 3:2: res −2, one more carry flows upstream.
                counts.0 += 1;
                touched += 1;
            }
            0 => {
                let counts = matrix.counts_mut(j);
                if counts.1 >= 1 {
                    // Delete a 2:2: res +1, one fewer carry.
                    counts.1 -= 1;
                } else if counts.0 >= 1 {
                    // Delete a 3:2: res +2, one fewer carry.
                    counts.0 -= 1;
                } else {
                    // Empty column with no inputs: nothing to repair and
                    // no carries change downstream.
                    return touched;
                }
                touched += 1;
            }
            other => {
                // Residuals outside 0..=3 are unreachable from a legal
                // state plus one action; guard in debug builds.
                debug_assert!(false, "unexpected residual {other} in column {j}");
                return touched;
            }
        }
    }
    touched
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Action, ActionKind, CompressorTree, PpgKind};

    #[test]
    fn add_half_then_legalize_restores_legality() {
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let (profile, matrix) = (tree.profile().clone(), tree.matrix().clone());
        // Find any valid AddHalf action and apply it raw, then legalize.
        for col in 0..matrix.num_columns() {
            let a = Action::new(col, ActionKind::AddHalf);
            if !a.is_valid(&profile, &matrix) {
                continue;
            }
            let mut m = matrix.clone();
            a.apply_raw(&mut m);
            legalize(&profile, &mut m, col);
            m.check_legal(&profile).unwrap_or_else(|e| panic!("column {col}: {e}"));
        }
    }

    #[test]
    fn legalize_is_noop_on_legal_state() {
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let mut m = tree.matrix().clone();
        let touched = legalize(tree.profile(), &mut m, 0);
        assert_eq!(touched, 0);
        assert_eq!(&m, tree.matrix());
    }

    #[test]
    fn over_compression_cascade_terminates() {
        let tree = CompressorTree::wallace(16, PpgKind::And).unwrap();
        let (profile, matrix) = (tree.profile().clone(), tree.matrix().clone());
        for col in 0..matrix.num_columns() {
            let a = Action::new(col, ActionKind::RemoveHalf);
            if !a.is_valid(&profile, &matrix) {
                continue;
            }
            let mut m = matrix.clone();
            a.apply_raw(&mut m);
            legalize(&profile, &mut m, col);
            m.check_legal(&profile).unwrap_or_else(|e| panic!("column {col}: {e}"));
        }
    }
}
