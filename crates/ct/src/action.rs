use crate::{CompressorMatrix, CtError, PpProfile};

/// Number of modification actions available per column (paper
/// Section III-D): the action space has size `|A| = 2N × 4 = 8N`.
pub const ACTIONS_PER_COLUMN: usize = 4;

/// One of the four structure modifications applicable to a column.
///
/// Actions adding or removing a 3:2 compressor are excluded by
/// construction: they would drive the column residual to 0 or 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ActionKind {
    /// Add a 2:2 compressor (residual −1, one more carry out).
    AddHalf,
    /// Remove a 2:2 compressor (residual +1, one less carry out).
    RemoveHalf,
    /// Replace a 3:2 with a 2:2 compressor (residual +1, carries kept).
    ReplaceFullWithHalf,
    /// Replace a 2:2 with a 3:2 compressor (residual −1, carries kept).
    ReplaceHalfWithFull,
}

impl ActionKind {
    /// All four kinds in flattened-index order.
    pub const ALL: [ActionKind; ACTIONS_PER_COLUMN] = [
        ActionKind::AddHalf,
        ActionKind::RemoveHalf,
        ActionKind::ReplaceFullWithHalf,
        ActionKind::ReplaceHalfWithFull,
    ];

    /// Change of the target column's residual row count.
    pub fn residual_delta(self) -> i64 {
        match self {
            ActionKind::AddHalf | ActionKind::ReplaceHalfWithFull => -1,
            ActionKind::RemoveHalf | ActionKind::ReplaceFullWithHalf => 1,
        }
    }

    /// Change of the carry count sent to the next column.
    pub fn carry_delta(self) -> i64 {
        match self {
            ActionKind::AddHalf => 1,
            ActionKind::RemoveHalf => -1,
            _ => 0,
        }
    }
}

/// A column-addressed structure modification.
///
/// ```
/// use rlmul_ct::{Action, ActionKind};
///
/// let a = Action::new(3, ActionKind::AddHalf);
/// assert_eq!(a.flat_index(), 12);
/// assert_eq!(Action::from_flat_index(12, 16).unwrap(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Action {
    column: usize,
    kind: ActionKind,
}

impl Action {
    /// Creates an action targeting `column`.
    pub fn new(column: usize, kind: ActionKind) -> Self {
        Action { column, kind }
    }

    /// Target column index.
    pub fn column(&self) -> usize {
        self.column
    }

    /// Modification kind.
    pub fn kind(&self) -> ActionKind {
        self.kind
    }

    /// Flattened index in `[0, 8N)`: `column × 4 + kind`.
    pub fn flat_index(&self) -> usize {
        self.column * ACTIONS_PER_COLUMN
            + ActionKind::ALL.iter().position(|k| *k == self.kind).expect("kind in ALL")
    }

    /// Decodes a flattened index for a tree with `num_columns` columns.
    ///
    /// # Errors
    ///
    /// Returns [`CtError::ActionOutOfRange`] when `index` exceeds
    /// `num_columns × 4`.
    pub fn from_flat_index(index: usize, num_columns: usize) -> Result<Self, CtError> {
        let space = num_columns * ACTIONS_PER_COLUMN;
        if index >= space {
            return Err(CtError::ActionOutOfRange { index, space });
        }
        Ok(Action {
            column: index / ACTIONS_PER_COLUMN,
            kind: ActionKind::ALL[index % ACTIONS_PER_COLUMN],
        })
    }

    /// Whether this action is valid in the given state: the touched
    /// compressor must exist and the target column's residual must
    /// remain in `{1, 2}` (downstream columns are repaired by
    /// legalization).
    pub fn is_valid(&self, profile: &PpProfile, matrix: &CompressorMatrix) -> bool {
        if self.column >= matrix.num_columns() {
            return false;
        }
        let (a, b) = (matrix.count32(self.column), matrix.count22(self.column));
        let exists = match self.kind {
            ActionKind::AddHalf => true,
            ActionKind::RemoveHalf | ActionKind::ReplaceHalfWithFull => b >= 1,
            ActionKind::ReplaceFullWithHalf => a >= 1,
        };
        if !exists {
            return false;
        }
        let res = matrix.residual(profile, self.column) + self.kind.residual_delta();
        (1..=2).contains(&res)
    }

    /// Applies the action to `matrix` **without** legalization.
    /// Callers must run [`crate::CompressorTree::apply_action`] (or
    /// legalize manually) before using the result.
    pub(crate) fn apply_raw(&self, matrix: &mut CompressorMatrix) {
        let counts = matrix.counts_mut(self.column);
        match self.kind {
            ActionKind::AddHalf => counts.1 += 1,
            ActionKind::RemoveHalf => counts.1 -= 1,
            ActionKind::ReplaceFullWithHalf => {
                counts.0 -= 1;
                counts.1 += 1;
            }
            ActionKind::ReplaceHalfWithFull => {
                counts.0 += 1;
                counts.1 -= 1;
            }
        }
    }
}

/// Computes the full validity mask `m ∈ {0, 1}^{8N}` of paper Eq. (6).
pub fn action_mask(profile: &PpProfile, matrix: &CompressorMatrix) -> Vec<bool> {
    let mut mask = Vec::new();
    action_mask_into(profile, matrix, &mut mask);
    mask
}

/// [`action_mask`] writing into a caller-owned buffer, so per-step
/// mask queries reuse one allocation.
pub fn action_mask_into(profile: &PpProfile, matrix: &CompressorMatrix, out: &mut Vec<bool>) {
    let ncols = matrix.num_columns();
    out.clear();
    out.reserve(ncols * ACTIONS_PER_COLUMN);
    for column in 0..ncols {
        for kind in ActionKind::ALL {
            out.push(Action::new(column, kind).is_valid(profile, matrix));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompressorTree, PpgKind};

    #[test]
    fn flat_index_round_trip() {
        for idx in 0..32 {
            let a = Action::from_flat_index(idx, 8).unwrap();
            assert_eq!(a.flat_index(), idx);
        }
        assert!(Action::from_flat_index(32, 8).is_err());
    }

    #[test]
    fn removing_missing_half_adder_is_invalid() {
        let tree = CompressorTree::wallace(4, PpgKind::And).unwrap();
        // Column 0 of a 4-bit Wallace tree holds no compressors.
        let a = Action::new(0, ActionKind::RemoveHalf);
        assert!(!a.is_valid(tree.profile(), tree.matrix()));
    }

    #[test]
    fn masked_actions_keep_local_residual_legal() {
        let tree = CompressorTree::wallace(8, PpgKind::And).unwrap();
        let mask = action_mask(tree.profile(), tree.matrix());
        assert_eq!(mask.len(), 8 * 8);
        for (idx, &ok) in mask.iter().enumerate() {
            if !ok {
                continue;
            }
            let a = Action::from_flat_index(idx, 16).unwrap();
            let mut m = tree.matrix().clone();
            a.apply_raw(&mut m);
            let res = m.residual(tree.profile(), a.column());
            assert!((1..=2).contains(&res), "action {idx} broke column {}", a.column());
        }
    }

    #[test]
    fn residual_and_carry_deltas() {
        assert_eq!(ActionKind::AddHalf.residual_delta(), -1);
        assert_eq!(ActionKind::AddHalf.carry_delta(), 1);
        assert_eq!(ActionKind::ReplaceFullWithHalf.residual_delta(), 1);
        assert_eq!(ActionKind::ReplaceFullWithHalf.carry_delta(), 0);
    }
}
