//! Tseitin encoding of gate-level netlists into CNF.
//!
//! Each net maps to one SAT literal; each gate contributes a small
//! constant number of clauses asserting output ↔ function(inputs).
//! Encoding is *lazy*: a gate's clauses are emitted only when some
//! literal in its output cone is actually requested, so nets merged
//! by equivalence sweeping ([`Tseitin::substitute`]) never pay for
//! their (now redundant) logic cones.
//!
//! Binary gates use the minimal 2–4 clause forms; `FullAdder` sum and
//! the 4:2 compressor are encoded with exact odd-parity clauses plus
//! 6-clause majority carries (the compressor introduces one auxiliary
//! variable for its internal `x1⊕x2⊕x3` node, mirroring
//! [`rlmul_rtl::NetlistBuilder::compressor42`]'s semantics).

use crate::LecError;
use rlmul_rtl::{ArenaNetlist, Gate, GateKind, Netlist};
use rlmul_sat::{Lit, Solver};

const NO_DRIVER: u32 = u32::MAX;

/// Where the encoder reads its gates from: a compacted [`Netlist`] or
/// an [`ArenaNetlist`] in place — the latter lets equivalence
/// spot-checks run against the incremental pipeline's working
/// structure without paying for a compaction first.
#[derive(Debug, Clone, Copy)]
enum Source<'a> {
    Netlist(&'a Netlist),
    Arena(&'a ArenaNetlist),
}

impl<'a> Source<'a> {
    fn gate(&self, idx: u32) -> &'a Gate {
        match self {
            Source::Netlist(n) => &n.gates()[idx as usize],
            Source::Arena(a) => a.gate(idx).expect("driver table points at a live slot"),
        }
    }

    /// Bound on distinct gates any honest lazy traversal can touch.
    fn gate_budget(&self) -> usize {
        match self {
            Source::Netlist(n) => n.gates().len(),
            Source::Arena(a) => a.num_slots(),
        }
    }
}

/// Lazy CNF encoder for one combinational netlist.
///
/// Primary-input nets must be bound to literals (shared with the
/// other side of a miter, typically) via [`Tseitin::bind`] before any
/// cone through them is requested with [`Tseitin::literal`].
#[derive(Debug)]
pub struct Tseitin<'a> {
    source: Source<'a>,
    /// Canonical literal per net, once encoded, bound, or substituted.
    lits: Vec<Option<Lit>>,
    /// Driving gate index per net (`NO_DRIVER` for inputs/constants).
    driver: Vec<u32>,
    /// Gates whose defining clauses have been emitted.
    gates_emitted: usize,
}

impl<'a> Tseitin<'a> {
    /// Prepares an encoder. `const_true` is the shared always-true
    /// literal of the target solver (constrained by a unit clause),
    /// used for the netlist's constant nets.
    ///
    /// # Errors
    ///
    /// [`LecError::SequentialNetlist`] when the netlist has flip-flops.
    pub fn new(netlist: &'a Netlist, const_true: Lit) -> Result<Self, LecError> {
        if netlist.is_sequential() {
            return Err(LecError::SequentialNetlist);
        }
        let nets = netlist.num_nets() as usize;
        let mut lits = vec![None; nets];
        lits[0] = Some(!const_true);
        lits[1] = Some(const_true);
        let mut driver = vec![NO_DRIVER; nets];
        for (i, g) in netlist.gates().iter().enumerate() {
            for &o in g.outputs() {
                if !o.is_const() && driver[o.0 as usize] == NO_DRIVER {
                    driver[o.0 as usize] = i as u32;
                }
            }
        }
        Ok(Tseitin { source: Source::Netlist(netlist), lits, driver, gates_emitted: 0 })
    }

    /// Prepares an encoder over an [`ArenaNetlist`] *in place*: gates
    /// are read straight from the arena's slots and its driver tables,
    /// so no compaction to a [`Netlist`] is needed. Dead slots are
    /// never encoded (the traversal is cone-driven).
    ///
    /// # Errors
    ///
    /// [`LecError::SequentialNetlist`] when the arena holds flip-flops.
    pub fn from_arena(arena: &'a ArenaNetlist, const_true: Lit) -> Result<Self, LecError> {
        if arena.iter_live().any(|(_, g)| g.kind == GateKind::Dff) {
            return Err(LecError::SequentialNetlist);
        }
        let nets = arena.num_nets() as usize;
        let mut lits = vec![None; nets];
        lits[0] = Some(!const_true);
        lits[1] = Some(const_true);
        let driver = (0..arena.num_nets())
            .map(|net| arena.driver_of(rlmul_rtl::NetId(net)).unwrap_or(NO_DRIVER))
            .collect();
        Ok(Tseitin { source: Source::Arena(arena), lits, driver, gates_emitted: 0 })
    }

    /// The netlist being encoded, when the encoder reads a compacted
    /// [`Netlist`] (`None` for arena-backed encoders).
    pub fn netlist(&self) -> Option<&'a Netlist> {
        match self.source {
            Source::Netlist(n) => Some(n),
            Source::Arena(_) => None,
        }
    }

    /// Number of gates whose clauses have been emitted so far.
    pub fn gates_emitted(&self) -> usize {
        self.gates_emitted
    }

    /// Binds a net (normally a primary input bit) to an existing
    /// literal without emitting any clauses.
    pub fn bind(&mut self, net: rlmul_rtl::NetId, lit: Lit) {
        self.lits[net.0 as usize] = Some(lit);
    }

    /// Redirects a net to `lit` — after an equivalence proof, pointing
    /// it at the representative's literal so every not-yet-encoded
    /// reader connects there instead of into this net's own cone.
    pub fn substitute(&mut self, net: rlmul_rtl::NetId, lit: Lit) {
        self.lits[net.0 as usize] = Some(lit);
    }

    /// Returns the literal for `net`, lazily emitting the CNF for its
    /// cone of influence into `solver`.
    ///
    /// # Errors
    ///
    /// [`LecError::MalformedNetlist`] when the cone reaches a net with
    /// no driver and no binding, or a combinational cycle. (Run the
    /// structural linter first for a precise diagnosis.)
    pub fn literal(&mut self, solver: &mut Solver, net: rlmul_rtl::NetId) -> Result<Lit, LecError> {
        if let Some(l) = self.lits[net.0 as usize] {
            return Ok(l);
        }
        // Gates can be pushed once per unresolved fan-out edge, so any
        // honest traversal fits in O(total pins); beyond that we are
        // looping through a combinational cycle.
        let stack_limit = 6 * self.source.gate_budget() + 8;
        let mut stack: Vec<u32> = vec![net.0];
        while let Some(&top) = stack.last() {
            if self.lits[top as usize].is_some() {
                stack.pop();
                continue;
            }
            let g_idx = self.driver[top as usize];
            if g_idx == NO_DRIVER {
                return Err(LecError::MalformedNetlist {
                    detail: format!("net {top} has no driver and no input binding"),
                });
            }
            let gate = *self.source.gate(g_idx);
            let mut ready = true;
            for &inp in gate.inputs() {
                if self.lits[inp.0 as usize].is_none() {
                    stack.push(inp.0);
                    ready = false;
                }
            }
            if !ready {
                if stack.len() > stack_limit {
                    return Err(LecError::MalformedNetlist {
                        detail: format!("combinational cycle through net {top}"),
                    });
                }
                continue;
            }
            let ins: Vec<Lit> =
                gate.inputs().iter().map(|i| self.lits[i.0 as usize].unwrap()).collect();
            let mut outs = Vec::with_capacity(gate.outputs().len());
            for &o in gate.outputs() {
                let l = match self.lits[o.0 as usize] {
                    Some(l) => l, // already merged/bound; constrain in place
                    None => {
                        let l = Lit::pos(solver.new_var());
                        self.lits[o.0 as usize] = Some(l);
                        l
                    }
                };
                outs.push(l);
            }
            emit_gate(solver, gate.kind, &ins, &outs);
            self.gates_emitted += 1;
            stack.pop();
        }
        Ok(self.lits[net.0 as usize].unwrap())
    }
}

/// Emits the defining clauses for one gate.
fn emit_gate(s: &mut Solver, kind: GateKind, ins: &[Lit], outs: &[Lit]) {
    let y = outs[0];
    match kind {
        GateKind::Inv => emit_equal(s, y, !ins[0]),
        GateKind::Buf => emit_equal(s, y, ins[0]),
        GateKind::And2 => emit_and(s, y, ins[0], ins[1]),
        GateKind::Or2 => emit_and(s, !y, !ins[0], !ins[1]),
        GateKind::Nand2 => emit_and(s, !y, ins[0], ins[1]),
        GateKind::Nor2 => emit_and(s, y, !ins[0], !ins[1]),
        GateKind::Xor2 => emit_xor(s, y, ins[0], ins[1]),
        GateKind::Xnor2 => emit_xor(s, !y, ins[0], ins[1]),
        GateKind::Mux2 => {
            // y = sel ? b : a, with ins = [a, b, sel].
            let (a, b, sel) = (ins[0], ins[1], ins[2]);
            s.add_clause(&[!sel, !b, y]);
            s.add_clause(&[!sel, b, !y]);
            s.add_clause(&[sel, !a, y]);
            s.add_clause(&[sel, a, !y]);
            // Redundant but propagation-strengthening: a = b forces y.
            s.add_clause(&[!a, !b, y]);
            s.add_clause(&[a, b, !y]);
        }
        GateKind::HalfAdder => {
            emit_xor(s, y, ins[0], ins[1]);
            emit_and(s, outs[1], ins[0], ins[1]);
        }
        GateKind::FullAdder => {
            emit_xor3(s, y, ins[0], ins[1], ins[2]);
            emit_maj(s, outs[1], ins[0], ins[1], ins[2]);
        }
        GateKind::Compressor42 => {
            // outs = [sum, carry, cout]; ins = [x1, x2, x3, x4, cin].
            let s1 = Lit::pos(s.new_var());
            emit_xor3(s, s1, ins[0], ins[1], ins[2]);
            emit_maj(s, outs[2], ins[0], ins[1], ins[2]);
            emit_xor3(s, y, s1, ins[3], ins[4]);
            emit_maj(s, outs[1], s1, ins[3], ins[4]);
        }
        GateKind::Dff => unreachable!("sequential netlists rejected in Tseitin::new"),
    }
}

/// `x ↔ y` (2 clauses).
fn emit_equal(s: &mut Solver, x: Lit, y: Lit) {
    s.add_clause(&[!x, y]);
    s.add_clause(&[x, !y]);
}

/// `y ↔ a ∧ b` (3 clauses).
fn emit_and(s: &mut Solver, y: Lit, a: Lit, b: Lit) {
    s.add_clause(&[!y, a]);
    s.add_clause(&[!y, b]);
    s.add_clause(&[y, !a, !b]);
}

/// `y ↔ a ⊕ b` (4 clauses).
fn emit_xor(s: &mut Solver, y: Lit, a: Lit, b: Lit) {
    s.add_clause(&[!y, a, b]);
    s.add_clause(&[!y, !a, !b]);
    s.add_clause(&[y, !a, b]);
    s.add_clause(&[y, a, !b]);
}

/// `y ↔ a ⊕ b ⊕ c`: one clause per odd-parity assignment of
/// `(y, a, b, c)`, each blocking exactly that assignment (8 clauses).
fn emit_xor3(s: &mut Solver, y: Lit, a: Lit, b: Lit, c: Lit) {
    let vars = [y, a, b, c];
    for m in 0u32..16 {
        if m.count_ones() % 2 == 1 {
            let clause: Vec<Lit> =
                vars.iter().enumerate().map(|(i, &l)| l.xor((m >> i) & 1 == 1)).collect();
            s.add_clause(&clause);
        }
    }
}

/// `y ↔ maj(a, b, c)` (6 clauses).
fn emit_maj(s: &mut Solver, y: Lit, a: Lit, b: Lit, c: Lit) {
    s.add_clause(&[!y, a, b]);
    s.add_clause(&[!y, a, c]);
    s.add_clause(&[!y, b, c]);
    s.add_clause(&[y, !a, !b]);
    s.add_clause(&[y, !a, !c]);
    s.add_clause(&[y, !b, !c]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{PortValues, Simulator};
    use rlmul_rtl::{NetlistBuilder, CONST0, CONST1};
    use rlmul_sat::SolveResult;

    /// Exhaustively cross-checks the CNF of a single-output netlist
    /// against 64-lane simulation over all input assignments.
    fn cross_check(netlist: &Netlist) {
        let in_bits: Vec<usize> = netlist.inputs().iter().map(|p| p.bits.len()).collect();
        let total_bits: usize = in_bits.iter().sum();
        assert!(total_bits <= 12, "exhaustive harness only");

        let mut solver = Solver::new();
        let const_true = Lit::pos(solver.new_var());
        solver.add_clause(&[const_true]);
        let mut enc = Tseitin::new(netlist, const_true).unwrap();
        let mut in_lits = Vec::new();
        for port in netlist.inputs() {
            for &b in &port.bits {
                let l = Lit::pos(solver.new_var());
                enc.bind(b, l);
                in_lits.push(l);
            }
        }
        let out_lits: Vec<Lit> = netlist
            .outputs()
            .iter()
            .flat_map(|p| p.bits.clone())
            .map(|b| enc.literal(&mut solver, b).unwrap())
            .collect();

        let sim = Simulator::new(netlist).unwrap();
        for m in 0u64..(1 << total_bits) {
            // Expected outputs from the simulator (single lane).
            let mut stim = Vec::new();
            let mut off = 0;
            for &w in &in_bits {
                stim.push(PortValues::pack(&[(m >> off) & ((1 << w) - 1)], w));
                off += w;
            }
            let outs = sim.run(&stim).unwrap();
            let expected: Vec<bool> =
                outs.iter().flat_map(|p| p.bits.iter().map(|&w| w & 1 == 1)).collect();
            // CNF under the same assignment.
            let assum: Vec<Lit> =
                in_lits.iter().enumerate().map(|(i, &l)| l.xor((m >> i) & 1 == 0)).collect();
            assert_eq!(solver.solve_with(&assum), SolveResult::Sat, "m={m:b}");
            for (k, (&ol, &exp)) in out_lits.iter().zip(&expected).enumerate() {
                assert_eq!(solver.model_lit(ol), exp, "m={m:b} output bit {k}");
            }
        }
    }

    #[test]
    fn every_gate_kind_encodes_correctly() {
        let mut b = NetlistBuilder::new("all_gates");
        let a = b.input("a", 5);
        let mut outs = vec![
            b.inv(a[0]),
            b.buf(a[1]),
            b.and2(a[0], a[1]),
            b.or2(a[1], a[2]),
            b.nand2(a[2], a[3]),
            b.nor2(a[3], a[4]),
            b.xor2(a[0], a[4]),
            b.xnor2(a[1], a[3]),
            b.mux2(a[0], a[1], a[2]),
        ];
        let (s, c) = b.half_adder(a[0], a[2]);
        outs.extend([s, c]);
        let (s, c) = b.full_adder(a[1], a[3], a[4]);
        outs.extend([s, c]);
        let (s, c, co) = b.compressor42([a[0], a[1], a[2], a[3]], a[4]);
        outs.extend([s, c, co]);
        b.output("y", &outs);
        cross_check(&b.finish());
    }

    #[test]
    fn constants_encode_via_shared_true_literal() {
        let mut b = NetlistBuilder::new("consts");
        let a = b.input("a", 1);
        // Builder folds gates on constants, so route constants straight
        // to outputs alongside live logic.
        let y = b.xor2(a[0], a[0]); // folds to CONST0 inside builder or stays live
        b.output("y", &[y, CONST0, CONST1]);
        cross_check(&b.finish());
    }

    #[test]
    fn small_multiplier_matrix_encodes_correctly() {
        let mut b = NetlistBuilder::new("mul2");
        let x = b.input("x", 2);
        let y = b.input("y", 2);
        let pp00 = b.and2(x[0], y[0]);
        let pp10 = b.and2(x[1], y[0]);
        let pp01 = b.and2(x[0], y[1]);
        let pp11 = b.and2(x[1], y[1]);
        let (s1, c1) = b.half_adder(pp10, pp01);
        let (s2, c2) = b.half_adder(pp11, c1);
        let p3 = b.or2(c2, CONST0);
        b.output("p", &[pp00, s1, s2, p3]);
        cross_check(&b.finish());
    }

    #[test]
    fn sequential_netlists_are_rejected() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a", 1);
        let q = b.dff(a[0]);
        b.output("q", &[q]);
        let n = b.finish();
        let mut s = Solver::new();
        let t = Lit::pos(s.new_var());
        assert!(matches!(Tseitin::new(&n, t), Err(LecError::SequentialNetlist)));
    }

    #[test]
    fn unbound_input_is_malformed() {
        let mut b = NetlistBuilder::new("m");
        let a = b.input("a", 2);
        let y = b.and2(a[0], a[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let mut s = Solver::new();
        let t = Lit::pos(s.new_var());
        s.add_clause(&[t]);
        let mut enc = Tseitin::new(&n, t).unwrap();
        // No bind() calls: requesting the output must fail cleanly.
        let out = n.outputs()[0].bits[0];
        assert!(matches!(enc.literal(&mut s, out), Err(LecError::MalformedNetlist { .. })));
    }

    #[test]
    fn substitution_skips_cone_emission() {
        let mut b = NetlistBuilder::new("sub");
        let a = b.input("a", 2);
        let t1 = b.and2(a[0], a[1]);
        let deep = b.xor2(t1, a[0]);
        b.output("y", &[deep]);
        let n = b.finish();
        let mut s = Solver::new();
        let t = Lit::pos(s.new_var());
        s.add_clause(&[t]);
        let mut enc = Tseitin::new(&n, t).unwrap();
        let fresh = Lit::pos(s.new_var());
        enc.substitute(n.outputs()[0].bits[0], fresh);
        assert_eq!(enc.literal(&mut s, n.outputs()[0].bits[0]).unwrap(), fresh);
        assert_eq!(enc.gates_emitted(), 0, "merged net must not encode its cone");
    }
}
