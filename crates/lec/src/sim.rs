//! Bit-parallel (64-lane) netlist simulation.
//!
//! Every net carries a `u64` whose bit `l` is the net's value in test
//! lane `l`, so one pass over the gate list evaluates 64 stimulus
//! vectors — the standard trick behind fast combinational equivalence
//! checking by simulation.

use crate::LecError;
use rlmul_rtl::{GateKind, Netlist};

/// 64 packed stimulus vectors for one multi-bit port.
///
/// `bits[k]` holds bit `k` of the port across all 64 lanes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortValues {
    /// One word per port bit, LSB first.
    pub bits: Vec<u64>,
}

impl PortValues {
    /// Packs up to 64 scalar values into lanes (`values[l]` becomes
    /// lane `l`); missing lanes replicate the last value.
    pub fn pack(values: &[u64], width: usize) -> Self {
        let last = values.last().copied().unwrap_or(0);
        let mut bits = vec![0u64; width];
        for l in 0..64 {
            let v = values.get(l).copied().unwrap_or(last);
            for (k, word) in bits.iter_mut().enumerate() {
                *word |= ((v >> k) & 1) << l;
            }
        }
        PortValues { bits }
    }

    /// Extracts lane `l` back into a scalar.
    pub fn lane(&self, l: usize) -> u64 {
        self.bits.iter().enumerate().fold(0u64, |acc, (k, &w)| acc | (((w >> l) & 1) << k))
    }
}

/// A compiled combinational simulator for one netlist.
#[derive(Debug)]
pub struct Simulator<'a> {
    netlist: &'a Netlist,
}

impl<'a> Simulator<'a> {
    /// Wraps a combinational netlist.
    ///
    /// # Errors
    ///
    /// Returns [`LecError::SequentialNetlist`] when the netlist
    /// contains flip-flops (equivalence checking operates on the
    /// combinational datapath blocks).
    pub fn new(netlist: &'a Netlist) -> Result<Self, LecError> {
        if netlist.is_sequential() {
            return Err(LecError::SequentialNetlist);
        }
        Ok(Simulator { netlist })
    }

    /// Evaluates all primary outputs for 64 packed stimulus lanes.
    ///
    /// `inputs` must supply one [`PortValues`] per primary input, in
    /// declaration order.
    ///
    /// # Errors
    ///
    /// Returns [`LecError::StimulusShape`] when the stimulus does not
    /// match the input ports.
    pub fn run(&self, inputs: &[PortValues]) -> Result<Vec<PortValues>, LecError> {
        let vals = self.run_nets(inputs)?;
        let n = self.netlist;
        Ok(n.outputs()
            .iter()
            .map(|p| PortValues { bits: p.bits.iter().map(|b| vals[b.0 as usize]).collect() })
            .collect())
    }

    /// Evaluates every net (not just the outputs) for 64 packed
    /// stimulus lanes, returning one word per net indexed by
    /// [`rlmul_rtl::NetId`]. This is what signature-based equivalence
    /// sweeping consumes: internal nets with equal words across many
    /// batches are candidate equivalences.
    ///
    /// # Errors
    ///
    /// As [`Simulator::run`].
    pub fn run_nets(&self, inputs: &[PortValues]) -> Result<Vec<u64>, LecError> {
        let n = self.netlist;
        if inputs.len() != n.inputs().len() {
            return Err(LecError::StimulusShape { expected: n.inputs().len(), got: inputs.len() });
        }
        let mut vals = vec![0u64; n.num_nets() as usize];
        vals[1] = u64::MAX; // constant one
        for (port, stim) in n.inputs().iter().zip(inputs) {
            if stim.bits.len() != port.bits.len() {
                return Err(LecError::StimulusShape {
                    expected: port.bits.len(),
                    got: stim.bits.len(),
                });
            }
            for (&net, &word) in port.bits.iter().zip(&stim.bits) {
                vals[net.0 as usize] = word;
            }
        }
        for g in n.gates() {
            let i0 = vals[g.ins[0].0 as usize];
            let i1 = vals[g.ins[1].0 as usize];
            let i2 = vals[g.ins[2].0 as usize];
            match g.kind {
                GateKind::Inv => vals[g.outs[0].0 as usize] = !i0,
                GateKind::Buf => vals[g.outs[0].0 as usize] = i0,
                GateKind::And2 => vals[g.outs[0].0 as usize] = i0 & i1,
                GateKind::Or2 => vals[g.outs[0].0 as usize] = i0 | i1,
                GateKind::Nand2 => vals[g.outs[0].0 as usize] = !(i0 & i1),
                GateKind::Nor2 => vals[g.outs[0].0 as usize] = !(i0 | i1),
                GateKind::Xor2 => vals[g.outs[0].0 as usize] = i0 ^ i1,
                GateKind::Xnor2 => vals[g.outs[0].0 as usize] = !(i0 ^ i1),
                GateKind::Mux2 => {
                    vals[g.outs[0].0 as usize] = (i2 & i1) | (!i2 & i0);
                }
                GateKind::HalfAdder => {
                    vals[g.outs[0].0 as usize] = i0 ^ i1;
                    vals[g.outs[1].0 as usize] = i0 & i1;
                }
                GateKind::FullAdder => {
                    vals[g.outs[0].0 as usize] = i0 ^ i1 ^ i2;
                    vals[g.outs[1].0 as usize] = (i0 & i1) | (i2 & (i0 ^ i1));
                }
                GateKind::Compressor42 => {
                    let i3 = vals[g.ins[3].0 as usize];
                    let i4 = vals[g.ins[4].0 as usize];
                    let s1 = i0 ^ i1 ^ i2;
                    vals[g.outs[0].0 as usize] = s1 ^ i3 ^ i4;
                    vals[g.outs[1].0 as usize] = (s1 & i3) | (i4 & (s1 ^ i3));
                    vals[g.outs[2].0 as usize] = (i0 & i1) | (i2 & (i0 ^ i1));
                }
                GateKind::Dff => unreachable!("rejected in Simulator::new"),
            }
        }
        Ok(vals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_rtl::NetlistBuilder;

    #[test]
    fn pack_and_lane_round_trip() {
        let vals: Vec<u64> = (0..64).map(|i| i * 37 % 256).collect();
        let pv = PortValues::pack(&vals, 8);
        for (l, &v) in vals.iter().enumerate() {
            assert_eq!(pv.lane(l), v);
        }
    }

    #[test]
    fn simulates_xor_tree_across_lanes() {
        let mut b = NetlistBuilder::new("x");
        let a = b.input("a", 2);
        let y = b.xor2(a[0], a[1]);
        b.output("y", &[y]);
        let n = b.finish();
        let sim = Simulator::new(&n).unwrap();
        let stim = PortValues::pack(&[0b00, 0b01, 0b10, 0b11], 2);
        let out = sim.run(&[stim]).unwrap();
        assert_eq!(out[0].lane(0), 0);
        assert_eq!(out[0].lane(1), 1);
        assert_eq!(out[0].lane(2), 1);
        assert_eq!(out[0].lane(3), 0);
    }

    #[test]
    fn sequential_netlists_are_rejected() {
        let mut b = NetlistBuilder::new("seq");
        let a = b.input("a", 1);
        let q = b.dff(a[0]);
        b.output("q", &[q]);
        let n = b.finish();
        assert!(matches!(Simulator::new(&n), Err(LecError::SequentialNetlist)));
    }

    #[test]
    fn pack_replicates_last_value_beyond_supplied_lanes() {
        let pv = PortValues::pack(&[5, 9], 4);
        assert_eq!(pv.lane(0), 5);
        assert_eq!(pv.lane(1), 9);
        for l in 2..64 {
            assert_eq!(pv.lane(l), 9, "lane {l}");
        }
    }

    #[test]
    fn stimulus_shape_is_checked() {
        let mut b = NetlistBuilder::new("s");
        let a = b.input("a", 2);
        b.output("y", &[a[0]]);
        let n = b.finish();
        let sim = Simulator::new(&n).unwrap();
        assert!(sim.run(&[]).is_err());
        assert!(sim.run(&[PortValues::pack(&[0], 3)]).is_err());
    }
}
