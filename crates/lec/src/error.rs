use std::error::Error;
use std::fmt;

/// Errors produced by simulation and equivalence checking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LecError {
    /// The netlist contains flip-flops; combinational checking only.
    SequentialNetlist,
    /// Stimulus port count or width does not match the netlist.
    StimulusShape {
        /// Expected count/width.
        expected: usize,
        /// Provided count/width.
        got: usize,
    },
}

impl fmt::Display for LecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LecError::SequentialNetlist => {
                write!(f, "sequential netlists cannot be equivalence-checked combinationally")
            }
            LecError::StimulusShape { expected, got } => {
                write!(f, "stimulus shape mismatch: expected {expected}, got {got}")
            }
        }
    }
}

impl Error for LecError {}
