use std::error::Error;
use std::fmt;

/// Errors produced by simulation and equivalence checking.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LecError {
    /// The netlist contains flip-flops; combinational checking only.
    SequentialNetlist,
    /// Stimulus port count or width does not match the netlist.
    StimulusShape {
        /// Expected count/width.
        expected: usize,
        /// Provided count/width.
        got: usize,
    },
    /// The netlist violates a structural invariant (undriven net,
    /// combinational cycle, …) that encoding cannot work around.
    MalformedNetlist {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The two sides of an equivalence check expose different ports.
    PortMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// A side failed the structural lint gate that precedes formal
    /// checking.
    LintFailed {
        /// Which side (`"left"`/`"right"`) failed.
        side: &'static str,
        /// The lint report summary line.
        summary: String,
    },
    /// The golden reference netlist could not be constructed.
    Reference {
        /// Underlying construction error.
        detail: String,
    },
}

impl fmt::Display for LecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LecError::SequentialNetlist => {
                write!(f, "sequential netlists cannot be equivalence-checked combinationally")
            }
            LecError::StimulusShape { expected, got } => {
                write!(f, "stimulus shape mismatch: expected {expected}, got {got}")
            }
            LecError::MalformedNetlist { detail } => {
                write!(f, "malformed netlist: {detail}")
            }
            LecError::PortMismatch { detail } => {
                write!(f, "port mismatch between equivalence-check sides: {detail}")
            }
            LecError::LintFailed { side, summary } => {
                write!(f, "structural lint failed on {side} side: {summary}")
            }
            LecError::Reference { detail } => {
                write!(f, "golden reference construction failed: {detail}")
            }
        }
    }
}

impl Error for LecError {}
