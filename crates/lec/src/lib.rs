//! Logic equivalence checking for RL-MUL — the reproduction's
//! substitute for the paper's Yosys → AIGER → ABC `cec` flow.
//!
//! Netlists are simulated 64 test lanes at a time
//! ([`Simulator`]) and compared against golden `u128` arithmetic
//! ([`check_datapath`]). Widths up to 10 bits are enumerated
//! exhaustively; wider designs get structured corners plus dense
//! randomized stimulus.
//!
//! # Example
//!
//! ```
//! use rlmul_ct::{CompressorTree, PpgKind};
//! use rlmul_rtl::MultiplierNetlist;
//! use rlmul_lec::check_datapath;
//!
//! let tree = CompressorTree::dadda(4, PpgKind::And)?;
//! let m = MultiplierNetlist::elaborate(&tree)?;
//! let report = check_datapath(m.netlist(), 4, PpgKind::And)?;
//! assert!(report.equivalent && report.exhaustive);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cec;
mod equiv;
mod error;
mod seqsim;
mod sim;
mod tseitin;

pub use cec::{
    check_equiv, check_formal, check_formal_with, golden_reference, prove_arena_equiv, CecOptions,
    FormalCounterexample, FormalReport, OutputDiff, SweepStats,
};
pub use equiv::{check_datapath, golden, Counterexample, EquivReport, EXHAUSTIVE_BITS};
pub use error::LecError;
pub use seqsim::SeqSimulator;
pub use sim::{PortValues, Simulator};
pub use tseitin::Tseitin;
