//! Cycle-accurate sequential simulation (64 lanes wide).
//!
//! Extends the combinational simulator to netlists with flip-flops:
//! each [`SeqSimulator::step`] evaluates the combinational fabric
//! against the current register state and primary inputs, samples the
//! outputs, then advances every register (`q ← d`) as one rising
//! clock edge. Used to verify systolic PE arrays end-to-end.

use crate::sim::PortValues;
use crate::LecError;
use rlmul_rtl::{GateKind, Netlist};

/// A stateful simulator for sequential netlists.
#[derive(Debug)]
pub struct SeqSimulator<'a> {
    netlist: &'a Netlist,
    /// Current Q value of each flip-flop, by gate index order.
    regs: Vec<u64>,
    /// Indices of the flip-flop gates.
    dffs: Vec<usize>,
}

impl<'a> SeqSimulator<'a> {
    /// Wraps a netlist (sequential or purely combinational) with all
    /// registers cleared to 0.
    pub fn new(netlist: &'a Netlist) -> Self {
        let dffs: Vec<usize> = netlist
            .gates()
            .iter()
            .enumerate()
            .filter(|(_, g)| g.kind == GateKind::Dff)
            .map(|(i, _)| i)
            .collect();
        let regs = vec![0u64; dffs.len()];
        SeqSimulator { netlist, regs, dffs }
    }

    /// Clears every register to 0.
    pub fn reset(&mut self) {
        self.regs.fill(0);
    }

    /// Number of flip-flops.
    pub fn num_registers(&self) -> usize {
        self.dffs.len()
    }

    /// Evaluates one clock cycle: combinational settle → sample
    /// primary outputs → rising edge (`q ← d`). Returns the outputs
    /// *before* the edge, i.e. what a waveform shows during the cycle.
    ///
    /// # Errors
    ///
    /// Returns [`LecError::StimulusShape`] when `inputs` does not
    /// match the primary input ports.
    pub fn step(&mut self, inputs: &[PortValues]) -> Result<Vec<PortValues>, LecError> {
        let n = self.netlist;
        if inputs.len() != n.inputs().len() {
            return Err(LecError::StimulusShape { expected: n.inputs().len(), got: inputs.len() });
        }
        let mut vals = vec![0u64; n.num_nets() as usize];
        vals[1] = u64::MAX;
        for (port, stim) in n.inputs().iter().zip(inputs) {
            if stim.bits.len() != port.bits.len() {
                return Err(LecError::StimulusShape {
                    expected: port.bits.len(),
                    got: stim.bits.len(),
                });
            }
            for (&net, &word) in port.bits.iter().zip(&stim.bits) {
                vals[net.0 as usize] = word;
            }
        }
        // Drive register outputs from state.
        for (slot, &gi) in self.dffs.iter().enumerate() {
            let q = n.gates()[gi].outs[0];
            vals[q.0 as usize] = self.regs[slot];
        }
        // Combinational settle (gates are topologically ordered; DFFs
        // are skipped — their Q is already driven).
        for g in n.gates() {
            if g.kind == GateKind::Dff {
                continue;
            }
            let i0 = vals[g.ins[0].0 as usize];
            let i1 = vals[g.ins[1].0 as usize];
            let i2 = vals[g.ins[2].0 as usize];
            match g.kind {
                GateKind::Inv => vals[g.outs[0].0 as usize] = !i0,
                GateKind::Buf => vals[g.outs[0].0 as usize] = i0,
                GateKind::And2 => vals[g.outs[0].0 as usize] = i0 & i1,
                GateKind::Or2 => vals[g.outs[0].0 as usize] = i0 | i1,
                GateKind::Nand2 => vals[g.outs[0].0 as usize] = !(i0 & i1),
                GateKind::Nor2 => vals[g.outs[0].0 as usize] = !(i0 | i1),
                GateKind::Xor2 => vals[g.outs[0].0 as usize] = i0 ^ i1,
                GateKind::Xnor2 => vals[g.outs[0].0 as usize] = !(i0 ^ i1),
                GateKind::Mux2 => vals[g.outs[0].0 as usize] = (i2 & i1) | (!i2 & i0),
                GateKind::HalfAdder => {
                    vals[g.outs[0].0 as usize] = i0 ^ i1;
                    vals[g.outs[1].0 as usize] = i0 & i1;
                }
                GateKind::FullAdder => {
                    vals[g.outs[0].0 as usize] = i0 ^ i1 ^ i2;
                    vals[g.outs[1].0 as usize] = (i0 & i1) | (i2 & (i0 ^ i1));
                }
                GateKind::Compressor42 => {
                    let i3 = vals[g.ins[3].0 as usize];
                    let i4 = vals[g.ins[4].0 as usize];
                    let s1 = i0 ^ i1 ^ i2;
                    vals[g.outs[0].0 as usize] = s1 ^ i3 ^ i4;
                    vals[g.outs[1].0 as usize] = (s1 & i3) | (i4 & (s1 ^ i3));
                    vals[g.outs[2].0 as usize] = (i0 & i1) | (i2 & (i0 ^ i1));
                }
                GateKind::Dff => unreachable!("skipped above"),
            }
        }
        let outputs = n
            .outputs()
            .iter()
            .map(|p| PortValues { bits: p.bits.iter().map(|b| vals[b.0 as usize]).collect() })
            .collect();
        // Rising edge.
        for (slot, &gi) in self.dffs.iter().enumerate() {
            let d = n.gates()[gi].ins[0];
            self.regs[slot] = vals[d.0 as usize];
        }
        Ok(outputs)
    }

    /// Runs `cycles` steps with constant inputs, returning the final
    /// (steady-state) outputs.
    ///
    /// # Errors
    ///
    /// Same as [`SeqSimulator::step`].
    pub fn settle(
        &mut self,
        inputs: &[PortValues],
        cycles: usize,
    ) -> Result<Vec<PortValues>, LecError> {
        let mut out = self.step(inputs)?;
        for _ in 1..cycles {
            out = self.step(inputs)?;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::{CompressorTree, PpgKind};
    use rlmul_rtl::{pe_array, NetlistBuilder, PeArrayConfig, PeStyle};

    #[test]
    fn shift_register_delays_by_depth() {
        let mut b = NetlistBuilder::new("sr");
        let x = b.input("x", 1);
        let q1 = b.dff(x[0]);
        let q2 = b.dff(q1);
        b.output("y", &[q2]);
        let n = b.finish();
        let mut sim = SeqSimulator::new(&n);
        assert_eq!(sim.num_registers(), 2);
        let one = PortValues::pack(&[1], 1);
        let zero = PortValues::pack(&[0], 1);
        // Cycle 0: input 1, output still 0 (two registers deep).
        assert_eq!(sim.step(std::slice::from_ref(&one)).unwrap()[0].lane(0), 0);
        // Cycle 1: the 1 is in the first register.
        assert_eq!(sim.step(std::slice::from_ref(&zero)).unwrap()[0].lane(0), 0);
        // Cycle 2: it emerges.
        assert_eq!(sim.step(std::slice::from_ref(&zero)).unwrap()[0].lane(0), 1);
        assert_eq!(sim.step(std::slice::from_ref(&zero)).unwrap()[0].lane(0), 0);
    }

    #[test]
    fn reset_clears_pipeline_state() {
        let mut b = NetlistBuilder::new("sr");
        let x = b.input("x", 1);
        let q = b.dff(x[0]);
        b.output("y", &[q]);
        let n = b.finish();
        let mut sim = SeqSimulator::new(&n);
        let one = PortValues::pack(&[1], 1);
        sim.step(std::slice::from_ref(&one)).unwrap();
        // State now holds 1; reset must clear it.
        sim.reset();
        let zero = PortValues::pack(&[0], 1);
        assert_eq!(sim.step(std::slice::from_ref(&zero)).unwrap()[0].lane(0), 0);
    }

    /// Golden systolic check: with constant activations and weights,
    /// the steady-state partial sum leaving column c equals
    /// Σ_r act_r · w_{r,c} (mod 2^{2N}).
    fn check_systolic(rows: usize, cols: usize, style: PeStyle, bits: usize) {
        let kind = match style {
            PeStyle::MultiplierAdder => PpgKind::And,
            PeStyle::MergedMac => PpgKind::MacAnd,
        };
        let tree = CompressorTree::dadda(bits, kind).unwrap();
        let n = pe_array(&tree, PeArrayConfig { rows, cols, style }).unwrap();
        let mut sim = SeqSimulator::new(&n);

        // Constant stimulus, different in each of 8 lanes.
        let lane = |l: u64, base: u64| (base.wrapping_mul(l + 3)) % (1 << bits);
        let acts: Vec<Vec<u64>> =
            (0..rows).map(|r| (0..8).map(|l| lane(l, r as u64 + 5)).collect()).collect();
        let weights: Vec<Vec<Vec<u64>>> = (0..rows)
            .map(|r| {
                (0..cols)
                    .map(|c| (0..8).map(|l| lane(l, (7 * r + 3 * c + 1) as u64)).collect())
                    .collect()
            })
            .collect();
        let mut stim: Vec<PortValues> = Vec::new();
        for a in &acts {
            stim.push(PortValues::pack(a, bits));
        }
        for wr in &weights {
            for wc in wr {
                stim.push(PortValues::pack(wc, bits));
            }
        }
        let out = sim.settle(&stim, 2 * (rows + cols) + 4).unwrap();
        let mask = (1u64 << (2 * bits)) - 1;
        for c in 0..cols {
            for l in 0..8 {
                let expected: u64 = (0..rows)
                    .map(|r| acts[r][l].wrapping_mul(weights[r][c][l]))
                    .fold(0u64, u64::wrapping_add)
                    & mask;
                assert_eq!(out[c].lane(l), expected, "{rows}x{cols} {style:?} column {c} lane {l}");
            }
        }
    }

    #[test]
    fn systolic_array_computes_matmul_mul_adder() {
        check_systolic(2, 2, PeStyle::MultiplierAdder, 4);
        check_systolic(3, 2, PeStyle::MultiplierAdder, 4);
    }

    #[test]
    fn systolic_array_computes_matmul_merged_mac() {
        check_systolic(2, 2, PeStyle::MergedMac, 4);
        check_systolic(2, 3, PeStyle::MergedMac, 4);
    }

    #[test]
    fn systolic_array_8bit_spot_check() {
        check_systolic(2, 2, PeStyle::MergedMac, 8);
    }

    /// A pipelined multiplier emits `a·b` exactly `latency` cycles
    /// after the operands were applied, for a moving input stream.
    #[test]
    fn pipelined_multiplier_has_exact_latency() {
        use rlmul_rtl::{elaborate_pipelined, AdderKind, PipelineCuts};
        let bits = 6;
        let tree = CompressorTree::dadda(bits, PpgKind::And).unwrap();
        for cuts in [
            PipelineCuts { after_ppg: true, before_cpa: false },
            PipelineCuts { after_ppg: false, before_cpa: true },
            PipelineCuts { after_ppg: true, before_cpa: true },
        ] {
            let n = elaborate_pipelined(&tree, AdderKind::default(), cuts).unwrap();
            let mut sim = SeqSimulator::new(&n);
            let latency = cuts.latency();
            let stream: Vec<(u64, u64)> =
                (0..12).map(|t| ((t * 13 + 5) % 64, (t * 29 + 7) % 64)).collect();
            let mut outputs = Vec::new();
            for &(a, b) in &stream {
                let out = sim
                    .step(&[PortValues::pack(&[a], bits), PortValues::pack(&[b], bits)])
                    .unwrap();
                outputs.push(out[0].lane(0));
            }
            for t in latency..stream.len() {
                let (a, b) = stream[t - latency];
                assert_eq!(outputs[t], (a * b) % (1 << (2 * bits)), "{cuts:?} cycle {t}");
            }
        }
    }
}
