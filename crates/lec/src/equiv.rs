//! Combinational equivalence checking against golden arithmetic
//! models — the reproduction's substitute for ABC's `cec` flow.
//!
//! For operand widths up to [`EXHAUSTIVE_BITS`] the check enumerates
//! the complete input space (a *stronger* guarantee than random
//! `cec`); wider designs are checked with dense randomized stimulus
//! plus structured corner vectors.

use crate::sim::{PortValues, Simulator};
use crate::LecError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_ct::PpgKind;
use rlmul_rtl::Netlist;

/// Widths at or below which `a × b` spaces are enumerated exhaustively.
pub const EXHAUSTIVE_BITS: usize = 10;

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivReport {
    /// Whether every checked vector matched the golden model.
    pub equivalent: bool,
    /// Whether the full input space was enumerated.
    pub exhaustive: bool,
    /// Number of stimulus vectors evaluated.
    pub vectors: u64,
    /// First mismatching input `(a, b, c)` with `(expected, got)`.
    pub counterexample: Option<Counterexample>,
}

/// A concrete mismatch found during checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counterexample {
    /// Multiplicand.
    pub a: u64,
    /// Multiplier.
    pub b: u64,
    /// MAC addend (0 for plain multipliers).
    pub c: u128,
    /// Golden result.
    pub expected: u128,
    /// Netlist result.
    pub got: u128,
}

/// Golden model: `(a·b + c) mod 2^{2N}` (plain multiplication is the
/// `c = 0` case and is exact, since `a·b < 2^{2N}`).
pub fn golden(a: u64, b: u64, c: u128, bits: usize) -> u128 {
    let mask: u128 = if 2 * bits >= 128 { u128::MAX } else { (1u128 << (2 * bits)) - 1 };
    ((a as u128) * (b as u128) + c) & mask
}

/// Checks a multiplier or merged-MAC netlist produced by
/// [`rlmul_rtl::MultiplierNetlist`] against the golden model.
///
/// # Errors
///
/// Propagates simulator construction/stimulus errors; a functional
/// mismatch is *not* an error — it is reported in the returned
/// [`EquivReport`].
pub fn check_datapath(
    netlist: &Netlist,
    bits: usize,
    kind: PpgKind,
) -> Result<EquivReport, LecError> {
    let sim = Simulator::new(netlist)?;
    let is_mac = kind.is_mac();
    let mut vectors = 0u64;
    let mut rng = StdRng::seed_from_u64(0x524c_4d55_4c21);

    let exhaustive = bits <= EXHAUSTIVE_BITS;
    let mut pending: Vec<(u64, u64, u128)> = Vec::with_capacity(64);
    let check_batch = |pending: &mut Vec<(u64, u64, u128)>,
                       vectors: &mut u64|
     -> Result<Option<Counterexample>, LecError> {
        if pending.is_empty() {
            return Ok(None);
        }
        let a_vals: Vec<u64> = pending.iter().map(|t| t.0).collect();
        let b_vals: Vec<u64> = pending.iter().map(|t| t.1).collect();
        let mut stim = vec![PortValues::pack(&a_vals, bits), PortValues::pack(&b_vals, bits)];
        if is_mac {
            let c_vals: Vec<u64> = pending.iter().map(|t| t.2 as u64).collect();
            stim.push(PortValues::pack(&c_vals, 2 * bits));
        }
        let out = sim.run(&stim)?;
        for (l, &(a, b, c)) in pending.iter().enumerate() {
            *vectors += 1;
            let got = lane128(&out[0], l);
            let expected = golden(a, b, c, bits);
            if got != expected {
                return Ok(Some(Counterexample { a, b, c, expected, got }));
            }
        }
        pending.clear();
        Ok(None)
    };

    let mask = if bits >= 64 { u64::MAX } else { (1u64 << bits) - 1 };
    let cmask: u128 = if 2 * bits >= 128 { u128::MAX } else { (1u128 << (2 * bits)) - 1 };

    let mut cex = None;
    if exhaustive {
        'outer: for a in 0..=mask {
            for b in 0..=mask {
                let c = if is_mac { rng.gen::<u64>() as u128 & cmask } else { 0 };
                pending.push((a, b, c));
                if pending.len() == 64 {
                    if let Some(x) = check_batch(&mut pending, &mut vectors)? {
                        cex = Some(x);
                        break 'outer;
                    }
                }
            }
        }
    } else {
        // Corner vectors: walking ones, extremes, and dense randoms.
        let mut corners: Vec<u64> = vec![0, 1, mask, mask - 1, mask >> 1, (mask >> 1) + 1];
        for k in 0..bits {
            corners.push(1u64 << k);
            corners.push(mask ^ (1u64 << k));
        }
        'outer2: for &a in &corners {
            for &b in &corners {
                let c = if is_mac { rng.gen::<u64>() as u128 & cmask } else { 0 };
                pending.push((a & mask, b & mask, c));
                if pending.len() == 64 {
                    if let Some(x) = check_batch(&mut pending, &mut vectors)? {
                        cex = Some(x);
                        break 'outer2;
                    }
                }
            }
        }
        if cex.is_none() {
            const RANDOM_BATCHES: usize = 4096; // ≈ 2^18 vectors
            for _ in 0..RANDOM_BATCHES {
                for _ in 0..64 {
                    let a = rng.gen::<u64>() & mask;
                    let b = rng.gen::<u64>() & mask;
                    let c = if is_mac { rng.gen::<u128>() & cmask } else { 0 };
                    pending.push((a, b, c));
                }
                if let Some(x) = check_batch(&mut pending, &mut vectors)? {
                    cex = Some(x);
                    break;
                }
            }
        }
    }
    if cex.is_none() {
        if let Some(x) = check_batch(&mut pending, &mut vectors)? {
            cex = Some(x);
        }
    }
    Ok(EquivReport { equivalent: cex.is_none(), exhaustive, vectors, counterexample: cex })
}

fn lane128(pv: &PortValues, lane: usize) -> u128 {
    pv.bits.iter().enumerate().fold(0u128, |acc, (k, &w)| acc | ((((w >> lane) & 1) as u128) << k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_ct::CompressorTree;
    use rlmul_rtl::MultiplierNetlist;

    fn check(bits: usize, kind: PpgKind, dadda: bool) {
        let tree = if dadda {
            CompressorTree::dadda(bits, kind).unwrap()
        } else {
            CompressorTree::wallace(bits, kind).unwrap()
        };
        let m = MultiplierNetlist::elaborate(&tree).unwrap();
        let report = check_datapath(m.netlist(), bits, kind).unwrap();
        assert!(report.equivalent, "{bits}-bit {kind}: {:?}", report.counterexample);
    }

    #[test]
    fn and_multipliers_are_exhaustively_correct() {
        for bits in [2, 3, 4, 6, 8] {
            check(bits, PpgKind::And, false);
            check(bits, PpgKind::And, true);
        }
    }

    #[test]
    fn mbe_multipliers_are_exhaustively_correct() {
        for bits in [4, 6, 8] {
            check(bits, PpgKind::Mbe, false);
            check(bits, PpgKind::Mbe, true);
        }
    }

    #[test]
    fn mac_designs_are_correct() {
        check(4, PpgKind::MacAnd, true);
        check(8, PpgKind::MacAnd, false);
        check(4, PpgKind::MacMbe, true);
        check(8, PpgKind::MacMbe, false);
    }

    #[test]
    fn quad_compressor_multipliers_are_exhaustively_correct() {
        use rlmul_rtl::{quad_multiplier, AdderKind};
        for bits in [4usize, 6, 8] {
            for kind in [PpgKind::And, PpgKind::Mbe, PpgKind::MacAnd] {
                if kind.base() == PpgKind::Mbe && bits % 2 != 0 {
                    continue;
                }
                let n = quad_multiplier(bits, kind, AdderKind::default()).unwrap();
                let r = check_datapath(&n, bits, kind).unwrap();
                assert!(r.equivalent, "{bits}-bit {kind} 4:2: {:?}", r.counterexample);
            }
        }
    }

    /// Emit → re-parse → exhaustively check: the Verilog writer and
    /// reader are functional inverses over real designs.
    #[test]
    fn verilog_round_trip_preserves_function() {
        use rlmul_rtl::{from_verilog, quad_multiplier, to_verilog, AdderKind};
        for (bits, kind) in [(6usize, PpgKind::And), (6, PpgKind::Mbe), (4, PpgKind::MacAnd)] {
            let tree = CompressorTree::dadda(bits, kind).unwrap();
            let original = MultiplierNetlist::elaborate(&tree).unwrap().into_netlist();
            let source = to_verilog(&original);
            let reimported =
                from_verilog(&source).unwrap_or_else(|e| panic!("{bits}-bit {kind}: {e}"));
            let r = check_datapath(&reimported, bits, kind).unwrap();
            assert!(r.equivalent, "{bits}-bit {kind}: {:?}", r.counterexample);
        }
        // Including 4:2 compressor emission (compound carry forms).
        let quad = quad_multiplier(6, PpgKind::And, AdderKind::default()).unwrap();
        let reimported = from_verilog(&to_verilog(&quad)).unwrap();
        let r = check_datapath(&reimported, 6, PpgKind::And).unwrap();
        assert!(r.equivalent, "{:?}", r.counterexample);
    }

    #[test]
    fn golden_model_wraps() {
        assert_eq!(golden(3, 5, 0, 4), 15);
        assert_eq!(golden(15, 15, 100, 4), (225 + 100) % 256);
    }

    #[test]
    fn broken_netlist_is_caught() {
        use rlmul_rtl::NetlistBuilder;
        // "Multiplier" that just ANDs bits — clearly wrong.
        let mut b = NetlistBuilder::new("bogus");
        let a = b.input("a", 2);
        let m = b.input("b", 2);
        let y0 = b.and2(a[0], m[0]);
        let y1 = b.and2(a[1], m[1]);
        b.output("p", &[y0, y1, rlmul_rtl::CONST0, rlmul_rtl::CONST0]);
        let n = b.finish();
        let r = check_datapath(&n, 2, PpgKind::And).unwrap();
        assert!(!r.equivalent);
        assert!(r.counterexample.is_some());
    }
}
