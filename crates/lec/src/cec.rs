//! SAT-based combinational equivalence checking (CEC).
//!
//! This is the formal counterpart to [`crate::check_datapath`]'s
//! simulation sweep: instead of sampling the input space, it builds a
//! miter between two netlists over shared primary-input variables and
//! *proves* every output bit equal (or returns a concrete,
//! simulator-confirmed counterexample).
//!
//! The raw miter of two multipliers is exponentially hard for CDCL,
//! so the check is structured fraig-style:
//!
//! 1. **Simulate** both sides with the shared 64-lane [`Simulator`]
//!    on common random stimulus, giving every internal net a
//!    multi-word signature.
//! 2. **Sweep**: nets with equal (or complementary) signatures are
//!    candidate equivalences, proved cheapest-cone-first with
//!    budgeted incremental SAT calls. Proven pairs are *merged* — the
//!    duplicate's literal is substituted by its representative, so
//!    downstream logic encodes against the shared node and the miter
//!    shrinks. Refuting models are fed back as fresh simulation lanes
//!    to split false candidate classes.
//! 3. **Close**: each remaining output-bit pair is proved
//!    unbudgeted, LSB first; every proof is hardened into equality
//!    clauses so later bits (up the carry chain) reuse it.
//!
//! Sweeping is purely an accelerator — step 3 alone is complete, so a
//! missed or budget-exhausted candidate costs time, never soundness.

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};

use crate::sim::{PortValues, Simulator};
use crate::tseitin::Tseitin;
use crate::LecError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_rtl::{lint, ArenaNetlist, MultiplierNetlist, NetId, Netlist};
use rlmul_sat::{Lit, SolveResult, Solver};

/// Tuning knobs for [`check_equiv`].
#[derive(Debug, Clone)]
pub struct CecOptions {
    /// Run the signature-guided equivalence sweep before closing the
    /// miter (step 2). Disabling degrades to a plain monolithic proof.
    pub sweep: bool,
    /// Initial random 64-lane stimulus batches used for signatures.
    pub sim_batches: usize,
    /// Conflict budget per candidate-equivalence SAT call; exhausted
    /// candidates are left unmerged for the closing stage.
    pub candidate_conflicts: u64,
    /// Maximum sweep rounds (each round refines signatures with the
    /// counterexamples discovered in the previous one).
    pub max_rounds: usize,
    /// Run the structural linter on both sides first and refuse to
    /// encode netlists with lint *errors* (warnings pass).
    pub lint_gate: bool,
    /// RNG seed for stimulus; fixed default keeps runs reproducible.
    pub seed: u64,
}

impl Default for CecOptions {
    fn default() -> Self {
        CecOptions {
            sweep: true,
            sim_batches: 8,
            candidate_conflicts: 4_000,
            max_rounds: 16,
            lint_gate: true,
            seed: 0x5eed_cec0_ffee,
        }
    }
}

/// Counters from the fraig-style sweeping stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Sweep rounds executed.
    pub rounds: usize,
    /// Candidate pairs attempted.
    pub candidates: usize,
    /// Candidates proved equivalent and merged.
    pub proved: usize,
    /// Candidates refuted by a SAT model (signatures were refined).
    pub refuted: usize,
    /// Candidates abandoned on conflict budget.
    pub unknown: usize,
    /// Total 64-lane stimulus batches simulated per side.
    pub sim_batches: usize,
}

/// One differing output port in a counterexample.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutputDiff {
    /// Port name.
    pub name: String,
    /// Value computed by the left netlist.
    pub left: u128,
    /// Value computed by the right netlist.
    pub right: u128,
}

/// A concrete input assignment separating the two netlists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormalCounterexample {
    /// Input port values, in the left netlist's port order.
    pub inputs: Vec<(String, u128)>,
    /// Ports whose simulated values differ under those inputs.
    pub outputs: Vec<OutputDiff>,
    /// Whether the 64-lane simulator confirmed the disagreement
    /// (`outputs` non-empty). A refutation with `confirmed == false`
    /// would indicate an encoder bug and is asserted against in CI.
    pub confirmed: bool,
}

/// Outcome of a formal equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FormalReport {
    /// `true` when every output bit was proved equal (UNSAT miter).
    pub equivalent: bool,
    /// Simulator-confirmed separating input when `!equivalent`.
    pub counterexample: Option<FormalCounterexample>,
    /// Sweep-stage counters.
    pub sweep: SweepStats,
    /// Output-bit pairs discharged by the closing proofs (the rest
    /// were already merged structurally).
    pub closed_outputs: usize,
    /// CNF variables allocated.
    pub vars: usize,
    /// CNF clauses added.
    pub clauses: usize,
    /// Total solver conflicts across all incremental calls.
    pub conflicts: u64,
    /// Total solver decisions.
    pub decisions: u64,
    /// Total solver propagations.
    pub propagations: u64,
}

/// Builds the golden reference for [`check_formal`]: a Dadda-scheduled
/// compressor tree of the same operand width and PPG kind, elaborated
/// through the same RTL backend and exhaustively/densely validated by
/// [`crate::check_datapath`] in the test suite.
///
/// # Errors
///
/// [`LecError::Reference`] when the width/kind combination is invalid.
pub fn golden_reference(bits: usize, kind: PpgKind) -> Result<Netlist, LecError> {
    let tree = CompressorTree::dadda(bits, kind)
        .map_err(|e| LecError::Reference { detail: e.to_string() })?;
    let m = MultiplierNetlist::elaborate(&tree)
        .map_err(|e| LecError::Reference { detail: e.to_string() })?;
    Ok(m.into_netlist())
}

/// Formally proves a multiplier/MAC netlist equivalent to the golden
/// Dadda reference of the same shape, with default options.
///
/// # Errors
///
/// Propagates [`check_equiv`] errors plus [`LecError::Reference`] for
/// invalid shapes. An inequivalence is *not* an error — it is reported
/// with a counterexample in the returned [`FormalReport`].
pub fn check_formal(
    netlist: &Netlist,
    bits: usize,
    kind: PpgKind,
) -> Result<FormalReport, LecError> {
    check_formal_with(netlist, bits, kind, &CecOptions::default())
}

/// [`check_formal`] with explicit options.
///
/// # Errors
///
/// As [`check_formal`].
pub fn check_formal_with(
    netlist: &Netlist,
    bits: usize,
    kind: PpgKind,
    opts: &CecOptions,
) -> Result<FormalReport, LecError> {
    let reference = golden_reference(bits, kind)?;
    check_equiv(netlist, &reference, opts)
}

/// Proves two combinational netlists functionally equivalent over
/// shared inputs, or refutes with a simulator-confirmed
/// counterexample. Ports are matched by name; widths must agree.
///
/// # Errors
///
/// - [`LecError::LintFailed`] when a side has structural lint errors
///   (with `opts.lint_gate`),
/// - [`LecError::PortMismatch`] when the interfaces differ,
/// - [`LecError::SequentialNetlist`] / [`LecError::MalformedNetlist`]
///   from encoding.
pub fn check_equiv(
    left: &Netlist,
    right: &Netlist,
    opts: &CecOptions,
) -> Result<FormalReport, LecError> {
    if opts.lint_gate {
        for (side, n) in [("left", left), ("right", right)] {
            let report = lint(n);
            if report.errors() > 0 {
                return Err(LecError::LintFailed { side, summary: report.summary() });
            }
        }
    }
    let (in_perm, out_pairs) = match_ports(left, right)?;

    let mut solver = Solver::new();
    let const_true = Lit::pos(solver.new_var());
    solver.add_clause(&[const_true]);

    let sim_left = Simulator::new(left)?;
    let sim_right = Simulator::new(right)?;
    let mut enc_left = Tseitin::new(left, const_true)?;
    let mut enc_right = Tseitin::new(right, const_true)?;

    // Shared primary-input variables, allocated in the left netlist's
    // port order and bound into both encoders.
    let mut in_lits: Vec<Vec<Lit>> = Vec::with_capacity(left.inputs().len());
    for port in left.inputs() {
        let lits: Vec<Lit> = port.bits.iter().map(|_| Lit::pos(solver.new_var())).collect();
        for (&net, &l) in port.bits.iter().zip(&lits) {
            enc_left.bind(net, l);
        }
        in_lits.push(lits);
    }
    for (r_idx, port) in right.inputs().iter().enumerate() {
        for (&net, &l) in port.bits.iter().zip(&in_lits[in_perm[r_idx]]) {
            enc_right.bind(net, l);
        }
    }

    let mut rng = StdRng::seed_from_u64(opts.seed);
    let mut sides = [
        SideCtx::new(left, sim_left, enc_left, (0..left.inputs().len()).collect()),
        SideCtx::new(right, sim_right, enc_right, in_perm),
    ];

    let mut sweep = SweepStats::default();
    if opts.sweep {
        run_sweep(&mut solver, &mut sides, &in_lits, opts, &mut rng, &mut sweep)?;
    }

    // Closing stage: prove every remaining output-bit pair, LSB-first
    // per port, hardening each proof into equality clauses so the next
    // bit's proof can ride the carry chain.
    let [left_side, right_side] = &mut sides;
    let mut closed = 0usize;
    let mut refuting_model: Option<Vec<u128>> = None;
    'outer: for &(lp, rp) in &out_pairs {
        let l_bits = left_side.netlist.outputs()[lp].bits.clone();
        let r_bits = right_side.netlist.outputs()[rp].bits.clone();
        for (&ln, &rn) in l_bits.iter().zip(&r_bits) {
            let la = left_side.enc.literal(&mut solver, ln)?;
            let lb = right_side.enc.literal(&mut solver, rn)?;
            if la == lb {
                continue; // merged — structurally identical
            }
            closed += 1;
            if solver.solve_with(&[la, !lb]) == SolveResult::Sat {
                refuting_model = Some(model_inputs(&solver, &in_lits));
                break 'outer;
            }
            if solver.solve_with(&[!la, lb]) == SolveResult::Sat {
                refuting_model = Some(model_inputs(&solver, &in_lits));
                break 'outer;
            }
            solver.add_clause(&[!la, lb]);
            solver.add_clause(&[la, !lb]);
        }
    }

    let counterexample = match refuting_model {
        Some(inputs) => Some(confirm_cex(inputs, &sides, &out_pairs)?),
        None => None,
    };
    let stats = solver.stats();
    Ok(FormalReport {
        equivalent: counterexample.is_none(),
        counterexample,
        sweep,
        closed_outputs: closed,
        vars: solver.num_vars(),
        clauses: solver.num_clauses(),
        conflicts: stats.conflicts,
        decisions: stats.decisions,
        propagations: stats.propagations,
    })
}

/// Proves an [`ArenaNetlist`] functionally equivalent to a reference
/// netlist *without compacting the arena*: the arena side is encoded
/// in place by [`Tseitin::from_arena`], and every matched output-bit
/// pair is proved LSB-first with each proof hardened into equality
/// clauses (the sweep-free closing stage, which is complete on its
/// own).
///
/// This is the incremental pipeline's CEC spot-check entry: after a
/// sequence of in-place edits, the arena is checked directly against
/// a golden elaboration. There is no fraig sweep, so keep widths
/// small (≤ 8-bit miters close in well under a second; wide raw
/// multiplier miters are exponentially hard).
///
/// Returns `Ok(true)` when equivalent, `Ok(false)` with no model
/// extraction when refuted.
///
/// # Errors
///
/// [`LecError::PortMismatch`] for differing interfaces, plus encoding
/// errors as [`check_equiv`].
pub fn prove_arena_equiv(arena: &ArenaNetlist, reference: &Netlist) -> Result<bool, LecError> {
    let (in_perm, out_pairs) =
        match_port_lists(arena.inputs(), arena.outputs(), reference.inputs(), reference.outputs())?;

    let mut solver = Solver::new();
    let const_true = Lit::pos(solver.new_var());
    solver.add_clause(&[const_true]);
    let mut enc_arena = Tseitin::from_arena(arena, const_true)?;
    let mut enc_ref = Tseitin::new(reference, const_true)?;

    let mut in_lits: Vec<Vec<Lit>> = Vec::with_capacity(arena.inputs().len());
    for port in arena.inputs() {
        let lits: Vec<Lit> = port.bits.iter().map(|_| Lit::pos(solver.new_var())).collect();
        for (&net, &l) in port.bits.iter().zip(&lits) {
            enc_arena.bind(net, l);
        }
        in_lits.push(lits);
    }
    for (r_idx, port) in reference.inputs().iter().enumerate() {
        for (&net, &l) in port.bits.iter().zip(&in_lits[in_perm[r_idx]]) {
            enc_ref.bind(net, l);
        }
    }

    for &(lp, rp) in &out_pairs {
        let l_bits = arena.outputs()[lp].bits.clone();
        let r_bits = reference.outputs()[rp].bits.clone();
        for (&ln, &rn) in l_bits.iter().zip(&r_bits) {
            let la = enc_arena.literal(&mut solver, ln)?;
            let lb = enc_ref.literal(&mut solver, rn)?;
            if la == lb {
                continue;
            }
            if solver.solve_with(&[la, !lb]) == SolveResult::Sat
                || solver.solve_with(&[!la, lb]) == SolveResult::Sat
            {
                return Ok(false);
            }
            solver.add_clause(&[!la, lb]);
            solver.add_clause(&[la, !lb]);
        }
    }
    Ok(true)
}

/// Per-side state shared by the sweep and closing stages.
struct SideCtx<'a> {
    netlist: &'a Netlist,
    sim: Simulator<'a>,
    enc: Tseitin<'a>,
    /// `in_perm[i]` = index into the left-port-order stimulus feeding
    /// this side's input port `i`.
    in_perm: Vec<usize>,
    /// Per-net simulation signature, one word per batch.
    sigs: Vec<Vec<u64>>,
    /// Nets already merged into a representative.
    merged: Vec<bool>,
}

impl<'a> SideCtx<'a> {
    fn new(
        netlist: &'a Netlist,
        sim: Simulator<'a>,
        enc: Tseitin<'a>,
        in_perm: Vec<usize>,
    ) -> Self {
        let nets = netlist.num_nets() as usize;
        SideCtx {
            netlist,
            sim,
            enc,
            in_perm,
            sigs: vec![Vec::new(); nets],
            merged: vec![false; nets],
        }
    }

    /// Simulates one batch (left-port-order stimulus) and appends a
    /// signature word to every net.
    fn absorb_batch(&mut self, stim_left_order: &[PortValues]) -> Result<(), LecError> {
        let stim: Vec<PortValues> =
            self.in_perm.iter().map(|&j| stim_left_order[j].clone()).collect();
        let vals = self.sim.run_nets(&stim)?;
        for (sig, w) in self.sigs.iter_mut().zip(vals) {
            sig.push(w);
        }
        Ok(())
    }
}

/// Candidate-class representative: a previously seen net (by side) or
/// the constant-false node.
#[derive(Clone, Copy)]
enum Repr {
    ConstFalse,
    Net { side: usize, net: u32, phase: bool },
}

fn run_sweep(
    solver: &mut Solver,
    sides: &mut [SideCtx<'_>; 2],
    in_lits: &[Vec<Lit>],
    opts: &CecOptions,
    rng: &mut StdRng,
    stats: &mut SweepStats,
) -> Result<(), LecError> {
    if opts.sim_batches == 0 {
        return Ok(()); // no signatures — every net would alias one class
    }
    let const_false = !sides[0].enc.literal(solver, rlmul_rtl::CONST1)?;
    let widths: Vec<usize> = sides[0].netlist.inputs().iter().map(|p| p.bits.len()).collect();
    // Topological candidate order per side: proofs see small cones
    // first, and CPA output bits climb the carry chain LSB-first.
    let order: [Vec<NetId>; 2] =
        [candidate_order(sides[0].netlist), candidate_order(sides[1].netlist)];

    for _ in 0..opts.sim_batches {
        let stim = random_batch(&widths, rng);
        sides[0].absorb_batch(&stim)?;
        sides[1].absorb_batch(&stim)?;
        stats.sim_batches += 1;
    }

    while stats.rounds < opts.max_rounds {
        stats.rounds += 1;
        let mut classes: HashMap<Vec<u64>, Repr> = HashMap::new();
        // Seed constants and shared primary inputs as representatives.
        classes.insert(norm_key(&sides[0].sigs[0]).0, Repr::ConstFalse);
        for port in sides[0].netlist.inputs() {
            for &b in &port.bits {
                let (key, phase) = norm_key(&sides[0].sigs[b.0 as usize]);
                classes.entry(key).or_insert(Repr::Net { side: 0, net: b.0, phase });
            }
        }

        let mut fresh_cexs: Vec<Vec<u128>> = Vec::new();
        let mut seen_cex: HashSet<Vec<u128>> = HashSet::new();
        for (side_idx, side_order) in order.iter().enumerate() {
            for &o in side_order {
                let n = o.0 as usize;
                if sides[side_idx].merged[n] {
                    continue;
                }
                let (key, phase) = norm_key(&sides[side_idx].sigs[n]);
                let repr = match classes.entry(key) {
                    Entry::Vacant(e) => {
                        e.insert(Repr::Net { side: side_idx, net: o.0, phase });
                        continue;
                    }
                    Entry::Occupied(e) => *e.get(),
                };
                stats.candidates += 1;
                let target = match repr {
                    Repr::ConstFalse => const_false.xor(phase),
                    Repr::Net { side, net, phase: rp } => {
                        let rl = sides[side].enc.literal(solver, NetId(net))?;
                        rl.xor(phase != rp)
                    }
                };
                let l = sides[side_idx].enc.literal(solver, o)?;
                if l == target {
                    sides[side_idx].merged[n] = true;
                    stats.proved += 1;
                    continue;
                }
                if l == !target {
                    stats.refuted += 1;
                    continue;
                }
                match prove_equal(solver, l, target, opts.candidate_conflicts) {
                    SolveResult::Unsat => {
                        sides[side_idx].enc.substitute(o, target);
                        sides[side_idx].merged[n] = true;
                        stats.proved += 1;
                    }
                    SolveResult::Sat => {
                        stats.refuted += 1;
                        let cex = model_inputs(solver, in_lits);
                        if seen_cex.insert(cex.clone()) {
                            fresh_cexs.push(cex);
                        }
                    }
                    SolveResult::Unknown => stats.unknown += 1,
                }
            }
        }
        if fresh_cexs.is_empty() {
            break;
        }
        for chunk in fresh_cexs.chunks(64) {
            let stim = cex_batch(chunk, &widths, rng);
            sides[0].absorb_batch(&stim)?;
            sides[1].absorb_batch(&stim)?;
            stats.sim_batches += 1;
        }
    }
    Ok(())
}

/// Gate-output nets in construction (topological) order.
fn candidate_order(n: &Netlist) -> Vec<NetId> {
    n.gates().iter().flat_map(|g| g.outputs().iter().copied()).filter(|o| !o.is_const()).collect()
}

/// Budgeted two-call equivalence proof: UNSAT means `a ≡ b`.
fn prove_equal(solver: &mut Solver, a: Lit, b: Lit, budget: u64) -> SolveResult {
    match solver.solve_limited(&[a, !b], budget) {
        SolveResult::Unsat => solver.solve_limited(&[!a, b], budget),
        other => other,
    }
}

/// Signature normalization: complement so lane 0 of batch 0 is zero,
/// letting complementary nets share one candidate class.
fn norm_key(sig: &[u64]) -> (Vec<u64>, bool) {
    let phase = sig.first().is_some_and(|w| w & 1 == 1);
    let key = if phase { sig.iter().map(|w| !w).collect() } else { sig.to_vec() };
    (key, phase)
}

fn random_batch(widths: &[usize], rng: &mut StdRng) -> Vec<PortValues> {
    widths
        .iter()
        .map(|&w| PortValues { bits: (0..w).map(|_| rng.gen::<u64>()).collect() })
        .collect()
}

/// Packs up to 64 refuting input assignments into one stimulus batch,
/// filling leftover lanes randomly.
fn cex_batch(cexs: &[Vec<u128>], widths: &[usize], rng: &mut StdRng) -> Vec<PortValues> {
    let mut batch = random_batch(widths, rng);
    for (lane, cex) in cexs.iter().enumerate() {
        for (port, &v) in batch.iter_mut().zip(cex) {
            for (k, word) in port.bits.iter_mut().enumerate() {
                *word = (*word & !(1u64 << lane)) | ((((v >> k) & 1) as u64) << lane);
            }
        }
    }
    batch
}

/// Reads the input assignment out of the solver model, one `u128` per
/// left input port.
fn model_inputs(solver: &Solver, in_lits: &[Vec<Lit>]) -> Vec<u128> {
    in_lits
        .iter()
        .map(|bits| {
            bits.iter()
                .enumerate()
                .fold(0u128, |acc, (k, &l)| acc | ((solver.model_lit(l) as u128) << k))
        })
        .collect()
}

/// Replays a refuting input assignment through both simulators and
/// packages the (confirmed) disagreement.
fn confirm_cex(
    inputs: Vec<u128>,
    sides: &[SideCtx<'_>; 2],
    out_pairs: &[(usize, usize)],
) -> Result<FormalCounterexample, LecError> {
    let left = sides[0].netlist;
    let stim_left_order: Vec<PortValues> =
        left.inputs().iter().zip(&inputs).map(|(p, &v)| pack128(v, p.bits.len())).collect();
    let outs_l = sides[0].sim.run(&stim_left_order)?;
    let stim_right: Vec<PortValues> =
        sides[1].in_perm.iter().map(|&j| stim_left_order[j].clone()).collect();
    let outs_r = sides[1].sim.run(&stim_right)?;

    let mut outputs = Vec::new();
    for &(lp, rp) in out_pairs {
        let lv = lane128(&outs_l[lp]);
        let rv = lane128(&outs_r[rp]);
        if lv != rv {
            outputs.push(OutputDiff { name: left.outputs()[lp].name.clone(), left: lv, right: rv });
        }
    }
    let confirmed = !outputs.is_empty();
    let named_inputs =
        left.inputs().iter().zip(&inputs).map(|(p, &v)| (p.name.clone(), v)).collect();
    Ok(FormalCounterexample { inputs: named_inputs, outputs, confirmed })
}

/// Replicates one scalar value across all 64 lanes.
fn pack128(v: u128, width: usize) -> PortValues {
    PortValues { bits: (0..width).map(|k| if (v >> k) & 1 == 1 { u64::MAX } else { 0 }).collect() }
}

/// Lane-0 value of a port as `u128`.
fn lane128(pv: &PortValues) -> u128 {
    pv.bits.iter().enumerate().fold(0u128, |acc, (k, &w)| acc | (((w & 1) as u128) << k))
}

/// Right-side input permutation (`right port i` ← left-order stimulus
/// slot) plus matched `(left, right)` output index pairs.
type PortMatch = (Vec<usize>, Vec<(usize, usize)>);

/// Matches the two interfaces by port name.
fn match_ports(left: &Netlist, right: &Netlist) -> Result<PortMatch, LecError> {
    match_port_lists(left.inputs(), left.outputs(), right.inputs(), right.outputs())
}

/// [`match_ports`] over bare port lists, so an [`ArenaNetlist`] side
/// can be matched without compaction.
fn match_port_lists(
    left_in: &[rlmul_rtl::Port],
    left_out: &[rlmul_rtl::Port],
    right_in: &[rlmul_rtl::Port],
    right_out: &[rlmul_rtl::Port],
) -> Result<PortMatch, LecError> {
    fn index_by_name(ports: &[rlmul_rtl::Port]) -> HashMap<&str, usize> {
        ports.iter().enumerate().map(|(i, p)| (p.name.as_str(), i)).collect()
    }
    let mismatch = |detail: String| LecError::PortMismatch { detail };

    if left_in.len() != right_in.len() {
        return Err(mismatch(format!("input port count {} vs {}", left_in.len(), right_in.len())));
    }
    if left_out.len() != right_out.len() {
        return Err(mismatch(format!(
            "output port count {} vs {}",
            left_out.len(),
            right_out.len()
        )));
    }
    let left_in_idx = index_by_name(left_in);
    let mut in_perm = Vec::with_capacity(right_in.len());
    for p in right_in {
        let &li = left_in_idx
            .get(p.name.as_str())
            .ok_or_else(|| mismatch(format!("right input '{}' missing on left", p.name)))?;
        if left_in[li].bits.len() != p.bits.len() {
            return Err(mismatch(format!(
                "input '{}' width {} vs {}",
                p.name,
                left_in[li].bits.len(),
                p.bits.len()
            )));
        }
        in_perm.push(li);
    }
    let right_out_idx = index_by_name(right_out);
    let mut out_pairs = Vec::with_capacity(left_out.len());
    for (li, p) in left_out.iter().enumerate() {
        let &ri = right_out_idx
            .get(p.name.as_str())
            .ok_or_else(|| mismatch(format!("left output '{}' missing on right", p.name)))?;
        if right_out[ri].bits.len() != p.bits.len() {
            return Err(mismatch(format!(
                "output '{}' width {} vs {}",
                p.name,
                p.bits.len(),
                right_out[ri].bits.len()
            )));
        }
        out_pairs.push((li, ri));
    }
    Ok((in_perm, out_pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rlmul_rtl::{mutate, NetlistBuilder};

    fn dadda(bits: usize, kind: PpgKind) -> Netlist {
        golden_reference(bits, kind).unwrap()
    }

    fn wallace(bits: usize, kind: PpgKind) -> Netlist {
        let tree = CompressorTree::wallace(bits, kind).unwrap();
        MultiplierNetlist::elaborate(&tree).unwrap().into_netlist()
    }

    #[test]
    fn identical_multipliers_prove_trivially() {
        let n = dadda(6, PpgKind::And);
        let r = check_formal(&n, 6, PpgKind::And).unwrap();
        assert!(r.equivalent, "{r:?}");
        assert_eq!(r.closed_outputs, 0, "all outputs should merge structurally: {r:?}");
    }

    #[test]
    fn wallace_vs_dadda_8bit_proves() {
        for kind in [PpgKind::And, PpgKind::Mbe] {
            let n = wallace(8, kind);
            let r = check_formal(&n, 8, kind).unwrap();
            assert!(r.equivalent, "{kind}: {:?}", r.counterexample);
            assert!(r.sweep.proved > 0, "{kind}: sweep should merge shared PPG logic");
        }
    }

    #[test]
    fn mac_designs_prove() {
        let n = wallace(6, PpgKind::MacAnd);
        let r = check_formal(&n, 6, PpgKind::MacAnd).unwrap();
        assert!(r.equivalent, "{:?}", r.counterexample);
    }

    #[test]
    fn flipped_gate_is_refuted_with_confirmed_cex() {
        let n = dadda(6, PpgKind::And);
        let gate = mutate::find_gate(&n, rlmul_rtl::GateKind::Xor2)
            .or_else(|| mutate::find_gate(&n, rlmul_rtl::GateKind::And2))
            .unwrap();
        let bad = mutate::flip_gate_kind(&n, gate).unwrap();
        let r = check_formal(&bad, 6, PpgKind::And).unwrap();
        assert!(!r.equivalent);
        let cex = r.counterexample.expect("refutation carries a counterexample");
        assert!(cex.confirmed, "simulator must confirm: {cex:?}");
    }

    #[test]
    fn dropped_carry_is_refuted() {
        let n = dadda(6, PpgKind::And);
        let bad = mutate::drop_carry_wire(&n).unwrap();
        let r = check_formal(&bad, 6, PpgKind::And).unwrap();
        assert!(!r.equivalent);
        assert!(r.counterexample.unwrap().confirmed);
    }

    #[test]
    fn port_mismatch_is_an_error() {
        let a = dadda(4, PpgKind::And);
        let b = dadda(4, PpgKind::MacAnd); // extra input port c
        assert!(matches!(
            check_equiv(&a, &b, &CecOptions::default()),
            Err(LecError::PortMismatch { .. })
        ));
    }

    #[test]
    fn lint_gate_rejects_structurally_broken_netlists() {
        let n = dadda(4, PpgKind::And);
        let bad = mutate::duplicate_gate(&n, 3);
        assert!(matches!(
            check_equiv(&bad, &n, &CecOptions::default()),
            Err(LecError::LintFailed { side: "left", .. })
        ));
    }

    #[test]
    fn sweep_disabled_still_closes_small_miters() {
        let n = wallace(4, PpgKind::And);
        let opts = CecOptions { sweep: false, ..CecOptions::default() };
        let r = check_formal_with(&n, 4, PpgKind::And, &opts).unwrap();
        assert!(r.equivalent, "{:?}", r.counterexample);
        assert_eq!(r.sweep.candidates, 0);
        assert!(r.closed_outputs > 0);
    }

    #[test]
    fn distinct_functions_over_shared_ports_are_refuted() {
        // y = a & b vs y = a | b.
        let mk = |or: bool| {
            let mut b = NetlistBuilder::new("f");
            let a = b.input("a", 1);
            let c = b.input("b", 1);
            let y = if or { b.or2(a[0], c[0]) } else { b.and2(a[0], c[0]) };
            b.output("y", &[y]);
            b.finish()
        };
        let r = check_equiv(&mk(false), &mk(true), &CecOptions::default()).unwrap();
        assert!(!r.equivalent);
        let cex = r.counterexample.unwrap();
        assert!(cex.confirmed);
        // The separating assignment must be a=0,b=1 or a=1,b=0.
        let vals: Vec<u128> = cex.inputs.iter().map(|(_, v)| *v).collect();
        assert_eq!(vals[0] + vals[1], 1, "{cex:?}");
    }

    #[test]
    fn edited_arena_proves_equivalent_to_golden_without_compaction() {
        // Walk a few legal compressor-tree actions through the
        // incremental multiplier, then prove the arena — in place —
        // against a fresh golden elaboration.
        let tree = CompressorTree::wallace(4, PpgKind::And).unwrap();
        let mut inc = rlmul_rtl::IncrementalMultiplier::new(&tree).unwrap();
        let mut tree = tree;
        let mut seed = 0x5eed_cec0_ffeeu64;
        for _ in 0..3 {
            let actions = tree.valid_actions();
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let a = actions[(seed >> 33) as usize % actions.len()];
            tree = tree.apply_action(a).unwrap();
            inc.retarget(&tree).unwrap();
        }
        let golden = dadda(4, PpgKind::And);
        assert!(prove_arena_equiv(inc.arena(), &golden).unwrap());
    }

    #[test]
    fn corrupted_arena_is_refuted_in_place() {
        let golden = dadda(4, PpgKind::And);
        let mut arena = ArenaNetlist::from_netlist(&golden);
        let (slot, _) = arena
            .iter_live()
            .find(|(_, g)| matches!(g.kind, rlmul_rtl::GateKind::And2 | rlmul_rtl::GateKind::Xor2))
            .expect("multiplier has a flippable gate");
        mutate::inject_flip_gate_kind(&mut arena, slot).unwrap();
        assert!(!prove_arena_equiv(&arena, &golden).unwrap());
    }

    #[test]
    fn arena_port_mismatch_is_rejected() {
        let golden = dadda(4, PpgKind::And);
        let arena = ArenaNetlist::from_netlist(&golden);
        let other = dadda(6, PpgKind::And);
        assert!(matches!(prove_arena_equiv(&arena, &other), Err(LecError::PortMismatch { .. })));
    }
}
