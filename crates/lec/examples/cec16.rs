//! Formal CEC demo: proves 16×16 multipliers (AND and Booth PPG)
//! equivalent to the golden Dadda reference, including a Wallace tree
//! and a legalized post-action tree, printing sweep/solver stats.
//!
//! Run with `cargo run --release -p rlmul-lec --example cec16`.

use std::time::Instant;

use rlmul_ct::{CompressorTree, PpgKind};
use rlmul_lec::check_formal;
use rlmul_rtl::MultiplierNetlist;

fn main() {
    let bits = 16;
    for kind in [PpgKind::And, PpgKind::Mbe] {
        // Wallace vs the golden Dadda reference.
        let wallace = CompressorTree::wallace(bits, kind).unwrap();
        run("wallace", &wallace, bits, kind);
        // A legalized post-action tree: greedily walk a few actions.
        let mut tree = CompressorTree::dadda(bits, kind).unwrap();
        for _ in 0..4 {
            let Some(a) = tree.valid_actions().into_iter().next() else { break };
            tree = tree.apply_action(a).unwrap();
        }
        assert!(tree.is_legal());
        run("post-action", &tree, bits, kind);
    }
}

fn run(label: &str, tree: &CompressorTree, bits: usize, kind: PpgKind) {
    let n = MultiplierNetlist::elaborate(tree).unwrap().into_netlist();
    let t = Instant::now();
    let r = check_formal(&n, bits, kind).unwrap();
    assert!(r.equivalent, "{label} {kind}: {:?}", r.counterexample);
    println!(
        "{label:>11} {kind:?}: proved in {:?} | sweep rounds={} cand={} proved={} refuted={} \
         unknown={} | closed_outputs={} vars={} clauses={} conflicts={}",
        t.elapsed(),
        r.sweep.rounds,
        r.sweep.candidates,
        r.sweep.proved,
        r.sweep.refuted,
        r.sweep.unknown,
        r.closed_outputs,
        r.vars,
        r.clauses,
        r.conflicts,
    );
}
