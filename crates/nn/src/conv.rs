//! 2-D convolution with stride and zero padding (NCHW), lowered to
//! GEMM through im2col.

use crate::gemm;
use crate::im2col::{col2im, im2col};
use crate::layer::{Layer, Param};
use crate::stats::{self, Op};
use crate::tensor::Tensor;
use rand::Rng;
use std::time::Instant;

/// A 2-D convolution layer on the shared dense kernels.
///
/// Forward expands each sample into a `[in_c·k², oh·ow]` patch matrix
/// (scratch buffer reused across steps) and runs one
/// [`gemm::gemm_nn`] per sample; backward likewise reduces to one
/// [`gemm::gemm_nt`] (weight gradient) and one [`gemm::gemm_tn`] +
/// [`col2im`] (input gradient) per sample. Large batches fan the
/// per-sample work out over scoped threads following the same policy
/// as the GEMM row blocks; debug builds replay every call through the
/// retained naive kernels in [`crate::reference`] and assert
/// near-equality.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor>,
    /// im2col scratch, `[in_c·k², oh·ow]`, reused across calls.
    cols: Vec<f32>,
    /// Column-space gradient scratch of the same size.
    dcols: Vec<f32>,
}

impl Conv2d {
    /// A `k × k` convolution from `in_c` to `out_c` channels with the
    /// given stride and padding, Kaiming-initialized.
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_c * k * k;
        Conv2d {
            weight: Param::new(Tensor::kaiming(&[out_c, in_c, k, k], fan_in, rng)),
            bias: Param::new(Tensor::zeros(&[out_c])),
            in_c,
            out_c,
            k,
            stride,
            pad,
            cached_input: None,
            cols: Vec::new(),
            dcols: Vec::new(),
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        assert!(
            h + 2 * self.pad >= self.k && w + 2 * self.pad >= self.k,
            "Conv2d: kernel {k} exceeds padded input {h}x{w} (pad {p})",
            k = self.k,
            h = h,
            w = w,
            p = self.pad
        );
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }

    /// The convolution itself, without input caching. Shared by the
    /// borrowing and owning forward paths.
    fn forward_impl(&mut self, x: &Tensor) -> Tensor {
        let t0 = Instant::now();
        let (n, c, h, w) = x.dims4();
        assert_eq!(c, self.in_c, "Conv2d input channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let (ickk, ohow) = (self.in_c * self.k * self.k, oh * ow);
        let sample_in = c * h * w;
        let sample_out = self.out_c * ohow;
        let mut y = Tensor::zeros(&[n, self.out_c, oh, ow]);
        let wt = self.weight.value.data();
        let bs = self.bias.value.data();
        let xd = x.data();

        let run_sample = |xs: &[f32], ys: &mut [f32], cols: &mut Vec<f32>| {
            cols.resize(ickk * ohow, 0.0);
            im2col(xs, c, h, w, self.k, self.stride, self.pad, oh, ow, cols);
            for (oc, row) in ys.chunks_exact_mut(ohow).enumerate() {
                row.fill(bs[oc]);
            }
            // Per-sample GEMMs are small; keep them serial and put
            // the parallelism at the batch level instead.
            gemm::gemm_nn_threads(wt, cols, ys, self.out_c, ickk, ohow, 1);
        };

        let flops = 2 * n as u64 * (self.out_c * ohow * ickk) as u64;
        let threads = gemm::worker_count(flops as usize, n);
        if threads > 1 {
            // Batch-level fan-out: each worker takes a contiguous
            // sample block with its own scratch. Outputs are disjoint
            // and per-sample arithmetic is identical to the serial
            // path, so the result does not depend on the split.
            let chunk = n.div_ceil(threads);
            std::thread::scope(|scope| {
                for (t, yblock) in y.data_mut().chunks_mut(chunk * sample_out).enumerate() {
                    let run_sample = &run_sample;
                    let xblock = &xd[t * chunk * sample_in..];
                    scope.spawn(move || {
                        let mut cols = Vec::new();
                        for (s, ys) in yblock.chunks_exact_mut(sample_out).enumerate() {
                            run_sample(&xblock[s * sample_in..(s + 1) * sample_in], ys, &mut cols);
                        }
                    });
                }
            });
        } else {
            let mut cols = std::mem::take(&mut self.cols);
            for (ni, ys) in y.data_mut().chunks_exact_mut(sample_out).enumerate() {
                run_sample(&xd[ni * sample_in..(ni + 1) * sample_in], ys, &mut cols);
            }
            self.cols = cols;
        }

        #[cfg(debug_assertions)]
        {
            let naive = crate::reference::conv2d_forward(
                xd,
                wt,
                bs,
                n,
                self.in_c,
                h,
                w,
                self.out_c,
                self.k,
                self.stride,
                self.pad,
            );
            crate::reference::assert_close("Conv2d::forward", y.data(), &naive);
        }
        stats::record(Op::ConvForward, flops, t0.elapsed());
        y
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.forward_impl(x);
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let y = self.forward_impl(&x);
        if train {
            self.cached_input = Some(x);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let t0 = Instant::now();
        let x = self.cached_input.take().expect("forward(train) before backward");
        let (n, _, h, w) = x.dims4();
        let (_, _, oh, ow) = grad_out.dims4();
        let (ickk, ohow) = (self.in_c * self.k * self.k, oh * ow);
        let sample_in = self.in_c * h * w;
        let sample_out = self.out_c * ohow;
        let mut dx = Tensor::zeros(x.shape());
        let xd = x.data();
        let gd = grad_out.data();

        #[cfg(debug_assertions)]
        let (dw_before, db_before) =
            (self.weight.grad.data().to_vec(), self.bias.grad.data().to_vec());

        // db: per-channel sums of the output gradient.
        {
            let db = self.bias.grad.data_mut();
            for gs in gd.chunks_exact(sample_out) {
                for (oc, grow) in gs.chunks_exact(ohow).enumerate() {
                    db[oc] += grow.iter().sum::<f32>();
                }
            }
        }

        let wt = self.weight.value.data();
        let dw = self.weight.grad.data_mut();
        let mut cols = std::mem::take(&mut self.cols);
        let mut dcols = std::mem::take(&mut self.dcols);
        cols.resize(ickk * ohow, 0.0);
        dcols.resize(ickk * ohow, 0.0);
        for ni in 0..n {
            let xs = &xd[ni * sample_in..(ni + 1) * sample_in];
            let gs = &gd[ni * sample_out..(ni + 1) * sample_out];
            im2col(xs, self.in_c, h, w, self.k, self.stride, self.pad, oh, ow, &mut cols);
            // dW += g·colsᵀ.
            gemm::gemm_nt(gs, &cols, dw, self.out_c, ohow, ickk);
            // dx (column space) = Wᵀ·g, scattered back by col2im.
            dcols.fill(0.0);
            gemm::gemm_tn(wt, gs, &mut dcols, ickk, self.out_c, ohow);
            col2im(
                &dcols,
                self.in_c,
                h,
                w,
                self.k,
                self.stride,
                self.pad,
                oh,
                ow,
                &mut dx.data_mut()[ni * sample_in..(ni + 1) * sample_in],
            );
        }
        self.cols = cols;
        self.dcols = dcols;

        #[cfg(debug_assertions)]
        {
            let mut dw_ref = dw_before;
            let mut db_ref = db_before;
            let dx_ref = crate::reference::conv2d_backward(
                xd,
                gd,
                self.weight.value.data(),
                &mut dw_ref,
                &mut db_ref,
                n,
                self.in_c,
                h,
                w,
                self.out_c,
                self.k,
                self.stride,
                self.pad,
            );
            crate::reference::assert_close("Conv2d::backward dx", dx.data(), &dx_ref);
            crate::reference::assert_close("Conv2d::backward dW", self.weight.grad.data(), &dw_ref);
            crate::reference::assert_close("Conv2d::backward db", self.bias.grad.data(), &db_ref);
        }
        let flops = 4 * n as u64 * (self.out_c * ohow * ickk) as u64;
        stats::record(Op::ConvBackward, flops, t0.elapsed());
        self.cached_input = Some(x);
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        conv.weight.value.data_mut().fill(0.0);
        conv.weight.value.data_mut()[4] = 1.0; // center tap
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn stride_two_halves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 4, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn one_by_one_kernel_is_a_channel_mix() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 1, 1, 1, 0, &mut rng);
        conv.weight.value.data_mut().copy_from_slice(&[2.0, -1.0]);
        conv.bias.value.data_mut()[0] = 0.5;
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::kaiming(&[2, 2, 4, 4], 4, &mut rng);
        crate::testutil::grad_check(&mut conv, &x, 1e-2, 2e-2);
    }

    #[test]
    fn strided_gradient_check() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::kaiming(&[1, 1, 5, 5], 4, &mut rng);
        crate::testutil::grad_check(&mut conv, &x, 1e-2, 2e-2);
    }

    #[test]
    fn repeated_forwards_reuse_scratch_and_stay_stable() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::kaiming(&[2, 2, 5, 5], 4, &mut rng);
        let first = conv.forward(&x, false);
        for _ in 0..3 {
            // The scratch buffer is dirty after the first call; a
            // stale-data bug would show up as drift here.
            assert_eq!(conv.forward(&x, false).data(), first.data());
        }
        assert_eq!(conv.cols.len(), 2 * 9 * 25);
    }

    #[test]
    fn eval_forward_does_not_clobber_training_cache() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut conv = Conv2d::new(1, 2, 3, 1, 1, &mut rng);
        let x_train = Tensor::kaiming(&[2, 1, 4, 4], 4, &mut rng);
        let y = conv.forward(&x_train, true);
        conv.forward(&Tensor::kaiming(&[5, 1, 4, 4], 4, &mut rng), false);
        let dx = conv.backward(&y);
        assert_eq!(dx.shape(), x_train.shape());
    }

    #[test]
    fn kernel_exceeding_padded_input_panics_with_geometry() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut conv = Conv2d::new(1, 1, 5, 1, 1, &mut rng);
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let err =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| conv.forward(&x, false)))
                .unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("exceeds padded input"), "{msg}");
    }
}
