//! 2-D convolution with stride and zero padding (NCHW).

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use rand::Rng;

/// A direct (loop-based) 2-D convolution layer.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    in_c: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// A `k × k` convolution from `in_c` to `out_c` channels with the
    /// given stride and padding, Kaiming-initialized.
    pub fn new<R: Rng + ?Sized>(
        in_c: usize,
        out_c: usize,
        k: usize,
        stride: usize,
        pad: usize,
        rng: &mut R,
    ) -> Self {
        let fan_in = in_c * k * k;
        Conv2d {
            weight: Param::new(Tensor::kaiming(&[out_c, in_c, k, k], fan_in, rng)),
            bias: Param::new(Tensor::zeros(&[out_c])),
            in_c,
            out_c,
            k,
            stride,
            pad,
            cached_input: None,
        }
    }

    fn out_hw(&self, h: usize, w: usize) -> (usize, usize) {
        (
            (h + 2 * self.pad - self.k) / self.stride + 1,
            (w + 2 * self.pad - self.k) / self.stride + 1,
        )
    }
}

impl Layer for Conv2d {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let (n, c, h, w) = x.dims4();
        assert_eq!(c, self.in_c, "Conv2d input channel mismatch");
        let (oh, ow) = self.out_hw(h, w);
        let mut y = Tensor::zeros(&[n, self.out_c, oh, ow]);
        let wt = self.weight.value.data();
        let bs = self.bias.value.data();
        for ni in 0..n {
            for oc in 0..self.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = bs[oc];
                        for ic in 0..self.in_c {
                            for ky in 0..self.k {
                                let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                    if ix < 0 || ix as usize >= w {
                                        continue;
                                    }
                                    let wv =
                                        wt[((oc * self.in_c + ic) * self.k + ky) * self.k + kx];
                                    acc += wv * x.at4(ni, ic, iy as usize, ix as usize);
                                }
                            }
                        }
                        *y.at4_mut(ni, oc, oy, ox) = acc;
                    }
                }
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    #[allow(clippy::needless_range_loop)] // oc indexes y, db and the weight block
    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("forward before backward");
        let (n, _, h, w) = x.dims4();
        let (_, _, oh, ow) = grad_out.dims4();
        let mut dx = Tensor::zeros(x.shape());
        let wt = self.weight.value.data().to_vec();
        let dw = self.weight.grad.data_mut();
        let db = self.bias.grad.data_mut();
        for ni in 0..n {
            for oc in 0..self.out_c {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let g = grad_out.at4(ni, oc, oy, ox);
                        if g == 0.0 {
                            continue;
                        }
                        db[oc] += g;
                        for ic in 0..self.in_c {
                            for ky in 0..self.k {
                                let iy = (oy * self.stride + ky) as isize - self.pad as isize;
                                if iy < 0 || iy as usize >= h {
                                    continue;
                                }
                                for kx in 0..self.k {
                                    let ix = (ox * self.stride + kx) as isize - self.pad as isize;
                                    if ix < 0 || ix as usize >= w {
                                        continue;
                                    }
                                    let widx = ((oc * self.in_c + ic) * self.k + ky) * self.k + kx;
                                    dw[widx] += g * x.at4(ni, ic, iy as usize, ix as usize);
                                    *dx.at4_mut(ni, ic, iy as usize, ix as usize) += g * wt[widx];
                                }
                            }
                        }
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn identity_kernel_passes_input_through() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng);
        conv.weight.value.data_mut().fill(0.0);
        conv.weight.value.data_mut()[4] = 1.0; // center tap
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), x.data());
    }

    #[test]
    fn stride_two_halves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(2, 4, 3, 2, 1, &mut rng);
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        let y = conv.forward(&x, false);
        assert_eq!(y.shape(), &[1, 4, 4, 4]);
    }

    #[test]
    fn one_by_one_kernel_is_a_channel_mix() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut conv = Conv2d::new(2, 1, 1, 1, 0, &mut rng);
        conv.weight.value.data_mut().copy_from_slice(&[2.0, -1.0]);
        conv.bias.value.data_mut()[0] = 0.5;
        let x = Tensor::from_vec(&[1, 2, 1, 1], vec![3.0, 4.0]);
        let y = conv.forward(&x, false);
        assert_eq!(y.data(), &[2.0 * 3.0 - 4.0 + 0.5]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng);
        let x = Tensor::kaiming(&[2, 2, 4, 4], 4, &mut rng);
        crate::testutil::grad_check(&mut conv, &x, 1e-2, 2e-2);
    }

    #[test]
    fn strided_gradient_check() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut conv = Conv2d::new(1, 2, 3, 2, 1, &mut rng);
        let x = Tensor::kaiming(&[1, 1, 5, 5], 4, &mut rng);
        crate::testutil::grad_check(&mut conv, &x, 1e-2, 2e-2);
    }
}
