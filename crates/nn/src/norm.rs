//! Batch normalization over NCHW feature maps.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Per-channel batch normalization with learned scale/shift and
/// running statistics for evaluation mode.
#[derive(Debug)]
pub struct BatchNorm2d {
    gamma: Param,
    beta: Param,
    running_mean: Vec<f32>,
    running_var: Vec<f32>,
    momentum: f32,
    eps: f32,
    // Cached from forward (training mode).
    cache: Option<BnCache>,
}

#[derive(Debug)]
struct BnCache {
    x_hat: Tensor,
    inv_std: Vec<f32>,
    count: usize,
}

impl BatchNorm2d {
    /// Normalization over `channels` feature maps.
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Param::new(Tensor::from_vec(&[channels], vec![1.0; channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            running_mean: vec![0.0; channels],
            running_var: vec![1.0; channels],
            momentum: 0.1,
            eps: 1e-5,
            cache: None,
        }
    }
}

impl Layer for BatchNorm2d {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, h, w) = x.dims4();
        let count = n * h * w;
        let mut y = Tensor::zeros(x.shape());
        let gamma = self.gamma.value.data();
        let beta = self.beta.value.data();
        if train {
            let mut x_hat = Tensor::zeros(x.shape());
            let mut inv_std = vec![0.0f32; c];
            for ch in 0..c {
                let mut mean = 0.0f32;
                for ni in 0..n {
                    for hy in 0..h {
                        for wx in 0..w {
                            mean += x.at4(ni, ch, hy, wx);
                        }
                    }
                }
                mean /= count as f32;
                let mut var = 0.0f32;
                for ni in 0..n {
                    for hy in 0..h {
                        for wx in 0..w {
                            let d = x.at4(ni, ch, hy, wx) - mean;
                            var += d * d;
                        }
                    }
                }
                var /= count as f32;
                let istd = 1.0 / (var + self.eps).sqrt();
                inv_std[ch] = istd;
                self.running_mean[ch] =
                    (1.0 - self.momentum) * self.running_mean[ch] + self.momentum * mean;
                self.running_var[ch] =
                    (1.0 - self.momentum) * self.running_var[ch] + self.momentum * var;
                for ni in 0..n {
                    for hy in 0..h {
                        for wx in 0..w {
                            let xh = (x.at4(ni, ch, hy, wx) - mean) * istd;
                            *x_hat.at4_mut(ni, ch, hy, wx) = xh;
                            *y.at4_mut(ni, ch, hy, wx) = gamma[ch] * xh + beta[ch];
                        }
                    }
                }
            }
            self.cache = Some(BnCache { x_hat, inv_std, count });
        } else {
            for ch in 0..c {
                let istd = 1.0 / (self.running_var[ch] + self.eps).sqrt();
                for ni in 0..n {
                    for hy in 0..h {
                        for wx in 0..w {
                            let xh = (x.at4(ni, ch, hy, wx) - self.running_mean[ch]) * istd;
                            *y.at4_mut(ni, ch, hy, wx) = gamma[ch] * xh + beta[ch];
                        }
                    }
                }
            }
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let cache = self.cache.as_ref().expect("forward(train) before backward");
        let (n, c, h, w) = grad_out.dims4();
        let m = cache.count as f32;
        let mut dx = Tensor::zeros(grad_out.shape());
        let gamma = self.gamma.value.data();
        let dgamma = self.gamma.grad.data_mut();
        let dbeta = self.beta.grad.data_mut();
        for ch in 0..c {
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                for hy in 0..h {
                    for wx in 0..w {
                        let dy = grad_out.at4(ni, ch, hy, wx);
                        sum_dy += dy;
                        sum_dy_xhat += dy * cache.x_hat.at4(ni, ch, hy, wx);
                    }
                }
            }
            dgamma[ch] += sum_dy_xhat;
            dbeta[ch] += sum_dy;
            let k = gamma[ch] * cache.inv_std[ch];
            for ni in 0..n {
                for hy in 0..h {
                    for wx in 0..w {
                        let dy = grad_out.at4(ni, ch, hy, wx);
                        let xh = cache.x_hat.at4(ni, ch, hy, wx);
                        *dx.at4_mut(ni, ch, hy, wx) = k * (dy - sum_dy / m - xh * sum_dy_xhat / m);
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        f(&mut self.running_mean);
        f(&mut self.running_var);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn training_output_is_normalized() {
        let mut bn = BatchNorm2d::new(2);
        let mut rng = StdRng::seed_from_u64(1);
        let x = Tensor::kaiming(&[4, 2, 3, 3], 4, &mut rng);
        let y = bn.forward(&x, true);
        // Per channel: mean ≈ 0, var ≈ 1.
        let (n, _, h, w) = y.dims4();
        for ch in 0..2 {
            let vals: Vec<f32> = (0..n)
                .flat_map(|ni| (0..h).flat_map(move |hy| (0..w).map(move |wx| (ni, hy, wx))))
                .map(|(ni, hy, wx)| y.at4(ni, ch, hy, wx))
                .collect();
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..50 {
            let x = Tensor::kaiming(&[8, 1, 2, 2], 4, &mut rng);
            bn.forward(&x, true);
        }
        let x = Tensor::from_vec(&[1, 1, 1, 1], vec![0.0]);
        let y = bn.forward(&x, false);
        // With zero-centred training data, eval(0) ≈ beta = 0.
        assert!(y.data()[0].abs() < 0.5);
    }

    #[test]
    fn gradient_check() {
        let mut bn = BatchNorm2d::new(3);
        let mut rng = StdRng::seed_from_u64(3);
        let x = Tensor::kaiming(&[4, 3, 2, 2], 4, &mut rng);
        crate::testutil::grad_check(&mut bn, &x, 1e-2, 3e-2);
    }
}
