//! Residual convolutional trunks (reduced-depth ResNet).
//!
//! The paper adopts ResNet-18 as the agent-network backbone; its
//! input here is only `2 × 2N × ST` (e.g. 2×16×16 for 8-bit
//! multipliers), so a reduced residual network with the same
//! block structure trains on CPU within the reproduction budget. The
//! depth/width are configurable through [`TrunkConfig`].

use crate::act::Relu;
use crate::conv::Conv2d;
use crate::layer::{Layer, Param, Sequential};
use crate::norm::BatchNorm2d;
use crate::pool::GlobalAvgPool;
use crate::tensor::Tensor;
use rand::Rng;

/// A standard two-convolution residual block with optional
/// downsampling projection.
pub struct ResidualBlock {
    conv1: Conv2d,
    bn1: BatchNorm2d,
    relu1: Relu,
    conv2: Conv2d,
    bn2: BatchNorm2d,
    downsample: Option<(Conv2d, BatchNorm2d)>,
    relu_out: Relu,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ResidualBlock(downsample: {})", self.downsample.is_some())
    }
}

impl ResidualBlock {
    /// A block from `in_c` to `out_c` channels; `stride > 1` or a
    /// channel change adds a 1×1 projection on the skip path.
    pub fn new<R: Rng + ?Sized>(in_c: usize, out_c: usize, stride: usize, rng: &mut R) -> Self {
        let downsample = if stride != 1 || in_c != out_c {
            Some((Conv2d::new(in_c, out_c, 1, stride, 0, rng), BatchNorm2d::new(out_c)))
        } else {
            None
        };
        ResidualBlock {
            conv1: Conv2d::new(in_c, out_c, 3, stride, 1, rng),
            bn1: BatchNorm2d::new(out_c),
            relu1: Relu::new(),
            conv2: Conv2d::new(out_c, out_c, 3, 1, 1, rng),
            bn2: BatchNorm2d::new(out_c),
            downsample,
            relu_out: Relu::new(),
        }
    }
}

impl Layer for ResidualBlock {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // The main branch chains owned hand-offs after conv1 so the
        // reshape/element-wise stages run in place.
        let mut main = self.conv1.forward(x, train);
        main = self.bn1.forward_owned(main, train);
        main = self.relu1.forward_owned(main, train);
        main = self.conv2.forward_owned(main, train);
        main = self.bn2.forward_owned(main, train);
        let skip = match &mut self.downsample {
            Some((conv, bn)) => {
                let s = conv.forward(x, train);
                bn.forward_owned(s, train)
            }
            None => x.clone(),
        };
        main.add_assign(&skip);
        self.relu_out.forward_owned(main, train)
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let g = self.relu_out.backward(grad_out);
        // Main branch.
        let mut gm = self.bn2.backward(&g);
        gm = self.conv2.backward_owned(gm);
        gm = self.relu1.backward_owned(gm);
        gm = self.bn1.backward_owned(gm);
        let mut dx = self.conv1.backward_owned(gm);
        // Skip branch.
        match &mut self.downsample {
            Some((conv, bn)) => {
                let gs = bn.backward(&g);
                let gs = conv.backward_owned(gs);
                dx.add_assign(&gs);
            }
            None => dx.add_assign(&g),
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        self.bn1.visit_params(f);
        self.conv2.visit_params(f);
        self.bn2.visit_params(f);
        if let Some((conv, bn)) = &mut self.downsample {
            conv.visit_params(f);
            bn.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        self.bn1.visit_state(f);
        self.bn2.visit_state(f);
        if let Some((_, bn)) = &mut self.downsample {
            bn.visit_state(f);
        }
    }
}

/// Shape of a residual trunk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrunkConfig {
    /// Input channels (`K = 2` compressor kinds in RL-MUL).
    pub in_channels: usize,
    /// Channel width of each stage; later stages downsample by 2.
    pub channels: Vec<usize>,
    /// Residual blocks per stage.
    pub blocks_per_stage: usize,
}

impl Default for TrunkConfig {
    /// A compact three-stage trunk (16/32/64 channels, 2 blocks each)
    /// — the reduced stand-in for ResNet-18.
    fn default() -> Self {
        TrunkConfig { in_channels: 2, channels: vec![16, 32, 64], blocks_per_stage: 2 }
    }
}

impl TrunkConfig {
    /// Feature width produced by [`build_trunk`] for this config.
    pub fn feature_dim(&self) -> usize {
        *self.channels.last().expect("at least one stage")
    }
}

/// Builds the residual trunk: stem convolution, residual stages,
/// global average pooling. Output shape is `[batch, feature_dim]`.
pub fn build_trunk<R: Rng + ?Sized>(config: &TrunkConfig, rng: &mut R) -> Sequential {
    let mut seq = Sequential::new();
    let c0 = config.channels[0];
    seq.push(Box::new(Conv2d::new(config.in_channels, c0, 3, 1, 1, rng)));
    seq.push(Box::new(BatchNorm2d::new(c0)));
    seq.push(Box::new(Relu::new()));
    let mut in_c = c0;
    for (stage, &ch) in config.channels.iter().enumerate() {
        for block in 0..config.blocks_per_stage {
            let stride = if stage > 0 && block == 0 { 2 } else { 1 };
            seq.push(Box::new(ResidualBlock::new(in_c, ch, stride, rng)));
            in_c = ch;
        }
    }
    seq.push(Box::new(GlobalAvgPool::new()));
    seq
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn trunk_produces_feature_vector() {
        let mut rng = StdRng::seed_from_u64(11);
        let cfg = TrunkConfig { in_channels: 2, channels: vec![8, 16], blocks_per_stage: 1 };
        let mut trunk = build_trunk(&cfg, &mut rng);
        let x = Tensor::kaiming(&[3, 2, 16, 16], 8, &mut rng);
        let y = trunk.forward(&x, true);
        assert_eq!(y.shape(), &[3, 16]);
    }

    #[test]
    fn residual_block_gradient_check() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut block = ResidualBlock::new(2, 4, 2, &mut rng);
        let x = Tensor::kaiming(&[2, 2, 4, 4], 4, &mut rng);
        crate::testutil::grad_check(&mut block, &x, 3e-3, 6e-2);
    }

    #[test]
    fn identity_block_gradient_check() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut block = ResidualBlock::new(3, 3, 1, &mut rng);
        let x = Tensor::kaiming(&[2, 3, 3, 3], 4, &mut rng);
        crate::testutil::grad_check(&mut block, &x, 3e-3, 6e-2);
    }

    #[test]
    fn trunk_param_count_is_stable() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut trunk = build_trunk(&TrunkConfig::default(), &mut rng);
        let mut count = 0usize;
        trunk.visit_params(&mut |p| count += p.value.len());
        // Deterministic structural budget for the default config.
        assert!(count > 50_000 && count < 500_000, "params = {count}");
    }
}
