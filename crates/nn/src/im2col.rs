//! Patch-matrix lowering for convolutions (im2col / col2im).
//!
//! One NCHW sample `c×h×w` expands into a `[c·k·k, oh·ow]` column
//! matrix whose rows follow the weight layout `(ic, ky, kx)`; the
//! convolution then becomes a single [`crate::gemm::gemm_nn`] call
//! `W[oc, c·k·k] · cols`, and both gradients become one GEMM each
//! (`gemm_nt` for the weight gradient, `gemm_tn` + [`col2im`] for the
//! input gradient). Because the column rows keep the `(ic, ky, kx)`
//! order of the naive kernel loops, the GEMM accumulates every output
//! element in the same order as the reference implementation.
//!
//! Out-of-bounds taps (zero padding) are written as explicit zeros —
//! the buffer is fully overwritten on every call, so layers can reuse
//! one scratch allocation across steps without clearing it.

/// Expands one sample `x` (`c·h·w` values) into `cols`
/// (`c·k·k × oh·ow`, fully overwritten).
///
/// # Panics
///
/// Panics when the slice lengths do not match the geometry.
#[allow(clippy::too_many_arguments)]
pub fn im2col(
    x: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    cols: &mut [f32],
) {
    assert_eq!(x.len(), c * h * w, "im2col: input length mismatch");
    assert_eq!(cols.len(), c * k * k * oh * ow, "im2col: column buffer length mismatch");
    let ohow = oh * ow;
    for ic in 0..c {
        let xc = &x[ic * h * w..(ic + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                let out = &mut cols[row * ohow..(row + 1) * ohow];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    let orow = &mut out[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy as usize >= h {
                        orow.fill(0.0);
                        continue;
                    }
                    let xrow = &xc[iy as usize * w..(iy as usize + 1) * w];
                    if stride == 1 {
                        // Contiguous tap row: zero edges, one copy.
                        let ix0 = kx as isize - pad as isize;
                        let lo = (-ix0).clamp(0, ow as isize) as usize;
                        let hi = (w as isize - ix0).clamp(0, ow as isize) as usize;
                        orow[..lo].fill(0.0);
                        orow[hi..].fill(0.0);
                        let src0 = (lo as isize + ix0) as usize;
                        orow[lo..hi].copy_from_slice(&xrow[src0..src0 + (hi - lo)]);
                    } else {
                        for (ox, o) in orow.iter_mut().enumerate() {
                            let ix = (ox * stride + kx) as isize - pad as isize;
                            *o = if ix >= 0 && (ix as usize) < w { xrow[ix as usize] } else { 0.0 };
                        }
                    }
                }
            }
        }
    }
}

/// Scatters a column-space gradient back onto one sample: for every
/// tap inside the image, `dx[ic, iy, ix] += cols[(ic,ky,kx), (oy,ox)]`
/// (padding taps are dropped). Inverse of [`im2col`] in the adjoint
/// sense; `dx` is accumulated into, not overwritten.
///
/// # Panics
///
/// Panics when the slice lengths do not match the geometry.
#[allow(clippy::too_many_arguments)]
pub fn col2im(
    cols: &[f32],
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    dx: &mut [f32],
) {
    assert_eq!(dx.len(), c * h * w, "col2im: output length mismatch");
    assert_eq!(cols.len(), c * k * k * oh * ow, "col2im: column buffer length mismatch");
    let ohow = oh * ow;
    for ic in 0..c {
        let dxc = &mut dx[ic * h * w..(ic + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (ic * k + ky) * k + kx;
                let src = &cols[row * ohow..(row + 1) * ohow];
                for oy in 0..oh {
                    let iy = (oy * stride + ky) as isize - pad as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let drow = &mut dxc[iy as usize * w..(iy as usize + 1) * w];
                    let srow = &src[oy * ow..(oy + 1) * ow];
                    for (ox, &v) in srow.iter().enumerate() {
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        if ix >= 0 && (ix as usize) < w {
                            drow[ix as usize] += v;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_geometry_copies_each_pixel_once() {
        // 1×1 kernel, stride 1, no padding: cols == x.
        let x: Vec<f32> = (0..12).map(|i| i as f32).collect();
        let mut cols = vec![f32::NAN; 12];
        im2col(&x, 3, 2, 2, 1, 1, 0, 2, 2, &mut cols);
        assert_eq!(cols, x);
    }

    #[test]
    fn padding_taps_are_zero() {
        let x = vec![1.0, 2.0, 3.0, 4.0]; // 1×2×2
        let mut cols = vec![f32::NAN; 9 * 4];
        im2col(&x, 1, 2, 2, 3, 1, 1, 2, 2, &mut cols);
        // Center tap (ky=1, kx=1) reproduces the image.
        assert_eq!(&cols[4 * 4..5 * 4], &x[..]);
        // Top-left tap (ky=0, kx=0) sees padding except at (1,1).
        assert_eq!(&cols[..4], &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn strided_rows_match_scalar_path() {
        // stride 2 exercises the scalar branch; compare against a
        // hand-walked gather.
        let h = 5;
        let w = 5;
        let x: Vec<f32> = (0..(h * w)).map(|i| i as f32).collect();
        let (k, stride, pad) = (3, 2, 1);
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        let mut cols = vec![f32::NAN; k * k * oh * ow];
        im2col(&x, 1, h, w, k, stride, pad, oh, ow, &mut cols);
        for ky in 0..k {
            for kx in 0..k {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let iy = (oy * stride + ky) as isize - pad as isize;
                        let ix = (ox * stride + kx) as isize - pad as isize;
                        let want = if iy >= 0 && ix >= 0 && (iy as usize) < h && (ix as usize) < w {
                            x[iy as usize * w + ix as usize]
                        } else {
                            0.0
                        };
                        assert_eq!(cols[((ky * k + kx) * oh + oy) * ow + ox], want);
                    }
                }
            }
        }
    }

    #[test]
    fn col2im_is_the_adjoint_of_im2col() {
        // <im2col(x), g> == <x, col2im(g)> for random-ish data — the
        // defining property of the adjoint scatter.
        let (c, h, w, k, stride, pad) = (2, 4, 4, 3, 1, 1);
        let oh = (h + 2 * pad - k) / stride + 1;
        let ow = (w + 2 * pad - k) / stride + 1;
        let x: Vec<f32> = (0..(c * h * w)).map(|i| (i as f32 * 0.37).sin()).collect();
        let g: Vec<f32> = (0..(c * k * k * oh * ow)).map(|i| (i as f32 * 0.13).cos()).collect();
        let mut cols = vec![0.0; g.len()];
        im2col(&x, c, h, w, k, stride, pad, oh, ow, &mut cols);
        let lhs: f32 = cols.iter().zip(&g).map(|(a, b)| a * b).sum();
        let mut dx = vec![0.0; x.len()];
        col2im(&g, c, h, w, k, stride, pad, oh, ow, &mut dx);
        let rhs: f32 = x.iter().zip(&dx).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0), "{lhs} vs {rhs}");
    }

    #[test]
    fn kernel_larger_than_image_is_all_padding_but_center() {
        // k > h: legal when padding makes h + 2p ≥ k; output is 1×1.
        let x = vec![5.0]; // 1×1×1
        let mut cols = vec![f32::NAN; 9];
        im2col(&x, 1, 1, 1, 3, 1, 1, 1, 1, &mut cols);
        assert_eq!(cols, vec![0.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 0.0]);
    }
}
