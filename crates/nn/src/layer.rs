//! The layer abstraction: forward with cached activations, backward
//! producing input gradients and accumulating parameter gradients.

use crate::tensor::Tensor;

/// A trainable parameter with its accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// A differentiable computation stage.
///
/// `forward` must be called before `backward`; layers cache whatever
/// they need (inputs, masks, normalization statistics) internally.
pub trait Layer {
    /// Computes the layer output, caching intermediates for backward.
    /// `train` selects training behaviour (e.g. batch statistics in
    /// batch normalization).
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// Back-propagates `grad_out`, accumulating parameter gradients
    /// and returning the gradient with respect to the layer input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// Visits every trainable parameter.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));
}

/// A simple sequential container.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer + Send>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer + Send>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let mut cur = x.clone();
        for l in &mut self.layers {
            cur = l.forward(&cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let mut grad = grad_out.clone();
        for l in self.layers.iter_mut().rev() {
            grad = l.backward(&grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }
}
