//! The layer abstraction: forward with cached activations, backward
//! producing input gradients and accumulating parameter gradients.

use crate::tensor::Tensor;

/// A trainable parameter with its accumulated gradient.
#[derive(Debug, Clone)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.data_mut().fill(0.0);
    }
}

/// A differentiable computation stage.
///
/// `forward` with `train == true` must be called before `backward`;
/// layers cache whatever they need (inputs, masks, normalization
/// statistics) internally, and only during training forwards —
/// evaluation forwards (`train == false`) leave all cached state
/// untouched, so interleaving them between a training forward and its
/// backward is safe.
pub trait Layer {
    /// Computes the layer output. With `train == true` the layer
    /// caches the intermediates backward needs and uses training
    /// behaviour (e.g. batch statistics in batch normalization);
    /// with `train == false` nothing is cached.
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor;

    /// [`Layer::forward`] taking ownership of the input. The default
    /// forwards to the borrowing implementation; layers that only
    /// reshape or mutate element-wise (and layers that cache their
    /// input) override it to avoid a full-tensor clone when chained.
    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        self.forward(&x, train)
    }

    /// Back-propagates `grad_out`, accumulating parameter gradients
    /// and returning the gradient with respect to the layer input.
    fn backward(&mut self, grad_out: &Tensor) -> Tensor;

    /// [`Layer::backward`] taking ownership of the gradient; same
    /// cloning contract as [`Layer::forward_owned`].
    fn backward_owned(&mut self, grad_out: Tensor) -> Tensor {
        self.backward(&grad_out)
    }

    /// Visits every trainable parameter.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Visits every piece of non-trainable mutable state (e.g. batch
    /// normalization running statistics) in a deterministic order.
    ///
    /// `visit_params` deliberately skips these buffers — optimizers
    /// must not touch them — but they still shape evaluation-mode
    /// forwards, so checkpoint/resume must capture them to reproduce
    /// action selection bit-identically. Stateless layers keep the
    /// default no-op.
    fn visit_state(&mut self, _f: &mut dyn FnMut(&mut Vec<f32>)) {}
}

/// A simple sequential container.
#[derive(Default)]
pub struct Sequential {
    layers: Vec<Box<dyn Layer + Send>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Sequential({} layers)", self.layers.len())
    }
}

impl Sequential {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a layer.
    pub fn push(&mut self, layer: Box<dyn Layer + Send>) {
        self.layers.push(layer);
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }
}

impl Layer for Sequential {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        // First layer borrows the caller's tensor; every subsequent
        // hand-off moves ownership so reshape/element-wise layers can
        // run without cloning.
        let Some((first, rest)) = self.layers.split_first_mut() else {
            return x.clone();
        };
        let mut cur = first.forward(x, train);
        for l in rest {
            cur = l.forward_owned(cur, train);
        }
        cur
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let mut cur = x;
        for l in &mut self.layers {
            cur = l.forward_owned(cur, train);
        }
        cur
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let Some((last, front)) = self.layers.split_last_mut() else {
            return grad_out.clone();
        };
        let mut grad = last.backward(grad_out);
        for l in front.iter_mut().rev() {
            grad = l.backward_owned(grad);
        }
        grad
    }

    fn backward_owned(&mut self, grad_out: Tensor) -> Tensor {
        let mut grad = grad_out;
        for l in self.layers.iter_mut().rev() {
            grad = l.backward_owned(grad);
        }
        grad
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for l in &mut self.layers {
            l.visit_params(f);
        }
    }

    fn visit_state(&mut self, f: &mut dyn FnMut(&mut Vec<f32>)) {
        for l in &mut self.layers {
            l.visit_state(f);
        }
    }
}
