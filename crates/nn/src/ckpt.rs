//! Checkpoint codec support: [`Record`] for tensors and whole-network
//! snapshots.
//!
//! [`save_params`](crate::save_params) persists parameter values only;
//! bit-identical resume additionally needs non-trainable layer state
//! (batch-norm running statistics) because evaluation-mode forwards —
//! and therefore action selection — read it. [`NetSnapshot`] captures
//! both via [`Layer::visit_params`] and [`Layer::visit_state`].

use crate::layer::Layer;
use crate::tensor::Tensor;
use rlmul_ckpt::{CkptError, Decoder, Encoder, Record};

impl Record for Tensor {
    fn encode(&self, enc: &mut Encoder) {
        self.shape().to_vec().encode(enc);
        enc.put_usize(self.data().len());
        for &x in self.data() {
            enc.put_f32(x);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        let shape = Vec::<usize>::decode(dec)?;
        let len = dec.get_len(4)?;
        let volume: usize = shape.iter().product();
        if len != volume {
            return Err(CkptError::Invalid {
                what: format!("tensor data length {len} does not match shape volume {volume}"),
            });
        }
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(dec.get_f32()?);
        }
        Ok(Tensor::from_vec(&shape, data))
    }
}

/// Everything mutable inside a network: parameter values (visitation
/// order) plus non-trainable state buffers.
///
/// Gradients are deliberately excluded — both training loops call
/// `zero_grad` before accumulating, so post-update gradients never
/// influence the next step.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSnapshot {
    /// Parameter value tensors in [`Layer::visit_params`] order.
    pub params: Vec<Tensor>,
    /// State buffers in [`Layer::visit_state`] order.
    pub state: Vec<Vec<f32>>,
}

impl Record for NetSnapshot {
    fn encode(&self, enc: &mut Encoder) {
        self.params.encode(enc);
        self.state.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, CkptError> {
        Ok(NetSnapshot { params: Vec::decode(dec)?, state: Vec::decode(dec)? })
    }
}

/// Captures every parameter value and state buffer of `net`.
pub fn snapshot_net(net: &mut dyn Layer) -> NetSnapshot {
    let mut params = Vec::new();
    net.visit_params(&mut |p| params.push(p.value.clone()));
    let mut state = Vec::new();
    net.visit_state(&mut |s| state.push(s.clone()));
    NetSnapshot { params, state }
}

/// Writes a snapshot back into a structurally identical network.
///
/// # Errors
///
/// [`CkptError::WrongFormat`] when tensor counts, shapes or state
/// buffer lengths do not match `net` — the snapshot was taken from a
/// different architecture.
pub fn restore_net(net: &mut dyn Layer, snap: &NetSnapshot) -> Result<(), CkptError> {
    let mut mismatch: Option<String> = None;
    let mut idx = 0usize;
    net.visit_params(&mut |p| {
        match snap.params.get(idx) {
            Some(t) if t.shape() == p.value.shape() => p.value = t.clone(),
            Some(t) => {
                mismatch.get_or_insert_with(|| {
                    format!("param {idx} shape {:?} != snapshot {:?}", p.value.shape(), t.shape())
                });
            }
            None => {
                mismatch.get_or_insert_with(|| format!("snapshot missing param {idx}"));
            }
        }
        idx += 1;
    });
    if idx != snap.params.len() {
        mismatch.get_or_insert_with(|| {
            format!("network has {idx} params, snapshot {}", snap.params.len())
        });
    }
    let mut sidx = 0usize;
    net.visit_state(&mut |s| {
        match snap.state.get(sidx) {
            Some(buf) if buf.len() == s.len() => s.clone_from(buf),
            Some(buf) => {
                mismatch.get_or_insert_with(|| {
                    format!("state {sidx} length {} != snapshot {}", s.len(), buf.len())
                });
            }
            None => {
                mismatch.get_or_insert_with(|| format!("snapshot missing state {sidx}"));
            }
        }
        sidx += 1;
    });
    if sidx != snap.state.len() {
        mismatch.get_or_insert_with(|| {
            format!("network has {sidx} state buffers, snapshot {}", snap.state.len())
        });
    }
    match mismatch {
        Some(what) => Err(CkptError::WrongFormat { what }),
        None => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resnet::{build_trunk, TrunkConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_trunk(seed: u64) -> crate::layer::Sequential {
        let mut rng = StdRng::seed_from_u64(seed);
        build_trunk(
            &TrunkConfig { in_channels: 2, channels: vec![4, 8], blocks_per_stage: 1 },
            &mut rng,
        )
    }

    #[test]
    fn tensor_round_trips_bit_exactly() {
        let t = Tensor::from_vec(&[2, 3], vec![0.5, -0.0, f32::NAN, 1e-38, 3.0, -7.25]);
        let back = Tensor::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(back.shape(), t.shape());
        for (a, b) in back.data().iter().zip(t.data()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn tensor_with_inconsistent_volume_is_rejected() {
        let mut bytes = Tensor::zeros(&[2, 2]).to_bytes();
        // Patch the shape's first dim (8-byte vec len, then dim 0).
        bytes[8] = 3;
        assert!(Tensor::from_bytes(&bytes).is_err());
    }

    #[test]
    fn net_snapshot_round_trips_through_the_codec() {
        let mut net = small_trunk(5);
        // Mutate running stats so state capture is observable.
        let x = Tensor::kaiming(&[2, 2, 8, 8], 4, &mut StdRng::seed_from_u64(6));
        net.forward(&x, true);
        let snap = snapshot_net(&mut net);
        assert!(!snap.params.is_empty());
        assert!(!snap.state.is_empty(), "trunk has batch-norm state");
        let back = NetSnapshot::from_bytes(&snap.to_bytes()).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn restore_reproduces_eval_forwards_exactly() {
        let mut trained = small_trunk(7);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..3 {
            let x = Tensor::kaiming(&[2, 2, 8, 8], 4, &mut rng);
            trained.forward(&x, true);
        }
        let snap = snapshot_net(&mut trained);
        // A differently-initialized net with the same structure.
        let mut fresh = small_trunk(99);
        restore_net(&mut fresh, &snap).unwrap();
        let probe = Tensor::kaiming(&[1, 2, 8, 8], 4, &mut rng);
        let a = trained.forward(&probe, false);
        let b = fresh.forward(&probe, false);
        for (x, y) in a.data().iter().zip(b.data()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn restore_rejects_structural_mismatch() {
        let mut net = small_trunk(1);
        let snap = snapshot_net(&mut net);
        let mut other = {
            let mut rng = StdRng::seed_from_u64(2);
            build_trunk(
                &TrunkConfig { in_channels: 2, channels: vec![4], blocks_per_stage: 1 },
                &mut rng,
            )
        };
        assert!(restore_net(&mut other, &snap).is_err());
    }
}
