//! A minimal dense tensor for CPU training.
//!
//! Data is `f32`, row-major, with an explicit shape vector.
//! Convolutional layers interpret 4-D tensors as NCHW.

use rand::Rng;

/// A dense row-major tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// An all-zero tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Tensor { shape: shape.to_vec(), data: vec![0.0; shape.iter().product()] }
    }

    /// Wraps existing data.
    ///
    /// # Panics
    ///
    /// Panics when `data.len()` does not match the shape volume.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "data length must match shape volume"
        );
        Tensor { shape: shape.to_vec(), data }
    }

    /// Kaiming-uniform initialization with `fan_in` inputs.
    pub fn kaiming<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Self {
        let bound = (6.0f32 / fan_in.max(1) as f32).sqrt();
        let data =
            (0..shape.iter().product::<usize>()).map(|_| rng.gen_range(-bound..bound)).collect();
        Tensor { shape: shape.to_vec(), data }
    }

    /// Tensor shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable raw data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable raw data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Reinterprets the tensor with a new shape of equal volume.
    ///
    /// # Panics
    ///
    /// Panics when volumes differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(
            self.data.len(),
            shape.iter().product::<usize>(),
            "reshape must preserve volume"
        );
        self.shape = shape.to_vec();
        self
    }

    /// Move-based reshape: consumes the tensor and returns it with a
    /// new shape of equal volume, without touching the data buffer.
    /// The explicit name marks call sites that avoid the
    /// clone-then-reshape pattern on the hot path.
    ///
    /// # Panics
    ///
    /// Panics when volumes differ.
    pub fn into_reshaped(self, shape: &[usize]) -> Self {
        self.reshape(shape)
    }

    /// Element at a 4-D NCHW index (unchecked arithmetic, checked
    /// bounds through the slice index).
    #[inline]
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let (_, cc, hh, ww) = self.dims4();
        self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// Mutable element at a 4-D NCHW index.
    #[inline]
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let (_, cc, hh, ww) = self.dims4();
        &mut self.data[((n * cc + c) * hh + h) * ww + w]
    }

    /// The four NCHW dimensions.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 4-D.
    pub fn dims4(&self) -> (usize, usize, usize, usize) {
        assert_eq!(self.shape.len(), 4, "expected a 4-D tensor, got {:?}", self.shape);
        (self.shape[0], self.shape[1], self.shape[2], self.shape[3])
    }

    /// The two dimensions of a matrix-shaped tensor.
    ///
    /// # Panics
    ///
    /// Panics when the tensor is not 2-D.
    pub fn dims2(&self) -> (usize, usize) {
        assert_eq!(self.shape.len(), 2, "expected a 2-D tensor, got {:?}", self.shape);
        (self.shape[0], self.shape[1])
    }

    /// In-place element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scaling.
    pub fn scale(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn indexing_is_row_major() {
        let t = Tensor::from_vec(&[1, 2, 2, 3], (0..12).map(|i| i as f32).collect());
        assert_eq!(t.at4(0, 0, 0, 0), 0.0);
        assert_eq!(t.at4(0, 0, 1, 2), 5.0);
        assert_eq!(t.at4(0, 1, 0, 0), 6.0);
        assert_eq!(t.at4(0, 1, 1, 2), 11.0);
    }

    #[test]
    fn kaiming_bounds_follow_fan_in() {
        let mut rng = StdRng::seed_from_u64(1);
        let t = Tensor::kaiming(&[64, 16], 16, &mut rng);
        let bound = (6.0f32 / 16.0).sqrt();
        assert!(t.data().iter().all(|v| v.abs() <= bound));
        assert!(t.data().iter().any(|v| v.abs() > bound * 0.3));
    }

    #[test]
    #[should_panic(expected = "reshape must preserve volume")]
    fn reshape_checks_volume() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[7]);
    }

    #[test]
    fn add_and_scale() {
        let mut a = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(&[3], vec![10.0, 20.0, 30.0]);
        a.add_assign(&b);
        a.scale(0.5);
        assert_eq!(a.data(), &[5.5, 11.0, 16.5]);
    }
}
