//! A from-scratch CPU neural-network substrate for the RL-MUL agent
//! networks.
//!
//! The paper uses a PyTorch ResNet-18 on GPU; this crate provides the
//! equivalent building blocks in pure Rust: dense tensors, 2-D
//! convolution, batch normalization, residual blocks, linear heads,
//! global average pooling, SGD/RMSProp/Adam optimizers and masked
//! softmax/argmax helpers. Every differentiable layer is covered by a
//! numerical gradient check.
//!
//! # Example
//!
//! ```
//! use rlmul_nn::{build_trunk, Layer, Tensor, TrunkConfig};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(0);
//! let cfg = TrunkConfig { in_channels: 2, channels: vec![8, 16], blocks_per_stage: 1 };
//! let mut trunk = build_trunk(&cfg, &mut rng);
//! let x = Tensor::zeros(&[1, 2, 16, 16]);
//! let features = trunk.forward(&x, false);
//! assert_eq!(features.shape(), &[1, 16]);
//! ```

#![forbid(unsafe_code)]

mod act;
mod ckpt;
mod conv;
pub mod gemm;
pub mod im2col;
mod io;
mod layer;
mod linear;
mod loss;
mod norm;
mod optim;
mod pool;
pub mod reference;
mod resnet;
mod stats;
mod tensor;
mod testutil;

pub use act::Relu;
pub use ckpt::{restore_net, snapshot_net, NetSnapshot};
pub use conv::Conv2d;
pub use io::{load_params, save_params};
pub use layer::{Layer, Param, Sequential};
pub use linear::{Flatten, Linear};
pub use loss::{entropy, masked_argmax, masked_softmax, mse};
pub use norm::BatchNorm2d;
pub use optim::{clip_grad_norm, Adam, Optimizer, RmsProp, Sgd};
pub use pool::GlobalAvgPool;
pub use resnet::{build_trunk, ResidualBlock, TrunkConfig};
pub use stats::NnStats;
pub use tensor::Tensor;
