//! Shared dense matrix kernels for every layer in this crate.
//!
//! Three cache-blocked f32 GEMM variants cover the whole forward and
//! backward hot path once convolutions are lowered through im2col:
//!
//! * [`gemm_nn`] — `C += A·B` (convolution forward, `Linear`
//!   input-gradient),
//! * [`gemm_nt`] — `C += A·Bᵀ` (`Linear` forward, convolution
//!   weight-gradient),
//! * [`gemm_tn`] — `C += Aᵀ·B` (`Linear` weight-gradient, convolution
//!   input-gradient into column space).
//!
//! All matrices are dense row-major slices. The kernels accumulate
//! into `C` (callers initialize it with zeros or the layer bias), and
//! every inner loop runs over `chunks_exact`/equal-length slice zips
//! so the compiler can vectorize without bounds checks.
//!
//! # Threading policy
//!
//! [`worker_count`] implements the batch-size-aware policy shared by
//! the layers (mirroring `Synthesizer::run_many`): below a FLOP
//! threshold everything stays serial — thread spawn/join would cost
//! more than the multiply — and above it the public entry points fan
//! the *row blocks* of `C` out over `std::thread::scope`. Each output
//! row is produced by exactly one worker with the same inner
//! summation order as the serial kernel, so results are identical for
//! every worker count (asserted by unit tests that force `threads =
//! 2` even on single-core machines).

/// Work (in FLOPs, `2·m·k·n`) below which a GEMM always runs serial.
/// ~2 MFLOP is a few hundred microseconds of single-core work —
/// around the break-even point for spawning scoped threads.
pub const PAR_FLOP_THRESHOLD: usize = 2_000_000;

/// Number of workers the threading policy grants a kernel of
/// `flops` total work whose output has `rows` independent rows.
pub fn worker_count(flops: usize, rows: usize) -> usize {
    if flops < PAR_FLOP_THRESHOLD || rows < 2 {
        return 1;
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(rows)
}

/// Panics unless the three slices match the given dimensions.
#[inline]
fn check_dims(a: &[f32], b: &[f32], c: &[f32], am: usize, bm: usize, cm: usize) {
    assert_eq!(a.len(), am, "GEMM: A length mismatch");
    assert_eq!(b.len(), bm, "GEMM: B length mismatch");
    assert_eq!(c.len(), cm, "GEMM: C length mismatch");
}

// Cache-block sizes: KC·NC f32 of B (64 KiB) stays resident in L1/L2
// while a row block of C streams through.
const KC: usize = 64;
const NC: usize = 256;

/// `C[m×n] += A[m×k] · B[k×n]`, row-major, serial.
///
/// Per output element the `k` contributions accumulate in ascending
/// order regardless of blocking, matching the naive triple loop.
fn nn_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for j0 in (0..n).step_by(NC) {
        let jl = NC.min(n - j0);
        for k0 in (0..k).step_by(KC) {
            let kl = KC.min(k - k0);
            for i in 0..m {
                let arow = &a[i * k + k0..i * k + k0 + kl];
                let crow = &mut c[i * n + j0..i * n + j0 + jl];
                for (kk, &av) in arow.iter().enumerate() {
                    let brow = &b[(k0 + kk) * n + j0..(k0 + kk) * n + j0 + jl];
                    for (cv, &bv) in crow.iter_mut().zip(brow) {
                        *cv += av * bv;
                    }
                }
            }
        }
    }
}

/// `C[m×n] += A[m×k] · B[n×k]ᵀ`, row-major, serial.
///
/// Dot-product formulation with eight independent accumulator lanes
/// over `chunks_exact(8)`; the lane sum reduces pairwise.
fn nt_serial(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut lanes = [0.0f32; 8];
            let ac = arow.chunks_exact(8);
            let bc = brow.chunks_exact(8);
            let (ra, rb) = (ac.remainder(), bc.remainder());
            for (av, bv) in ac.zip(bc) {
                for l in 0..8 {
                    lanes[l] += av[l] * bv[l];
                }
            }
            let mut acc = ((lanes[0] + lanes[4]) + (lanes[2] + lanes[6]))
                + ((lanes[1] + lanes[5]) + (lanes[3] + lanes[7]));
            for (av, bv) in ra.iter().zip(rb) {
                acc += av * bv;
            }
            *cv += acc;
        }
    }
}

/// `C[cols×n] += A[k×m]ᵀ · B[k×n]` restricted to the column block
/// `col0 .. col0 + cols` of `A` (whose rows have stride `m`). The
/// serial case is `col0 = 0, cols = m`; the threaded entry point
/// hands each worker one column block and the matching row block of
/// `C`.
#[allow(clippy::too_many_arguments)]
fn tn_block(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    col0: usize,
    cols: usize,
) {
    for kk in 0..k {
        let arow = &a[kk * m + col0..kk * m + col0 + cols];
        let brow = &b[kk * n..(kk + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            let crow = &mut c[i * n..(i + 1) * n];
            for (cv, &bv) in crow.iter_mut().zip(brow) {
                *cv += av * bv;
            }
        }
    }
}

/// Splits the row range of `C` over `threads` scoped workers, giving
/// worker `t` the rows `[t·chunk, …)` and calling `run(row0, c_block)`
/// on each disjoint block. Row-block decomposition keeps every output
/// element on exactly one worker, so the result is identical to the
/// serial kernel.
fn par_rows<F>(c: &mut [f32], m: usize, n: usize, threads: usize, run: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        for (t, cblock) in c.chunks_mut(chunk * n).enumerate() {
            let run = &run;
            scope.spawn(move || run(t * chunk, cblock));
        }
    });
}

pub(crate) fn gemm_nn_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    check_dims(a, b, c, m * k, k * n, m * n);
    if threads <= 1 {
        return nn_serial(a, b, c, m, k, n);
    }
    par_rows(c, m, n, threads, |row0, cblock| {
        let rows = cblock.len() / n;
        nn_serial(&a[row0 * k..(row0 + rows) * k], b, cblock, rows, k, n);
    });
}

pub(crate) fn gemm_nt_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    check_dims(a, b, c, m * k, n * k, m * n);
    if threads <= 1 {
        return nt_serial(a, b, c, m, k, n);
    }
    par_rows(c, m, n, threads, |row0, cblock| {
        let rows = cblock.len() / n;
        nt_serial(&a[row0 * k..(row0 + rows) * k], b, cblock, rows, k, n);
    });
}

pub(crate) fn gemm_tn_threads(
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    threads: usize,
) {
    check_dims(a, b, c, k * m, k * n, m * n);
    if threads <= 1 {
        return tn_block(a, b, c, m, k, n, 0, m);
    }
    par_rows(c, m, n, threads, |row0, cblock| {
        let rows = cblock.len() / n;
        tn_block(a, b, cblock, m, k, n, row0, rows);
    });
}

/// `C[m×n] += A[m×k] · B[k×n]` under the threading policy.
pub fn gemm_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_nn_threads(a, b, c, m, k, n, worker_count(2 * m * k * n, m));
}

/// `C[m×n] += A[m×k] · B[n×k]ᵀ` under the threading policy.
pub fn gemm_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_nt_threads(a, b, c, m, k, n, worker_count(2 * m * k * n, m));
}

/// `C[m×n] += A[k×m]ᵀ · B[k×n]` under the threading policy.
pub fn gemm_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    gemm_tn_threads(a, b, c, m, k, n, worker_count(2 * m * k * n, m));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor::kaiming(&[rows, cols], cols.max(1), &mut rng).data().to_vec()
    }

    fn assert_close(got: &[f32], want: &[f32]) {
        assert_eq!(got.len(), want.len());
        for (i, (g, w)) in got.iter().zip(want).enumerate() {
            assert!((g - w).abs() <= 1e-4 * 1.0f32.max(w.abs()), "mismatch at {i}: {g} vs {w}");
        }
    }

    #[test]
    fn nn_matches_reference_on_odd_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (3, 7, 5), (17, 33, 9), (8, 72, 256)] {
            let a = rand_mat(m, k, 1);
            let b = rand_mat(k, n, 2);
            let mut c = vec![0.1; m * n];
            let mut r = c.clone();
            gemm_nn(&a, &b, &mut c, m, k, n);
            reference::matmul_nn(&a, &b, &mut r, m, k, n);
            assert_close(&c, &r);
        }
    }

    #[test]
    fn nt_matches_reference_on_odd_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (4, 9, 3), (5, 70, 11), (16, 256, 72)] {
            let a = rand_mat(m, k, 3);
            let b = rand_mat(n, k, 4);
            let mut c = vec![-0.2; m * n];
            let mut r = c.clone();
            gemm_nt(&a, &b, &mut c, m, k, n);
            reference::matmul_nt(&a, &b, &mut r, m, k, n);
            assert_close(&c, &r);
        }
    }

    #[test]
    fn tn_matches_reference_on_odd_shapes() {
        for &(m, k, n) in &[(1, 1, 1), (6, 5, 4), (72, 16, 256), (13, 29, 7)] {
            let a = rand_mat(k, m, 5);
            let b = rand_mat(k, n, 6);
            let mut c = vec![0.0; m * n];
            let mut r = c.clone();
            gemm_tn(&a, &b, &mut c, m, k, n);
            reference::matmul_tn(&a, &b, &mut r, m, k, n);
            assert_close(&c, &r);
        }
    }

    #[test]
    fn forced_two_worker_split_is_bit_identical_to_serial() {
        // Row blocks never change the per-element summation order, so
        // the threaded kernels must agree with serial *exactly*, even
        // when the row count does not divide evenly.
        for m in [2usize, 3, 5, 8] {
            let (k, n) = (37, 19);
            let a = rand_mat(m, k, 7);
            let b = rand_mat(k, n, 8);
            let mut serial = vec![0.0; m * n];
            let mut par = vec![0.0; m * n];
            gemm_nn_threads(&a, &b, &mut serial, m, k, n, 1);
            gemm_nn_threads(&a, &b, &mut par, m, k, n, 2);
            assert_eq!(serial, par);

            let bt = rand_mat(n, k, 9);
            let mut serial = vec![0.0; m * n];
            let mut par = vec![0.0; m * n];
            gemm_nt_threads(&a, &bt, &mut serial, m, k, n, 1);
            gemm_nt_threads(&a, &bt, &mut par, m, k, n, 2);
            assert_eq!(serial, par);

            let at = rand_mat(k, m, 10);
            let bn = rand_mat(k, n, 11);
            let mut serial = vec![0.0; m * n];
            let mut par = vec![0.0; m * n];
            gemm_tn_threads(&at, &bn, &mut serial, m, k, n, 1);
            gemm_tn_threads(&at, &bn, &mut par, m, k, n, 2);
            assert_eq!(serial, par);
        }
    }

    #[test]
    fn policy_stays_serial_below_threshold() {
        assert_eq!(worker_count(PAR_FLOP_THRESHOLD - 1, 1024), 1);
        assert_eq!(worker_count(usize::MAX, 1), 1);
        assert!(worker_count(usize::MAX, 1024) >= 1);
    }

    #[test]
    fn kernels_accumulate_instead_of_overwrite() {
        let a = vec![1.0, 2.0];
        let b = vec![3.0, 4.0];
        let mut c = vec![10.0];
        gemm_nn(&a, &b, &mut c, 1, 2, 1);
        assert_eq!(c, vec![10.0 + 3.0 + 8.0]);
    }
}
