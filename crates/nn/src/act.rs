//! Element-wise activations.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Rectified linear unit.
#[derive(Debug, Default)]
pub struct Relu {
    mask: Vec<bool>,
}

impl Relu {
    /// A ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, mut x: Tensor, train: bool) -> Tensor {
        if train {
            // Only training forwards refresh the gradient mask, so an
            // evaluation forward between a training forward and its
            // backward cannot clobber it.
            self.mask = x.data().iter().map(|&v| v > 0.0).collect();
        }
        for v in x.data_mut() {
            if *v <= 0.0 {
                *v = 0.0;
            }
        }
        x
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_owned(grad_out.clone())
    }

    fn backward_owned(&mut self, mut g: Tensor) -> Tensor {
        for (v, &m) in g.data_mut().iter_mut().zip(&self.mask) {
            if !m {
                *v = 0.0;
            }
        }
        g
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clips_negatives_and_gates_gradients() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(&[4], vec![-1.0, 2.0, -3.0, 4.0]);
        let y = r.forward(&x, true);
        assert_eq!(y.data(), &[0.0, 2.0, 0.0, 4.0]);
        let g = r.backward(&Tensor::from_vec(&[4], vec![1.0; 4]));
        assert_eq!(g.data(), &[0.0, 1.0, 0.0, 1.0]);
    }
}
