//! Spatial pooling.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;

/// Global average pooling: NCHW → `[batch, channels]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_shape: Vec<usize>,
}

impl GlobalAvgPool {
    /// A pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool::default()
    }
}

impl Layer for GlobalAvgPool {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let (n, c, h, w) = x.dims4();
        if train {
            // Evaluation forwards (possibly with a different batch
            // size) must not clobber the shape backward will restore.
            self.cached_shape = x.shape().to_vec();
        }
        let hw = h * w;
        let scale = 1.0 / hw as f32;
        let mut y = Tensor::zeros(&[n, c]);
        let xd = x.data();
        for (map, out) in xd.chunks_exact(hw).zip(y.data_mut()) {
            *out = map.iter().sum::<f32>() * scale;
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let (n, c, h, w) = (
            self.cached_shape[0],
            self.cached_shape[1],
            self.cached_shape[2],
            self.cached_shape[3],
        );
        let mut dx = Tensor::zeros(&self.cached_shape);
        let scale = 1.0 / (h * w) as f32;
        for ni in 0..n {
            for ch in 0..c {
                let g = grad_out.data()[ni * c + ch] * scale;
                for hy in 0..h {
                    for wx in 0..w {
                        *dx.at4_mut(ni, ch, hy, wx) = g;
                    }
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn averages_each_channel() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(&[1, 2, 1, 2], vec![1.0, 3.0, 10.0, 20.0]);
        let y = p.forward(&x, false);
        assert_eq!(y.data(), &[2.0, 15.0]);
    }

    #[test]
    fn backward_distributes_uniformly() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        p.forward(&x, true);
        let g = p.backward(&Tensor::from_vec(&[1, 1], vec![4.0]));
        assert_eq!(g.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn eval_forward_keeps_training_shape_cache() {
        let mut p = GlobalAvgPool::new();
        p.forward(&Tensor::zeros(&[2, 1, 2, 2]), true);
        // A different-batch evaluation forward in between …
        p.forward(&Tensor::zeros(&[5, 1, 2, 2]), false);
        // … must not change what backward reconstructs.
        let g = p.backward(&Tensor::zeros(&[2, 1]));
        assert_eq!(g.shape(), &[2, 1, 2, 2]);
    }
}
