//! First-order optimizers driving [`Layer::visit_params`].
//!
//! Optimizer state is kept per parameter in visitation order, which
//! is deterministic for a fixed network structure.

use crate::layer::Layer;
use crate::tensor::Tensor;

/// Optimizer interface: one `step` consumes the gradients accumulated
/// since the last [`Optimizer::zero_grad`].
pub trait Optimizer {
    /// Applies one update using the accumulated gradients.
    fn step(&mut self, net: &mut dyn Layer);

    /// Clears all accumulated gradients.
    fn zero_grad(&mut self, net: &mut dyn Layer) {
        net.visit_params(&mut |p| p.zero_grad());
    }
}

/// Plain stochastic gradient descent.
#[derive(Debug)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Optimizer for Sgd {
    fn step(&mut self, net: &mut dyn Layer) {
        net.visit_params(&mut |p| {
            for (v, g) in p.value.data_mut().iter_mut().zip(p.grad.data()) {
                *v -= self.lr * g;
            }
        });
    }
}

/// RMSProp (Hinton's lecture-note optimizer), used by the native
/// RL-MUL DQN.
#[derive(Debug)]
pub struct RmsProp {
    /// Learning rate.
    pub lr: f32,
    /// Squared-gradient decay.
    pub alpha: f32,
    /// Stability epsilon.
    pub eps: f32,
    state: Vec<Tensor>,
}

impl RmsProp {
    /// RMSProp with decay 0.99.
    pub fn new(lr: f32) -> Self {
        RmsProp { lr, alpha: 0.99, eps: 1e-8, state: Vec::new() }
    }

    /// The per-parameter squared-gradient accumulators, in visitation
    /// order (empty before the first `step`). Exposed for
    /// checkpointing: resuming without these restarts the adaptive
    /// step sizes and diverges from an uninterrupted run.
    pub fn state(&self) -> &[Tensor] {
        &self.state
    }

    /// Restores accumulators captured by [`RmsProp::state`].
    pub fn set_state(&mut self, state: Vec<Tensor>) {
        self.state = state;
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, net: &mut dyn Layer) {
        let mut idx = 0usize;
        let state = &mut self.state;
        let (lr, alpha, eps) = (self.lr, self.alpha, self.eps);
        net.visit_params(&mut |p| {
            if state.len() <= idx {
                state.push(Tensor::zeros(p.value.shape()));
            }
            let sq = state[idx].data_mut();
            for ((v, g), s) in p.value.data_mut().iter_mut().zip(p.grad.data()).zip(sq) {
                *s = alpha * *s + (1.0 - alpha) * g * g;
                *v -= lr * g / (s.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Adam with bias correction.
#[derive(Debug)]
pub struct Adam {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Stability epsilon.
    pub eps: f32,
    t: i32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Adam with the usual (0.9, 0.999) moments.
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    /// The optimizer state: step count plus first/second moment
    /// tensors in visitation order. Exposed for checkpointing — the
    /// bias-correction schedule depends on the step count, so resume
    /// without it changes every subsequent update.
    pub fn state(&self) -> (i64, &[Tensor], &[Tensor]) {
        (i64::from(self.t), &self.m, &self.v)
    }

    /// Restores state captured by [`Adam::state`].
    pub fn set_state(&mut self, t: i64, m: Vec<Tensor>, v: Vec<Tensor>) {
        self.t = t as i32;
        self.m = m;
        self.v = v;
    }
}

impl Optimizer for Adam {
    fn step(&mut self, net: &mut dyn Layer) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t);
        let bc2 = 1.0 - self.beta2.powi(self.t);
        let mut idx = 0usize;
        let (m_state, v_state) = (&mut self.m, &mut self.v);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        net.visit_params(&mut |p| {
            if m_state.len() <= idx {
                m_state.push(Tensor::zeros(p.value.shape()));
                v_state.push(Tensor::zeros(p.value.shape()));
            }
            let md = m_state[idx].data_mut();
            let vd = v_state[idx].data_mut();
            for (((val, g), m), v) in
                p.value.data_mut().iter_mut().zip(p.grad.data()).zip(md).zip(vd)
            {
                *m = b1 * *m + (1.0 - b1) * g;
                *v = b2 * *v + (1.0 - b2) * g * g;
                let mhat = *m / bc1;
                let vhat = *v / bc2;
                *val -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// Clips the global gradient L2 norm to `max_norm`.
pub fn clip_grad_norm(net: &mut dyn Layer, max_norm: f32) -> f32 {
    let mut sq = 0.0f32;
    net.visit_params(&mut |p| {
        for g in p.grad.data() {
            sq += g * g;
        }
    });
    let norm = sq.sqrt();
    if norm > max_norm && norm > 0.0 {
        let k = max_norm / norm;
        net.visit_params(&mut |p| {
            for g in p.grad.data_mut() {
                *g *= k;
            }
        });
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::Linear;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Trains y = 2x − 1 with each optimizer; all must converge.
    fn converges(opt: &mut dyn Optimizer) -> f32 {
        let mut rng = StdRng::seed_from_u64(21);
        let mut net = Linear::new(1, 1, &mut rng);
        for step in 0..800 {
            let xv = (step % 7) as f32 / 3.0 - 1.0;
            let target = 2.0 * xv - 1.0;
            opt.zero_grad(&mut net);
            let x = Tensor::from_vec(&[1, 1], vec![xv]);
            let y = crate::layer::Layer::forward(&mut net, &x, true);
            let err = y.data()[0] - target;
            let grad = Tensor::from_vec(&[1, 1], vec![2.0 * err]);
            crate::layer::Layer::backward(&mut net, &grad);
            opt.step(&mut net);
        }
        // Final squared error on a held-out point.
        let x = Tensor::from_vec(&[1, 1], vec![0.35]);
        let y = crate::layer::Layer::forward(&mut net, &x, false);
        (y.data()[0] - (2.0 * 0.35 - 1.0)).powi(2)
    }

    #[test]
    fn sgd_converges() {
        assert!(converges(&mut Sgd { lr: 0.05 }) < 1e-3);
    }

    #[test]
    fn rmsprop_converges() {
        assert!(converges(&mut RmsProp::new(0.01)) < 1e-3);
    }

    #[test]
    fn adam_converges() {
        assert!(converges(&mut Adam::new(0.02)) < 1e-3);
    }

    #[test]
    fn clipping_caps_the_norm() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut net = Linear::new(4, 4, &mut rng);
        net.visit_params(&mut |p| p.grad.data_mut().fill(10.0));
        let before = clip_grad_norm(&mut net, 1.0);
        assert!(before > 1.0);
        let mut sq = 0.0f32;
        net.visit_params(&mut |p| {
            for g in p.grad.data() {
                sq += g * g;
            }
        });
        assert!((sq.sqrt() - 1.0).abs() < 1e-4);
    }
}
