//! Naive loop kernels retained as the correctness oracle.
//!
//! These are the seed implementations of `Conv2d` and `Linear` (and a
//! triple-loop matmul), kept verbatim after the layers moved to the
//! GEMM/im2col path. They pin the optimized kernels three ways:
//!
//! * debug builds re-run every layer call through the oracle and
//!   assert near-equality (see `assert_close` — a tight
//!   relative-plus-absolute tolerance that only absorbs summation-
//!   order differences),
//! * the property tests in `tests/properties.rs` compare random
//!   shapes/strides/paddings against them,
//! * the criterion benches measure the optimized path's speedup over
//!   them.
//!
//! They are compiled unconditionally (the code is small) but only
//! the debug-assertion oracle calls them on the hot path.

/// `C[m×n] += A[m×k]·B[k×n]`, triple loop.
pub fn matmul_nn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// `C[m×n] += A[m×k]·B[n×k]ᵀ`, triple loop.
pub fn matmul_nt(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for kk in 0..k {
                acc += a[i * k + kk] * b[j * k + kk];
            }
            c[i * n + j] = acc;
        }
    }
}

/// `C[m×n] += A[k×m]ᵀ·B[k×n]`, triple loop.
pub fn matmul_tn(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = c[i * n + j];
            for kk in 0..k {
                acc += a[kk * m + i] * b[kk * n + j];
            }
            c[i * n + j] = acc;
        }
    }
}

/// Direct 6-deep-loop NCHW convolution forward (the seed kernel).
/// Returns `y[n, oc, oh, ow]` as a flat vector.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_forward(
    x: &[f32],
    weight: &[f32],
    bias: &[f32],
    n: usize,
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let mut y = vec![0.0f32; n * out_c * oh * ow];
    for ni in 0..n {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    for ic in 0..in_c {
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let wv = weight[((oc * in_c + ic) * k + ky) * k + kx];
                                let xv = x[((ni * in_c + ic) * h + iy as usize) * w + ix as usize];
                                acc += wv * xv;
                            }
                        }
                    }
                    y[((ni * out_c + oc) * oh + oy) * ow + ox] = acc;
                }
            }
        }
    }
    y
}

/// Direct-loop convolution backward (the seed kernel). Accumulates
/// the weight/bias gradients into `dw`/`db` and returns `dx`.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward(
    x: &[f32],
    grad_out: &[f32],
    weight: &[f32],
    dw: &mut [f32],
    db: &mut [f32],
    n: usize,
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
) -> Vec<f32> {
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let mut dx = vec![0.0f32; n * in_c * h * w];
    for ni in 0..n {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out[((ni * out_c + oc) * oh + oy) * ow + ox];
                    if g == 0.0 {
                        continue;
                    }
                    db[oc] += g;
                    for ic in 0..in_c {
                        for ky in 0..k {
                            let iy = (oy * stride + ky) as isize - pad as isize;
                            if iy < 0 || iy as usize >= h {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if ix < 0 || ix as usize >= w {
                                    continue;
                                }
                                let widx = ((oc * in_c + ic) * k + ky) * k + kx;
                                let xidx = ((ni * in_c + ic) * h + iy as usize) * w + ix as usize;
                                dw[widx] += g * x[xidx];
                                dx[xidx] += g * weight[widx];
                            }
                        }
                    }
                }
            }
        }
    }
    dx
}

/// Row-loop dense forward (the seed `Linear` kernel):
/// `y = x·Wᵀ + b`.
pub fn linear_forward(
    x: &[f32],
    weight: &[f32],
    bias: &[f32],
    n: usize,
    in_f: usize,
    out_f: usize,
) -> Vec<f32> {
    let mut y = vec![0.0f32; n * out_f];
    for ni in 0..n {
        for o in 0..out_f {
            let mut acc = bias[o];
            let wrow = &weight[o * in_f..(o + 1) * in_f];
            let xrow = &x[ni * in_f..(ni + 1) * in_f];
            for (wv, xv) in wrow.iter().zip(xrow) {
                acc += wv * xv;
            }
            y[ni * out_f + o] = acc;
        }
    }
    y
}

/// Row-loop dense backward (the seed `Linear` kernel). Accumulates
/// into `dw`/`db` and returns `dx`.
#[allow(clippy::too_many_arguments)]
pub fn linear_backward(
    x: &[f32],
    grad_out: &[f32],
    weight: &[f32],
    dw: &mut [f32],
    db: &mut [f32],
    n: usize,
    in_f: usize,
    out_f: usize,
) -> Vec<f32> {
    let mut dx = vec![0.0f32; n * in_f];
    for ni in 0..n {
        for o in 0..out_f {
            let g = grad_out[ni * out_f + o];
            if g == 0.0 {
                continue;
            }
            db[o] += g;
            for i in 0..in_f {
                dw[o * in_f + i] += g * x[ni * in_f + i];
                dx[ni * in_f + i] += g * weight[o * in_f + i];
            }
        }
    }
    dx
}

/// Oracle comparison: every element of `got` must match `want` to a
/// tight relative tolerance (absorbing only summation-order drift).
///
/// # Panics
///
/// Panics with the offending index and values on mismatch.
pub fn assert_close(what: &str, got: &[f32], want: &[f32]) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, v)) in got.iter().zip(want).enumerate() {
        let tol = 1e-4 * 1.0f32.max(v.abs()) + 1e-6;
        assert!((g - v).abs() <= tol, "{what}: oracle mismatch at {i}: optimized {g} vs naive {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_variants_agree_on_a_transposable_case() {
        // A 2×2·2×2 product small enough to check by hand.
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let b = vec![5.0, 6.0, 7.0, 8.0];
        let mut c = vec![0.0; 4];
        matmul_nn(&a, &b, &mut c, 2, 2, 2);
        assert_eq!(c, vec![19.0, 22.0, 43.0, 50.0]);

        // A·Bᵀ with B stored transposed equals the same product.
        let bt = vec![5.0, 7.0, 6.0, 8.0];
        let mut c2 = vec![0.0; 4];
        matmul_nt(&a, &bt, &mut c2, 2, 2, 2);
        assert_eq!(c2, c);

        // Aᵀ·B with A stored transposed likewise.
        let at = vec![1.0, 3.0, 2.0, 4.0];
        let mut c3 = vec![0.0; 4];
        matmul_tn(&at, &b, &mut c3, 2, 2, 2);
        assert_eq!(c3, c);
    }

    #[test]
    #[should_panic(expected = "oracle mismatch")]
    fn assert_close_rejects_real_differences() {
        assert_close("unit", &[1.0], &[1.01]);
    }
}
