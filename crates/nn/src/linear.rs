//! Fully connected layer.

use crate::layer::{Layer, Param};
use crate::tensor::Tensor;
use rand::Rng;

/// `y = x·Wᵀ + b` over 2-D `[batch, features]` tensors.
#[derive(Debug)]
pub struct Linear {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    cached_input: Option<Tensor>,
}

impl Linear {
    /// A dense layer from `in_f` to `out_f` features.
    pub fn new<R: Rng + ?Sized>(in_f: usize, out_f: usize, rng: &mut R) -> Self {
        Linear {
            weight: Param::new(Tensor::kaiming(&[out_f, in_f], in_f, rng)),
            bias: Param::new(Tensor::zeros(&[out_f])),
            cached_input: None,
        }
    }

    /// Scales all weights and biases (useful for near-zero output
    /// heads at the start of RL training).
    pub fn scale_parameters(&mut self, k: f32) {
        self.weight.value.scale(k);
        self.bias.value.scale(k);
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        let (n, in_f) = x.dims2();
        let (out_f, win) = self.weight.value.dims2();
        assert_eq!(in_f, win, "Linear input width mismatch");
        let mut y = Tensor::zeros(&[n, out_f]);
        let wd = self.weight.value.data();
        let bd = self.bias.value.data();
        let xd = x.data();
        let yd = y.data_mut();
        for ni in 0..n {
            for o in 0..out_f {
                let mut acc = bd[o];
                let wrow = &wd[o * in_f..(o + 1) * in_f];
                let xrow = &xd[ni * in_f..(ni + 1) * in_f];
                for (wv, xv) in wrow.iter().zip(xrow) {
                    acc += wv * xv;
                }
                yd[ni * out_f + o] = acc;
            }
        }
        self.cached_input = Some(x.clone());
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let x = self.cached_input.as_ref().expect("forward before backward");
        let (n, in_f) = x.dims2();
        let (_, out_f) = grad_out.dims2();
        let mut dx = Tensor::zeros(x.shape());
        let wd = self.weight.value.data().to_vec();
        let dw = self.weight.grad.data_mut();
        let db = self.bias.grad.data_mut();
        let xd = x.data();
        let gd = grad_out.data();
        let dxd = dx.data_mut();
        for ni in 0..n {
            for o in 0..out_f {
                let g = gd[ni * out_f + o];
                if g == 0.0 {
                    continue;
                }
                db[o] += g;
                for i in 0..in_f {
                    dw[o * in_f + i] += g * xd[ni * in_f + i];
                    dxd[ni * in_f + i] += g * wd[o * in_f + i];
                }
            }
        }
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

/// Flattens NCHW maps to `[batch, c·h·w]`.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// A flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, _train: bool) -> Tensor {
        self.cached_shape = x.shape().to_vec();
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        x.clone().reshape(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        grad_out.clone().reshape(&self.cached_shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn computes_affine_map() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 1, &mut rng);
        l.weight.value.data_mut().copy_from_slice(&[2.0, -1.0]);
        l.bias.value.data_mut()[0] = 0.5;
        let y = l.forward(&Tensor::from_vec(&[1, 2], vec![3.0, 4.0]), false);
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = Linear::new(6, 4, &mut rng);
        let x = Tensor::kaiming(&[3, 6], 6, &mut rng);
        crate::testutil::grad_check(&mut l, &x, 1e-2, 2e-2);
    }

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 2, 1, 2], (0..8).map(|i| i as f32).collect());
        let y = f.forward(&x, false);
        assert_eq!(y.shape(), &[2, 4]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }
}
