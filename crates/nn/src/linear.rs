//! Fully connected layer on the shared GEMM kernel.

use crate::gemm;
use crate::layer::{Layer, Param};
use crate::stats::{self, Op};
use crate::tensor::Tensor;
use rand::Rng;
use std::time::Instant;

/// `y = x·Wᵀ + b` over 2-D `[batch, features]` tensors.
///
/// Forward is one [`gemm::gemm_nt`] against the `[out, in]` weight
/// matrix; backward is one [`gemm::gemm_tn`] (weight gradient) plus
/// one [`gemm::gemm_nn`] (input gradient). Debug builds replay every
/// call through the retained naive kernels in [`crate::reference`]
/// and assert near-equality.
#[derive(Debug)]
pub struct Linear {
    weight: Param, // [out, in]
    bias: Param,   // [out]
    cached_input: Option<Tensor>,
}

impl Linear {
    /// A dense layer from `in_f` to `out_f` features.
    pub fn new<R: Rng + ?Sized>(in_f: usize, out_f: usize, rng: &mut R) -> Self {
        Linear {
            weight: Param::new(Tensor::kaiming(&[out_f, in_f], in_f, rng)),
            bias: Param::new(Tensor::zeros(&[out_f])),
            cached_input: None,
        }
    }

    /// Scales all weights and biases (useful for near-zero output
    /// heads at the start of RL training).
    pub fn scale_parameters(&mut self, k: f32) {
        self.weight.value.scale(k);
        self.bias.value.scale(k);
    }

    /// The affine map without input caching (shared by the borrowing
    /// and owning forward paths).
    fn forward_impl(&mut self, x: &Tensor) -> Tensor {
        let t0 = Instant::now();
        let (n, in_f) = x.dims2();
        let (out_f, win) = self.weight.value.dims2();
        assert_eq!(in_f, win, "Linear input width mismatch");
        let mut y = Tensor::zeros(&[n, out_f]);
        let bd = self.bias.value.data();
        for row in y.data_mut().chunks_exact_mut(out_f) {
            row.copy_from_slice(bd);
        }
        gemm::gemm_nt(x.data(), self.weight.value.data(), y.data_mut(), n, in_f, out_f);
        #[cfg(debug_assertions)]
        {
            let naive = crate::reference::linear_forward(
                x.data(),
                self.weight.value.data(),
                bd,
                n,
                in_f,
                out_f,
            );
            crate::reference::assert_close("Linear::forward", y.data(), &naive);
        }
        stats::record(Op::LinearForward, 2 * (n * in_f * out_f) as u64, t0.elapsed());
        y
    }
}

impl Layer for Linear {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        let y = self.forward_impl(x);
        if train {
            self.cached_input = Some(x.clone());
        }
        y
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        let y = self.forward_impl(&x);
        if train {
            self.cached_input = Some(x);
        }
        y
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        let t0 = Instant::now();
        let x = self.cached_input.as_ref().expect("forward(train) before backward");
        let (n, in_f) = x.dims2();
        let (_, out_f) = grad_out.dims2();
        let gd = grad_out.data();
        let xd = x.data();

        #[cfg(debug_assertions)]
        let (dw_before, db_before) =
            (self.weight.grad.data().to_vec(), self.bias.grad.data().to_vec());

        // db: column sums of the output gradient.
        let db = self.bias.grad.data_mut();
        for grow in gd.chunks_exact(out_f) {
            for (d, &g) in db.iter_mut().zip(grow) {
                *d += g;
            }
        }
        // dW += gᵀ·x ; dx = g·W.
        gemm::gemm_tn(gd, xd, self.weight.grad.data_mut(), out_f, n, in_f);
        let mut dx = Tensor::zeros(x.shape());
        gemm::gemm_nn(gd, self.weight.value.data(), dx.data_mut(), n, out_f, in_f);

        #[cfg(debug_assertions)]
        {
            let mut dw_ref = dw_before;
            let mut db_ref = db_before;
            let dx_ref = crate::reference::linear_backward(
                xd,
                gd,
                self.weight.value.data(),
                &mut dw_ref,
                &mut db_ref,
                n,
                in_f,
                out_f,
            );
            crate::reference::assert_close("Linear::backward dx", dx.data(), &dx_ref);
            crate::reference::assert_close("Linear::backward dW", self.weight.grad.data(), &dw_ref);
            crate::reference::assert_close("Linear::backward db", self.bias.grad.data(), &db_ref);
        }
        stats::record(Op::LinearBackward, 4 * (n * in_f * out_f) as u64, t0.elapsed());
        dx
    }

    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }
}

/// Flattens NCHW maps to `[batch, c·h·w]`.
///
/// Both directions are pure reshapes: the owning `forward_owned` /
/// `backward_owned` paths move the buffer via
/// [`Tensor::into_reshaped`] without copying.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Vec<usize>,
}

impl Flatten {
    /// A flatten layer.
    pub fn new() -> Self {
        Flatten::default()
    }
}

impl Layer for Flatten {
    fn forward(&mut self, x: &Tensor, train: bool) -> Tensor {
        self.forward_owned(x.clone(), train)
    }

    fn forward_owned(&mut self, x: Tensor, train: bool) -> Tensor {
        if train {
            self.cached_shape = x.shape().to_vec();
        }
        let n = x.shape()[0];
        let rest: usize = x.shape()[1..].iter().product();
        x.into_reshaped(&[n, rest])
    }

    fn backward(&mut self, grad_out: &Tensor) -> Tensor {
        self.backward_owned(grad_out.clone())
    }

    fn backward_owned(&mut self, grad_out: Tensor) -> Tensor {
        grad_out.into_reshaped(&self.cached_shape)
    }

    fn visit_params(&mut self, _f: &mut dyn FnMut(&mut Param)) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn computes_affine_map() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut l = Linear::new(2, 1, &mut rng);
        l.weight.value.data_mut().copy_from_slice(&[2.0, -1.0]);
        l.bias.value.data_mut()[0] = 0.5;
        let y = l.forward(&Tensor::from_vec(&[1, 2], vec![3.0, 4.0]), false);
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn gradient_check() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut l = Linear::new(6, 4, &mut rng);
        let x = Tensor::kaiming(&[3, 6], 6, &mut rng);
        crate::testutil::grad_check(&mut l, &x, 1e-2, 2e-2);
    }

    #[test]
    fn wide_layer_gradient_check() {
        // Wider than one chunks_exact(8) lane block, odd remainder.
        let mut rng = StdRng::seed_from_u64(6);
        let mut l = Linear::new(21, 9, &mut rng);
        let x = Tensor::kaiming(&[4, 21], 21, &mut rng);
        crate::testutil::grad_check(&mut l, &x, 1e-2, 2e-2);
    }

    #[test]
    fn eval_forward_does_not_clobber_training_cache() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut l = Linear::new(3, 2, &mut rng);
        let x_train = Tensor::kaiming(&[2, 3], 3, &mut rng);
        l.forward(&x_train, true);
        // Evaluation forward with a different batch in between.
        l.forward(&Tensor::kaiming(&[5, 3], 3, &mut rng), false);
        assert_eq!(
            l.cached_input.as_ref().map(Tensor::shape),
            Some(x_train.shape()),
            "eval forward must not replace the cached training input"
        );
        let dx = l.backward(&Tensor::zeros(&[2, 2]));
        assert_eq!(dx.shape(), x_train.shape());
    }

    #[test]
    fn flatten_round_trips() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 2, 1, 2], (0..8).map(|i| i as f32).collect());
        let y = f.forward(&x, true);
        assert_eq!(y.shape(), &[2, 4]);
        let g = f.backward(&y);
        assert_eq!(g.shape(), x.shape());
        assert_eq!(g.data(), x.data());
    }

    #[test]
    fn flatten_owned_path_round_trips_without_shape_loss() {
        let mut f = Flatten::new();
        let x = Tensor::from_vec(&[2, 3, 1, 1], (0..6).map(|i| i as f32).collect());
        let y = f.forward_owned(x, true);
        assert_eq!(y.shape(), &[2, 3]);
        let g = f.backward_owned(y);
        assert_eq!(g.shape(), &[2, 3, 1, 1]);
    }
}
